#ifndef PPDB_AUDIT_LEDGER_H_
#define PPDB_AUDIT_LEDGER_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "privacy/provider_prefs.h"

namespace ppdb::audit {

/// Records when each datum was collected, in logical days.
///
/// Retention preferences and policies are levels on the retention scale
/// whose magnitudes are durations in days; the ledger supplies the "age"
/// side of the comparison for the retention enforcement in the monitor and
/// the retention sweeper.
class IngestLedger {
 public:
  IngestLedger() = default;

  /// Records that (table, provider, attribute) was collected at `day`.
  /// Re-recording overwrites (a refreshed datum restarts its clock).
  void RecordIngest(std::string_view table, privacy::ProviderId provider,
                    std::string_view attribute, int64_t day);

  /// Records the same ingest day for every attribute of a provider's row.
  void RecordRowIngest(std::string_view table, privacy::ProviderId provider,
                       const std::vector<std::string>& attributes,
                       int64_t day);

  /// The collection day of a datum; kNotFound when never recorded.
  Result<int64_t> IngestDay(std::string_view table,
                            privacy::ProviderId provider,
                            std::string_view attribute) const;

  /// Age in days at `today`; kNotFound when never recorded. Negative ages
  /// (ingest in the future) error with kInvalidArgument.
  Result<int64_t> AgeInDays(std::string_view table,
                            privacy::ProviderId provider,
                            std::string_view attribute, int64_t today) const;

  /// Forgets a datum's record (after purge).
  void Erase(std::string_view table, privacy::ProviderId provider,
             std::string_view attribute);

  int64_t size() const { return static_cast<int64_t>(entries_.size()); }

  /// One ledger entry, for iteration/serialization.
  struct Entry {
    std::string table;
    privacy::ProviderId provider = 0;
    std::string attribute;
    int64_t day = 0;
  };

  /// All entries in deterministic (table, provider, attribute) order.
  std::vector<Entry> Entries() const;

 private:
  struct Key {
    std::string table;
    privacy::ProviderId provider;
    std::string attribute;
    friend auto operator<=>(const Key&, const Key&) = default;
  };
  std::map<Key, int64_t> entries_;
};

}  // namespace ppdb::audit

#endif  // PPDB_AUDIT_LEDGER_H_

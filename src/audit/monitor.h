#ifndef PPDB_AUDIT_MONITOR_H_
#define PPDB_AUDIT_MONITOR_H_

#include <string>
#include <vector>

#include "audit/audit_log.h"
#include "audit/generalizer.h"
#include "audit/ledger.h"
#include "common/result.h"
#include "privacy/config.h"
#include "relational/catalog.h"
#include "relational/query.h"

namespace ppdb::audit {

/// A request to read data: who asks, for which declared purpose, which
/// attributes of which table, and at which visibility class the results
/// will land.
struct AccessRequest {
  /// Free-text identity of the requesting party (for the log).
  std::string requester;
  /// The visibility level at which the results will be exposed (a level of
  /// the visibility scale; e.g. house-internal vs third-party).
  int visibility_level = 0;
  privacy::PurposeId purpose = 0;
  std::string table;
  /// Attributes to read; must be non-empty.
  std::vector<std::string> attributes;
  /// Logical day of the request (drives retention enforcement).
  int64_t day = 0;
};

/// How the monitor reacts to accesses that exceed provider preferences.
enum class EnforcementMode {
  /// Withhold: generalize down to the preferred granularity, suppress cells
  /// whose preferred visibility/retention is exceeded. The result set never
  /// violates a preference.
  kEnforce,
  /// Release at policy levels but log a kViolationObserved event per
  /// exceedance — the transparency posture of §2: make violations visible
  /// and countable rather than silently prevented.
  kObserve,
};

/// Purpose-based access monitor: the runtime face of the violation model.
///
/// Every request passes a *policy gate* first — the house may only use data
/// as its declared policy HP allows (purpose declared for each attribute,
/// request visibility within policy visibility). Requests that fail the
/// gate are denied outright: a house that bypassed its own policy would
/// make the stated policy meaningless and the paper's model unauditable.
///
/// Past the gate, each cell is checked against its provider's (stated or
/// implicit) preference, and either enforced or observed per
/// `EnforcementMode`.
///
/// Usage:
///
///   AccessMonitor monitor(&catalog, &config, &generalizers, &log,
///                         EnforcementMode::kEnforce);
///   PPDB_ASSIGN_OR_RETURN(rel::ResultSet rs, monitor.Execute(request));
class AccessMonitor {
 public:
  /// All pointers must outlive the monitor. `ledger` may be null, in which
  /// case retention is not enforced at read time.
  AccessMonitor(const rel::Catalog* catalog,
                const privacy::PrivacyConfig* config,
                const GeneralizerRegistry* generalizers, AuditLog* log,
                EnforcementMode mode, const IngestLedger* ledger = nullptr);

  /// Evaluates the policy gate only: OK iff the request is within HP.
  Status CheckPolicyGate(const AccessRequest& request) const;

  /// Executes the request. The result schema has one string column per
  /// requested attribute (values may be exact renderings, ranges, "*", or
  /// null — see ValueGeneralizer); provider ids are preserved on rows.
  Result<rel::ResultSet> Execute(const AccessRequest& request);

 private:
  const rel::Catalog* catalog_;
  const privacy::PrivacyConfig* config_;
  const GeneralizerRegistry* generalizers_;
  AuditLog* log_;
  EnforcementMode mode_;
  const IngestLedger* ledger_;
};

}  // namespace ppdb::audit

#endif  // PPDB_AUDIT_MONITOR_H_

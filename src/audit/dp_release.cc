#include "audit/dp_release.h"

#include "common/macros.h"

namespace ppdb::audit {

Result<std::vector<DpAggregate>> ReleaseAggregates(
    const rel::ResultSet& input, const std::vector<rel::AggSpec>& aggs,
    const DpReleaseOptions& options, Rng& rng) {
  if (!(options.epsilon > 0.0)) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (!(options.sensitivity > 0.0)) {
    return Status::InvalidArgument("sensitivity must be positive");
  }
  if (aggs.empty()) {
    return Status::InvalidArgument("nothing to release");
  }
  for (const rel::AggSpec& spec : aggs) {
    if (spec.op != rel::AggOp::kCount && spec.op != rel::AggOp::kSum) {
      return Status::InvalidArgument(
          "only COUNT and SUM have bounded sensitivity; aggregate '" +
          spec.output_name + "' is neither");
    }
  }

  PPDB_ASSIGN_OR_RETURN(rel::ResultSet computed,
                        rel::Aggregate(input, {}, aggs));
  if (computed.num_rows() != 1) {
    return Status::Internal("global aggregate produced multiple rows");
  }

  const double scale = options.sensitivity / options.epsilon;
  std::vector<DpAggregate> out;
  out.reserve(aggs.size());
  for (size_t a = 0; a < aggs.size(); ++a) {
    DpAggregate released;
    released.name = aggs[a].output_name;
    PPDB_ASSIGN_OR_RETURN(released.true_value,
                          computed.rows[0].values[a].AsNumeric());
    released.noise_scale = scale;
    released.released_value = released.true_value + rng.NextLaplace(scale);
    out.push_back(std::move(released));
  }
  return out;
}

}  // namespace ppdb::audit

#ifndef PPDB_AUDIT_RETENTION_SWEEPER_H_
#define PPDB_AUDIT_RETENTION_SWEEPER_H_

#include <cstdint>
#include <string>

#include "audit/audit_log.h"
#include "audit/ledger.h"
#include "common/result.h"
#include "privacy/config.h"
#include "relational/table.h"

namespace ppdb::audit {

/// Result of one sweep.
struct SweepStats {
  /// Cells nulled out because their age exceeded the allowed retention.
  int64_t cells_purged = 0;
  /// Rows removed because every cell had been purged.
  int64_t rows_erased = 0;
  /// Cells inspected.
  int64_t cells_examined = 0;
};

/// Batch retention enforcement: purges datums that outlived their allowed
/// retention.
///
/// The taxonomy's retention dimension "describes how long the data will be
/// kept in storage"; §1 lists "retention of data for an unspecified period"
/// among the provider concerns the model targets. The sweeper computes, for
/// every datum, the allowed retention in days as
///
///   max over purposes p the policy declares for the attribute of
///       min(policy retention days at p, preference retention days at p)
///
/// — the datum stays as long as *some* declared purpose still justifies it,
/// but no purpose may hold it past the provider's preference. Datums with
/// no ingest record are skipped (age unknown). Purged cells become null;
/// rows whose cells are all null are erased (the provider no longer
/// contributes data). Every purge is logged.
class RetentionSweeper {
 public:
  /// All pointers must outlive the sweeper.
  RetentionSweeper(const privacy::PrivacyConfig* config, IngestLedger* ledger,
                   AuditLog* log);

  /// Sweeps `table` at logical day `today`.
  Result<SweepStats> Sweep(rel::Table* table, int64_t today) const;

 private:
  const privacy::PrivacyConfig* config_;
  IngestLedger* ledger_;
  AuditLog* log_;
};

}  // namespace ppdb::audit

#endif  // PPDB_AUDIT_RETENTION_SWEEPER_H_

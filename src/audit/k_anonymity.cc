#include "audit/k_anonymity.h"

#include <algorithm>
#include <map>

#include "common/macros.h"

namespace ppdb::audit {

Result<KAnonymityResult> MeasureKAnonymity(
    const rel::ResultSet& input,
    const std::vector<std::string>& quasi_identifiers, int64_t threshold_k) {
  if (quasi_identifiers.empty()) {
    return Status::InvalidArgument(
        "at least one quasi-identifier column is required");
  }
  std::vector<int> indices;
  indices.reserve(quasi_identifiers.size());
  for (const std::string& column : quasi_identifiers) {
    PPDB_ASSIGN_OR_RETURN(int j, input.schema.IndexOf(column));
    indices.push_back(j);
  }

  std::map<std::string, int64_t> classes;
  for (const rel::Row& row : input.rows) {
    std::string key;
    for (int j : indices) {
      const rel::Value& v = row.values[static_cast<size_t>(j)];
      key += v.is_null() ? "\x01<null>" : v.ToString();
      key += '\x1f';
    }
    ++classes[key];
  }

  KAnonymityResult result;
  result.num_rows = input.num_rows();
  result.num_classes = static_cast<int64_t>(classes.size());
  if (classes.empty()) return result;

  int64_t smallest = input.num_rows();
  int64_t at_risk_rows = 0;
  for (const auto& [key, count] : classes) {
    smallest = std::min(smallest, count);
    result.largest_class = std::max(result.largest_class, count);
    if (threshold_k > 0 && count < threshold_k) at_risk_rows += count;
  }
  result.k = smallest;
  if (threshold_k > 0) {
    result.at_risk_fraction = static_cast<double>(at_risk_rows) /
                              static_cast<double>(result.num_rows);
  }
  return result;
}

}  // namespace ppdb::audit

#ifndef PPDB_AUDIT_K_ANONYMITY_H_
#define PPDB_AUDIT_K_ANONYMITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/query.h"

namespace ppdb::audit {

/// k-anonymity measurement over a (possibly generalized) result set.
///
/// The paper positions its model against the data-release literature
/// (k-anonymity [20] and successors), which guards *external* risk. This
/// checker bridges the two: granularity enforcement driven by *internal*
/// preferences also coarsens quasi-identifiers, and `MeasureKAnonymity`
/// quantifies how much external protection that buys.
struct KAnonymityResult {
  /// The k the release satisfies: the size of the smallest equivalence
  /// class over the quasi-identifier columns. 0 for an empty input.
  int64_t k = 0;
  /// Number of distinct equivalence classes.
  int64_t num_classes = 0;
  /// Rows measured.
  int64_t num_rows = 0;
  /// Size of the largest class.
  int64_t largest_class = 0;
  /// Fraction of rows in classes smaller than `threshold_k` as passed to
  /// MeasureKAnonymity (re-identifiable mass); 0 when no threshold given.
  double at_risk_fraction = 0.0;

  bool Satisfies(int64_t required_k) const {
    return num_rows > 0 && k >= required_k;
  }
};

/// Groups `input` rows by the rendered values of `quasi_identifiers`
/// (nulls form their own token, so fully suppressed rows pool together)
/// and measures equivalence-class statistics. `threshold_k`, when > 0,
/// also fills `at_risk_fraction`. Errors when a quasi-identifier column
/// does not exist or the list is empty.
Result<KAnonymityResult> MeasureKAnonymity(
    const rel::ResultSet& input,
    const std::vector<std::string>& quasi_identifiers,
    int64_t threshold_k = 0);

}  // namespace ppdb::audit

#endif  // PPDB_AUDIT_K_ANONYMITY_H_

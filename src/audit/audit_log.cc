#include "audit/audit_log.h"

#include <cstdio>

namespace ppdb::audit {

std::string_view AuditEventKindName(AuditEventKind kind) {
  switch (kind) {
    case AuditEventKind::kRequestGranted:
      return "request_granted";
    case AuditEventKind::kRequestDenied:
      return "request_denied";
    case AuditEventKind::kCellGeneralized:
      return "cell_generalized";
    case AuditEventKind::kCellSuppressed:
      return "cell_suppressed";
    case AuditEventKind::kViolationObserved:
      return "violation_observed";
    case AuditEventKind::kRetentionPurge:
      return "retention_purge";
  }
  return "unknown";
}

Result<AuditEventKind> AuditEventKindFromName(std::string_view name) {
  for (AuditEventKind kind :
       {AuditEventKind::kRequestGranted, AuditEventKind::kRequestDenied,
        AuditEventKind::kCellGeneralized, AuditEventKind::kCellSuppressed,
        AuditEventKind::kViolationObserved,
        AuditEventKind::kRetentionPurge}) {
    if (AuditEventKindName(kind) == name) return kind;
  }
  return Status::ParseError("unknown audit event kind: '" +
                            std::string(name) + "'");
}

int64_t AuditLog::Append(AuditEvent event) {
  event.sequence = static_cast<int64_t>(events_.size());
  events_.push_back(std::move(event));
  return events_.back().sequence;
}

std::vector<AuditEvent> AuditLog::EventsForProvider(
    ProviderId provider) const {
  std::vector<AuditEvent> out;
  for (const AuditEvent& e : events_) {
    if (e.provider.has_value() && *e.provider == provider) out.push_back(e);
  }
  return out;
}

int64_t AuditLog::CountByKind(AuditEventKind kind) const {
  int64_t n = 0;
  for (const AuditEvent& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

int64_t AuditLog::ViolationsObservedFor(ProviderId provider) const {
  int64_t n = 0;
  for (const AuditEvent& e : events_) {
    if (e.kind == AuditEventKind::kViolationObserved &&
        e.provider.has_value() && *e.provider == provider) {
      ++n;
    }
  }
  return n;
}

std::string AuditLog::ToString(int64_t max_events) const {
  std::string out;
  int64_t start = size() > max_events ? size() - max_events : 0;
  for (int64_t i = start; i < size(); ++i) {
    const AuditEvent& e = events_[static_cast<size_t>(i)];
    char buf[96];
    std::snprintf(buf, sizeof(buf), "#%lld t=%lld %-18s ",
                  static_cast<long long>(e.sequence),
                  static_cast<long long>(e.timestamp),
                  std::string(AuditEventKindName(e.kind)).c_str());
    out += buf;
    out += e.requester;
    out += " " + e.table;
    if (e.provider.has_value()) {
      out += " provider=" + std::to_string(*e.provider);
    }
    if (e.attribute.has_value()) out += " attr=" + *e.attribute;
    if (!e.detail.empty()) out += " (" + e.detail + ")";
    out += "\n";
  }
  return out;
}

}  // namespace ppdb::audit

#include "audit/ledger.h"

#include "common/macros.h"

namespace ppdb::audit {

void IngestLedger::RecordIngest(std::string_view table,
                                privacy::ProviderId provider,
                                std::string_view attribute, int64_t day) {
  entries_[Key{std::string(table), provider, std::string(attribute)}] = day;
}

void IngestLedger::RecordRowIngest(std::string_view table,
                                   privacy::ProviderId provider,
                                   const std::vector<std::string>& attributes,
                                   int64_t day) {
  for (const std::string& attribute : attributes) {
    RecordIngest(table, provider, attribute, day);
  }
}

Result<int64_t> IngestLedger::IngestDay(std::string_view table,
                                        privacy::ProviderId provider,
                                        std::string_view attribute) const {
  auto it = entries_.find(
      Key{std::string(table), provider, std::string(attribute)});
  if (it == entries_.end()) {
    return Status::NotFound("no ingest record for table '" +
                            std::string(table) + "', provider " +
                            std::to_string(provider) + ", attribute '" +
                            std::string(attribute) + "'");
  }
  return it->second;
}

Result<int64_t> IngestLedger::AgeInDays(std::string_view table,
                                        privacy::ProviderId provider,
                                        std::string_view attribute,
                                        int64_t today) const {
  PPDB_ASSIGN_OR_RETURN(int64_t day, IngestDay(table, provider, attribute));
  if (today < day) {
    return Status::InvalidArgument("datum ingested in the future (day " +
                                   std::to_string(day) + " > today " +
                                   std::to_string(today) + ")");
  }
  return today - day;
}

void IngestLedger::Erase(std::string_view table, privacy::ProviderId provider,
                         std::string_view attribute) {
  entries_.erase(Key{std::string(table), provider, std::string(attribute)});
}

std::vector<IngestLedger::Entry> IngestLedger::Entries() const {
  std::vector<Entry> out;
  out.reserve(entries_.size());
  for (const auto& [key, day] : entries_) {
    out.push_back(Entry{key.table, key.provider, key.attribute, day});
  }
  return out;
}

}  // namespace ppdb::audit

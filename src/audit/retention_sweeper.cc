#include "audit/retention_sweeper.h"

#include <algorithm>
#include <vector>

#include "common/macros.h"

namespace ppdb::audit {

RetentionSweeper::RetentionSweeper(const privacy::PrivacyConfig* config,
                                   IngestLedger* ledger, AuditLog* log)
    : config_(config), ledger_(ledger), log_(log) {}

Result<SweepStats> RetentionSweeper::Sweep(rel::Table* table,
                                           int64_t today) const {
  SweepStats stats;
  const rel::Schema& schema = table->schema();

  // Pass 1: decide purges per (provider, attribute) without mutating.
  struct Purge {
    privacy::ProviderId provider;
    int attribute_index;
    std::string attribute;
  };
  std::vector<Purge> purges;
  std::vector<privacy::ProviderId> to_erase;

  for (const rel::Row& row : table->rows()) {
    int live_cells = 0;
    int purged_cells = 0;
    for (int j = 0; j < schema.num_attributes(); ++j) {
      const rel::Value& cell = row.values[static_cast<size_t>(j)];
      if (cell.is_null()) continue;
      ++live_cells;
      ++stats.cells_examined;
      const std::string& attribute = schema.attribute(j).name;

      Result<int64_t> age =
          ledger_->AgeInDays(table->name(), row.provider, attribute, today);
      if (!age.ok()) continue;  // Age unknown: cannot judge, keep the datum.

      // Allowed days: the best justification any declared purpose offers,
      // each capped by the provider's preference for that purpose.
      std::vector<privacy::PolicyTuple> policies =
          config_->policy.ForAttribute(attribute);
      if (policies.empty()) continue;  // No declared use: out of scope here.
      Result<const privacy::ProviderPreferences*> prefs =
          config_->preferences.Find(row.provider);
      double allowed_days = 0.0;
      for (const privacy::PolicyTuple& policy : policies) {
        PPDB_ASSIGN_OR_RETURN(
            double policy_days,
            config_->scales.retention.MagnitudeOf(policy.tuple.retention));
        privacy::PrivacyTuple pref =
            privacy::PrivacyTuple::ZeroFor(policy.tuple.purpose);
        if (prefs.ok()) {
          pref = prefs.value()->EffectivePreference(attribute,
                                                    policy.tuple.purpose);
        }
        PPDB_ASSIGN_OR_RETURN(
            double pref_days,
            config_->scales.retention.MagnitudeOf(pref.retention));
        allowed_days = std::max(allowed_days,
                                std::min(policy_days, pref_days));
      }

      if (static_cast<double>(age.value()) > allowed_days) {
        purges.push_back(Purge{row.provider, j, attribute});
        ++purged_cells;
      }
    }
    if (live_cells > 0 && purged_cells == live_cells) {
      to_erase.push_back(row.provider);
    }
  }

  // Pass 2: apply.
  for (const Purge& purge : purges) {
    PPDB_RETURN_NOT_OK(table->UpdateCell(purge.provider,
                                         purge.attribute_index,
                                         rel::Value::Null()));
    ledger_->Erase(table->name(), purge.provider, purge.attribute);
    log_->Append(AuditEvent{0, today, AuditEventKind::kRetentionPurge,
                            "retention_sweeper", 0, table->name(),
                            purge.provider, purge.attribute,
                            "datum outlived allowed retention"});
    ++stats.cells_purged;
  }
  stats.rows_erased = table->EraseProviders(to_erase);
  return stats;
}

}  // namespace ppdb::audit

#ifndef PPDB_AUDIT_AUDIT_LOG_H_
#define PPDB_AUDIT_AUDIT_LOG_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "privacy/provider_prefs.h"
#include "privacy/purpose.h"

namespace ppdb::audit {

using privacy::ProviderId;

/// Kind of an audit event.
enum class AuditEventKind {
  /// A request passed the policy gate and was executed.
  kRequestGranted,
  /// A request was rejected at the policy gate.
  kRequestDenied,
  /// A cell was returned below its exact granularity.
  kCellGeneralized,
  /// A cell was withheld entirely (preference or retention).
  kCellSuppressed,
  /// Observe-mode only: data was released beyond a provider's preference —
  /// a live privacy violation, attributed to the provider and dimension.
  kViolationObserved,
  /// A datum was purged by the retention sweeper.
  kRetentionPurge,
};

/// Returns e.g. "request_granted".
std::string_view AuditEventKindName(AuditEventKind kind);

/// Parses a kind name produced by `AuditEventKindName`.
Result<AuditEventKind> AuditEventKindFromName(std::string_view name);

/// One append-only audit record. Provider/attribute are set for cell-level
/// events and unset for request-level events.
struct AuditEvent {
  int64_t sequence = 0;
  int64_t timestamp = 0;
  AuditEventKind kind = AuditEventKind::kRequestGranted;
  std::string requester;
  privacy::PurposeId purpose = 0;
  std::string table;
  std::optional<ProviderId> provider;
  std::optional<std::string> attribute;
  /// Free-text explanation ("visibility 3 exceeds preference 1", ...).
  std::string detail;
};

/// Append-only audit trail. §2: "Automation of this procedure makes privacy
/// violations auditable, so that data providers can continuously monitor
/// the state of their privacy" — `EventsForProvider` is that monitoring
/// hook.
class AuditLog {
 public:
  AuditLog() = default;

  /// Appends an event; the log assigns the sequence number and returns it.
  int64_t Append(AuditEvent event);

  /// All events, in append order.
  const std::vector<AuditEvent>& events() const { return events_; }

  int64_t size() const { return static_cast<int64_t>(events_.size()); }

  /// Events that concern `provider` (cell-level events only).
  std::vector<AuditEvent> EventsForProvider(ProviderId provider) const;

  /// Number of events of `kind`.
  int64_t CountByKind(AuditEventKind kind) const;

  /// Number of kViolationObserved events for `provider` — the provider's
  /// live violation counter.
  int64_t ViolationsObservedFor(ProviderId provider) const;

  /// Renders the last `max_events` events.
  std::string ToString(int64_t max_events = 50) const;

 private:
  std::vector<AuditEvent> events_;
};

}  // namespace ppdb::audit

#endif  // PPDB_AUDIT_AUDIT_LOG_H_

#include "audit/generalizer.h"

#include <cmath>
#include <cstdio>

#include "common/macros.h"

namespace ppdb::audit {

namespace {

/// Fallback: suppress at 0, "*" at 1, exact rendering above.
class DefaultGeneralizer final : public ValueGeneralizer {
 public:
  Result<rel::Value> Generalize(const rel::Value& value,
                                int level) const override {
    if (value.is_null() || level <= 0) return rel::Value::Null();
    if (level == 1) return rel::Value::String("*");
    return rel::Value::String(value.ToString());
  }
};

std::string FormatBound(double v) {
  char buf[48];
  // Integral bounds render without a decimal point.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%g", v);
  }
  return buf;
}

}  // namespace

NumericRangeGeneralizer::NumericRangeGeneralizer(
    std::vector<double> level_widths)
    : level_widths_(std::move(level_widths)) {}

Result<rel::Value> NumericRangeGeneralizer::Generalize(
    const rel::Value& value, int level) const {
  if (value.is_null() || level <= 0) return rel::Value::Null();
  if (static_cast<size_t>(level) >= level_widths_.size()) {
    return rel::Value::String(value.ToString());
  }
  PPDB_ASSIGN_OR_RETURN(double v, value.AsNumeric());
  double width = level_widths_[static_cast<size_t>(level)];
  if (width <= 0.0) return rel::Value::String("*");
  double lo = std::floor(v / width) * width;
  return rel::Value::String("[" + FormatBound(lo) + ", " +
                            FormatBound(lo + width) + ")");
}

CategoryGeneralizer::CategoryGeneralizer(std::vector<LevelMap> level_maps,
                                         bool passthrough_unmapped)
    : level_maps_(std::move(level_maps)),
      passthrough_unmapped_(passthrough_unmapped) {}

Result<rel::Value> CategoryGeneralizer::Generalize(const rel::Value& value,
                                                   int level) const {
  if (value.is_null() || level <= 0) return rel::Value::Null();
  if (static_cast<size_t>(level) >= level_maps_.size()) {
    return rel::Value::String(value.ToString());
  }
  PPDB_ASSIGN_OR_RETURN(std::string key, value.AsString());
  const LevelMap& map = level_maps_[static_cast<size_t>(level)];
  auto it = map.find(key);
  if (it == map.end()) {
    if (passthrough_unmapped_) return rel::Value::String("*");
    return Status::NotFound("value '" + key +
                            "' has no generalization at level " +
                            std::to_string(level));
  }
  return rel::Value::String(it->second);
}

GeneralizerRegistry::GeneralizerRegistry()
    : fallback_(std::make_unique<DefaultGeneralizer>()) {}

void GeneralizerRegistry::Register(
    std::string_view attribute,
    std::unique_ptr<ValueGeneralizer> generalizer) {
  by_attribute_[std::string(attribute)] = std::move(generalizer);
}

const ValueGeneralizer& GeneralizerRegistry::ForAttribute(
    std::string_view attribute) const {
  auto it = by_attribute_.find(attribute);
  if (it != by_attribute_.end()) return *it->second;
  return *fallback_;
}

GeneralizerRegistry BuildGeneralizers(
    const std::map<std::string, std::vector<double>>& numeric_generalizers) {
  GeneralizerRegistry registry;
  for (const auto& [attribute, widths] : numeric_generalizers) {
    registry.Register(attribute,
                      std::make_unique<NumericRangeGeneralizer>(widths));
  }
  return registry;
}

}  // namespace ppdb::audit

#ifndef PPDB_AUDIT_DP_RELEASE_H_
#define PPDB_AUDIT_DP_RELEASE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "relational/query.h"

namespace ppdb::audit {

/// Differentially private release of aggregate queries (the Laplace
/// mechanism of Dwork's work the paper cites as the external-risk
/// counterpart [2–4]).
///
/// The violation model governs *internal* use; when the house publishes
/// statistics to the world (visibility "world"), internal enforcement says
/// nothing about re-identification from the released numbers. DpRelease
/// adds the classical epsilon-DP guarantee on top: each released aggregate
/// gets Laplace(sensitivity/epsilon) noise.
struct DpReleaseOptions {
  /// Privacy budget per released aggregate value. Must be positive.
  double epsilon = 1.0;
  /// L1 sensitivity of each aggregate: how much one provider joining or
  /// leaving can move it. 1 for counts; for sums, the width of the datum's
  /// clamped range (the caller clamps).
  double sensitivity = 1.0;
};

/// One noisy released value.
struct DpAggregate {
  std::string name;
  double true_value = 0.0;
  double released_value = 0.0;
  double noise_scale = 0.0;  // sensitivity / epsilon.
};

/// Computes `aggs` (kCount/kSum only — kAvg/kMin/kMax have unbounded or
/// data-dependent sensitivity and are rejected) over `input`, then
/// perturbs each result with Laplace noise. Deterministic in `rng`.
Result<std::vector<DpAggregate>> ReleaseAggregates(
    const rel::ResultSet& input, const std::vector<rel::AggSpec>& aggs,
    const DpReleaseOptions& options, Rng& rng);

}  // namespace ppdb::audit

#endif  // PPDB_AUDIT_DP_RELEASE_H_

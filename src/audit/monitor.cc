#include "audit/monitor.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"

namespace ppdb::audit {

using privacy::PrivacyTuple;

AccessMonitor::AccessMonitor(const rel::Catalog* catalog,
                             const privacy::PrivacyConfig* config,
                             const GeneralizerRegistry* generalizers,
                             AuditLog* log, EnforcementMode mode,
                             const IngestLedger* ledger)
    : catalog_(catalog),
      config_(config),
      generalizers_(generalizers),
      log_(log),
      mode_(mode),
      ledger_(ledger) {}

Status AccessMonitor::CheckPolicyGate(const AccessRequest& request) const {
  if (request.attributes.empty()) {
    return Status::InvalidArgument("request names no attributes");
  }
  if (!config_->scales.visibility.IsValidLevel(request.visibility_level)) {
    return Status::InvalidArgument(
        "request visibility level " +
        std::to_string(request.visibility_level) + " is not on the scale");
  }
  if (!config_->purposes.NameOf(request.purpose).ok()) {
    return Status::InvalidArgument("request purpose id " +
                                   std::to_string(request.purpose) +
                                   " is not registered");
  }
  PPDB_ASSIGN_OR_RETURN(const rel::Table* table,
                        catalog_->GetTable(request.table));
  for (const std::string& attribute : request.attributes) {
    if (!table->schema().Contains(attribute)) {
      return Status::NotFound("table '" + request.table +
                              "' has no attribute '" + attribute + "'");
    }
    Result<PrivacyTuple> policy =
        config_->policy.Find(attribute, request.purpose);
    if (!policy.ok()) {
      return Status::PermissionDenied(
          "house policy declares no use of attribute '" + attribute +
          "' for this purpose; collection beyond stated policy is not "
          "permitted");
    }
    if (request.visibility_level > policy->visibility) {
      return Status::PermissionDenied(
          "request visibility " + std::to_string(request.visibility_level) +
          " exceeds the declared policy visibility " +
          std::to_string(policy->visibility) + " for attribute '" +
          attribute + "'");
    }
  }
  return Status::OK();
}

Result<rel::ResultSet> AccessMonitor::Execute(const AccessRequest& request) {
  Status gate = CheckPolicyGate(request);
  if (!gate.ok()) {
    log_->Append(AuditEvent{0, request.day, AuditEventKind::kRequestDenied,
                            request.requester, request.purpose, request.table,
                            std::nullopt, std::nullopt, gate.message()});
    return gate;
  }
  log_->Append(AuditEvent{0, request.day, AuditEventKind::kRequestGranted,
                          request.requester, request.purpose, request.table,
                          std::nullopt, std::nullopt, ""});

  PPDB_ASSIGN_OR_RETURN(const rel::Table* table,
                        catalog_->GetTable(request.table));

  // Output schema: one string column per requested attribute (generalized
  // representations are strings; see ValueGeneralizer).
  std::vector<rel::AttributeDef> defs;
  defs.reserve(request.attributes.size());
  for (const std::string& attribute : request.attributes) {
    defs.push_back(
        rel::AttributeDef{attribute, rel::DataType::kString, ""});
  }
  PPDB_ASSIGN_OR_RETURN(rel::Schema schema,
                        rel::Schema::Create(std::move(defs)));
  rel::ResultSet out{std::move(schema), {}};

  const int exact_granularity = config_->scales.granularity.max_level();

  for (const rel::Row& row : table->rows()) {
    rel::Row out_row{row.provider, {}};
    out_row.values.reserve(request.attributes.size());

    for (const std::string& attribute : request.attributes) {
      PPDB_ASSIGN_OR_RETURN(int j, table->schema().IndexOf(attribute));
      const rel::Value& cell = row.values[static_cast<size_t>(j)];
      // The gate guarantees this policy tuple exists.
      PPDB_ASSIGN_OR_RETURN(PrivacyTuple policy,
                            config_->policy.Find(attribute, request.purpose));
      PrivacyTuple pref = PrivacyTuple::ZeroFor(request.purpose);
      Result<const privacy::ProviderPreferences*> prefs =
          config_->preferences.Find(row.provider);
      if (prefs.ok()) {
        pref = prefs.value()->EffectivePreference(attribute, request.purpose);
      }

      auto log_cell = [&](AuditEventKind kind, std::string detail) {
        log_->Append(AuditEvent{0, request.day, kind, request.requester,
                                request.purpose, request.table, row.provider,
                                attribute, std::move(detail)});
      };

      if (cell.is_null()) {
        out_row.values.push_back(rel::Value::Null());
        continue;
      }

      // --- Retention ---------------------------------------------------
      if (ledger_ != nullptr) {
        Result<int64_t> age =
            ledger_->AgeInDays(request.table, row.provider, attribute,
                               request.day);
        if (age.ok()) {
          PPDB_ASSIGN_OR_RETURN(
              double policy_days,
              config_->scales.retention.MagnitudeOf(policy.retention));
          PPDB_ASSIGN_OR_RETURN(
              double pref_days,
              config_->scales.retention.MagnitudeOf(pref.retention));
          double age_days = static_cast<double>(age.value());
          if (age_days > policy_days) {
            // Beyond the house's own declared retention: never released,
            // in either mode (the sweeper should have purged it).
            log_cell(AuditEventKind::kCellSuppressed,
                     "age exceeds policy retention");
            out_row.values.push_back(rel::Value::Null());
            continue;
          }
          if (age_days > pref_days) {
            if (mode_ == EnforcementMode::kEnforce) {
              log_cell(AuditEventKind::kCellSuppressed,
                       "age exceeds preferred retention");
              out_row.values.push_back(rel::Value::Null());
              continue;
            }
            log_cell(AuditEventKind::kViolationObserved,
                     "retention: age " + std::to_string(age.value()) +
                         "d exceeds preference");
          }
        }
      }

      // --- Visibility ---------------------------------------------------
      if (request.visibility_level > pref.visibility) {
        if (mode_ == EnforcementMode::kEnforce) {
          log_cell(AuditEventKind::kCellSuppressed,
                   "visibility " + std::to_string(request.visibility_level) +
                       " exceeds preference " +
                       std::to_string(pref.visibility));
          out_row.values.push_back(rel::Value::Null());
          continue;
        }
        log_cell(AuditEventKind::kViolationObserved,
                 "visibility: level " +
                     std::to_string(request.visibility_level) +
                     " exceeds preference " +
                     std::to_string(pref.visibility));
      }

      // --- Granularity ----------------------------------------------------
      int release_level = policy.granularity;
      if (mode_ == EnforcementMode::kEnforce) {
        release_level = std::min(policy.granularity, pref.granularity);
      } else if (policy.granularity > pref.granularity) {
        log_cell(AuditEventKind::kViolationObserved,
                 "granularity: policy level " +
                     std::to_string(policy.granularity) +
                     " exceeds preference " +
                     std::to_string(pref.granularity));
      }
      PPDB_ASSIGN_OR_RETURN(
          rel::Value released,
          generalizers_->ForAttribute(attribute).Generalize(cell,
                                                            release_level));
      if (release_level < exact_granularity) {
        log_cell(AuditEventKind::kCellGeneralized,
                 "released at granularity level " +
                     std::to_string(release_level));
      }
      out_row.values.push_back(std::move(released));
    }
    out.rows.push_back(std::move(out_row));
  }
  return out;
}

}  // namespace ppdb::audit

#ifndef PPDB_AUDIT_GENERALIZER_H_
#define PPDB_AUDIT_GENERALIZER_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "relational/value.h"

namespace ppdb::audit {

/// Maps a datum to the representation appropriate for a granularity level.
///
/// Granularity is the taxonomy dimension that "defines the specificity of
/// data which will be revealed"; an earlier study the paper builds on [22]
/// showed providers share more willingly "at coarser granularity rather
/// than a specific atomic value". A generalizer is the operational side of
/// that dimension: level 0 always suppresses (returns null), the scale's
/// top level reveals the exact value, and intermediate levels reveal
/// progressively coarser renderings.
///
/// Generalized output is typed as a string (or null): coarsening changes
/// the domain, and pretending a range is still an int64 would let
/// arithmetic silently treat "[60, 70)" as a number.
class ValueGeneralizer {
 public:
  virtual ~ValueGeneralizer() = default;

  /// Returns the representation of `value` at granularity `level`.
  /// Null input stays null at every level.
  virtual Result<rel::Value> Generalize(const rel::Value& value,
                                        int level) const = 0;
};

/// Generalizer for numeric attributes: suppression at level 0, an
/// existence marker at levels with non-positive width, half-open bins
/// "[lo, hi)" at levels with a positive width, and the exact rendering at
/// levels beyond the configured widths.
///
///   NumericRangeGeneralizer g({0.0, 0.0, 10.0});
///   g.Generalize(Int64(67), 0) -> NULL        (suppressed)
///   g.Generalize(Int64(67), 1) -> "*"         (existential)
///   g.Generalize(Int64(67), 2) -> "[60, 70)"  (partial)
///   g.Generalize(Int64(67), 3) -> "67"        (specific)
class NumericRangeGeneralizer final : public ValueGeneralizer {
 public:
  /// `level_widths[level]` is the bin width at that level; levels at or
  /// beyond the vector's size are exact. Index 0 is ignored (level 0
  /// suppresses unconditionally).
  explicit NumericRangeGeneralizer(std::vector<double> level_widths);

  Result<rel::Value> Generalize(const rel::Value& value,
                                int level) const override;

 private:
  std::vector<double> level_widths_;
};

/// Generalizer for categorical (string) attributes using explicit
/// per-level mappings, e.g. city -> region -> country.
///
/// `level_maps[level]` maps exact values to their level-`level`
/// representation; levels at or beyond the vector are exact; level 0
/// suppresses. Values missing from a level's map error with kNotFound
/// unless `passthrough_unmapped` is set (then they generalize to "*").
class CategoryGeneralizer final : public ValueGeneralizer {
 public:
  using LevelMap = std::map<std::string, std::string>;

  CategoryGeneralizer(std::vector<LevelMap> level_maps,
                      bool passthrough_unmapped);

  Result<rel::Value> Generalize(const rel::Value& value,
                                int level) const override;

 private:
  std::vector<LevelMap> level_maps_;
  bool passthrough_unmapped_;
};

/// Per-attribute registry of generalizers with a shared fallback.
///
/// The fallback (used for attributes without a registered generalizer)
/// suppresses at level 0, returns "*" at level 1, and the exact rendering
/// at any higher level — the weakest sensible interpretation of a
/// granularity scale.
class GeneralizerRegistry {
 public:
  GeneralizerRegistry();

  GeneralizerRegistry(GeneralizerRegistry&&) noexcept = default;
  GeneralizerRegistry& operator=(GeneralizerRegistry&&) noexcept = default;
  GeneralizerRegistry(const GeneralizerRegistry&) = delete;
  GeneralizerRegistry& operator=(const GeneralizerRegistry&) = delete;

  /// Registers (or replaces) the generalizer for `attribute`.
  void Register(std::string_view attribute,
                std::unique_ptr<ValueGeneralizer> generalizer);

  /// The generalizer for `attribute` (the fallback when unregistered).
  const ValueGeneralizer& ForAttribute(std::string_view attribute) const;

 private:
  std::map<std::string, std::unique_ptr<ValueGeneralizer>, std::less<>>
      by_attribute_;
  std::unique_ptr<ValueGeneralizer> fallback_;
};

/// Builds a registry from the declarative `numeric_generalizers` of a
/// privacy config: each entry becomes a NumericRangeGeneralizer;
/// attributes without an entry use the registry fallback.
GeneralizerRegistry BuildGeneralizers(
    const std::map<std::string, std::vector<double>>& numeric_generalizers);

}  // namespace ppdb::audit

#endif  // PPDB_AUDIT_GENERALIZER_H_

#ifndef PPDB_SERVER_NET_POLLER_H_
#define PPDB_SERVER_NET_POLLER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace ppdb::server::net {

/// Level-triggered readiness notification over a set of fds — the thin
/// waist between the TCP server's event loop and epoll(7) / poll(2).
///
/// Both backends expose identical level-triggered semantics: an fd with
/// unread input (or writable space) is reported on every Wait until the
/// condition clears, so a handler that processes less than everything is
/// re-invoked instead of wedged. `kError`/`kHangup` conditions are always
/// reported regardless of the registered interest.
///
/// Not thread-safe: the owning event loop is the only caller.
class Poller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    /// Error or hang-up condition (EPOLLERR/EPOLLHUP, POLLERR/POLLHUP);
    /// the handler should read to collect the error and close.
    bool error = false;
  };

  virtual ~Poller() = default;

  /// Name of the backend: "epoll" or "poll".
  virtual std::string_view name() const = 0;

  /// Registers `fd` with the given interest set.
  virtual Status Add(int fd, bool want_read, bool want_write) = 0;

  /// Replaces the interest set of a registered fd.
  virtual Status Update(int fd, bool want_read, bool want_write) = 0;

  /// Deregisters `fd`. Must be called before the fd is closed.
  virtual Status Remove(int fd) = 0;

  /// Blocks up to `timeout_ms` (-1 = forever, 0 = poll) and appends ready
  /// events to `events` (cleared first). EINTR is retried internally.
  virtual Status Wait(int timeout_ms, std::vector<Event>* events) = 0;

  /// The best backend for this platform: epoll on Linux, poll elsewhere.
  /// `force_poll` selects the portable fallback explicitly (tests run both
  /// backends; PPDB_NET_POLLER=poll forces it process-wide).
  static std::unique_ptr<Poller> Create(bool force_poll = false);
};

}  // namespace ppdb::server::net

#endif  // PPDB_SERVER_NET_POLLER_H_

#ifndef PPDB_SERVER_NET_CONN_METRICS_H_
#define PPDB_SERVER_NET_CONN_METRICS_H_

#include <string_view>

#include "obs/metrics.h"

namespace ppdb::server::net {

/// Why a connection left the server. Every close is attributed to exactly
/// one reason and counted in `ppdb_server_conn_closed_total{reason=...}`.
enum class CloseReason {
  /// Orderly shutdown: the peer half-closed and everything owed was
  /// flushed.
  kEof = 0,
  /// No bytes arrived within the idle timeout (slowloris defense).
  kIdleTimeout,
  /// The peer stopped consuming: pending output made no progress within
  /// the write-stall timeout.
  kWriteStall,
  /// ECONNRESET from the peer.
  kReset,
  /// EPIPE writing to a half-closed connection.
  kBrokenPipe,
  /// Any other socket-level error.
  kIoError,
  /// Pending output exceeded the hard per-connection limit — the peer is
  /// not reading and buffering more would be unbounded.
  kOutputOverflow,
  /// Server drain closed the connection after flushing what it could.
  kDrain,
};
inline constexpr int kNumCloseReasons = 8;

/// Canonical label value for a close reason, e.g. "idle_timeout".
std::string_view CloseReasonName(CloseReason reason);

/// The `ppdb_server_conn_*` instrument batch, registered once on first use
/// (the usual function-local-static idiom; see `BrokerMetrics`). `Serve`
/// touches it too so the families export (at zero) from pipe-only
/// processes — `tools/check_metrics_docs.sh` scrapes that path.
struct ConnMetrics {
  obs::Counter* accepted;
  obs::Counter* accept_soft_errors;
  obs::Counter* accept_throttled;
  obs::Gauge* active;
  obs::Counter* bytes_read;
  obs::Counter* bytes_written;
  obs::Counter* requests;
  obs::Counter* oversized_lines;
  obs::Counter* backpressure_pauses;
  obs::Counter* closed[kNumCloseReasons];
  obs::Histogram* lifetime_seconds;

  static ConnMetrics& Get();
};

}  // namespace ppdb::server::net

#endif  // PPDB_SERVER_NET_CONN_METRICS_H_

#include "server/net/transport.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <thread>
#include <unistd.h>

namespace ppdb::server::net {

namespace {

std::string ErrnoText(const char* what, int err) {
  return std::string(what) + ": " + std::strerror(err);
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(ErrnoText("fcntl(O_NONBLOCK)", errno));
  }
  return Status::OK();
}

}  // namespace

std::string_view IoResultKindName(IoResult::Kind kind) {
  switch (kind) {
    case IoResult::Kind::kOk: return "ok";
    case IoResult::Kind::kWouldBlock: return "would_block";
    case IoResult::Kind::kEof: return "eof";
    case IoResult::Kind::kReset: return "reset";
    case IoResult::Kind::kBrokenPipe: return "broken_pipe";
    case IoResult::Kind::kError: return "error";
  }
  return "unknown";
}

Result<int> RealTransport::Listen(const std::string& host, uint16_t port,
                                  int backlog) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string node = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, node.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse listen address '" + host +
                                   "' (IPv4 dotted quad or 'localhost')");
  }

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal(ErrnoText("socket", errno));

  int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  Status nonblocking = SetNonBlocking(fd);
  if (!nonblocking.ok()) {
    ::close(fd);
    return nonblocking;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status failed = Status::Unavailable(
        ErrnoText(("bind " + host + ":" + std::to_string(port)).c_str(),
                  errno));
    ::close(fd);
    return failed;
  }
  if (::listen(fd, backlog) < 0) {
    Status failed = Status::Internal(ErrnoText("listen", errno));
    ::close(fd);
    return failed;
  }
  return fd;
}

Result<uint16_t> RealTransport::BoundPort(int listen_fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return Status::Internal(ErrnoText("getsockname", errno));
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

AcceptResult RealTransport::Accept(int listen_fd) {
  AcceptResult result;
  for (;;) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      Status nonblocking = SetNonBlocking(fd);
      if (!nonblocking.ok()) {
        ::close(fd);
        result.kind = AcceptResult::Kind::kSoftError;
        result.detail = nonblocking.message();
        return result;
      }
      int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      result.kind = AcceptResult::Kind::kAccepted;
      result.fd = fd;
      return result;
    }
    const int err = errno;
    if (err == EINTR) continue;
    if (err == EAGAIN || err == EWOULDBLOCK) {
      result.kind = AcceptResult::Kind::kWouldBlock;
      return result;
    }
    if (err == EMFILE || err == ENFILE || err == ECONNABORTED ||
        err == ENOBUFS || err == ENOMEM) {
      result.kind = AcceptResult::Kind::kSoftError;
      result.detail = ErrnoText("accept", err);
      return result;
    }
    result.kind = AcceptResult::Kind::kError;
    result.detail = ErrnoText("accept", err);
    return result;
  }
}

IoResult RealTransport::Read(int fd, char* buffer, size_t capacity) {
  IoResult result;
  for (;;) {
    ssize_t n = ::recv(fd, buffer, capacity, 0);
    if (n > 0) {
      result.kind = IoResult::Kind::kOk;
      result.bytes = static_cast<size_t>(n);
      return result;
    }
    if (n == 0) {
      result.kind = IoResult::Kind::kEof;
      return result;
    }
    const int err = errno;
    if (err == EINTR) continue;
    if (err == EAGAIN || err == EWOULDBLOCK) {
      result.kind = IoResult::Kind::kWouldBlock;
      return result;
    }
    if (err == ECONNRESET) {
      result.kind = IoResult::Kind::kReset;
      return result;
    }
    result.kind = IoResult::Kind::kError;
    result.detail = ErrnoText("recv", err);
    return result;
  }
}

IoResult RealTransport::Write(int fd, const char* data, size_t size) {
  IoResult result;
  for (;;) {
    // MSG_NOSIGNAL: a peer that hung up mid-response must surface as
    // kBrokenPipe, never as a process-killing SIGPIPE.
    ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n >= 0) {
      result.kind = IoResult::Kind::kOk;
      result.bytes = static_cast<size_t>(n);
      return result;
    }
    const int err = errno;
    if (err == EINTR) continue;
    if (err == EAGAIN || err == EWOULDBLOCK) {
      result.kind = IoResult::Kind::kWouldBlock;
      return result;
    }
    if (err == EPIPE) {
      result.kind = IoResult::Kind::kBrokenPipe;
      return result;
    }
    if (err == ECONNRESET) {
      result.kind = IoResult::Kind::kReset;
      return result;
    }
    result.kind = IoResult::Kind::kError;
    result.detail = ErrnoText("send", err);
    return result;
  }
}

void RealTransport::Close(int fd) {
  // POSIX: close is not retried on EINTR — the fd is released either way.
  (void)::close(fd);
}

RealTransport& GetRealTransport() {
  static RealTransport transport;
  return transport;
}

FaultInjectingTransport::FaultInjectingTransport(Transport* base, Rng rng,
                                                 TransportFaultOptions options)
    : base_(base), rng_(rng), options_(options) {}

Result<int> FaultInjectingTransport::Listen(const std::string& host,
                                            uint16_t port, int backlog) {
  Result<int> fd = base_->Listen(host, port, backlog);
  if (fd.ok()) ++open_fds_;
  return fd;
}

Result<uint16_t> FaultInjectingTransport::BoundPort(int listen_fd) {
  return base_->BoundPort(listen_fd);
}

AcceptResult FaultInjectingTransport::Accept(int listen_fd) {
  if (options_.accept_error > 0.0 && rng_.NextBool(options_.accept_error)) {
    ++counters_.accept_errors;
    AcceptResult result;
    result.kind = AcceptResult::Kind::kSoftError;
    result.detail = "accept: injected ENFILE (file table overflow)";
    return result;
  }
  AcceptResult result = base_->Accept(listen_fd);
  if (result.kind == AcceptResult::Kind::kAccepted) ++open_fds_;
  return result;
}

IoResult FaultInjectingTransport::Read(int fd, char* buffer,
                                       size_t capacity) {
  if (options_.latency.count() > 0) {
    std::this_thread::sleep_for(options_.latency);
  }
  if (options_.reset_read > 0.0 && rng_.NextBool(options_.reset_read)) {
    ++counters_.resets;
    return IoResult{IoResult::Kind::kReset, 0, {}};
  }
  if (options_.eagain_read > 0.0 && rng_.NextBool(options_.eagain_read)) {
    ++counters_.eagain_reads;
    return IoResult{IoResult::Kind::kWouldBlock, 0, {}};
  }
  if (capacity > 1 && options_.short_read > 0.0 &&
      rng_.NextBool(options_.short_read)) {
    ++counters_.short_reads;
    capacity = 1;
  }
  return base_->Read(fd, buffer, capacity);
}

IoResult FaultInjectingTransport::Write(int fd, const char* data,
                                        size_t size) {
  if (options_.latency.count() > 0) {
    std::this_thread::sleep_for(options_.latency);
  }
  if (options_.epipe_write > 0.0 && rng_.NextBool(options_.epipe_write)) {
    ++counters_.epipes;
    return IoResult{IoResult::Kind::kBrokenPipe, 0, {}};
  }
  if (options_.eagain_write > 0.0 && rng_.NextBool(options_.eagain_write)) {
    ++counters_.eagain_writes;
    return IoResult{IoResult::Kind::kWouldBlock, 0, {}};
  }
  if (size > 1 && options_.short_write > 0.0 &&
      rng_.NextBool(options_.short_write)) {
    ++counters_.short_writes;
    size = 1;
  }
  return base_->Write(fd, data, size);
}

void FaultInjectingTransport::Close(int fd) {
  --open_fds_;
  base_->Close(fd);
}

}  // namespace ppdb::server::net

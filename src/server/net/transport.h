#ifndef PPDB_SERVER_NET_TRANSPORT_H_
#define PPDB_SERVER_NET_TRANSPORT_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/rng.h"

namespace ppdb::server::net {

/// Outcome of one non-blocking read or write attempt.
///
/// The socket layer never surfaces raw errno values to its callers: every
/// failure mode a real network produces is collapsed into one of these
/// kinds, which is also the contract `FaultInjectingTransport` fakes — so a
/// connection state machine that handles every `Kind` is, by construction,
/// prepared for the real thing.
struct IoResult {
  enum class Kind {
    /// `bytes` were transferred (possibly fewer than asked — short I/O).
    kOk,
    /// The socket would block (EAGAIN/EWOULDBLOCK); retry on readiness.
    kWouldBlock,
    /// Orderly shutdown by the peer (read side only).
    kEof,
    /// Connection reset by the peer (ECONNRESET); the fd is useless.
    kReset,
    /// Write to a half-closed connection (EPIPE); the fd is useless.
    kBrokenPipe,
    /// Anything else; `detail` carries the errno text.
    kError,
  };

  Kind kind = Kind::kOk;
  size_t bytes = 0;     // meaningful for kOk only
  std::string detail;   // meaningful for kError only

  bool ok() const { return kind == Kind::kOk; }
};

/// Canonical lower-case name of an IoResult kind, e.g. "reset".
std::string_view IoResultKindName(IoResult::Kind kind);

/// Outcome of one non-blocking accept attempt.
struct AcceptResult {
  enum class Kind {
    /// `fd` is a connected, non-blocking socket.
    kAccepted,
    /// No pending connection; retry on listener readiness.
    kWouldBlock,
    /// A transient accept failure — ENFILE/EMFILE (fd exhaustion) or
    /// ECONNABORTED (peer gave up in the backlog). The listener is still
    /// healthy; the server should throttle and retry.
    kSoftError,
    /// The listener itself is broken; `detail` carries the errno text.
    kError,
  };

  Kind kind = Kind::kWouldBlock;
  int fd = -1;
  std::string detail;
};

/// The handful of socket operations the TCP serving layer is built on,
/// mirroring `storage::FileSystem`: production code talks to
/// `RealTransport`, robustness tests substitute `FaultInjectingTransport`
/// and replay every failure mode — short I/O, EAGAIN storms, resets,
/// EPIPE, accept-time fd exhaustion, latency — deterministically from a
/// seed.
///
/// All fds handed out are non-blocking. Implementations are EINTR-safe
/// (interrupted calls are retried internally) and never raise SIGPIPE
/// (writes use MSG_NOSIGNAL).
///
/// Thread safety: a Transport may be shared across threads, but each fd
/// must only be driven from one thread at a time — the TCP server drives
/// everything from its event-loop thread.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Creates a non-blocking listening socket bound to `host:port`
  /// (port 0 binds an ephemeral port — see `BoundPort`). Returns the
  /// listening fd.
  virtual Result<int> Listen(const std::string& host, uint16_t port,
                             int backlog) = 0;

  /// The locally bound port of a listening fd.
  virtual Result<uint16_t> BoundPort(int listen_fd) = 0;

  /// Accepts one pending connection, if any.
  virtual AcceptResult Accept(int listen_fd) = 0;

  /// Reads up to `capacity` bytes into `buffer`.
  virtual IoResult Read(int fd, char* buffer, size_t capacity) = 0;

  /// Writes up to `size` bytes of `data`; short writes are normal.
  virtual IoResult Write(int fd, const char* data, size_t size) = 0;

  /// Closes `fd`. Idempotence is not required of callers — close exactly
  /// once, like the syscall.
  virtual void Close(int fd) = 0;
};

/// Production backend over BSD sockets: non-blocking fds (SOCK_NONBLOCK /
/// fcntl), SO_REUSEADDR + TCP_NODELAY, recv/send with EINTR retry and
/// MSG_NOSIGNAL, IPv4 dotted-quad (or "localhost") addresses.
class RealTransport : public Transport {
 public:
  Result<int> Listen(const std::string& host, uint16_t port,
                     int backlog) override;
  Result<uint16_t> BoundPort(int listen_fd) override;
  AcceptResult Accept(int listen_fd) override;
  IoResult Read(int fd, char* buffer, size_t capacity) override;
  IoResult Write(int fd, const char* data, size_t size) override;
  void Close(int fd) override;
};

/// Process-wide shared `RealTransport` (it is stateless).
RealTransport& GetRealTransport();

/// Per-operation fault probabilities for `FaultInjectingTransport`. Each
/// probability is evaluated independently per call against the seeded Rng,
/// so a (options, seed, op-sequence) triple replays byte-for-byte.
struct TransportFaultOptions {
  /// P(a Read is truncated to 1 byte) — exercises partial-read reassembly.
  double short_read = 0.0;
  /// P(a Write is truncated to 1 byte) — exercises partial-write resume.
  double short_write = 0.0;
  /// P(a Read spuriously returns kWouldBlock without touching the socket).
  double eagain_read = 0.0;
  /// P(a Write spuriously returns kWouldBlock).
  double eagain_write = 0.0;
  /// P(a Read reports kReset). The underlying fd is left open — the server
  /// is expected to Close() it, which is exactly what the FD-leak
  /// accounting tests verify.
  double reset_read = 0.0;
  /// P(a Write reports kBrokenPipe).
  double epipe_write = 0.0;
  /// P(an Accept reports kSoftError as ENFILE-style fd exhaustion).
  double accept_error = 0.0;
  /// Injected latency added to every Read/Write (slow-NIC simulation).
  std::chrono::microseconds latency{0};
};

/// Deterministic fault-injecting wrapper around another `Transport`, the
/// socket-layer sibling of `storage::FaultInjectingFileSystem`. Faults are
/// injected *before* the real operation (the bytes stay in the kernel
/// buffers), so no data is ever lost by injection itself — whatever the
/// connection machine does with the fault is what the test observes.
class FaultInjectingTransport : public Transport {
 public:
  /// Wraps `base` (not owned; must outlive this object).
  FaultInjectingTransport(Transport* base, Rng rng,
                          TransportFaultOptions options);

  /// Replaces the fault plan (counters keep accumulating).
  void set_options(const TransportFaultOptions& options) {
    options_ = options;
  }

  /// Faults injected since construction, by kind.
  struct Counters {
    int64_t short_reads = 0;
    int64_t short_writes = 0;
    int64_t eagain_reads = 0;
    int64_t eagain_writes = 0;
    int64_t resets = 0;
    int64_t epipes = 0;
    int64_t accept_errors = 0;
  };
  const Counters& counters() const { return counters_; }

  /// Fds currently open through this transport (opened - closed); the
  /// FD-leak oracle for the fault-matrix tests.
  int64_t open_fds() const { return open_fds_; }

  Result<int> Listen(const std::string& host, uint16_t port,
                     int backlog) override;
  Result<uint16_t> BoundPort(int listen_fd) override;
  AcceptResult Accept(int listen_fd) override;
  IoResult Read(int fd, char* buffer, size_t capacity) override;
  IoResult Write(int fd, const char* data, size_t size) override;
  void Close(int fd) override;

 private:
  Transport* base_;
  Rng rng_;
  TransportFaultOptions options_;
  Counters counters_;
  int64_t open_fds_ = 0;
};

}  // namespace ppdb::server::net

#endif  // PPDB_SERVER_NET_TRANSPORT_H_

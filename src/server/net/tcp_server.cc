#include "server/net/tcp_server.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <cerrno>

#include "common/string_util.h"
#include "obs/trace.h"

namespace ppdb::server::net {

namespace {

/// Per-readable-event read budget: enough to drain a normal client in one
/// event, bounded so one firehose connection cannot starve its neighbors
/// under level-triggered readiness (the poller re-reports what is left).
constexpr int kMaxReadsPerEvent = 4;
constexpr size_t kReadChunk = 16 * 1024;

/// The loop never sleeps longer than this, so timer checks (idle,
/// write-stall, listener backoff) have a bounded worst-case lag even if a
/// deadline computation misses something.
constexpr int kMaxWaitMs = 500;

int DeadlineTimeoutMs(const Deadline& deadline) {
  auto remaining = deadline.Remaining();
  if (remaining > std::chrono::milliseconds(kMaxWaitMs)) return kMaxWaitMs;
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
                .count();
  return std::max<int>(1, static_cast<int>(ms));
}

}  // namespace

TcpServer::TcpServer(Options options, DatabaseService& service,
                     RequestBroker& broker)
    : options_(options),
      service_(service),
      broker_(broker),
      transport_(options.transport != nullptr ? options.transport
                                              : &GetRealTransport()) {
  options_.max_connections = std::max<size_t>(1, options_.max_connections);
  options_.output_limit =
      std::max(options_.output_limit, options_.output_high_water);
}

TcpServer::~TcpServer() {
  // RunDrain closes connections, the listener, and the wake pipe's read
  // end; the write end is always closed here so that Shutdown() from
  // another thread can never race its write() against the close. The rest
  // only covers a server destroyed after Start() without Serve() (e.g. a
  // failed setup path in tests).
  for (auto& [id, conn] : conns_) transport_->Close(conn.fd);
  if (listen_fd_ >= 0) transport_->Close(listen_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  int wake_write = wake_write_fd_.load();
  if (wake_write >= 0) ::close(wake_write);
}

Status TcpServer::Start() {
  if (started_) return Status::OK();

  Result<int> listen_fd =
      transport_->Listen(options_.host, options_.port, options_.backlog);
  if (!listen_fd.ok()) return listen_fd.status();
  listen_fd_ = listen_fd.value();

  Result<uint16_t> port = transport_->BoundPort(listen_fd_);
  if (!port.ok()) {
    transport_->Close(listen_fd_);
    listen_fd_ = -1;
    return port.status();
  }
  port_ = port.value();

  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) < 0) {
    transport_->Close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(std::string("pipe2: ") + std::strerror(errno));
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_.store(pipe_fds[1]);

  poller_ = Poller::Create(options_.force_poll_backend);
  Status added = poller_->Add(listen_fd_, /*want_read=*/true,
                              /*want_write=*/false);
  if (added.ok()) {
    added = poller_->Add(wake_read_fd_, /*want_read=*/true,
                         /*want_write=*/false);
  }
  if (!added.ok()) return added;

  // Touch the metric families now so a scrape taken before any connection
  // already exports every ppdb_server_conn_* family at zero.
  ConnMetrics::Get();

  started_ = true;
  return Status::OK();
}

std::string_view TcpServer::poller_name() const {
  return poller_ != nullptr ? poller_->name() : std::string_view("none");
}

void TcpServer::Shutdown() {
  shutdown_requested_.store(true);
  WakeLoop();
}

void TcpServer::WakeLoop() {
  int fd = wake_write_fd_.load();
  if (fd < 0) return;
  char byte = 1;
  // EAGAIN means the pipe already holds unread wake bytes — the loop will
  // wake regardless, so dropping this byte is correct, not a failure.
  ssize_t ignored = ::write(fd, &byte, 1);
  (void)ignored;
}

void TcpServer::DrainWakePipe() {
  char buffer[256];
  while (::read(wake_read_fd_, buffer, sizeof(buffer)) > 0) {
  }
}

Status TcpServer::Serve() {
  Status start = Start();
  if (!start.ok()) return start;

  std::vector<Poller::Event> events;
  while (!draining_) {
    Status waited = poller_->Wait(ComputeTimeoutMs(), &events);
    if (!waited.ok()) return waited;
    for (const Poller::Event& event : events) {
      if (event.fd == wake_read_fd_) {
        DrainWakePipe();
      } else if (event.fd == listen_fd_) {
        AcceptReady();
      } else {
        HandleConnEvent(event.fd, event);
      }
      if (draining_) break;
    }
    RouteCompletions();
    CheckTimers();
    ReapDoomed();
    if (shutdown_requested_.load()) draining_ = true;
  }
  return RunDrain();
}

int TcpServer::ComputeTimeoutMs() const {
  int timeout = kMaxWaitMs;
  if (listener_paused_ && !listener_paused_for_cap_) {
    timeout = std::min(timeout, DeadlineTimeoutMs(listener_backoff_));
  }
  for (const auto& [id, conn] : conns_) {
    if (options_.idle_timeout.count() > 0 && !conn.peer_eof) {
      timeout = std::min(timeout, DeadlineTimeoutMs(conn.idle));
    }
    if (conn.write_stall_armed) {
      timeout = std::min(timeout, DeadlineTimeoutMs(conn.write_stall));
    }
  }
  return timeout;
}

void TcpServer::AcceptReady() {
  ConnMetrics& metrics = ConnMetrics::Get();
  for (;;) {
    if (conns_.size() >= options_.max_connections) {
      metrics.accept_throttled->Add();
      PauseListener(std::chrono::milliseconds(0), /*for_cap=*/true);
      return;
    }
    AcceptResult accepted = transport_->Accept(listen_fd_);
    switch (accepted.kind) {
      case AcceptResult::Kind::kWouldBlock:
        return;
      case AcceptResult::Kind::kSoftError:
        // ENFILE/EMFILE/ECONNABORTED: the listener is fine but accepting
        // now would spin. Back off briefly; pending connections keep in
        // the backlog.
        metrics.accept_soft_errors->Add();
        PauseListener(options_.accept_backoff, /*for_cap=*/false);
        return;
      case AcceptResult::Kind::kError:
        // The listener itself is broken — drain what we have.
        draining_ = true;
        return;
      case AcceptResult::Kind::kAccepted:
        break;
    }

    const int64_t conn_id = ++next_conn_id_;
    Connection& conn = conns_[conn_id];
    conn.fd = accepted.fd;
    conn.id = conn_id;
    conn.opened_at = std::chrono::steady_clock::now();
    if (options_.idle_timeout.count() > 0) {
      conn.idle = Deadline::After(options_.idle_timeout);
    }
    fd_to_conn_[conn.fd] = conn_id;
    Status added = poller_->Add(conn.fd, /*want_read=*/true,
                                /*want_write=*/false);
    if (!added.ok()) {
      fd_to_conn_.erase(conn.fd);
      transport_->Close(conn.fd);
      conns_.erase(conn_id);
      continue;
    }
    metrics.accepted->Add();
    metrics.active->Set(static_cast<double>(conns_.size()));
  }
}

void TcpServer::PauseListener(std::chrono::milliseconds backoff,
                              bool for_cap) {
  if (!listener_paused_) {
    (void)poller_->Update(listen_fd_, /*want_read=*/false,
                          /*want_write=*/false);
  }
  listener_paused_ = true;
  listener_paused_for_cap_ = for_cap;
  if (!for_cap) listener_backoff_ = Deadline::After(backoff);
}

void TcpServer::MaybeResumeListener() {
  if (!listener_paused_ || listen_fd_ < 0) return;
  if (listener_paused_for_cap_ &&
      conns_.size() >= options_.max_connections) {
    return;
  }
  if (!listener_paused_for_cap_ && !listener_backoff_.Expired()) return;
  listener_paused_ = false;
  listener_paused_for_cap_ = false;
  (void)poller_->Update(listen_fd_, /*want_read=*/true,
                        /*want_write=*/false);
}

TcpServer::Connection* TcpServer::FindConn(int64_t conn_id) {
  auto it = conns_.find(conn_id);
  return it == conns_.end() ? nullptr : &it->second;
}

void TcpServer::HandleConnEvent(int fd, const Poller::Event& event) {
  auto it = fd_to_conn_.find(fd);
  if (it == fd_to_conn_.end()) return;  // closed earlier this iteration
  Connection* conn = FindConn(it->second);
  if (conn == nullptr || conn->doomed) return;
  // On error/hangup fall through to the read path: it collects the
  // pending error (reset, EOF) and attributes the close precisely.
  if (event.writable) {
    TryFlush(*conn);
    if (!conn->doomed) MaybeFinish(*conn);
  }
  if (conn->doomed) return;
  if (event.readable || event.error) HandleReadable(*conn);
}

void TcpServer::HandleReadable(Connection& conn) {
  ConnMetrics& metrics = ConnMetrics::Get();
  char buffer[kReadChunk];
  for (int i = 0; i < kMaxReadsPerEvent; ++i) {
    if (conn.doomed || conn.reading_paused || conn.peer_eof || draining_) {
      break;
    }
    IoResult io = transport_->Read(conn.fd, buffer, sizeof(buffer));
    if (io.kind == IoResult::Kind::kOk) {
      conn.bytes_in += static_cast<int64_t>(io.bytes);
      metrics.bytes_read->Add(static_cast<int64_t>(io.bytes));
      if (options_.idle_timeout.count() > 0) {
        conn.idle = Deadline::After(options_.idle_timeout);
      }
      conn.framer.Feed(std::string_view(buffer, io.bytes));
      ProcessLines(conn);
      continue;
    }
    if (io.kind == IoResult::Kind::kWouldBlock) break;
    if (io.kind == IoResult::Kind::kEof) {
      conn.peer_eof = true;
      conn.framer.Finish();
      ProcessLines(conn);
      break;
    }
    Doom(conn, io.kind == IoResult::Kind::kReset ? CloseReason::kReset
                                                 : CloseReason::kIoError);
    return;
  }
  if (!conn.doomed) {
    TryFlush(conn);
    if (!conn.doomed) {
      MaybeFinish(conn);
      if (!conn.doomed) UpdateInterest(conn);
    }
  }
}

void TcpServer::ProcessLines(Connection& conn) {
  ConnMetrics& metrics = ConnMetrics::Get();
  LineFramer::Line line;
  while (!conn.doomed && !draining_ && conn.framer.Next(&line)) {
    if (line.oversized) {
      metrics.oversized_lines->Add();
      AppendResponse(conn, ++conn.next_request_id,
                     Response{LineTooLongError(), {}});
      continue;
    }
    std::string_view trimmed = TrimWhitespace(line.text);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const int64_t request_id = ++conn.next_request_id;
    ++conn.requests;
    metrics.requests->Add();

    Result<Request> parsed = ParseRequest(trimmed);
    if (!parsed.ok()) {
      AppendResponse(conn, request_id, Response{parsed.status(), {}});
      continue;
    }
    Request request = std::move(parsed).value();
    if (request.kind == RequestKind::kDrain) {
      drain_requests_.emplace_back(conn.id, request_id);
      draining_ = true;
      return;
    }
    const Lane lane = LaneForRequest(request);
    const auto deadline_budget = request.deadline;
    const int64_t conn_id = conn.id;
    Status admitted = broker_.Submit(
        lane, deadline_budget,
        MakeRequestWork(service_, broker_, std::move(request)),
        [this, conn_id, request_id](const Response& response) {
          // Broker worker thread: hand the response to the loop.
          {
            MutexLock lock(completions_mu_);
            completions_.push_back({conn_id, request_id, response});
          }
          WakeLoop();
        });
    if (!admitted.ok()) {
      // Shed (queue full / draining): kUnavailable with retry_after_ms.
      AppendResponse(conn, request_id, Response{std::move(admitted), {}});
    } else {
      ++conn.in_flight;
    }
  }
}

void TcpServer::AppendResponse(Connection& conn, int64_t request_id,
                               const Response& response) {
  if (conn.doomed) return;
  conn.output += RenderResponse(request_id, response);
  if (conn.output.size() - conn.output_offset > options_.output_limit) {
    Doom(conn, CloseReason::kOutputOverflow);
    return;
  }
  if (!conn.write_stall_armed &&
      options_.write_stall_timeout.count() > 0) {
    conn.write_stall = Deadline::After(options_.write_stall_timeout);
    conn.write_stall_armed = true;
  }
}

void TcpServer::TryFlush(Connection& conn) {
  ConnMetrics& metrics = ConnMetrics::Get();
  while (conn.output_offset < conn.output.size()) {
    IoResult io =
        transport_->Write(conn.fd, conn.output.data() + conn.output_offset,
                          conn.output.size() - conn.output_offset);
    if (io.kind == IoResult::Kind::kOk && io.bytes > 0) {
      conn.output_offset += io.bytes;
      conn.bytes_out += static_cast<int64_t>(io.bytes);
      metrics.bytes_written->Add(static_cast<int64_t>(io.bytes));
      // Progress: re-arm the stall guard.
      if (options_.write_stall_timeout.count() > 0) {
        conn.write_stall = Deadline::After(options_.write_stall_timeout);
      }
      continue;
    }
    if (io.kind == IoResult::Kind::kWouldBlock ||
        (io.kind == IoResult::Kind::kOk && io.bytes == 0)) {
      break;
    }
    switch (io.kind) {
      case IoResult::Kind::kBrokenPipe:
        Doom(conn, CloseReason::kBrokenPipe);
        return;
      case IoResult::Kind::kReset:
        Doom(conn, CloseReason::kReset);
        return;
      default:
        Doom(conn, CloseReason::kIoError);
        return;
    }
  }
  if (conn.output_offset == conn.output.size()) {
    conn.output.clear();
    conn.output_offset = 0;
    conn.write_stall_armed = false;
  } else if (conn.output_offset > kReadChunk &&
             conn.output_offset >= conn.output.size() / 2) {
    // Compact once the written prefix dominates so a long-lived slow
    // consumer does not pin an ever-growing buffer.
    conn.output.erase(0, conn.output_offset);
    conn.output_offset = 0;
  }

  // Backpressure: pause or resume reads around the high-water mark.
  const size_t pending = conn.output.size() - conn.output_offset;
  if (!conn.reading_paused && pending > options_.output_high_water) {
    conn.reading_paused = true;
    ConnMetrics::Get().backpressure_pauses->Add();
  } else if (conn.reading_paused &&
             pending <= options_.output_high_water / 2) {
    conn.reading_paused = false;
  }
  UpdateInterest(conn);
}

void TcpServer::UpdateInterest(Connection& conn) {
  if (conn.doomed) return;
  const bool want_read =
      !conn.reading_paused && !conn.peer_eof && !draining_;
  const bool want_write = conn.output_offset < conn.output.size();
  if (want_read == conn.want_read && want_write == conn.want_write) return;
  conn.want_read = want_read;
  conn.want_write = want_write;
  (void)poller_->Update(conn.fd, want_read, want_write);
}

void TcpServer::Doom(Connection& conn, CloseReason reason) {
  if (conn.doomed) return;
  conn.doomed = true;
  conn.close_reason = reason;
  doomed_.push_back(conn.id);
}

void TcpServer::MaybeFinish(Connection& conn) {
  if (conn.doomed) return;
  if (conn.peer_eof && conn.in_flight == 0 &&
      conn.output_offset == conn.output.size()) {
    Doom(conn, CloseReason::kEof);
  }
}

void TcpServer::CheckTimers() {
  for (auto& [id, conn] : conns_) {
    if (conn.doomed) continue;
    if (options_.idle_timeout.count() > 0 && !conn.peer_eof &&
        conn.idle.Expired()) {
      Doom(conn, CloseReason::kIdleTimeout);
      continue;
    }
    if (conn.write_stall_armed && conn.write_stall.Expired()) {
      Doom(conn, CloseReason::kWriteStall);
    }
  }
  MaybeResumeListener();
}

void TcpServer::RouteCompletions() {
  std::vector<Completion> batch;
  {
    MutexLock lock(completions_mu_);
    batch.swap(completions_);
  }
  for (Completion& completion : batch) {
    Connection* conn = FindConn(completion.conn_id);
    if (conn == nullptr) continue;  // connection died while the job ran
    --conn->in_flight;
    if (conn->doomed) continue;
    AppendResponse(*conn, completion.request_id, completion.response);
    if (conn->doomed) continue;
    TryFlush(*conn);
    if (!conn->doomed) MaybeFinish(*conn);
  }
}

void TcpServer::ReapDoomed() {
  if (doomed_.empty()) return;
  ConnMetrics& metrics = ConnMetrics::Get();
  for (int64_t conn_id : doomed_) {
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) continue;
    Connection& conn = it->second;
    const auto lifetime = std::chrono::steady_clock::now() - conn.opened_at;
    const double lifetime_seconds =
        std::chrono::duration<double>(lifetime).count();
    // Count the close before the fd actually closes: a peer that observes
    // EOF must already see the counter incremented when it scrapes.
    metrics.closed[static_cast<int>(conn.close_reason)]->Add();
    metrics.lifetime_seconds->Observe(lifetime_seconds);

    (void)poller_->Remove(conn.fd);
    transport_->Close(conn.fd);
    fd_to_conn_.erase(conn.fd);

    // One summary trace record per connection: a root span whose notes
    // carry the lifecycle tallies (see OBSERVABILITY.md).
    {
      obs::TraceScope trace(obs::Tracer::Default(),
                            "ppdb-conn-" + std::to_string(conn.id),
                            "connection");
      obs::SpanScope span("lifecycle");
      span.Note("close_reason", CloseReasonName(conn.close_reason));
      span.Note("requests", conn.requests);
      span.Note("bytes_in", conn.bytes_in);
      span.Note("bytes_out", conn.bytes_out);
      span.Note("duration_ms",
                static_cast<int64_t>(lifetime_seconds * 1000.0));
    }

    conns_.erase(it);
  }
  doomed_.clear();
  metrics.active->Set(static_cast<double>(conns_.size()));
  MaybeResumeListener();
}

Status TcpServer::RunDrain() {
  // 1. Stop accepting.
  if (listen_fd_ >= 0) {
    (void)poller_->Remove(listen_fd_);
    transport_->Close(listen_fd_);
    listen_fd_ = -1;
  }
  // 2. Stop reading everywhere; in-flight work keeps running.
  for (auto& [id, conn] : conns_) {
    if (!conn.doomed) {
      conn.want_read = false;
      conn.want_write = conn.output_offset < conn.output.size();
      (void)poller_->Update(conn.fd, conn.want_read, conn.want_write);
    }
  }
  // 3. Drain the broker (completions pile into the queue — the workers
  // never need the loop thread), then checkpoint.
  broker_.Drain();
  Status final_checkpoint = service_.FinalCheckpoint();
  RouteCompletions();
  // 4. Ack every connection that asked for the drain.
  for (const auto& [conn_id, request_id] : drain_requests_) {
    Connection* conn = FindConn(conn_id);
    if (conn == nullptr || conn->doomed) continue;
    Response ack;
    ack.payload = DrainAckPayload(final_checkpoint, broker_.Stats());
    AppendResponse(*conn, request_id, ack);
    if (!conn->doomed) TryFlush(*conn);
  }
  ReapDoomed();
  // 5. Flush what is owed, bounded by the drain-flush budget, then close.
  Deadline flush_budget = Deadline::After(options_.drain_flush_timeout);
  std::vector<Poller::Event> events;
  for (;;) {
    bool pending = false;
    for (auto& [id, conn] : conns_) {
      if (conn.output_offset < conn.output.size()) {
        pending = true;
      } else {
        Doom(conn, CloseReason::kDrain);
      }
    }
    ReapDoomed();
    if (!pending || flush_budget.Expired()) break;
    Status waited =
        poller_->Wait(std::min(DeadlineTimeoutMs(flush_budget), 50), &events);
    if (!waited.ok()) break;
    for (const Poller::Event& event : events) {
      if (event.fd == wake_read_fd_) {
        DrainWakePipe();
        continue;
      }
      auto it = fd_to_conn_.find(event.fd);
      if (it == fd_to_conn_.end()) continue;
      Connection* conn = FindConn(it->second);
      if (conn == nullptr || conn->doomed) continue;
      if (event.writable || event.error) TryFlush(*conn);
    }
    ReapDoomed();
  }
  for (auto& [id, conn] : conns_) Doom(conn, CloseReason::kDrain);
  ReapDoomed();

  if (wake_read_fd_ >= 0) {
    (void)poller_->Remove(wake_read_fd_);
    ::close(wake_read_fd_);
    wake_read_fd_ = -1;
  }
  // The write end stays open until the destructor: a concurrent Shutdown()
  // may have loaded the fd and be mid-write(), and closing here would let
  // the kernel reuse the descriptor under that write. Bytes written after
  // this point sit unread in the pipe, which is harmless.
  return final_checkpoint;
}

}  // namespace ppdb::server::net

#include "server/net/framer.h"

namespace ppdb::server::net {

void LineFramer::Feed(std::string_view bytes) {
  while (!bytes.empty()) {
    size_t nl = bytes.find('\n');
    std::string_view piece = bytes.substr(0, nl);  // npos → whole rest
    if (discarding_) {
      // Inside an oversized line: bytes up to the terminator are dropped.
    } else if (current_.size() + piece.size() > max_line_) {
      current_.append(piece.data(), max_line_ - current_.size());
      discarding_ = true;
    } else {
      current_.append(piece.data(), piece.size());
    }
    if (nl == std::string_view::npos) return;
    bytes.remove_prefix(nl + 1);

    Line line;
    line.oversized = discarding_;
    discarding_ = false;
    if (!line.oversized && !current_.empty() && current_.back() == '\r') {
      current_.pop_back();
    }
    line.text = std::move(current_);
    current_.clear();
    if (line.oversized) ++oversized_lines_;
    ready_.push_back(std::move(line));
  }
}

bool LineFramer::Next(Line* line) {
  if (!ready_.empty()) {
    *line = std::move(ready_.front());
    ready_.pop_front();
    return true;
  }
  if (finished_ && (discarding_ || !current_.empty())) {
    // EOF with an unterminated trailing line (possibly a truncated
    // oversized one) — hand it over exactly once.
    line->oversized = discarding_;
    if (!line->oversized && current_.back() == '\r') current_.pop_back();
    line->text = std::move(current_);
    current_.clear();
    if (discarding_) ++oversized_lines_;
    discarding_ = false;
    return true;
  }
  return false;
}

void LineFramer::Finish() { finished_ = true; }

}  // namespace ppdb::server::net

#ifndef PPDB_SERVER_NET_TCP_SERVER_H_
#define PPDB_SERVER_NET_TCP_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "server/net/conn_metrics.h"
#include "server/net/framer.h"
#include "server/net/poller.h"
#include "server/net/transport.h"
#include "server/serve_core.h"

namespace ppdb::server::net {

/// The TCP front-end: a single-threaded event loop over non-blocking
/// sockets (epoll on Linux, poll elsewhere) that feeds the same line
/// protocol and `RequestBroker` as the pipe loop — the broker and service
/// cannot tell which front-end a request came through.
///
/// Threading model. One thread (the caller of `Serve`) owns the listener,
/// every connection, the poller, and all socket I/O. Broker workers never
/// touch a socket: a completion callback appends `{conn, request, response}`
/// to a mutex-guarded queue and wakes the loop through a self-pipe; the
/// loop routes it into the connection's output buffer and writes when the
/// socket accepts bytes. Everything not explicitly guarded is loop-thread
/// state.
///
/// Connection lifecycle and guards:
///
///  * **Bounded input.** Bytes stream through a `LineFramer`: a line past
///    `kMaxRequestLine` is answered `line_too_long` and the connection
///    resynchronizes at the next newline — memory stays O(cap) per
///    connection no matter what the client sends.
///  * **Bounded output + backpressure.** Pending output past
///    `output_high_water` pauses reads on that connection (the kernel's
///    receive buffer then pushes back on the client); past `output_limit`
///    the connection is closed (`output_overflow`) — the peer is not
///    reading and buffering more would be unbounded.
///  * **Deadlines** (`common/deadline.h` tokens, armed at admission of the
///    triggering event): no bytes within `idle_timeout` closes a slowloris
///    (`idle_timeout`); pending output making no progress within
///    `write_stall_timeout` closes a stalled reader (`write_stall`).
///  * **Connection cap.** At `max_connections` the listener's read
///    interest is dropped — the backlog absorbs bursts and accepting
///    resumes on the next close. Accept-time ENFILE/EMFILE/ECONNABORTED
///    are soft errors: counted, backed off `accept_backoff`, retried.
///  * **Fault containment.** Reset/EPIPE/short I/O/EAGAIN storms from the
///    transport (real or injected) only ever close the one connection;
///    writes use MSG_NOSIGNAL so a dead client cannot SIGPIPE the server.
///
/// Graceful drain — triggered by a `drain` request on any connection or by
/// `Shutdown()`:
///
///   1. stop accepting (listener closed),
///   2. stop reading every connection (in-flight requests keep running),
///   3. `broker.Drain()`, route all completions, take the final
///      checkpoint,
///   4. answer the drain request(s) with the standard ack payload,
///   5. flush pending output under `drain_flush_timeout`, then close
///      everything.
///
/// `Serve` returns the final-checkpoint status, like the pipe loop. After
/// it returns every fd the server opened through the transport is closed
/// (the fault-matrix tests assert `FaultInjectingTransport::open_fds() ==
/// 0`), and no broker callback into this object is outstanding — it is
/// safe to destroy the server, then the broker.
class TcpServer {
 public:
  struct Options {
    /// IPv4 dotted quad or "localhost".
    std::string host = "127.0.0.1";
    /// 0 binds an ephemeral port; read it back with `port()`.
    uint16_t port = 0;
    int backlog = 128;
    /// Open-connection cap; the listener stops accepting at the cap.
    size_t max_connections = 64;
    /// Close connections with no inbound bytes for this long; zero
    /// disables the idle guard.
    std::chrono::milliseconds idle_timeout{0};
    /// Close connections whose pending output makes no progress for this
    /// long; zero disables the stall guard.
    std::chrono::milliseconds write_stall_timeout{5000};
    /// Pending output above this pauses reads on the connection.
    size_t output_high_water = 256 * 1024;
    /// Pending output above this closes the connection.
    size_t output_limit = 4 * 1024 * 1024;
    /// How long the drain sequence keeps flushing pending output before
    /// closing connections that still have bytes owed.
    std::chrono::milliseconds drain_flush_timeout{2000};
    /// Listener pause after an accept-time soft error.
    std::chrono::milliseconds accept_backoff{20};
    /// Socket backend; nullptr uses the process-wide `RealTransport`.
    /// Tests substitute a `FaultInjectingTransport`.
    Transport* transport = nullptr;
    /// Force the portable poll(2) poller even where epoll is available.
    bool force_poll_backend = false;
  };

  /// `service` and `broker` must outlive the server.
  TcpServer(Options options, DatabaseService& service, RequestBroker& broker);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds and listens (so `port()` is known), without serving yet.
  /// `Serve` calls this implicitly if it was not called.
  Status Start();

  /// The bound port; valid after a successful `Start`.
  uint16_t port() const { return port_; }

  /// Name of the poller backend in use ("epoll" or "poll"); valid after a
  /// successful `Start`.
  std::string_view poller_name() const;

  /// Runs the event loop on the calling thread until a drain completes
  /// (via a `drain` request or `Shutdown`). Returns the final-checkpoint
  /// status. Call at most once.
  Status Serve();

  /// Requests a graceful drain from any thread. Safe to call repeatedly;
  /// only effective after a successful `Start`.
  void Shutdown();

 private:
  struct Connection {
    int fd = -1;
    int64_t id = 0;
    LineFramer framer;
    /// Pending outbound bytes; [offset, size) unwritten.
    std::string output;
    size_t output_offset = 0;
    /// 1-based per-connection request ids, like line numbers on the pipe.
    int64_t next_request_id = 0;
    /// Admitted broker jobs whose completions have not been routed yet.
    int64_t in_flight = 0;
    bool reading_paused = false;
    bool peer_eof = false;
    /// Tombstone: close decided, teardown deferred to ReapDoomed().
    bool doomed = false;
    CloseReason close_reason = CloseReason::kEof;
    bool want_read = true;
    bool want_write = false;
    /// Idle guard, re-armed on every inbound byte.
    Deadline idle;
    /// Stall guard, armed while output is pending, re-armed on progress.
    Deadline write_stall;
    bool write_stall_armed = false;
    std::chrono::steady_clock::time_point opened_at;
    int64_t bytes_in = 0;
    int64_t bytes_out = 0;
    int64_t requests = 0;
  };

  /// A broker completion awaiting routing on the loop thread.
  struct Completion {
    int64_t conn_id = 0;
    int64_t request_id = 0;
    Response response;
  };

  // Event-loop internals; everything below runs on the Serve thread.
  int ComputeTimeoutMs() const;
  void AcceptReady();
  void PauseListener(std::chrono::milliseconds backoff, bool for_cap);
  void MaybeResumeListener();
  void HandleConnEvent(int fd, const Poller::Event& event);
  void HandleReadable(Connection& conn);
  void ProcessLines(Connection& conn);
  void AppendResponse(Connection& conn, int64_t request_id,
                      const Response& response);
  void TryFlush(Connection& conn);
  void UpdateInterest(Connection& conn);
  void Doom(Connection& conn, CloseReason reason);
  void MaybeFinish(Connection& conn);
  void CheckTimers();
  void RouteCompletions();
  void ReapDoomed();
  void WakeLoop();
  void DrainWakePipe();
  Status RunDrain();
  Connection* FindConn(int64_t conn_id);

  Options options_;
  DatabaseService& service_;
  RequestBroker& broker_;
  Transport* transport_;
  std::unique_ptr<Poller> poller_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  bool started_ = false;
  bool listener_paused_ = false;
  bool listener_paused_for_cap_ = false;
  Deadline listener_backoff_;

  /// Connections keyed by their never-reused id; fd→id resolves poller
  /// events. A completion for an id no longer in the map (connection
  /// closed while its request ran) is dropped — kernel fd reuse can never
  /// misroute a response.
  std::unordered_map<int64_t, Connection> conns_;
  std::unordered_map<int, int64_t> fd_to_conn_;
  int64_t next_conn_id_ = 0;
  std::vector<int64_t> doomed_;

  bool draining_ = false;
  /// (conn id, request id) of `drain` requests owed an ack.
  std::vector<std::pair<int64_t, int64_t>> drain_requests_;

  /// Self-pipe waking the loop from broker workers and Shutdown().
  int wake_read_fd_ = -1;
  std::atomic<int> wake_write_fd_{-1};
  std::atomic<bool> shutdown_requested_{false};

  Mutex completions_mu_{"tcp_completions"} PPDB_LOCK_LEVEL(tcp_completions)
      PPDB_ACQUIRED_BEFORE(serve_writer, broker);
  std::vector<Completion> completions_ PPDB_GUARDED_BY(completions_mu_);
};

}  // namespace ppdb::server::net

#endif  // PPDB_SERVER_NET_TCP_SERVER_H_

#include "server/net/poller.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <poll.h>
#include <unordered_map>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#endif

namespace ppdb::server::net {

namespace {

std::string ErrnoText(const char* what, int err) {
  return std::string(what) + ": " + std::strerror(err);
}

/// Portable backend over poll(2): the interest set lives in an fd-indexed
/// map rebuilt into a flat pollfd vector per Wait. O(n) per wait, which is
/// fine for the fallback role — epoll carries the high-connection case.
class PollPoller : public Poller {
 public:
  std::string_view name() const override { return "poll"; }

  Status Add(int fd, bool want_read, bool want_write) override {
    if (interest_.count(fd) != 0) {
      return Status::InvalidArgument("poll: fd already registered");
    }
    interest_[fd] = Events(want_read, want_write);
    return Status::OK();
  }

  Status Update(int fd, bool want_read, bool want_write) override {
    auto it = interest_.find(fd);
    if (it == interest_.end()) {
      return Status::NotFound("poll: fd not registered");
    }
    it->second = Events(want_read, want_write);
    return Status::OK();
  }

  Status Remove(int fd) override {
    if (interest_.erase(fd) == 0) {
      return Status::NotFound("poll: fd not registered");
    }
    return Status::OK();
  }

  Status Wait(int timeout_ms, std::vector<Event>* events) override {
    events->clear();
    pollfds_.clear();
    pollfds_.reserve(interest_.size());
    for (const auto& [fd, mask] : interest_) {
      pollfds_.push_back(pollfd{fd, mask, 0});
    }
    int ready;
    for (;;) {
      ready = ::poll(pollfds_.data(),
                     static_cast<nfds_t>(pollfds_.size()), timeout_ms);
      if (ready >= 0) break;
      if (errno == EINTR) continue;
      return Status::Internal(ErrnoText("poll", errno));
    }
    for (const pollfd& p : pollfds_) {
      if (p.revents == 0) continue;
      Event event;
      event.fd = p.fd;
      event.readable = (p.revents & POLLIN) != 0;
      event.writable = (p.revents & POLLOUT) != 0;
      event.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      events->push_back(event);
    }
    return Status::OK();
  }

 private:
  static short Events(bool want_read, bool want_write) {
    short mask = 0;
    if (want_read) mask |= POLLIN;
    if (want_write) mask |= POLLOUT;
    return mask;
  }

  std::unordered_map<int, short> interest_;
  std::vector<pollfd> pollfds_;
};

#if defined(__linux__)

/// Linux backend over epoll(7), level-triggered (the default; no EPOLLET),
/// so its semantics match PollPoller exactly and the two are
/// interchangeable under the same event loop.
class EpollPoller : public Poller {
 public:
  EpollPoller() : epfd_(::epoll_create1(0)) {}
  ~EpollPoller() override {
    if (epfd_ >= 0) ::close(epfd_);
  }

  bool valid() const { return epfd_ >= 0; }

  std::string_view name() const override { return "epoll"; }

  Status Add(int fd, bool want_read, bool want_write) override {
    return Control(EPOLL_CTL_ADD, fd, want_read, want_write);
  }

  Status Update(int fd, bool want_read, bool want_write) override {
    return Control(EPOLL_CTL_MOD, fd, want_read, want_write);
  }

  Status Remove(int fd) override {
    epoll_event unused{};
    if (::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, &unused) < 0) {
      return Status::Internal(ErrnoText("epoll_ctl(DEL)", errno));
    }
    return Status::OK();
  }

  Status Wait(int timeout_ms, std::vector<Event>* events) override {
    events->clear();
    int ready;
    for (;;) {
      ready = ::epoll_wait(epfd_, ready_, kMaxReady, timeout_ms);
      if (ready >= 0) break;
      if (errno == EINTR) continue;
      return Status::Internal(ErrnoText("epoll_wait", errno));
    }
    for (int i = 0; i < ready; ++i) {
      Event event;
      event.fd = ready_[i].data.fd;
      event.readable = (ready_[i].events & EPOLLIN) != 0;
      event.writable = (ready_[i].events & EPOLLOUT) != 0;
      event.error = (ready_[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      events->push_back(event);
    }
    return Status::OK();
  }

 private:
  static constexpr int kMaxReady = 256;

  Status Control(int op, int fd, bool want_read, bool want_write) {
    epoll_event event{};
    if (want_read) event.events |= EPOLLIN;
    if (want_write) event.events |= EPOLLOUT;
    event.data.fd = fd;
    if (::epoll_ctl(epfd_, op, fd, &event) < 0) {
      return Status::Internal(ErrnoText("epoll_ctl", errno));
    }
    return Status::OK();
  }

  int epfd_;
  epoll_event ready_[kMaxReady];
};

#endif  // __linux__

}  // namespace

std::unique_ptr<Poller> Poller::Create(bool force_poll) {
  const char* env = std::getenv("PPDB_NET_POLLER");
  if (env != nullptr && std::string_view(env) == "poll") force_poll = true;
#if defined(__linux__)
  if (!force_poll) {
    auto epoll = std::make_unique<EpollPoller>();
    if (epoll->valid()) return epoll;
  }
#else
  (void)force_poll;
#endif
  return std::make_unique<PollPoller>();
}

}  // namespace ppdb::server::net

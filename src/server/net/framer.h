#ifndef PPDB_SERVER_NET_FRAMER_H_
#define PPDB_SERVER_NET_FRAMER_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

#include "server/request.h"

namespace ppdb::server::net {

/// Bounded incremental line assembler for the socket read path.
///
/// TCP hands the server arbitrary byte chunks with no relation to line
/// boundaries; `LineFramer` reassembles them into protocol lines while
/// enforcing the same `kMaxRequestLine` cap as the pipe path, so a client
/// streaming an endless line cannot balloon memory:
///
///  * Bytes accumulate until a '\n'; `Next` then pops one complete line
///    (terminator stripped; a trailing '\r' from CRLF clients too).
///  * Once a line crosses the cap, the framer stops storing (the partial
///    line stays O(cap)) and *discards* until the next '\n'; that line is
///    delivered exactly once, in order, with `oversized = true` so the
///    server can answer `line_too_long` and keep the connection — the next
///    line parses normally (resync, not teardown).
///  * Embedded NULs and control bytes pass through untouched; rejecting
///    them is the parser's job (`ParseRequest`), not the framer's.
///
/// The fuzz suite drives this class directly: any split of any byte
/// stream across `Feed` calls must yield the identical line sequence.
class LineFramer {
 public:
  explicit LineFramer(size_t max_line = kMaxRequestLine)
      : max_line_(max_line) {}

  /// One reassembled line.
  struct Line {
    std::string text;
    /// True when the line exceeded the cap; `text` holds the retained
    /// prefix (the overflow was discarded).
    bool oversized = false;
  };

  /// Appends raw bytes. The partial-line accumulator never grows past the
  /// cap; completed lines queue until `Next` drains them.
  void Feed(std::string_view bytes);

  /// Pops the next complete line into `*line`; false when no complete
  /// line is buffered yet.
  bool Next(Line* line);

  /// Signals end-of-stream: a non-empty unterminated trailing line
  /// becomes available to `Next` (mirrors how `std::getline` yields a
  /// final line with no terminator).
  void Finish();

  /// Bytes held in the partial-line accumulator (bounded by the cap).
  size_t buffered() const { return current_.size(); }

  /// Complete lines queued and not yet popped.
  size_t pending() const { return ready_.size(); }

  /// Lines delivered with `oversized = true` so far.
  int64_t oversized_lines() const { return oversized_lines_; }

 private:
  const size_t max_line_;
  /// The line being assembled; capped at max_line_ bytes.
  std::string current_;
  /// True while discarding the remainder of an oversized line.
  bool discarding_ = false;
  /// Completed lines awaiting Next(), in arrival order.
  std::deque<Line> ready_;
  bool finished_ = false;
  int64_t oversized_lines_ = 0;
};

}  // namespace ppdb::server::net

#endif  // PPDB_SERVER_NET_FRAMER_H_

#include "server/net/conn_metrics.h"

namespace ppdb::server::net {

std::string_view CloseReasonName(CloseReason reason) {
  switch (reason) {
    case CloseReason::kEof: return "eof";
    case CloseReason::kIdleTimeout: return "idle_timeout";
    case CloseReason::kWriteStall: return "write_stall";
    case CloseReason::kReset: return "reset";
    case CloseReason::kBrokenPipe: return "broken_pipe";
    case CloseReason::kIoError: return "io_error";
    case CloseReason::kOutputOverflow: return "output_overflow";
    case CloseReason::kDrain: return "drain";
  }
  return "unknown";
}

ConnMetrics& ConnMetrics::Get() {
  static ConnMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::Default();
    ConnMetrics m;
    m.accepted = registry.GetCounter(
        "ppdb_server_conn_accepted_total",
        "TCP connections accepted by the socket front-end");
    m.accept_soft_errors = registry.GetCounter(
        "ppdb_server_conn_accept_soft_errors_total",
        "Transient accept failures (ENFILE/EMFILE/ECONNABORTED); the "
        "listener backs off and retries");
    m.accept_throttled = registry.GetCounter(
        "ppdb_server_conn_accept_throttled_total",
        "Times accepting paused because the connection cap was reached");
    m.active = registry.GetGauge(
        "ppdb_server_conn_active",
        "TCP connections currently open");
    m.bytes_read = registry.GetCounter(
        "ppdb_server_conn_bytes_read_total",
        "Bytes read from TCP connections");
    m.bytes_written = registry.GetCounter(
        "ppdb_server_conn_bytes_written_total",
        "Bytes written to TCP connections");
    m.requests = registry.GetCounter(
        "ppdb_server_conn_requests_total",
        "Request lines received over TCP connections");
    m.oversized_lines = registry.GetCounter(
        "ppdb_server_conn_oversized_lines_total",
        "Request lines rejected as line_too_long on the socket path");
    m.backpressure_pauses = registry.GetCounter(
        "ppdb_server_conn_backpressure_pauses_total",
        "Times a connection's reads paused because pending output crossed "
        "the high-water mark");
    for (int i = 0; i < kNumCloseReasons; ++i) {
      m.closed[i] = registry.GetCounter(
          "ppdb_server_conn_closed_total",
          "TCP connections closed, by reason",
          {{"reason",
            std::string(CloseReasonName(static_cast<CloseReason>(i)))}});
    }
    m.lifetime_seconds = registry.GetHistogram(
        "ppdb_server_conn_lifetime_seconds",
        "Connection lifetime from accept to close");
    return m;
  }();
  return metrics;
}

}  // namespace ppdb::server::net

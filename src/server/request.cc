#include "server/request.h"

#include <vector>

#include "common/macros.h"
#include "common/string_util.h"

namespace ppdb::server {

namespace {

/// Splits on runs of spaces/tabs; never produces empty tokens.
std::vector<std::string_view> Tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

Status WrongArity(std::string_view command, std::string_view expected) {
  return Status::InvalidArgument("'" + std::string(command) + "' expects " +
                                 std::string(expected));
}

Result<int> ParseLevel(std::string_view token) {
  PPDB_ASSIGN_OR_RETURN(int64_t value, ParseInt64(token));
  if (value < 0 || value > 1000000) {
    return Status::InvalidArgument("level out of range: " +
                                   std::string(token));
  }
  return static_cast<int>(value);
}

Result<Request> ParseEvent(const std::vector<std::string_view>& tokens) {
  Request request;
  if (tokens.size() < 2) {
    return WrongArity("event", "a subcommand (add|remove|pref|unpref|threshold)");
  }
  const std::string_view sub = tokens[1];
  if (sub == "add") {
    if (tokens.size() != 4) return WrongArity("event add", "<provider> <threshold>");
    request.kind = RequestKind::kEventAdd;
    PPDB_ASSIGN_OR_RETURN(request.provider, ParseInt64(tokens[2]));
    PPDB_ASSIGN_OR_RETURN(request.threshold, ParseDouble(tokens[3]));
    return request;
  }
  if (sub == "remove") {
    if (tokens.size() != 3) return WrongArity("event remove", "<provider>");
    request.kind = RequestKind::kEventRemove;
    PPDB_ASSIGN_OR_RETURN(request.provider, ParseInt64(tokens[2]));
    return request;
  }
  if (sub == "pref") {
    if (tokens.size() != 8) {
      return WrongArity("event pref",
                        "<provider> <attr> <purpose> <vis> <gran> <ret>");
    }
    request.kind = RequestKind::kEventSetPref;
    PPDB_ASSIGN_OR_RETURN(request.provider, ParseInt64(tokens[2]));
    request.attribute = std::string(tokens[3]);
    request.purpose = std::string(tokens[4]);
    if (!IsValidIdentifier(request.attribute)) {
      return Status::InvalidArgument("invalid attribute name");
    }
    PPDB_ASSIGN_OR_RETURN(request.visibility, ParseLevel(tokens[5]));
    PPDB_ASSIGN_OR_RETURN(request.granularity, ParseLevel(tokens[6]));
    PPDB_ASSIGN_OR_RETURN(request.retention, ParseLevel(tokens[7]));
    return request;
  }
  if (sub == "unpref") {
    if (tokens.size() != 5) {
      return WrongArity("event unpref", "<provider> <attr> <purpose>");
    }
    request.kind = RequestKind::kEventRemovePref;
    PPDB_ASSIGN_OR_RETURN(request.provider, ParseInt64(tokens[2]));
    request.attribute = std::string(tokens[3]);
    request.purpose = std::string(tokens[4]);
    return request;
  }
  if (sub == "threshold") {
    if (tokens.size() != 4) {
      return WrongArity("event threshold", "<provider> <value>");
    }
    request.kind = RequestKind::kEventSetThreshold;
    PPDB_ASSIGN_OR_RETURN(request.provider, ParseInt64(tokens[2]));
    PPDB_ASSIGN_OR_RETURN(request.threshold, ParseDouble(tokens[3]));
    return request;
  }
  return Status::InvalidArgument("unknown event subcommand '" +
                                 std::string(sub) + "'");
}

}  // namespace

std::string_view RequestKindName(RequestKind kind) {
  switch (kind) {
    case RequestKind::kPing: return "ping";
    case RequestKind::kStats: return "stats";
    case RequestKind::kMetrics: return "metrics";
    case RequestKind::kTrace: return "trace";
    case RequestKind::kAnalyze: return "analyze";
    case RequestKind::kCertify: return "certify";
    case RequestKind::kEstimate: return "estimate";
    case RequestKind::kWhatIf: return "whatif";
    case RequestKind::kSearch: return "search";
    case RequestKind::kEventAdd: return "event_add";
    case RequestKind::kEventRemove: return "event_remove";
    case RequestKind::kEventSetPref: return "event_pref";
    case RequestKind::kEventRemovePref: return "event_unpref";
    case RequestKind::kEventSetThreshold: return "event_threshold";
    case RequestKind::kQuery: return "query";
    case RequestKind::kExpansionCheck: return "expansion_check";
    case RequestKind::kDriftCheck: return "drift_check";
    case RequestKind::kSave: return "save";
    case RequestKind::kDrain: return "drain";
  }
  return "unknown";
}

bool Request::IsCheap() const {
  switch (kind) {
    case RequestKind::kPing:
    case RequestKind::kStats:
    case RequestKind::kMetrics:
    case RequestKind::kTrace:
    case RequestKind::kQuery:
    case RequestKind::kExpansionCheck:
    case RequestKind::kEventAdd:
    case RequestKind::kEventRemove:
    case RequestKind::kEventSetPref:
    case RequestKind::kEventRemovePref:
    case RequestKind::kEventSetThreshold:
      return true;
    default:
      return false;
  }
}

bool Request::IsWrite() const {
  switch (kind) {
    case RequestKind::kEventAdd:
    case RequestKind::kEventRemove:
    case RequestKind::kEventSetPref:
    case RequestKind::kEventRemovePref:
    case RequestKind::kEventSetThreshold:
    case RequestKind::kSave:
      return true;
    default:
      return false;
  }
}

Result<Request> ParseRequest(std::string_view line) {
  if (line.size() > kMaxRequestLine) {
    return Status::InvalidArgument(
        "request line exceeds " + std::to_string(kMaxRequestLine) + " bytes");
  }
  if (line.find('\0') != std::string_view::npos) {
    return Status::InvalidArgument("request contains an embedded NUL byte");
  }
  if (line.find('\n') != std::string_view::npos ||
      line.find('\r') != std::string_view::npos) {
    return Status::InvalidArgument("request contains an embedded newline");
  }

  std::vector<std::string_view> tokens = Tokenize(line);
  Request request;

  // Optional @<deadline_ms> prefix.
  if (!tokens.empty() && !tokens[0].empty() && tokens[0][0] == '@') {
    PPDB_ASSIGN_OR_RETURN(int64_t ms, ParseInt64(tokens[0].substr(1)));
    if (ms < 0 || ms > 86400000) {
      return Status::InvalidArgument("deadline out of range (0..86400000 ms)");
    }
    request.deadline = std::chrono::milliseconds(ms);
    tokens.erase(tokens.begin());
  }
  if (tokens.empty()) {
    return Status::InvalidArgument("empty request");
  }

  const std::string_view command = tokens[0];
  if (command == "ping") {
    if (tokens.size() != 1) return WrongArity("ping", "no arguments");
    request.kind = RequestKind::kPing;
    return request;
  }
  if (command == "stats") {
    if (tokens.size() == 2 && tokens[1] == "prometheus") {
      request.kind = RequestKind::kMetrics;
      return request;
    }
    if (tokens.size() != 1) {
      return WrongArity("stats", "no arguments, or 'prometheus'");
    }
    request.kind = RequestKind::kStats;
    return request;
  }
  if (command == "metrics") {
    if (tokens.size() != 1) return WrongArity("metrics", "no arguments");
    request.kind = RequestKind::kMetrics;
    return request;
  }
  if (command == "trace") {
    if (tokens.size() != 1) return WrongArity("trace", "no arguments");
    request.kind = RequestKind::kTrace;
    return request;
  }
  if (command == "analyze") {
    if (tokens.size() != 1) return WrongArity("analyze", "no arguments");
    request.kind = RequestKind::kAnalyze;
    return request;
  }
  if (command == "certify") {
    if (tokens.size() != 2) return WrongArity("certify", "<alpha>");
    request.kind = RequestKind::kCertify;
    PPDB_ASSIGN_OR_RETURN(request.alpha, ParseDouble(tokens[1]));
    if (!(request.alpha >= 0.0 && request.alpha <= 1.0)) {
      return Status::InvalidArgument("alpha must lie in [0, 1]");
    }
    return request;
  }
  if (command == "estimate") {
    if (tokens.size() != 4) {
      return WrongArity("estimate", "pw|pdefault <trials> <seed>");
    }
    request.kind = RequestKind::kEstimate;
    request.target = std::string(tokens[1]);
    if (request.target != "pw" && request.target != "pdefault") {
      return Status::InvalidArgument("estimate target must be pw or pdefault");
    }
    PPDB_ASSIGN_OR_RETURN(request.trials, ParseInt64(tokens[2]));
    if (request.trials <= 0 || request.trials > 100000000) {
      return Status::InvalidArgument("trials out of range (1..1e8)");
    }
    PPDB_ASSIGN_OR_RETURN(int64_t seed, ParseInt64(tokens[3]));
    request.seed = static_cast<uint64_t>(seed);
    return request;
  }
  if (command == "whatif") {
    if (tokens.size() != 3 && tokens.size() != 4) {
      return WrongArity("whatif", "<dimension> <steps> [extra_per_step]");
    }
    request.kind = RequestKind::kWhatIf;
    request.dimension = std::string(tokens[1]);
    PPDB_ASSIGN_OR_RETURN(int64_t steps, ParseInt64(tokens[2]));
    if (steps < 1 || steps > 1000) {
      return Status::InvalidArgument("steps out of range (1..1000)");
    }
    request.steps = static_cast<int>(steps);
    if (tokens.size() == 4) {
      PPDB_ASSIGN_OR_RETURN(request.extra_utility_per_step,
                            ParseDouble(tokens[3]));
    }
    return request;
  }
  if (command == "search") {
    if (tokens.size() > 3) return WrongArity("search", "[max_steps] [value_scale]");
    request.kind = RequestKind::kSearch;
    if (tokens.size() >= 2) {
      PPDB_ASSIGN_OR_RETURN(int64_t max_steps, ParseInt64(tokens[1]));
      if (max_steps < 1 || max_steps > 1000) {
        return Status::InvalidArgument("max_steps out of range (1..1000)");
      }
      request.max_steps = static_cast<int>(max_steps);
    }
    if (tokens.size() == 3) {
      PPDB_ASSIGN_OR_RETURN(request.value_scale, ParseDouble(tokens[2]));
    }
    return request;
  }
  if (command == "event") {
    Result<Request> parsed = ParseEvent(tokens);
    if (!parsed.ok()) return parsed.status();
    Request event = std::move(parsed).value();
    event.deadline = request.deadline;
    return event;
  }
  if (command == "query") {
    if (tokens.size() == 2 &&
        (tokens[1] == "pw" || tokens[1] == "pdefault" ||
         tokens[1] == "monitor")) {
      request.kind = RequestKind::kQuery;
      request.target = std::string(tokens[1]);
      return request;
    }
    if (tokens.size() == 3 && tokens[1] == "provider") {
      request.kind = RequestKind::kQuery;
      request.target = "provider";
      PPDB_ASSIGN_OR_RETURN(request.provider, ParseInt64(tokens[2]));
      return request;
    }
    return WrongArity("query", "pw|pdefault|monitor or provider <id>");
  }
  if (command == "expansion-check") {
    // §9 standing query: answered from the maintained view in O(1), so it
    // rides the priority lane like any other query.
    if (tokens.size() != 3) {
      return WrongArity("expansion-check",
                        "<utility_per_provider> <extra_utility>");
    }
    request.kind = RequestKind::kExpansionCheck;
    PPDB_ASSIGN_OR_RETURN(request.utility_per_provider,
                          ParseDouble(tokens[1]));
    if (!(request.utility_per_provider > 0.0)) {
      return Status::InvalidArgument(
          "utility_per_provider must be positive (the Eq. 31 algebra "
          "divides by it)");
    }
    PPDB_ASSIGN_OR_RETURN(request.extra_utility, ParseDouble(tokens[2]));
    return request;
  }
  if (command == "driftcheck") {
    if (tokens.size() != 1) return WrongArity("driftcheck", "no arguments");
    request.kind = RequestKind::kDriftCheck;
    return request;
  }
  if (command == "save") {
    if (tokens.size() != 1) return WrongArity("save", "no arguments");
    request.kind = RequestKind::kSave;
    return request;
  }
  if (command == "drain") {
    if (tokens.size() != 1) return WrongArity("drain", "no arguments");
    request.kind = RequestKind::kDrain;
    return request;
  }
  return Status::InvalidArgument("unknown command '" + std::string(command) +
                                 "'");
}

std::string FormatResponse(int64_t id, const Response& response) {
  std::string out = std::to_string(id);
  if (response.status.ok()) {
    out += " ok";
    if (!response.payload.empty()) {
      out += ' ';
      out += response.payload;
    }
  } else {
    out += " error ";
    out += StatusCodeToString(response.status.code());
    out += ' ';
    out += response.status.message();
  }
  // The wire format is one response per line; scrub control bytes that
  // would fake extra lines or truncate this one.
  for (char& c : out) {
    if (c == '\n' || c == '\r' || c == '\0') c = ' ';
  }
  out += '\n';
  return out;
}

std::string FormatBlockResponse(int64_t id, std::string_view payload) {
  // Drop one trailing newline so "line1\nline2\n" and "line1\nline2" frame
  // identically as two body lines.
  if (!payload.empty() && payload.back() == '\n') {
    payload.remove_suffix(1);
  }
  int64_t lines = payload.empty() ? 0 : 1;
  for (char c : payload) {
    if (c == '\n') ++lines;
  }
  std::string out = std::to_string(id) + " ok block lines=" +
                    std::to_string(lines) + "\n";
  std::string body(payload);
  for (char& c : body) {
    if (c == '\r' || c == '\0') c = ' ';
  }
  out += body;
  if (!body.empty()) out += '\n';
  out += std::to_string(id) + " end\n";
  return out;
}

}  // namespace ppdb::server

#ifndef PPDB_SERVER_REQUEST_H_
#define PPDB_SERVER_REQUEST_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace ppdb::server {

/// Hard cap on one request line. Longer lines are rejected before parsing
/// so a client (or fuzzer) streaming an unbounded line cannot balloon
/// memory or stall the parser.
inline constexpr size_t kMaxRequestLine = 64 * 1024;

/// What a request asks the engine to do. The split matters to the broker:
/// cheap O(|HP|)-or-less kinds ride the priority lane so a stream of
/// live-monitor events is never starved behind O(N·|HP|) census scans.
enum class RequestKind {
  kPing,
  kStats,
  kMetrics,
  kTrace,
  kAnalyze,
  kCertify,
  kEstimate,
  kWhatIf,
  kSearch,
  kEventAdd,
  kEventRemove,
  kEventSetPref,
  kEventRemovePref,
  kEventSetThreshold,
  kQuery,
  kExpansionCheck,
  kDriftCheck,
  kSave,
  kDrain,
};

/// Canonical lower-case name of `kind`, e.g. "event_add".
std::string_view RequestKindName(RequestKind kind);

/// One parsed request. Fields are sparse — each kind reads only its own.
///
/// Line grammar (whitespace-separated tokens, one request per line):
///
///   [@<deadline_ms>] <command> [args...]
///
///   ping
///   stats
///   stats prometheus      (alias: metrics)
///   trace
///   analyze
///   certify <alpha>
///   estimate pw|pdefault <trials> <seed>
///   whatif <dimension> <steps> [extra_utility_per_step]
///   search [max_steps] [value_scale]
///   event add <provider> <threshold>
///   event remove <provider>
///   event pref <provider> <attr> <purpose> <vis> <gran> <ret>
///   event unpref <provider> <attr> <purpose>
///   event threshold <provider> <value>
///   query pw|pdefault|monitor
///   query provider <id>
///   expansion-check <utility_per_provider> <extra_utility>
///   driftcheck
///   save
///   drain
///
/// `@<ms>` sets a per-request deadline budget measured from admission —
/// queueing time counts against it, which is what makes deadlines an
/// overload release valve rather than just a timer on the compute.
struct Request {
  RequestKind kind = RequestKind::kPing;
  /// Per-request deadline budget; zero means "broker default".
  std::chrono::milliseconds deadline{0};

  double alpha = 0.0;                   // certify
  std::string target;                   // estimate / query selector
  int64_t trials = 0;                   // estimate
  uint64_t seed = 0;                    // estimate
  std::string dimension;                // whatif
  int steps = 0;                        // whatif
  double extra_utility_per_step = 0.0;  // whatif
  int max_steps = 16;                   // search
  double value_scale = 1.0;             // search
  int64_t provider = 0;                 // event */ query provider
  double threshold = 0.0;               // event add / event threshold
  std::string attribute;                // event pref / unpref
  std::string purpose;                  // event pref / unpref
  int visibility = 0;                   // event pref
  int granularity = 0;                  // event pref
  int retention = 0;                    // event pref
  double utility_per_provider = 0.0;    // expansion-check (§9 U)
  double extra_utility = 0.0;           // expansion-check (§9 T)

  /// True for O(|HP|)-or-cheaper requests (events, queries, stats, ping)
  /// that the broker serves from the priority lane.
  bool IsCheap() const;

  /// True for requests that mutate monitored state or touch storage —
  /// the ones a read-only (open-breaker) server must reject.
  bool IsWrite() const;
};

/// Parses one request line. Never throws and never crashes on arbitrary
/// bytes: oversized lines, embedded NULs, unknown commands, wrong arity
/// and malformed numbers all come back as clean `kInvalidArgument` /
/// `kParseError` statuses.
Result<Request> ParseRequest(std::string_view line);

/// The outcome of executing a request: a status plus a single-line
/// `key=value ...` payload (empty on error).
struct Response {
  Status status;
  std::string payload;
};

/// Renders one response line: `<id> ok <payload>` or
/// `<id> error <code> <message>`. Control bytes in the message are
/// replaced so the wire format stays strictly line-oriented.
std::string FormatResponse(int64_t id, const Response& response);

/// Renders a successful multi-line payload (Prometheus exposition, trace
/// dumps) without violating the line protocol:
///
///   <id> ok block lines=<n>
///   <payload line 1>
///   ...
///   <id> end
///
/// Clients read exactly `n` body lines plus the end marker; the serve loop
/// writes the whole block under the response-writer lock, so body lines
/// never interleave with other responses. `\r` and NUL inside body lines
/// are scrubbed to spaces; errors never use block framing.
std::string FormatBlockResponse(int64_t id, std::string_view payload);

}  // namespace ppdb::server

#endif  // PPDB_SERVER_REQUEST_H_

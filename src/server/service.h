#ifndef PPDB_SERVER_SERVICE_H_
#define PPDB_SERVER_SERVICE_H_

#include <chrono>
#include <memory>
#include <string>

#include "audit/audit_log.h"
#include "audit/ledger.h"
#include "common/circuit_breaker.h"
#include "common/deadline.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/retry.h"
#include "common/thread_annotations.h"
#include "relational/catalog.h"
#include "server/request.h"
#include "storage/database_io.h"
#include "storage/fs.h"
#include "storage/journal.h"
#include "violation/live_monitor.h"

namespace ppdb::server {

/// The engine behind the broker: one loaded database, a live population
/// monitor as the authoritative copy of its privacy config, a write-ahead
/// event journal, and a circuit breaker guarding every save.
///
/// Durability: each mutating event is validated, appended to the journal
/// and fsync'd, then applied in memory and acknowledged — in that order,
/// under the writer lock. A crash at any point loses no acknowledged
/// event (`LoadDatabase` replays the journal) and applies no
/// unacknowledged one. Journal append failures feed the circuit breaker
/// exactly like save failures; a wedged journal triggers a rescue
/// checkpoint on the next event and keeps events failing `kUnavailable`
/// until one succeeds.
///
/// Concurrency: analytics (`analyze`, `certify`, `estimate`, `whatif`,
/// `search`, queries) take a shared lock and run concurrently with each
/// other; events and saves take an exclusive lock. The heavy analytics
/// parallelize internally through the engine's own `ThreadPool` use, so
/// shared-locking them does not serialize the actual compute.
///
/// Degraded mode: every save — the periodic live-monitor checkpoint and the
/// explicit `save` request — passes through the circuit breaker. After
/// `failure_threshold` consecutive transient storage faults the breaker
/// opens and the service turns *read-only*: mutating requests are rejected
/// with `kUnavailable` (a retry-after hint in the message) instead of
/// accepting events whose durability cannot be promised, while every read
/// keeps serving from memory. Once `open_duration` passes, the next save
/// probes the backend and a success restores writes. Checkpoint failures
/// inside an *admitted* event never fail the event (the monitor records
/// them; see `LivePopulationMonitor::CheckpointHook`) — they feed the
/// breaker instead.
class DatabaseService {
 public:
  struct Options {
    /// Live-monitor checkpoint cadence, in successful mutating events.
    /// 0 disables periodic checkpoints (explicit `save` still works).
    int64_t checkpoint_every_events = 32;
    /// Breaker guarding the storage backend.
    CircuitBreaker::Options breaker;
    /// Bounded retry inside each save attempt (one breaker outcome).
    RetryOptions save_retry;
    /// Threads for the heavy analytics (0 = hardware concurrency).
    int num_threads = 0;
    /// Write-ahead journal: every mutating event is appended and fsync'd
    /// *before* it is applied and acknowledged, so acknowledged events
    /// survive a crash between checkpoints. false restores the seed's
    /// checkpoint-granular durability (tests use it to isolate save
    /// faults).
    bool journal_enabled = true;
    /// Group-commit window: how long a journal flush leader waits for
    /// concurrent events to join its fsync. 0 = sync immediately.
    std::chrono::microseconds journal_batch_window{0};
    /// Drift-oracle cadence: every N successful mutating events, run a
    /// full re-analysis and bitwise-compare it against the maintained
    /// view (the `driftcheck` request does the same on demand). 0
    /// disables the periodic check. A detected drift is logged and
    /// counted (ppdb_view_delta_drift_checks_total{result="drift"}) but
    /// never fails the event that triggered it.
    int64_t drift_check_every_events = 0;
  };

  /// Loads the database at `dir` through `fs` and starts monitoring it.
  /// `fs` must outlive the service. Recovery (discarded staging dirs, torn
  /// generations) is not an error; it is reported in `recovery()`.
  static Result<std::unique_ptr<DatabaseService>> Create(std::string dir,
                                                         storage::FileSystem* fs,
                                                         Options options);

  DatabaseService(const DatabaseService&) = delete;
  DatabaseService& operator=(const DatabaseService&) = delete;

  /// Executes one parsed request. Never throws; every failure is a Status
  /// in the response. `deadline` reaches the engine's cooperative
  /// checkpoints, so heavy work bails with `kDeadlineExceeded` mid-scan.
  Response Execute(const Request& request, const Deadline& deadline)
      PPDB_EXCLUDES(mu_);

  /// One last save, bypassing the circuit breaker — at shutdown there is
  /// no later retry, so even a probably-failing backend gets the attempt.
  Status FinalCheckpoint() PPDB_EXCLUDES(mu_);

  /// What `LoadDatabase` skipped or repaired at startup.
  const storage::RecoveryReport& recovery() const { return recovery_; }

  const CircuitBreaker& breaker() const { return breaker_; }

 private:
  DatabaseService(std::string dir, storage::FileSystem* fs, Options options,
                  storage::RecoveryReport recovery,
                  violation::LivePopulationMonitor monitor,
                  storage::Database database,
                  std::unique_ptr<storage::Journal> journal);

  /// Assembles the full on-disk Database around `config` and saves it,
  /// with bounded retry. One call = one breaker-visible outcome. On
  /// success the journal (whose segments the save just pruned) rotates to
  /// the new generation, clearing any wedge.
  Status SaveNow(const privacy::PrivacyConfig& config) PPDB_REQUIRES(mu_);

  /// The breaker-gated save installed as the monitor's checkpoint hook.
  /// Always invoked with mu_ held exclusively (the hook only fires inside
  /// monitor_ event calls, which happen under the writer lock); asserted
  /// to the analysis via mu_.AssertHeld() because the call arrives through
  /// a std::function the analysis cannot follow.
  Status GuardedSave(const privacy::PrivacyConfig& config);

  Response ExecuteLocked(const Request& request, const Deadline& deadline)
      PPDB_EXCLUDES(mu_);
  Response Analyze(const Deadline& deadline) PPDB_REQUIRES_SHARED(mu_);
  Response Certify(const Request& request, const Deadline& deadline)
      PPDB_REQUIRES_SHARED(mu_);
  Response Estimate(const Request& request, const Deadline& deadline)
      PPDB_REQUIRES_SHARED(mu_);
  Response WhatIf(const Request& request, const Deadline& deadline)
      PPDB_REQUIRES_SHARED(mu_);
  Response Search(const Request& request, const Deadline& deadline)
      PPDB_REQUIRES_SHARED(mu_);
  Response Event(const Request& request) PPDB_REQUIRES(mu_);
  Response Query(const Request& request) PPDB_REQUIRES_SHARED(mu_);
  Response Stats() PPDB_REQUIRES_SHARED(mu_);
  /// §9 expansion inequality from the view's maintained counters — O(1),
  /// no scan, so it rides the broker's priority lane.
  Response ExpansionCheck(const Request& request)
      PPDB_REQUIRES_SHARED(mu_);
  /// On-demand drift oracle: full O(N·|HP|) re-analysis bitwise-compared
  /// against the view. Needs the writer lock — CheckDrift bumps the
  /// view's counters.
  Response DriftCheck() PPDB_REQUIRES(mu_);

  const std::string dir_;
  storage::FileSystem* const fs_;
  const Options options_;
  storage::RecoveryReport recovery_;

  /// Guards monitor_ + database_. Shared = analytics and queries;
  /// exclusive = events and saves. While held the service may acquire the
  /// journal (event append), the breaker (save gating), the thread pool
  /// (sharded analytics) and the tracer clock (span timestamps) — all
  /// below it in the documented global lock order.
  SharedMutex mu_{"service"} PPDB_LOCK_LEVEL(service)
      PPDB_ACQUIRED_AFTER(broker)
      PPDB_ACQUIRED_BEFORE(journal, breaker, pool);
  violation::LivePopulationMonitor monitor_ PPDB_GUARDED_BY(mu_);
  /// The loaded database minus its privacy config, whose authoritative
  /// copy lives in monitor_; `SaveNow` patches the current config in just
  /// before each save (under the exclusive lock — Catalog is move-only,
  /// so the Database cannot be copied into a scratch value).
  storage::Database database_ PPDB_GUARDED_BY(mu_);
  /// Write-ahead journal (null when Options::journal_enabled is false).
  /// Internally synchronized; the pointer itself is set once at
  /// construction and never reseated.
  const std::unique_ptr<storage::Journal> journal_;
  /// Generation holding the last successful checkpoint — the journal's
  /// base. Starts at the loaded generation.
  std::string last_checkpoint_generation_ PPDB_GUARDED_BY(mu_);
  /// Successful mutating events since the last periodic drift check
  /// (only advanced when Options::drift_check_every_events > 0).
  int64_t events_since_drift_check_ PPDB_GUARDED_BY(mu_) = 0;

  CircuitBreaker breaker_;
};

}  // namespace ppdb::server

#endif  // PPDB_SERVER_SERVICE_H_

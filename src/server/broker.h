#ifndef PPDB_SERVER_BROKER_H_
#define PPDB_SERVER_BROKER_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/deadline.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "server/request.h"

namespace ppdb::server {

/// Which bounded queue a request rides.
enum class Lane {
  /// Heavy engine work: census analyze, what-if sweeps, policy search.
  kNormal,
  /// Cheap O(|HP|)-or-less work: live-monitor events, O(1) queries, stats.
  /// Workers always pop this lane first, so a burst of census scans cannot
  /// starve the event stream.
  kPriority,
};

/// An in-process request broker: a bounded, two-lane work queue drained by
/// `common/ThreadPool` workers, with per-request deadlines, admission
/// control (load shedding), and graceful drain.
///
/// Overload contract — the properties the robustness tests pin down:
///
///  * **No unbounded queueing.** Each lane has a fixed capacity; a Submit
///    beyond it is *shed* synchronously with `kUnavailable` and a
///    `retry_after_ms=` hint. Exactly the excess is shed — an admitted
///    request is never retroactively dropped.
///  * **Every admitted request completes.** Its callback fires exactly
///    once, with the work's response, or with `kDeadlineExceeded` when its
///    deadline expired while queued (the work is then skipped) or during
///    execution (the engine's cooperative checkpoints bail out).
///  * **Deadlines start at admission.** Queueing time counts against the
///    budget, so under overload old work expires cheaply instead of
///    occupying workers to produce answers nobody is waiting for.
///  * **Drain is terminal.** `Drain()` stops admissions, lets queued and
///    in-flight work finish, and past `drain_deadline` cancels the
///    outstanding deadline tokens so cooperative work completes with
///    `kDeadlineExceeded` promptly. After drain the broker only sheds.
///
/// Work runs on `ThreadPool` workers dedicated to the broker at
/// construction; submitting never blocks the caller.
class RequestBroker {
 public:
  struct Options {
    /// Dedicated worker threads (clamped >= 1).
    int num_workers = 2;
    /// Normal-lane capacity (queued, not counting in-flight).
    size_t queue_capacity = 64;
    /// Priority-lane capacity. Sized larger: priority work is cheap, and
    /// shedding an event loses a durable state change, not just an answer.
    size_t priority_capacity = 1024;
    /// Deadline budget for requests that do not bring their own; zero
    /// means "no time budget" (still cancellable at drain).
    std::chrono::milliseconds default_deadline{0};
    /// How long `Drain()` waits for queued + in-flight work before
    /// cancelling the stragglers' deadline tokens.
    std::chrono::milliseconds drain_deadline{2000};
  };

  /// Point-in-time counters, exposed through the `stats` request.
  struct StatsSnapshot {
    int64_t submitted = 0;
    int64_t admitted = 0;
    int64_t shed = 0;
    int64_t completed = 0;
    int64_t deadline_exceeded = 0;
    int64_t queue_depth = 0;
    int64_t priority_depth = 0;
    int64_t in_flight = 0;
    int num_workers = 0;
    bool draining = false;

    /// Single-line `key=value ...` rendering.
    std::string ToPayload() const;
  };

  /// The unit of queued work. Runs on a broker worker; must poll the
  /// deadline cooperatively (directly or via the engine's checkpoints).
  using Work = std::function<Response(const Deadline&)>;
  /// Completion callback; invoked exactly once per admitted request, from
  /// a worker thread.
  using Callback = std::function<void(const Response&)>;

  explicit RequestBroker(Options options);
  /// Drains (cancelling at the drain deadline) and joins the workers.
  ~RequestBroker();

  RequestBroker(const RequestBroker&) = delete;
  RequestBroker& operator=(const RequestBroker&) = delete;

  /// Admission control. OK means the request is queued and `on_done` will
  /// fire exactly once. `kUnavailable` (with a `retry_after_ms=` hint)
  /// means it was shed — queue full or draining — and `on_done` will
  /// never fire. `deadline_budget` zero uses `Options::default_deadline`.
  Status Submit(Lane lane, std::chrono::milliseconds deadline_budget,
                Work work, Callback on_done) PPDB_EXCLUDES(mu_);
  Status Submit(Lane lane, Work work, Callback on_done) {
    return Submit(lane, std::chrono::milliseconds(0), std::move(work),
                  std::move(on_done));
  }

  /// Stops admissions and blocks until all admitted work has completed.
  /// Waits up to `Options::drain_deadline` for voluntary completion, then
  /// cancels the outstanding deadline tokens and waits for the (now
  /// fast-failing) remainder. Idempotent; safe to call concurrently.
  void Drain() PPDB_EXCLUDES(mu_);

  /// Point-in-time view of the counters, taken under one lock acquisition
  /// so the fields are mutually consistent: `submitted == admitted + shed`
  /// and `admitted == completed + queue_depth + priority_depth + in_flight`
  /// hold in every snapshot. The same mutations also feed the process-wide
  /// `obs::MetricsRegistry` (ppdb_broker_* families) under the same lock.
  StatsSnapshot Stats() const PPDB_EXCLUDES(mu_);

 private:
  struct Job {
    int64_t id = 0;
    Deadline deadline;
    Work work;
    Callback on_done;
    /// When admission happened; queue-wait time is measured from here.
    std::chrono::steady_clock::time_point admitted_at;
  };

  /// Runs on each dedicated pool worker until shutdown.
  void WorkerLoop() PPDB_EXCLUDES(mu_);
  /// Pops the next job, priority lane first. Blocks; false on shutdown.
  bool NextJob(Job* job) PPDB_EXCLUDES(mu_);

  /// Immutable after the constructor clamps it; reads need no lock.
  Options options_;
  mutable Mutex mu_{"broker"} PPDB_LOCK_LEVEL(broker)
      PPDB_ACQUIRED_AFTER(serve_writer) PPDB_ACQUIRED_BEFORE(service);
  CondVar work_cv_;   // workers wait for jobs / shutdown
  CondVar idle_cv_;   // Drain waits for quiescence
  std::deque<Job> normal_ PPDB_GUARDED_BY(mu_);
  std::deque<Job> priority_ PPDB_GUARDED_BY(mu_);
  /// Deadline tokens of admitted-but-incomplete jobs, for drain
  /// cancellation.
  std::unordered_map<int64_t, Deadline> outstanding_ PPDB_GUARDED_BY(mu_);
  int64_t next_id_ PPDB_GUARDED_BY(mu_) = 0;
  bool draining_ PPDB_GUARDED_BY(mu_) = false;
  bool stopping_ PPDB_GUARDED_BY(mu_) = false;
  int64_t in_flight_ PPDB_GUARDED_BY(mu_) = 0;
  int64_t submitted_ PPDB_GUARDED_BY(mu_) = 0;
  int64_t admitted_ PPDB_GUARDED_BY(mu_) = 0;
  int64_t shed_ PPDB_GUARDED_BY(mu_) = 0;
  int64_t completed_ PPDB_GUARDED_BY(mu_) = 0;
  int64_t deadline_exceeded_ PPDB_GUARDED_BY(mu_) = 0;
  /// Owned last so its destructor joins workers before the queues die.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace ppdb::server

#endif  // PPDB_SERVER_BROKER_H_

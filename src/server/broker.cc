#include "server/broker.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ppdb::server {

namespace {

/// retry_after_ms hint for shed requests: half the default deadline if one
/// is configured, else a flat 50ms — enough for a couple of queued census
/// shards to retire.
int64_t RetryAfterHintMs(const RequestBroker::Options& options) {
  if (options.default_deadline.count() > 0) {
    return std::max<int64_t>(1, options.default_deadline.count() / 2);
  }
  return 50;
}

/// The broker's registry instruments, registered as one batch on first use
/// (the first RequestBroker construction) so a scrape taken before any
/// traffic already shows every ppdb_broker_* family. Counters accumulate
/// across broker instances; gauges reflect the most recent writer.
struct BrokerMetrics {
  obs::Counter* submitted;
  obs::Counter* admitted;
  obs::Counter* shed;
  obs::Counter* completed;
  obs::Counter* deadline_exceeded;
  obs::Gauge* queue_depth_normal;
  obs::Gauge* queue_depth_priority;
  obs::Gauge* in_flight;
  obs::Gauge* workers;
  obs::Gauge* draining;
  obs::Histogram* queue_wait;
  obs::Histogram* service;

  static const BrokerMetrics& Get() {
    static const BrokerMetrics metrics = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Default();
      BrokerMetrics m;
      m.submitted = r.GetCounter("ppdb_broker_submitted_total",
                                 "Requests offered to the broker "
                                 "(admitted + shed).");
      m.admitted = r.GetCounter("ppdb_broker_admitted_total",
                                "Requests admitted to a lane.");
      m.shed = r.GetCounter("ppdb_broker_shed_total",
                            "Requests shed at admission (queue full or "
                            "draining).");
      m.completed = r.GetCounter("ppdb_broker_completed_total",
                                 "Admitted requests whose callback fired.");
      m.deadline_exceeded =
          r.GetCounter("ppdb_broker_deadline_exceeded_total",
                       "Admitted requests that finished with "
                       "kDeadlineExceeded.");
      m.queue_depth_normal =
          r.GetGauge("ppdb_broker_queue_depth",
                     "Requests queued per lane (admitted, not yet running).",
                     {{"lane", "normal"}});
      m.queue_depth_priority =
          r.GetGauge("ppdb_broker_queue_depth",
                     "Requests queued per lane (admitted, not yet running).",
                     {{"lane", "priority"}});
      m.in_flight = r.GetGauge("ppdb_broker_in_flight",
                               "Requests currently executing on a worker.");
      m.workers = r.GetGauge("ppdb_broker_workers",
                             "Dedicated broker worker threads.");
      m.draining = r.GetGauge("ppdb_broker_draining",
                              "1 once Drain() has been called, else 0.");
      m.queue_wait = r.GetHistogram(
          "ppdb_broker_queue_wait_seconds",
          "Time from admission to a worker picking the request up.");
      m.service = r.GetHistogram(
          "ppdb_broker_service_seconds",
          "Worker execution time of a request (queue wait excluded).");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

std::string RequestBroker::StatsSnapshot::ToPayload() const {
  std::string out;
  out += "submitted=" + std::to_string(submitted);
  out += " admitted=" + std::to_string(admitted);
  out += " shed=" + std::to_string(shed);
  out += " completed=" + std::to_string(completed);
  out += " deadline_exceeded=" + std::to_string(deadline_exceeded);
  out += " queue_depth=" + std::to_string(queue_depth);
  out += " priority_depth=" + std::to_string(priority_depth);
  out += " in_flight=" + std::to_string(in_flight);
  out += " workers=" + std::to_string(num_workers);
  out += draining ? " draining=1" : " draining=0";
  return out;
}

RequestBroker::RequestBroker(Options options) : options_(options) {
  options_.num_workers = std::max(options_.num_workers, 1);
  options_.queue_capacity = std::max<size_t>(options_.queue_capacity, 1);
  options_.priority_capacity = std::max<size_t>(options_.priority_capacity, 1);
  {
    // The registry mirrors are documented as mutating under the Stats()
    // mutex (see Stats() in the header). The constructor must honor that
    // too: another broker's worker may be mid-Drain() on the same
    // process-wide gauges while this one resets them.
    MutexLock lock(mu_);
    BrokerMetrics::Get().workers->Set(options_.num_workers);
    BrokerMetrics::Get().draining->Set(0);
  }
  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
  for (int i = 0; i < options_.num_workers; ++i) {
    pool_->Submit([this] { WorkerLoop(); });
  }
}

RequestBroker::~RequestBroker() {
  Drain();
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  work_cv_.NotifyAll();
  pool_.reset();  // joins the worker loops
}

Status RequestBroker::Submit(Lane lane,
                             std::chrono::milliseconds deadline_budget,
                             Work work, Callback on_done) {
  const BrokerMetrics& metrics = BrokerMetrics::Get();
  Job job;
  {
    MutexLock lock(mu_);
    ++submitted_;
    metrics.submitted->Add();
    if (draining_) {
      ++shed_;
      metrics.shed->Add();
      return Status::Unavailable("broker is draining; not accepting work");
    }
    std::deque<Job>& queue = lane == Lane::kPriority ? priority_ : normal_;
    const size_t capacity = lane == Lane::kPriority
                                ? options_.priority_capacity
                                : options_.queue_capacity;
    if (queue.size() >= capacity) {
      ++shed_;
      metrics.shed->Add();
      return Status::Unavailable(
          "queue full (" + std::to_string(capacity) +
          " queued); retry_after_ms=" +
          std::to_string(RetryAfterHintMs(options_)));
    }
    ++admitted_;
    metrics.admitted->Add();
    job.id = next_id_++;
    job.admitted_at = std::chrono::steady_clock::now();
    // The clock starts here, at admission — time spent queued counts.
    std::chrono::milliseconds budget =
        deadline_budget.count() > 0 ? deadline_budget
                                    : options_.default_deadline;
    job.deadline = budget.count() > 0 ? Deadline::After(budget)
                                      : Deadline::Cancellable();
    job.work = std::move(work);
    job.on_done = std::move(on_done);
    outstanding_.emplace(job.id, job.deadline);
    queue.push_back(std::move(job));
    (lane == Lane::kPriority ? metrics.queue_depth_priority
                             : metrics.queue_depth_normal)
        ->Set(static_cast<double>(queue.size()));
  }
  work_cv_.NotifyOne();
  return Status::OK();
}

bool RequestBroker::NextJob(Job* job) {
  const BrokerMetrics& metrics = BrokerMetrics::Get();
  MutexLock lock(mu_);
  work_cv_.Wait(mu_, [this] {
    return stopping_ || !priority_.empty() || !normal_.empty();
  });
  if (priority_.empty() && normal_.empty()) return false;  // stopping
  const bool from_priority = !priority_.empty();
  std::deque<Job>& queue = from_priority ? priority_ : normal_;
  *job = std::move(queue.front());
  queue.pop_front();
  ++in_flight_;
  (from_priority ? metrics.queue_depth_priority : metrics.queue_depth_normal)
      ->Set(static_cast<double>(queue.size()));
  metrics.in_flight->Set(static_cast<double>(in_flight_));
  metrics.queue_wait->Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    job->admitted_at)
          .count());
  return true;
}

void RequestBroker::WorkerLoop() {
  const BrokerMetrics& metrics = BrokerMetrics::Get();
  Job job;
  while (NextJob(&job)) {
    Response response;
    // A job whose deadline lapsed while queued is answered without being
    // run — under overload this is the main release valve.
    if (job.deadline.Expired()) {
      response.status =
          Status::DeadlineExceeded("deadline expired while queued");
    } else {
      // The trace id is the broker request id, so identical request
      // sequences produce identical trace dumps; spans opened inside the
      // engine attach under this root.
      obs::TraceScope trace(obs::Tracer::Default(),
                            "ppdb-req-" + std::to_string(job.id), "request");
      const auto started = std::chrono::steady_clock::now();
      response = job.work(job.deadline);
      metrics.service->Observe(std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - started)
                                   .count());
    }
    job.on_done(response);
    const bool expired = response.status.IsDeadlineExceeded();
    const int64_t finished_id = job.id;
    job = Job();  // release work/callback state before signalling idle
    {
      MutexLock lock(mu_);
      --in_flight_;
      ++completed_;
      metrics.completed->Add();
      if (expired) {
        ++deadline_exceeded_;
        metrics.deadline_exceeded->Add();
      }
      metrics.in_flight->Set(static_cast<double>(in_flight_));
      outstanding_.erase(finished_id);
    }
    idle_cv_.NotifyAll();
  }
}

void RequestBroker::Drain() {
  mu_.Lock();
  draining_ = true;
  BrokerMetrics::Get().draining->Set(1);
  const auto quiescent = [this] {
    return priority_.empty() && normal_.empty() && in_flight_ == 0;
  };
  if (!idle_cv_.WaitFor(mu_, options_.drain_deadline, quiescent)) {
    // Past the drain deadline: cancel every outstanding token so queued
    // jobs answer immediately and in-flight engine loops bail at their
    // next cooperative checkpoint.
    std::vector<Deadline> to_cancel;
    to_cancel.reserve(outstanding_.size());
    for (const auto& [id, deadline] : outstanding_) to_cancel.push_back(deadline);
    mu_.Unlock();
    for (const Deadline& deadline : to_cancel) deadline.Cancel();
    mu_.Lock();
    idle_cv_.Wait(mu_, quiescent);
  }
  mu_.Unlock();
}

RequestBroker::StatsSnapshot RequestBroker::Stats() const {
  MutexLock lock(mu_);
  StatsSnapshot stats;
  stats.submitted = submitted_;
  stats.admitted = admitted_;
  stats.shed = shed_;
  stats.completed = completed_;
  stats.deadline_exceeded = deadline_exceeded_;
  stats.queue_depth = static_cast<int64_t>(normal_.size());
  stats.priority_depth = static_cast<int64_t>(priority_.size());
  stats.in_flight = in_flight_;
  stats.num_workers = options_.num_workers;
  stats.draining = draining_;
  return stats;
}

}  // namespace ppdb::server

#include "server/broker.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace ppdb::server {

namespace {

/// retry_after_ms hint for shed requests: half the default deadline if one
/// is configured, else a flat 50ms — enough for a couple of queued census
/// shards to retire.
int64_t RetryAfterHintMs(const RequestBroker::Options& options) {
  if (options.default_deadline.count() > 0) {
    return std::max<int64_t>(1, options.default_deadline.count() / 2);
  }
  return 50;
}

}  // namespace

std::string RequestBroker::StatsSnapshot::ToPayload() const {
  std::string out;
  out += "submitted=" + std::to_string(submitted);
  out += " admitted=" + std::to_string(admitted);
  out += " shed=" + std::to_string(shed);
  out += " completed=" + std::to_string(completed);
  out += " deadline_exceeded=" + std::to_string(deadline_exceeded);
  out += " queue_depth=" + std::to_string(queue_depth);
  out += " priority_depth=" + std::to_string(priority_depth);
  out += " in_flight=" + std::to_string(in_flight);
  out += " workers=" + std::to_string(num_workers);
  out += draining ? " draining=1" : " draining=0";
  return out;
}

RequestBroker::RequestBroker(Options options) : options_(options) {
  options_.num_workers = std::max(options_.num_workers, 1);
  options_.queue_capacity = std::max<size_t>(options_.queue_capacity, 1);
  options_.priority_capacity = std::max<size_t>(options_.priority_capacity, 1);
  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
  for (int i = 0; i < options_.num_workers; ++i) {
    pool_->Submit([this] { WorkerLoop(); });
  }
}

RequestBroker::~RequestBroker() {
  Drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  pool_.reset();  // joins the worker loops
}

Status RequestBroker::Submit(Lane lane,
                             std::chrono::milliseconds deadline_budget,
                             Work work, Callback on_done) {
  Job job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++submitted_;
    if (draining_) {
      ++shed_;
      return Status::Unavailable("broker is draining; not accepting work");
    }
    std::deque<Job>& queue = lane == Lane::kPriority ? priority_ : normal_;
    const size_t capacity = lane == Lane::kPriority
                                ? options_.priority_capacity
                                : options_.queue_capacity;
    if (queue.size() >= capacity) {
      ++shed_;
      return Status::Unavailable(
          "queue full (" + std::to_string(capacity) +
          " queued); retry_after_ms=" +
          std::to_string(RetryAfterHintMs(options_)));
    }
    ++admitted_;
    job.id = next_id_++;
    // The clock starts here, at admission — time spent queued counts.
    std::chrono::milliseconds budget =
        deadline_budget.count() > 0 ? deadline_budget
                                    : options_.default_deadline;
    job.deadline = budget.count() > 0 ? Deadline::After(budget)
                                      : Deadline::Cancellable();
    job.work = std::move(work);
    job.on_done = std::move(on_done);
    outstanding_.emplace(job.id, job.deadline);
    queue.push_back(std::move(job));
  }
  work_cv_.notify_one();
  return Status::OK();
}

bool RequestBroker::NextJob(Job* job) {
  std::unique_lock<std::mutex> lock(mu_);
  work_cv_.wait(lock, [this] {
    return stopping_ || !priority_.empty() || !normal_.empty();
  });
  if (priority_.empty() && normal_.empty()) return false;  // stopping
  std::deque<Job>& queue = priority_.empty() ? normal_ : priority_;
  *job = std::move(queue.front());
  queue.pop_front();
  ++in_flight_;
  return true;
}

void RequestBroker::WorkerLoop() {
  Job job;
  while (NextJob(&job)) {
    Response response;
    // A job whose deadline lapsed while queued is answered without being
    // run — under overload this is the main release valve.
    if (job.deadline.Expired()) {
      response.status =
          Status::DeadlineExceeded("deadline expired while queued");
    } else {
      response = job.work(job.deadline);
    }
    job.on_done(response);
    const bool expired = response.status.IsDeadlineExceeded();
    const int64_t finished_id = job.id;
    job = Job();  // release work/callback state before signalling idle
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      ++completed_;
      if (expired) ++deadline_exceeded_;
      outstanding_.erase(finished_id);
    }
    idle_cv_.notify_all();
  }
}

void RequestBroker::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  draining_ = true;
  const auto quiescent = [this] {
    return priority_.empty() && normal_.empty() && in_flight_ == 0;
  };
  if (!idle_cv_.wait_for(lock, options_.drain_deadline, quiescent)) {
    // Past the drain deadline: cancel every outstanding token so queued
    // jobs answer immediately and in-flight engine loops bail at their
    // next cooperative checkpoint.
    std::vector<Deadline> to_cancel;
    to_cancel.reserve(outstanding_.size());
    for (const auto& [id, deadline] : outstanding_) to_cancel.push_back(deadline);
    lock.unlock();
    for (const Deadline& deadline : to_cancel) deadline.Cancel();
    lock.lock();
    idle_cv_.wait(lock, quiescent);
  }
}

RequestBroker::StatsSnapshot RequestBroker::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  StatsSnapshot stats;
  stats.submitted = submitted_;
  stats.admitted = admitted_;
  stats.shed = shed_;
  stats.completed = completed_;
  stats.deadline_exceeded = deadline_exceeded_;
  stats.queue_depth = static_cast<int64_t>(normal_.size());
  stats.priority_depth = static_cast<int64_t>(priority_.size());
  stats.in_flight = in_flight_;
  stats.num_workers = options_.num_workers;
  stats.draining = draining_;
  return stats;
}

}  // namespace ppdb::server

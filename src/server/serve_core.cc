#include "server/serve_core.h"

#include <istream>
#include <ostream>
#include <streambuf>
#include <utility>

namespace ppdb::server {

void ResponseWriter::Write(int64_t id, const Response& response) {
  MutexLock lock(mu_);
  out_ << RenderResponse(id, response);
  out_.flush();
}

Lane LaneForRequest(const Request& request) {
  return request.IsCheap() ? Lane::kPriority : Lane::kNormal;
}

RequestBroker::Work MakeRequestWork(DatabaseService& service,
                                    RequestBroker& broker, Request request) {
  const bool is_stats = request.kind == RequestKind::kStats;
  return [&service, &broker, request = std::move(request),
          is_stats](const Deadline& deadline) {
    Response response = service.Execute(request, deadline);
    if (is_stats && response.status.ok()) {
      response.payload += ' ';
      response.payload += broker.Stats().ToPayload();
    }
    return response;
  };
}

std::string DrainAckPayload(const Status& final_checkpoint,
                            const RequestBroker::StatsSnapshot& stats) {
  return "drained=1 final_checkpoint=" +
         std::string(StatusCodeToString(final_checkpoint.code())) + " " +
         stats.ToPayload();
}

std::string RenderResponse(int64_t id, const Response& response) {
  // Multi-line payloads (Prometheus exposition) get block framing; the
  // single-line format would scrub their newlines into spaces.
  if (response.status.ok() &&
      response.payload.find('\n') != std::string::npos) {
    return FormatBlockResponse(id, response.payload);
  }
  return FormatResponse(id, response);
}

Status LineTooLongError(size_t max_line) {
  return Status::InvalidArgument(
      "line_too_long: request line exceeds " + std::to_string(max_line) +
      " bytes");
}

bool ReadBoundedLine(std::istream& in, std::string* line, bool* oversized,
                     size_t max_line) {
  line->clear();
  *oversized = false;
  if (!in.good()) return false;
  std::streambuf* buf = in.rdbuf();
  int ch = buf->sbumpc();
  if (ch == std::char_traits<char>::eof()) {
    in.setstate(std::ios::eofbit | std::ios::failbit);
    return false;
  }
  for (; ch != std::char_traits<char>::eof(); ch = buf->sbumpc()) {
    if (ch == '\n') return true;
    if (line->size() < max_line) {
      line->push_back(static_cast<char>(ch));
    } else {
      // Keep consuming to the terminator so the stream stays synchronized
      // on line boundaries, but stop storing: memory stays O(max_line).
      *oversized = true;
    }
  }
  in.setstate(std::ios::eofbit);
  return true;  // final line without a terminator, like getline
}

}  // namespace ppdb::server

#include "server/serve.h"

#include <istream>
#include <ostream>
#include <string>
#include <utility>

#include "common/mutex.h"
#include "common/string_util.h"
#include "common/thread_annotations.h"

namespace ppdb::server {

namespace {

/// Serializes response lines from broker workers and the serve thread.
class ResponseWriter {
 public:
  explicit ResponseWriter(std::ostream& out) : out_(out) {}

  void Write(int64_t id, const Response& response) PPDB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    // Multi-line payloads (Prometheus exposition) get block framing; the
    // single-line format would scrub their newlines into spaces.
    if (response.status.ok() &&
        response.payload.find('\n') != std::string::npos) {
      out_ << FormatBlockResponse(id, response.payload);
    } else {
      out_ << FormatResponse(id, response);
    }
    out_.flush();
  }

 private:
  Mutex mu_;
  /// The stream is shared with nothing else while Serve runs; all writes
  /// (broker workers and the serve thread) funnel through Write().
  std::ostream& out_ PPDB_GUARDED_BY(mu_);
};

}  // namespace

Status Serve(std::istream& in, std::ostream& out, DatabaseService& service,
             RequestBroker& broker) {
  ResponseWriter writer(out);
  std::string line;
  int64_t id = 0;
  int64_t drain_id = -1;

  while (drain_id < 0 && std::getline(in, line)) {
    ++id;
    std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty() || trimmed[0] == '#') {
      --id;  // comments and blanks do not consume an id
      continue;
    }
    Result<Request> parsed = ParseRequest(trimmed);
    if (!parsed.ok()) {
      writer.Write(id, Response{parsed.status(), {}});
      continue;
    }
    Request request = std::move(parsed).value();
    if (request.kind == RequestKind::kDrain) {
      drain_id = id;  // answered below, after the drain completes
      break;
    }
    const Lane lane = request.IsCheap() ? Lane::kPriority : Lane::kNormal;
    const int64_t this_id = id;
    const bool is_stats = request.kind == RequestKind::kStats;
    Status admitted = broker.Submit(
        lane, request.deadline,
        [&service, &broker, request = std::move(request),
         is_stats](const Deadline& deadline) {
          Response response = service.Execute(request, deadline);
          if (is_stats && response.status.ok()) {
            response.payload += ' ';
            response.payload += broker.Stats().ToPayload();
          }
          return response;
        },
        [&writer, this_id](const Response& response) {
          writer.Write(this_id, response);
        });
    if (!admitted.ok()) {
      writer.Write(this_id, Response{std::move(admitted), {}});
    }
  }

  broker.Drain();
  Status final_checkpoint = service.FinalCheckpoint();
  if (drain_id >= 0) {
    Response response;
    response.payload =
        "drained=1 final_checkpoint=" +
        std::string(StatusCodeToString(final_checkpoint.code())) + " " +
        broker.Stats().ToPayload();
    writer.Write(drain_id, response);
  }
  return final_checkpoint;
}

}  // namespace ppdb::server

#include "server/serve.h"

#include <istream>
#include <string>
#include <utility>

#include "common/string_util.h"
#include "server/net/conn_metrics.h"
#include "server/serve_core.h"

namespace ppdb::server {

Status Serve(std::istream& in, std::ostream& out, DatabaseService& service,
             RequestBroker& broker) {
  // Touch the connection metric families so a pipe-only process (the mode
  // `stats prometheus` is scraped through) still exports them at zero —
  // the exposition must not depend on whether a socket listener ever ran.
  net::ConnMetrics::Get();

  ResponseWriter writer(out);
  std::string line;
  bool oversized = false;
  int64_t id = 0;
  int64_t drain_id = -1;

  while (drain_id < 0 && ReadBoundedLine(in, &line, &oversized)) {
    ++id;
    if (oversized) {
      // The line was consumed to its terminator, so the stream is still
      // synchronized — answer and keep serving.
      writer.Write(id, Response{LineTooLongError(), {}});
      continue;
    }
    std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty() || trimmed[0] == '#') {
      --id;  // comments and blanks do not consume an id
      continue;
    }
    Result<Request> parsed = ParseRequest(trimmed);
    if (!parsed.ok()) {
      writer.Write(id, Response{parsed.status(), {}});
      continue;
    }
    Request request = std::move(parsed).value();
    if (request.kind == RequestKind::kDrain) {
      drain_id = id;  // answered below, after the drain completes
      break;
    }
    const Lane lane = LaneForRequest(request);
    const int64_t this_id = id;
    const auto deadline = request.deadline;
    Status admitted = broker.Submit(
        lane, deadline, MakeRequestWork(service, broker, std::move(request)),
        [&writer, this_id](const Response& response) {
          writer.Write(this_id, response);
        });
    if (!admitted.ok()) {
      writer.Write(this_id, Response{std::move(admitted), {}});
    }
  }

  broker.Drain();
  Status final_checkpoint = service.FinalCheckpoint();
  if (drain_id >= 0) {
    Response response;
    response.payload = DrainAckPayload(final_checkpoint, broker.Stats());
    writer.Write(drain_id, response);
  }
  return final_checkpoint;
}

}  // namespace ppdb::server

#include "server/service.h"

#include <chrono>
#include <cstdio>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/macros.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "privacy/dimension.h"
#include "storage/database_io.h"
#include "violation/default_model.h"
#include "violation/detector.h"
#include "violation/incremental.h"
#include "violation/policy_search.h"
#include "violation/probability.h"
#include "violation/what_if.h"

namespace ppdb::server {

namespace {

using violation::LivePopulationMonitor;

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

Response Err(Status status) { return Response{std::move(status), {}}; }

Response Ok(std::string payload) {
  return Response{Status::OK(), std::move(payload)};
}

/// Every request kind, for eager per-kind counter registration. Must list
/// the full RequestKind enum.
constexpr RequestKind kAllKinds[] = {
    RequestKind::kPing,           RequestKind::kStats,
    RequestKind::kMetrics,        RequestKind::kTrace,
    RequestKind::kAnalyze,        RequestKind::kCertify,
    RequestKind::kEstimate,       RequestKind::kWhatIf,
    RequestKind::kSearch,         RequestKind::kEventAdd,
    RequestKind::kEventRemove,    RequestKind::kEventSetPref,
    RequestKind::kEventRemovePref, RequestKind::kEventSetThreshold,
    RequestKind::kQuery,          RequestKind::kExpansionCheck,
    RequestKind::kDriftCheck,     RequestKind::kSave,
    RequestKind::kDrain,
};

/// Numeric encoding of the breaker state for the ppdb_service_breaker_state
/// gauge: 0 closed, 1 open, 2 half_open.
double BreakerStateValue(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed: return 0.0;
    case CircuitBreaker::State::kOpen: return 1.0;
    case CircuitBreaker::State::kHalfOpen: return 2.0;
  }
  return -1.0;
}

/// The service's registry instruments, registered as one batch on first use
/// (the first DatabaseService construction): per-kind request counters,
/// read/write latency, and the breaker mirror.
struct ServiceMetrics {
  std::unordered_map<RequestKind, obs::Counter*> requests;
  obs::Histogram* read_seconds;
  obs::Histogram* write_seconds;
  obs::Gauge* breaker_state;
  obs::Counter* transitions_to[3];  // indexed by BreakerStateValue(to)

  static const ServiceMetrics& Get() {
    static const ServiceMetrics metrics = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Default();
      ServiceMetrics m;
      for (RequestKind kind : kAllKinds) {
        m.requests[kind] = r.GetCounter(
            "ppdb_service_requests_total",
            "Requests executed by the service, by parsed kind.",
            {{"kind", std::string(RequestKindName(kind))}});
      }
      m.read_seconds = r.GetHistogram(
          "ppdb_service_read_seconds",
          "Execute latency of read requests (IsWrite() == false).");
      m.write_seconds = r.GetHistogram(
          "ppdb_service_write_seconds",
          "Execute latency of write requests (IsWrite() == true).");
      m.breaker_state = r.GetGauge(
          "ppdb_service_breaker_state",
          "Storage circuit breaker state: 0 closed, 1 open, 2 half_open.");
      const CircuitBreaker::State targets[] = {
          CircuitBreaker::State::kClosed, CircuitBreaker::State::kOpen,
          CircuitBreaker::State::kHalfOpen};
      for (CircuitBreaker::State to : targets) {
        m.transitions_to[static_cast<int>(BreakerStateValue(to))] =
            r.GetCounter(
                "ppdb_service_breaker_transitions_total",
                "Breaker state transitions, by destination state.",
                {{"to", std::string(CircuitBreaker::StateName(to))}});
      }
      return m;
    }();
    return metrics;
  }
};

/// Translates a mutating request into its journal payload. The purpose
/// travels as its *name* (ids are registry-relative and would not survive
/// a reload).
Result<storage::JournalEvent> JournalEventFromRequest(
    const Request& request) {
  using Kind = storage::JournalEvent::Kind;
  storage::JournalEvent event;
  event.provider = request.provider;
  switch (request.kind) {
    case RequestKind::kEventAdd:
      event.kind = Kind::kAddProvider;
      event.threshold = request.threshold;
      break;
    case RequestKind::kEventRemove:
      event.kind = Kind::kRemoveProvider;
      break;
    case RequestKind::kEventSetPref:
      event.kind = Kind::kSetPreference;
      event.attribute = request.attribute;
      event.purpose = request.purpose;
      event.visibility = request.visibility;
      event.granularity = request.granularity;
      event.retention = request.retention;
      break;
    case RequestKind::kEventRemovePref:
      event.kind = Kind::kRemovePreference;
      event.attribute = request.attribute;
      event.purpose = request.purpose;
      break;
    case RequestKind::kEventSetThreshold:
      event.kind = Kind::kSetThreshold;
      event.threshold = request.threshold;
      break;
    default:
      return Status::Internal("not an event");
  }
  return event;
}

/// Installs the metrics mirror into the breaker options, chaining any
/// callback the caller configured.
CircuitBreaker::Options WithBreakerMirror(CircuitBreaker::Options options) {
  const ServiceMetrics& metrics = ServiceMetrics::Get();
  auto prior = std::move(options.on_transition);
  options.on_transition = [prior = std::move(prior), &metrics](
                              CircuitBreaker::State from,
                              CircuitBreaker::State to) {
    metrics.breaker_state->Set(BreakerStateValue(to));
    metrics.transitions_to[static_cast<int>(BreakerStateValue(to))]->Add();
    if (prior) prior(from, to);
  };
  return options;
}

}  // namespace

Result<std::unique_ptr<DatabaseService>> DatabaseService::Create(
    std::string dir, storage::FileSystem* fs, Options options) {
  storage::RecoveryReport recovery;
  PPDB_ASSIGN_OR_RETURN(storage::Database database,
                        storage::LoadDatabase(dir, *fs, &recovery));
  violation::ViolationDetector::Options detector_options;
  detector_options.num_threads = options.num_threads;
  PPDB_ASSIGN_OR_RETURN(
      LivePopulationMonitor monitor,
      LivePopulationMonitor::Create(std::move(database.config),
                                    detector_options));
  database.config = privacy::PrivacyConfig();
  std::unique_ptr<storage::Journal> journal;
  if (options.journal_enabled) {
    // The journal resumes the segment LoadDatabase just replayed (its
    // base is the loaded generation), so acknowledged-but-uncheckpointed
    // events stay covered until the next checkpoint prunes them.
    storage::Journal::Options journal_options;
    journal_options.batch_window = options.journal_batch_window;
    PPDB_ASSIGN_OR_RETURN(
        journal, storage::Journal::Open(dir, recovery.loaded_generation, *fs,
                                        journal_options));
  }
  // ppdb-lint: allow(raw-new) -- private ctor, make_unique cannot reach it.
  std::unique_ptr<DatabaseService> service(new DatabaseService(
      std::move(dir), fs, options, std::move(recovery), std::move(monitor),
      std::move(database), std::move(journal)));
  return service;
}

DatabaseService::DatabaseService(std::string dir, storage::FileSystem* fs,
                                 Options options,
                                 storage::RecoveryReport recovery,
                                 LivePopulationMonitor monitor,
                                 storage::Database database,
                                 std::unique_ptr<storage::Journal> journal)
    : dir_(std::move(dir)),
      fs_(fs),
      options_(options),
      recovery_(std::move(recovery)),
      monitor_(std::move(monitor)),
      database_(std::move(database)),
      journal_(std::move(journal)),
      last_checkpoint_generation_(recovery_.loaded_generation),
      breaker_(WithBreakerMirror(options.breaker)) {
  ServiceMetrics::Get().breaker_state->Set(
      BreakerStateValue(breaker_.state()));
  LivePopulationMonitor::CheckpointHook hook;
  hook.every_events = options_.checkpoint_every_events;
  hook.save = [this](const privacy::PrivacyConfig& config) {
    return GuardedSave(config);
  };
  monitor_.SetCheckpointHook(std::move(hook));
}

Status DatabaseService::SaveNow(const privacy::PrivacyConfig& config) {
  database_.config = config;
  storage::SaveOptions save_options;
  save_options.retry = options_.save_retry;
  std::string committed;
  PPDB_RETURN_NOT_OK(
      storage::SaveDatabase(dir_, database_, *fs_, save_options, &committed));
  last_checkpoint_generation_ = committed;
  if (journal_ != nullptr) {
    // The commit pruned every journal segment; start the next one. A
    // rotation failure leaves the journal wedged — the checkpoint itself
    // still succeeded (all applied events are in `committed`), and the
    // next event's rescue checkpoint retries the rotation.
    if (Status rotated = journal_->RotateTo(committed); !rotated.ok()) {
      PPDB_LOG(kWarning) << "journal rotation to " << committed
                         << " failed: " << rotated.message();
    }
  }
  return Status::OK();
}

Status DatabaseService::GuardedSave(const privacy::PrivacyConfig& config) {
  // Held by the event / save / checkpoint path that fired the monitor's
  // hook (see the declaration comment); the std::function hop hides that
  // from the thread-safety analysis.
  mu_.AssertHeld();
  PPDB_RETURN_NOT_OK(breaker_.Allow());
  Status status = SaveNow(config);
  breaker_.Record(status);
  return status;
}

Status DatabaseService::FinalCheckpoint() {
  WriterMutexLock lock(mu_);
  // Deliberately not breaker-gated: this is the last save this process
  // will ever attempt, so it runs even against a backend the breaker
  // currently distrusts. A success is still fed back so the breaker's
  // counters tell the truth in post-mortem logs.
  Status status = SaveNow(monitor_.config());
  breaker_.Record(status);
  return status;
}

Response DatabaseService::Execute(const Request& request,
                                  const Deadline& deadline) {
  const ServiceMetrics& metrics = ServiceMetrics::Get();
  if (auto it = metrics.requests.find(request.kind);
      it != metrics.requests.end()) {
    it->second->Add();
  }
  obs::SpanScope span(RequestKindName(request.kind));
  const auto started = std::chrono::steady_clock::now();
  Response response = [&] {
    if (deadline.Expired()) {
      return Err(deadline.Check(RequestKindName(request.kind)));
    }
    if (request.IsWrite() &&
        breaker_.state() == CircuitBreaker::State::kOpen) {
      return Err(Status::Unavailable(
          "service is read-only: storage breaker open; retry_after_ms=" +
          std::to_string(options_.breaker.open_duration.count())));
    }
    return ExecuteLocked(request, deadline);
  }();
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - started)
                             .count();
  (request.IsWrite() ? metrics.write_seconds : metrics.read_seconds)
      ->Observe(elapsed);
  return response;
}

Response DatabaseService::ExecuteLocked(const Request& request,
                                        const Deadline& deadline) {
  switch (request.kind) {
    case RequestKind::kPing:
      return Ok("pong");
    case RequestKind::kDrain:
      // The serve loop intercepts drain before it reaches the service;
      // answering here keeps direct callers (tests) working.
      return Ok("draining");
    case RequestKind::kStats: {
      ReaderMutexLock lock(mu_);
      return Stats();
    }
    case RequestKind::kMetrics:
      // The registry synchronizes itself; no service lock needed.
      return Ok(obs::MetricsRegistry::Default().RenderPrometheus());
    case RequestKind::kTrace:
      return Ok(obs::Tracer::Default().SnapshotJson());
    case RequestKind::kAnalyze: {
      ReaderMutexLock lock(mu_);
      return Analyze(deadline);
    }
    case RequestKind::kCertify: {
      ReaderMutexLock lock(mu_);
      return Certify(request, deadline);
    }
    case RequestKind::kEstimate: {
      ReaderMutexLock lock(mu_);
      return Estimate(request, deadline);
    }
    case RequestKind::kWhatIf: {
      ReaderMutexLock lock(mu_);
      return WhatIf(request, deadline);
    }
    case RequestKind::kSearch: {
      ReaderMutexLock lock(mu_);
      return Search(request, deadline);
    }
    case RequestKind::kQuery: {
      ReaderMutexLock lock(mu_);
      return Query(request);
    }
    case RequestKind::kExpansionCheck: {
      ReaderMutexLock lock(mu_);
      return ExpansionCheck(request);
    }
    case RequestKind::kDriftCheck: {
      WriterMutexLock lock(mu_);
      return DriftCheck();
    }
    case RequestKind::kEventAdd:
    case RequestKind::kEventRemove:
    case RequestKind::kEventSetPref:
    case RequestKind::kEventRemovePref:
    case RequestKind::kEventSetThreshold: {
      WriterMutexLock lock(mu_);
      return Event(request);
    }
    case RequestKind::kSave: {
      WriterMutexLock lock(mu_);
      Status status = monitor_.CheckpointNow();
      if (!status.ok()) return Err(std::move(status));
      return Ok("checkpoints_taken=" +
                std::to_string(monitor_.checkpoints_taken()));
    }
  }
  return Err(Status::Internal("unhandled request kind"));
}

Response DatabaseService::Analyze(const Deadline& deadline) {
  violation::ViolationDetector::Options options;
  options.num_threads = options_.num_threads;
  options.deadline = deadline;
  violation::ViolationDetector detector(&monitor_.config(), options);
  Result<violation::ViolationReport> report = detector.Analyze();
  if (!report.ok()) return Err(report.status());
  const violation::ViolationReport& r = report.value();
  return Ok("providers=" + std::to_string(r.num_providers()) +
            " violated=" + std::to_string(r.num_violated) +
            " pw=" + Num(r.ProbabilityOfViolation()) +
            " total_severity=" + Num(r.total_severity));
}

Response DatabaseService::Certify(const Request& request,
                                  const Deadline& deadline) {
  if (Status due = deadline.Check("certify"); !due.ok()) {
    return Err(std::move(due));
  }
  violation::ViolationReport report = monitor_.Snapshot();
  Result<violation::AlphaCertification> cert =
      violation::CertifyAlphaPpdb(report, request.alpha);
  if (!cert.ok()) return Err(cert.status());
  const violation::AlphaCertification& c = cert.value();
  return Ok("alpha=" + Num(c.alpha) + " pw=" + Num(c.p_violation) +
            " certified=" + (c.certified ? std::string("1") : "0") +
            " certified_with_margin=" +
            (c.certified_with_margin ? std::string("1") : "0") +
            " ci95=[" + Num(c.interval.lo) + "," + Num(c.interval.hi) + "]");
}

Response DatabaseService::Estimate(const Request& request,
                                   const Deadline& deadline) {
  if (Status due = deadline.Check("estimate"); !due.ok()) {
    return Err(std::move(due));
  }
  violation::ViolationReport report = monitor_.Snapshot();
  Rng rng(request.seed);
  Result<violation::TrialEstimate> estimate =
      Status::Internal("unreachable");
  if (request.target == "pw") {
    estimate = violation::EstimateViolationProbability(
        report, request.trials, rng, options_.num_threads);
  } else {
    violation::DefaultReport defaults =
        violation::ComputeDefaults(report, monitor_.config());
    estimate = violation::EstimateDefaultProbability(
        defaults, request.trials, rng, options_.num_threads);
  }
  if (!estimate.ok()) return Err(estimate.status());
  const violation::TrialEstimate& e = estimate.value();
  return Ok("estimate=" + Num(e.estimate) + " census=" + Num(e.census) +
            " trials=" + std::to_string(e.trials) +
            " hits=" + std::to_string(e.hits) + " ci95=[" + Num(e.ci95.lo) +
            "," + Num(e.ci95.hi) + "]");
}

Response DatabaseService::WhatIf(const Request& request,
                                 const Deadline& deadline) {
  Result<privacy::Dimension> dimension =
      privacy::DimensionFromName(request.dimension);
  if (!dimension.ok()) return Err(dimension.status());
  if (dimension.value() == privacy::Dimension::kPurpose) {
    return Err(Status::InvalidArgument(
        "whatif widens an ordered dimension (v|g|r), not purpose"));
  }
  violation::WhatIfAnalyzer::Options options;
  options.extra_utility_per_step = request.extra_utility_per_step;
  options.detector_options.num_threads = options_.num_threads;
  options.detector_options.deadline = deadline;
  violation::WhatIfAnalyzer analyzer(&monitor_.config(), options);
  Result<std::vector<violation::ExpansionPoint>> points =
      analyzer.RunSchedule(violation::WhatIfAnalyzer::UniformSchedule(
          dimension.value(), request.steps));
  if (!points.ok()) return Err(points.status());
  const violation::ExpansionPoint& last = points.value().back();
  int justified = 0;
  for (const violation::ExpansionPoint& point : points.value()) {
    if (point.justified) ++justified;
  }
  return Ok("points=" + std::to_string(points.value().size()) +
            " justified=" + std::to_string(justified) +
            " final_pw=" + Num(last.p_violation) +
            " final_pdefault=" + Num(last.p_default) +
            " final_n_remaining=" + std::to_string(last.n_remaining) +
            " break_even_extra_utility=" +
            Num(last.break_even_extra_utility));
}

Response DatabaseService::Search(const Request& request,
                                 const Deadline& deadline) {
  violation::SearchOptions options;
  options.value_model = violation::MakeLinearExposureValue(request.value_scale);
  options.max_steps = request.max_steps;
  options.detector_options.num_threads = options_.num_threads;
  options.detector_options.deadline = deadline;
  Result<violation::SearchResult> result =
      violation::GreedyPolicySearch(monitor_.config(), options);
  if (!result.ok()) return Err(result.status());
  const violation::SearchResult& r = result.value();
  return Ok("accepted_moves=" + std::to_string(r.trajectory.size()) +
            " best_utility=" + Num(r.best_utility) +
            " baseline_utility=" + Num(r.baseline_utility));
}

Response DatabaseService::Event(const Request& request) {
  // A wedged journal means an earlier append/fsync failed: nothing can be
  // acknowledged atop an uncertain tail. Rescue with a checkpoint — a
  // committed generation captures every applied event, prunes the bad
  // segment, and rotation re-arms the journal.
  if (journal_ != nullptr && journal_->wedged()) {
    if (Status allow = breaker_.Allow(); allow.ok()) {
      Status saved = SaveNow(monitor_.config());
      breaker_.Record(saved);
    }
    if (journal_->wedged()) {
      return Err(Status::Unavailable(
          "journal unavailable and rescue checkpoint failed; "
          "retry_after_ms=" +
          std::to_string(options_.breaker.open_duration.count())));
    }
  }

  Result<storage::JournalEvent> event = JournalEventFromRequest(request);
  if (!event.ok()) return Err(event.status());
  // Validate against the authoritative config *before* appending: the
  // journal must only ever hold events that get acknowledged `ok`, or a
  // replay would diverge from the acknowledged history.
  if (Status valid = event->Validate(monitor_.config()); !valid.ok()) {
    return Err(std::move(valid));
  }
  if (journal_ != nullptr) {
    if (Status appended = journal_->Append(event->Encode());
        !appended.ok()) {
      // One breaker-visible failure per failed event, always coded
      // transient so even a permanent fault (ENOSPC is kOutOfRange)
      // opens the breaker and turns the service read-only.
      breaker_.Record(Status::Unavailable("journal append failed"));
      return Err(Status::Unavailable("event not durable: " +
                                     appended.message()));
    }
  }

  Status status;
  switch (request.kind) {
    case RequestKind::kEventAdd:
      status = monitor_.AddProvider(request.provider, request.threshold);
      break;
    case RequestKind::kEventRemove:
      status = monitor_.RemoveProvider(request.provider);
      break;
    case RequestKind::kEventSetPref: {
      Result<privacy::PurposeId> purpose =
          monitor_.config().purposes.Lookup(request.purpose);
      if (!purpose.ok()) return Err(purpose.status());
      privacy::PrivacyTuple tuple;
      tuple.purpose = purpose.value();
      tuple.visibility = request.visibility;
      tuple.granularity = request.granularity;
      tuple.retention = request.retention;
      status = monitor_.SetPreference(request.provider, request.attribute,
                                      tuple);
      break;
    }
    case RequestKind::kEventRemovePref: {
      Result<privacy::PurposeId> purpose =
          monitor_.config().purposes.Lookup(request.purpose);
      if (!purpose.ok()) return Err(purpose.status());
      status = monitor_.RemovePreference(request.provider, request.attribute,
                                         purpose.value());
      break;
    }
    case RequestKind::kEventSetThreshold:
      status = monitor_.SetThreshold(request.provider, request.threshold);
      break;
    default:
      return Err(Status::Internal("not an event"));
  }
  // Validate() mirrors the monitor's preconditions, so a failure here
  // means they diverged (a bug): the journal now holds one record the
  // memory state rejected. Replay stops at it the same way, so recovery
  // still converges to the acknowledged history.
  if (!status.ok()) return Err(std::move(status));
  // Periodic drift oracle: at the configured cadence, force a full
  // recompute and bitwise-compare it against the maintained view. Runs
  // under the writer lock we already hold. Drift never fails the event —
  // it is logged, counted, and left for the runbook; the check itself
  // resets the cadence either way.
  if (options_.drift_check_every_events > 0 &&
      ++events_since_drift_check_ >= options_.drift_check_every_events) {
    events_since_drift_check_ = 0;
    Result<violation::ViolationView::DriftReport> drift =
        monitor_.view().CheckDrift();
    if (drift.ok() && !drift.value().clean) {
      PPDB_LOG(kWarning) << "periodic drift check failed: "
                         << drift.value().detail;
    }
  }
  // The event itself succeeded even if a due checkpoint failed — that
  // failure lives in last_checkpoint_status and in the breaker.
  return Ok("providers=" + std::to_string(monitor_.num_providers()) +
            " pw=" + Num(monitor_.ProbabilityOfViolation()) +
            " pdefault=" + Num(monitor_.ProbabilityOfDefault()));
}

Response DatabaseService::Query(const Request& request) {
  if (request.target == "pw") {
    return Ok("pw=" + Num(monitor_.ProbabilityOfViolation()));
  }
  if (request.target == "pdefault") {
    return Ok("pdefault=" + Num(monitor_.ProbabilityOfDefault()));
  }
  if (request.target == "monitor") {
    const Status& last = monitor_.last_checkpoint_status();
    return Ok("providers=" + std::to_string(monitor_.num_providers()) +
              " violated=" + std::to_string(monitor_.num_violated()) +
              " defaulted=" + std::to_string(monitor_.num_defaulted()) +
              " total_severity=" + Num(monitor_.TotalViolations()) +
              " checkpoints=" + std::to_string(monitor_.checkpoints_taken()) +
              " events_since_checkpoint=" +
              std::to_string(monitor_.events_since_checkpoint()) +
              " last_checkpoint=" +
              std::string(StatusCodeToString(last.code())));
  }
  if (request.target == "provider") {
    Result<violation::ProviderViolation> violation =
        monitor_.ForProvider(request.provider);
    if (!violation.ok()) return Err(violation.status());
    Result<bool> defaulted = monitor_.IsDefaulted(request.provider);
    if (!defaulted.ok()) return Err(defaulted.status());
    const violation::ProviderViolation& v = violation.value();
    return Ok("provider=" + std::to_string(v.provider) +
              " violated=" + (v.violated ? std::string("1") : "0") +
              " severity=" + Num(v.total_severity) +
              " incidents=" + std::to_string(v.incidents.size()) +
              " defaulted=" + (defaulted.value() ? std::string("1") : "0"));
  }
  return Err(Status::InvalidArgument("unknown query target"));
}

Response DatabaseService::ExpansionCheck(const Request& request) {
  Result<violation::ViolationView::ExpansionCheck> check =
      monitor_.view().CheckExpansion(request.utility_per_provider,
                                     request.extra_utility);
  if (!check.ok()) return Err(check.status());
  const violation::ViolationView::ExpansionCheck& c = check.value();
  return Ok("justified=" + std::string(c.justified ? "1" : "0") +
            " n_current=" + std::to_string(c.n_current) +
            " n_defaulted=" + std::to_string(c.n_defaulted) +
            " n_future=" + std::to_string(c.n_future) +
            " utility_current=" + Num(c.utility_current) +
            " utility_future=" + Num(c.utility_future) +
            " break_even_extra_utility=" +
            (c.has_break_even ? Num(c.break_even_extra_utility)
                              : std::string("none")));
}

Response DatabaseService::DriftCheck() {
  Result<violation::ViolationView::DriftReport> report =
      monitor_.view().CheckDrift();
  if (!report.ok()) return Err(report.status());
  const violation::ViolationView::DriftReport& r = report.value();
  if (!r.clean) {
    PPDB_LOG(kWarning) << "view drift detected: " << r.detail;
  }
  return Ok("clean=" + std::string(r.clean ? "1" : "0") +
            " providers_checked=" + std::to_string(r.providers_checked) +
            " mismatched_providers=" +
            std::to_string(r.mismatched_providers) +
            " drift_checks_clean=" +
            std::to_string(monitor_.view().drift_checks_clean()) +
            " drift_checks_failed=" +
            std::to_string(monitor_.view().drift_checks_failed()));
}

Response DatabaseService::Stats() {
  const Status& last = monitor_.last_checkpoint_status();
  // One locked snapshot instead of three separate breaker reads, so state
  // and counters cannot interleave with a trip happening between them.
  const CircuitBreaker::StatsSnapshot breaker = breaker_.Snapshot();
  // Durability posture: lets the shed-storm runbook tell "behind on
  // checkpoints" (events_since_checkpoint high, journal growing) from
  // "broker overload" (both small, queues deep).
  std::string journal =
      journal_ == nullptr
          ? " journal=none"
          : " journal=" + journal_->segment_name() +
                (journal_->wedged() ? " journal_wedged=1" : "") +
                " journal_bytes=" +
                std::to_string(journal_->active_segment_bytes()) +
                " journal_records=" +
                std::to_string(journal_->records_in_segment());
  // View posture: how the O(Δ) maintenance is doing. delta vs rebuild
  // event counts tell whether the serve path is actually riding the cheap
  // lane; nonzero drift_checks_failed is a page (see OBSERVABILITY.md).
  const violation::ViolationView& view = std::as_const(monitor_).view();
  return Ok(
      "providers=" + std::to_string(monitor_.num_providers()) +
      " violated=" + std::to_string(monitor_.num_violated()) +
      " defaulted=" + std::to_string(monitor_.num_defaulted()) +
      " pw=" + Num(monitor_.ProbabilityOfViolation()) +
      " pdefault=" + Num(monitor_.ProbabilityOfDefault()) +
      " view_cells=" + std::to_string(view.total_cells()) +
      " view_delta_events=" + std::to_string(view.delta_events()) +
      " view_rebuild_events=" + std::to_string(view.rebuild_events()) +
      " view_last_delta_cells=" + std::to_string(view.last_delta_cells()) +
      " drift_checks_clean=" + std::to_string(view.drift_checks_clean()) +
      " drift_checks_failed=" + std::to_string(view.drift_checks_failed()) +
      " breaker=" + std::string(CircuitBreaker::StateName(breaker.state)) +
      " breaker_trips=" + std::to_string(breaker.trips) +
      " breaker_rejected=" + std::to_string(breaker.rejected) +
      " checkpoints=" + std::to_string(monitor_.checkpoints_taken()) +
      " events_since_checkpoint=" +
      std::to_string(monitor_.events_since_checkpoint()) +
      " last_checkpoint=" + std::string(StatusCodeToString(last.code())) +
      " last_checkpoint_generation=" +
      (last_checkpoint_generation_.empty() ? "none"
                                           : last_checkpoint_generation_) +
      journal);
}

}  // namespace ppdb::server

#ifndef PPDB_SERVER_SERVE_CORE_H_
#define PPDB_SERVER_SERVE_CORE_H_

#include <iosfwd>
#include <string>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "server/broker.h"
#include "server/request.h"
#include "server/service.h"

namespace ppdb::server {

/// The protocol core shared by the two serving front-ends — the pipe loop
/// (`Serve`) and the TCP event loop (`net::TcpServer`). Both speak the same
/// line protocol against the same broker/service pair; everything here is
/// the part that must not drift between them: lane selection, the work
/// closure (including `stats` merging broker counters), the drain
/// acknowledgement payload, response framing, and the request-line cap.

/// Serializes response lines from broker workers and the serve thread onto
/// one ostream. Public (rather than serve.cc-local) so the interleaving
/// regression test can hammer it directly: concurrent `Write` calls must
/// never produce torn or interleaved lines.
class ResponseWriter {
 public:
  explicit ResponseWriter(std::ostream& out) : out_(out) {}

  void Write(int64_t id, const Response& response) PPDB_EXCLUDES(mu_);

 private:
  Mutex mu_{"serve_writer"} PPDB_LOCK_LEVEL(serve_writer)
      PPDB_ACQUIRED_AFTER(tcp_completions) PPDB_ACQUIRED_BEFORE(broker);
  /// The stream is shared with nothing else while serving runs; all writes
  /// (broker workers and the serve thread) funnel through Write().
  std::ostream& out_ PPDB_GUARDED_BY(mu_);
};

/// Which broker lane a request rides: cheap O(|HP|)-or-less requests take
/// the priority lane so census scans cannot starve the event stream.
Lane LaneForRequest(const Request& request);

/// Builds the broker work closure for a parsed request: executes on the
/// service under the admission deadline, and for `stats` appends the
/// broker's queue counters to the payload. `service` and `broker` must
/// outlive the returned closure.
RequestBroker::Work MakeRequestWork(DatabaseService& service,
                                    RequestBroker& broker, Request request);

/// The single-line payload answering a `drain` request once the broker has
/// drained and the final checkpoint was taken.
std::string DrainAckPayload(const Status& final_checkpoint,
                            const RequestBroker::StatsSnapshot& stats);

/// Renders a response in wire format, choosing block framing for
/// successful multi-line payloads (Prometheus exposition, trace dumps) and
/// the single-line format otherwise. Both front-ends emit through this so
/// the framing decision cannot drift.
std::string RenderResponse(int64_t id, const Response& response);

/// The canonical rejection for a request line longer than `max_line`
/// bytes: `kInvalidArgument`, message starting with "line_too_long".
Status LineTooLongError(size_t max_line = kMaxRequestLine);

/// Bounded replacement for `std::getline` on the pipe path: reads one
/// '\n'-terminated line, storing at most `max_line` bytes. A longer line
/// is consumed to its terminator but truncated in `*line` and flagged
/// `*oversized`, so the caller can answer `LineTooLongError` and keep
/// serving — the stream stays line-synchronized and memory stays O(cap).
/// Returns false at end of input (like getline, a final unterminated line
/// is still delivered first).
bool ReadBoundedLine(std::istream& in, std::string* line, bool* oversized,
                     size_t max_line = kMaxRequestLine);

}  // namespace ppdb::server

#endif  // PPDB_SERVER_SERVE_CORE_H_

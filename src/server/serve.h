#ifndef PPDB_SERVER_SERVE_H_
#define PPDB_SERVER_SERVE_H_

#include <iosfwd>

#include "common/status.h"
#include "server/broker.h"
#include "server/service.h"

namespace ppdb::server {

/// Runs the line-oriented serving loop: reads one request per line from
/// `in`, pushes it through `broker` into `service`, and writes one response
/// per line to `out` (see `FormatResponse`; responses may complete out of
/// order and carry the 1-based line number as their id).
///
/// Admission failures (queue full, draining) and parse errors are answered
/// immediately without occupying a worker. `stats` responses merge the
/// service view with the broker's queue counters. Cheap requests (events,
/// queries, ping, stats) ride the broker's priority lane.
///
/// The loop ends at EOF or at a `drain` request; either way it drains the
/// broker (cancelling stragglers at the drain deadline) and takes a final
/// checkpoint, whose status is returned. Blank lines and lines starting
/// with '#' are ignored.
Status Serve(std::istream& in, std::ostream& out, DatabaseService& service,
             RequestBroker& broker);

}  // namespace ppdb::server

#endif  // PPDB_SERVER_SERVE_H_

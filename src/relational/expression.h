#ifndef PPDB_RELATIONAL_EXPRESSION_H_
#define PPDB_RELATIONAL_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/schema.h"
#include "relational/table.h"
#include "relational/value.h"

namespace ppdb::rel {

class Expression;

/// Shared immutable expression node; sub-expressions are freely shared
/// between query plans.
using ExprPtr = std::shared_ptr<const Expression>;

/// Binary operators. Comparisons yield bool; arithmetic yields a numeric
/// value (int64 when both operands are int64, otherwise double).
enum class BinaryOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kAdd,
  kSub,
  kMul,
  kDiv,
};

/// Unary operators.
enum class UnaryOp {
  kNot,     ///< Logical negation of a bool.
  kNegate,  ///< Arithmetic negation of a numeric.
  kIsNull,  ///< True iff the operand is null.
};

/// An immutable scalar expression tree evaluated row-at-a-time.
///
/// Null semantics are SQL-like: any comparison or arithmetic with a null
/// operand yields null, `kAnd`/`kOr` use three-valued logic, and `Filter`
/// treats a null predicate result as false.
///
/// Usage:
///
///   ExprPtr e = Gt(Col("weight"), Lit(Value::Int64(80)));
///   Result<Value> v = e->Evaluate(row, schema);
class Expression {
 public:
  enum class Kind { kLiteral, kColumn, kUnary, kBinary };

  virtual ~Expression() = default;

  Kind kind() const { return kind_; }

  /// Evaluates against one row. Column references resolve by name in
  /// `schema`; unknown columns error with kNotFound.
  virtual Result<Value> Evaluate(const Row& row, const Schema& schema)
      const = 0;

  /// Renders the expression, e.g. "(weight > 80)".
  virtual std::string ToString() const = 0;

 protected:
  explicit Expression(Kind kind) : kind_(kind) {}

 private:
  Kind kind_;
};

/// Constructs a literal expression.
ExprPtr Lit(Value value);

/// Constructs a column reference by attribute name.
ExprPtr Col(std::string name);

/// Constructs a unary expression.
ExprPtr Unary(UnaryOp op, ExprPtr operand);

/// Constructs a binary expression.
ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);

// Convenience builders mirroring the operators.
ExprPtr Eq(ExprPtr a, ExprPtr b);
ExprPtr Ne(ExprPtr a, ExprPtr b);
ExprPtr Lt(ExprPtr a, ExprPtr b);
ExprPtr Le(ExprPtr a, ExprPtr b);
ExprPtr Gt(ExprPtr a, ExprPtr b);
ExprPtr Ge(ExprPtr a, ExprPtr b);
ExprPtr And(ExprPtr a, ExprPtr b);
ExprPtr Or(ExprPtr a, ExprPtr b);
ExprPtr Not(ExprPtr a);
ExprPtr Add(ExprPtr a, ExprPtr b);
ExprPtr Sub(ExprPtr a, ExprPtr b);
ExprPtr Mul(ExprPtr a, ExprPtr b);
ExprPtr Div(ExprPtr a, ExprPtr b);
ExprPtr IsNull(ExprPtr a);

}  // namespace ppdb::rel

#endif  // PPDB_RELATIONAL_EXPRESSION_H_

#include "relational/schema.h"

#include "common/string_util.h"

namespace ppdb::rel {

Result<Schema> Schema::Create(std::vector<AttributeDef> attributes) {
  for (const AttributeDef& def : attributes) {
    if (!IsValidIdentifier(def.name)) {
      return Status::InvalidArgument("invalid attribute name: '" + def.name +
                                     "'");
    }
    if (def.type == DataType::kNull) {
      return Status::InvalidArgument("attribute '" + def.name +
                                     "' may not have type null");
    }
  }
  Schema schema(std::move(attributes));
  if (schema.index_.size() != schema.attributes_.size()) {
    return Status::InvalidArgument("duplicate attribute name in schema");
  }
  return schema;
}

Schema::Schema(std::vector<AttributeDef> attributes)
    : attributes_(std::move(attributes)) {
  for (size_t j = 0; j < attributes_.size(); ++j) {
    index_.emplace(attributes_[j].name, static_cast<int>(j));
  }
}

Result<int> Schema::IndexOf(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) {
    return Status::NotFound("no attribute named '" + std::string(name) + "'");
  }
  return it->second;
}

bool Schema::Contains(std::string_view name) const {
  return index_.contains(std::string(name));
}

Status Schema::ValidateRow(const std::vector<Value>& values) const {
  if (values.size() != attributes_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(values.size()) +
        " does not match schema arity " + std::to_string(attributes_.size()));
  }
  for (size_t j = 0; j < values.size(); ++j) {
    const Value& v = values[j];
    if (v.is_null()) continue;
    if (v.type() != attributes_[j].type) {
      std::string msg = "attribute '";
      msg += attributes_[j].name;
      msg += "' expects ";
      msg += DataTypeName(attributes_[j].type);
      msg += ", got ";
      msg += DataTypeName(v.type());
      return Status::InvalidArgument(std::move(msg));
    }
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t j = 0; j < attributes_.size(); ++j) {
    if (j > 0) out += ", ";
    out += attributes_[j].name;
    out += ": ";
    out += DataTypeName(attributes_[j].type);
  }
  out += ")";
  return out;
}

}  // namespace ppdb::rel

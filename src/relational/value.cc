#include "relational/value.h"

#include <cmath>
#include <cstdio>

#include "common/macros.h"
#include "common/string_util.h"

namespace ppdb::rel {

std::string_view DataTypeName(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "null";
    case DataType::kBool:
      return "bool";
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

Result<DataType> DataTypeFromName(std::string_view name) {
  if (name == "null") return DataType::kNull;
  if (name == "bool") return DataType::kBool;
  if (name == "int64" || name == "int") return DataType::kInt64;
  if (name == "double" || name == "float") return DataType::kDouble;
  if (name == "string" || name == "text") return DataType::kString;
  return Status::ParseError("unknown data type: '" + std::string(name) + "'");
}

DataType Value::type() const {
  switch (data_.index()) {
    case 0:
      return DataType::kNull;
    case 1:
      return DataType::kBool;
    case 2:
      return DataType::kInt64;
    case 3:
      return DataType::kDouble;
    case 4:
      return DataType::kString;
  }
  return DataType::kNull;
}

namespace {
Status TypeMismatch(DataType want, DataType got) {
  std::string msg = "value is ";
  msg += DataTypeName(got);
  msg += ", wanted ";
  msg += DataTypeName(want);
  return Status::FailedPrecondition(std::move(msg));
}
}  // namespace

Result<bool> Value::AsBool() const {
  if (auto* v = std::get_if<bool>(&data_)) return *v;
  return TypeMismatch(DataType::kBool, type());
}

Result<int64_t> Value::AsInt64() const {
  if (auto* v = std::get_if<int64_t>(&data_)) return *v;
  return TypeMismatch(DataType::kInt64, type());
}

Result<double> Value::AsDouble() const {
  if (auto* v = std::get_if<double>(&data_)) return *v;
  return TypeMismatch(DataType::kDouble, type());
}

Result<std::string> Value::AsString() const {
  if (auto* v = std::get_if<std::string>(&data_)) return *v;
  return TypeMismatch(DataType::kString, type());
}

Result<double> Value::AsNumeric() const {
  if (auto* v = std::get_if<int64_t>(&data_)) {
    return static_cast<double>(*v);
  }
  if (auto* v = std::get_if<double>(&data_)) return *v;
  return Status::FailedPrecondition("value of type " +
                                    std::string(DataTypeName(type())) +
                                    " is not numeric");
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return std::get<bool>(data_) ? "true" : "false";
    case DataType::kInt64: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(std::get<int64_t>(data_)));
      return buf;
    }
    case DataType::kDouble: {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%g", std::get<double>(data_));
      return buf;
    }
    case DataType::kString:
      return std::get<std::string>(data_);
  }
  return "NULL";
}

Result<Value> Value::Parse(std::string_view text, DataType type) {
  if (text.empty()) return Value::Null();
  switch (type) {
    case DataType::kNull:
      return Value::Null();
    case DataType::kBool: {
      std::string lower = ToLower(TrimWhitespace(text));
      if (lower == "true" || lower == "1") return Value::Bool(true);
      if (lower == "false" || lower == "0") return Value::Bool(false);
      return Status::ParseError("not a bool: '" + std::string(text) + "'");
    }
    case DataType::kInt64: {
      PPDB_ASSIGN_OR_RETURN(int64_t v, ParseInt64(text));
      return Value::Int64(v);
    }
    case DataType::kDouble: {
      PPDB_ASSIGN_OR_RETURN(double v, ParseDouble(text));
      return Value::Double(v);
    }
    case DataType::kString:
      return Value::String(std::string(text));
  }
  return Status::Internal("unhandled data type in Value::Parse");
}

bool operator==(const Value& a, const Value& b) { return a.data_ == b.data_; }

Result<int> Value::Compare(const Value& other) const {
  // Null sorts before any non-null value.
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;
  if (other.is_null()) return 1;

  DataType ta = type();
  DataType tb = other.type();
  auto is_numeric = [](DataType t) {
    return t == DataType::kInt64 || t == DataType::kDouble;
  };
  if (is_numeric(ta) && is_numeric(tb)) {
    // AsNumeric cannot fail here: both sides are numeric.
    double da = AsNumeric().value();
    double db = other.AsNumeric().value();
    if (da < db) return -1;
    if (da > db) return 1;
    return 0;
  }
  if (ta != tb) {
    std::string msg = "cannot compare ";
    msg += DataTypeName(ta);
    msg += " with ";
    msg += DataTypeName(tb);
    return Status::Incomparable(std::move(msg));
  }
  switch (ta) {
    case DataType::kBool: {
      bool va = std::get<bool>(data_);
      bool vb = std::get<bool>(other.data_);
      return static_cast<int>(va) - static_cast<int>(vb);
    }
    case DataType::kString: {
      const auto& va = std::get<std::string>(data_);
      const auto& vb = std::get<std::string>(other.data_);
      if (va < vb) return -1;
      if (va > vb) return 1;
      return 0;
    }
    default:
      return Status::Internal("unhandled comparison type");
  }
}

}  // namespace ppdb::rel

#include "relational/table.h"

#include <algorithm>
#include <unordered_set>

#include "common/macros.h"
#include "common/string_util.h"

namespace ppdb::rel {

Result<Table> Table::Create(std::string name, Schema schema) {
  if (!IsValidIdentifier(name)) {
    return Status::InvalidArgument("invalid table name: '" + name + "'");
  }
  return Table(std::move(name), std::move(schema), /*multi_record=*/false);
}

Result<Table> Table::CreateMultiRecord(std::string name, Schema schema) {
  if (!IsValidIdentifier(name)) {
    return Status::InvalidArgument("invalid table name: '" + name + "'");
  }
  return Table(std::move(name), std::move(schema), /*multi_record=*/true);
}

Table::Table(std::string name, Schema schema, bool multi_record)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      multi_record_(multi_record) {}

Status Table::Insert(ProviderId provider, std::vector<Value> values) {
  if (!multi_record_ && provider_index_.contains(provider)) {
    return Status::AlreadyExists("provider " + std::to_string(provider) +
                                 " already has a row in table '" + name_ +
                                 "' (assumption 5: one tuple per provider)");
  }
  PPDB_RETURN_NOT_OK(schema_.ValidateRow(values));
  provider_index_[provider].push_back(rows_.size());
  rows_.push_back(Row{provider, std::move(values)});
  return Status::OK();
}

Result<Row> Table::GetRow(ProviderId provider) const {
  auto it = provider_index_.find(provider);
  if (it == provider_index_.end()) {
    return Status::NotFound("provider " + std::to_string(provider) +
                            " not present in table '" + name_ + "'");
  }
  if (it->second.size() > 1) {
    return Status::FailedPrecondition(
        "provider " + std::to_string(provider) + " owns " +
        std::to_string(it->second.size()) +
        " rows; use RowsForProvider on a multi-record table");
  }
  return rows_[it->second.front()];
}

std::vector<Row> Table::RowsForProvider(ProviderId provider) const {
  std::vector<Row> out;
  auto it = provider_index_.find(provider);
  if (it == provider_index_.end()) return out;
  out.reserve(it->second.size());
  for (size_t index : it->second) out.push_back(rows_[index]);
  return out;
}

bool Table::ContainsProvider(ProviderId provider) const {
  return provider_index_.contains(provider);
}

Status Table::UpdateCell(ProviderId provider, int attribute_index,
                         Value value) {
  auto it = provider_index_.find(provider);
  if (it == provider_index_.end()) {
    return Status::NotFound("provider " + std::to_string(provider) +
                            " not present in table '" + name_ + "'");
  }
  if (attribute_index < 0 || attribute_index >= schema_.num_attributes()) {
    return Status::InvalidArgument("attribute index out of range");
  }
  const AttributeDef& def = schema_.attribute(attribute_index);
  if (!value.is_null() && value.type() != def.type) {
    return Status::InvalidArgument(
        "attribute '" + def.name + "' expects " +
        std::string(DataTypeName(def.type)) + ", got " +
        std::string(DataTypeName(value.type())));
  }
  for (size_t index : it->second) {
    rows_[index].values[static_cast<size_t>(attribute_index)] = value;
  }
  return Status::OK();
}

Result<Value> Table::GetCell(ProviderId provider,
                             std::string_view attribute_name) const {
  PPDB_ASSIGN_OR_RETURN(int j, schema_.IndexOf(attribute_name));
  PPDB_ASSIGN_OR_RETURN(Row row, GetRow(provider));
  return row.values[static_cast<size_t>(j)];
}

Result<bool> Table::ProviderSuppliesAttribute(
    ProviderId provider, std::string_view attribute_name) const {
  PPDB_ASSIGN_OR_RETURN(int j, schema_.IndexOf(attribute_name));
  auto it = provider_index_.find(provider);
  if (it == provider_index_.end()) return false;
  for (size_t index : it->second) {
    if (!rows_[index].values[static_cast<size_t>(j)].is_null()) return true;
  }
  return false;
}

Status Table::EraseProvider(ProviderId provider) {
  auto it = provider_index_.find(provider);
  if (it == provider_index_.end()) {
    return Status::NotFound("provider " + std::to_string(provider) +
                            " not present in table '" + name_ + "'");
  }
  std::erase_if(rows_,
                [&](const Row& row) { return row.provider == provider; });
  Reindex();
  return Status::OK();
}

int64_t Table::EraseProviders(const std::vector<ProviderId>& providers) {
  std::unordered_set<ProviderId> doomed(providers.begin(), providers.end());
  size_t before = rows_.size();
  std::erase_if(rows_,
                [&](const Row& row) { return doomed.contains(row.provider); });
  int64_t erased = static_cast<int64_t>(before - rows_.size());
  if (erased > 0) Reindex();
  return erased;
}

void Table::Reindex() {
  provider_index_.clear();
  for (size_t i = 0; i < rows_.size(); ++i) {
    provider_index_[rows_[i].provider].push_back(i);
  }
}

std::vector<ProviderId> Table::ProviderIds() const {
  std::vector<ProviderId> ids;
  std::unordered_set<ProviderId> seen;
  ids.reserve(provider_index_.size());
  for (const Row& row : rows_) {
    if (seen.insert(row.provider).second) ids.push_back(row.provider);
  }
  return ids;
}

std::string Table::ToString(int64_t max_rows) const {
  std::string out = name_ + " " + schema_.ToString() + "\n";
  int64_t shown = 0;
  for (const Row& row : rows_) {
    if (shown++ >= max_rows) {
      out += "... (" + std::to_string(num_rows() - max_rows) + " more)\n";
      break;
    }
    out += "  #" + std::to_string(row.provider) + ": [";
    for (size_t j = 0; j < row.values.size(); ++j) {
      if (j > 0) out += ", ";
      out += row.values[j].ToString();
    }
    out += "]\n";
  }
  return out;
}

}  // namespace ppdb::rel

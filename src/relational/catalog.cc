#include "relational/catalog.h"

#include "common/macros.h"

namespace ppdb::rel {

Result<Table*> Catalog::CreateTable(std::string name, Schema schema) {
  PPDB_ASSIGN_OR_RETURN(Table table, Table::Create(name, std::move(schema)));
  return AddTable(std::move(table));
}

Result<Table*> Catalog::AddTable(Table table) {
  std::string name = table.name();
  if (tables_.contains(name)) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  auto owned = std::make_unique<Table>(std::move(table));
  Table* handle = owned.get();
  tables_.emplace(std::move(name), std::move(owned));
  return handle;
}

Result<Table*> Catalog::GetTable(std::string_view name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + std::string(name) + "'");
  }
  return it->second.get();
}

Result<const Table*> Catalog::GetTable(std::string_view name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + std::string(name) + "'");
  }
  return static_cast<const Table*>(it->second.get());
}

Status Catalog::DropTable(std::string_view name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + std::string(name) + "'");
  }
  tables_.erase(it);
  return Status::OK();
}

bool Catalog::Contains(std::string_view name) const {
  return tables_.contains(name);
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

}  // namespace ppdb::rel

#ifndef PPDB_RELATIONAL_SQL_H_
#define PPDB_RELATIONAL_SQL_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "relational/catalog.h"
#include "relational/expression.h"
#include "relational/query.h"

namespace ppdb::rel {

/// One item in a SELECT list: either a plain column reference or an
/// aggregate call, optionally aliased.
struct SelectItem {
  /// Set for plain columns; unset for aggregates.
  std::optional<std::string> column;
  /// Set for aggregate calls.
  std::optional<AggSpec> aggregate;
  /// The output column name (alias, or a derived name).
  std::string output_name;
  /// True for `SELECT *`.
  bool star = false;
};

/// An inner equi-join clause: `JOIN table ON left_column = right_column`.
/// `left_column` names a column of the FROM table, `right_column` one of
/// the joined table; colliding output names get an "_r" suffix (see
/// `HashJoin`).
struct JoinClause {
  std::string table;
  std::string left_column;
  std::string right_column;
};

/// The parsed form of a ppdb SQL query.
///
/// Grammar (keywords case-insensitive):
///
///   SELECT select_list FROM table
///     [JOIN table ON column = column]
///     [WHERE expr]
///     [GROUP BY column {, column}]
///     [HAVING expr]        -- references SELECT output names
///     [ORDER BY column [ASC|DESC]]
///     [LIMIT number]
///
///   select_list := '*' | item {',' item}
///   item        := column ['AS' name]
///                | (COUNT '(' '*' ')' | SUM|AVG|MIN|MAX '(' column ')')
///                  ['AS' name]
///   expr        := OR / AND / NOT / comparisons (=, !=, <>, <, <=, >, >=)
///                  / + - * / / unary - / IS [NOT] NULL / parentheses /
///                  column / number / 'string' / TRUE / FALSE / NULL
struct SqlQuery {
  std::vector<SelectItem> select;
  std::string table;
  std::optional<JoinClause> join;
  ExprPtr where;  // Null when absent.
  std::vector<std::string> group_by;
  /// Post-aggregation filter over the SELECT output columns (e.g. an
  /// aggregate's alias). Null when absent.
  ExprPtr having;
  std::optional<std::string> order_by;
  bool order_ascending = true;
  std::optional<int64_t> limit;
};

/// Parses `sql` into a SqlQuery. Errors with kParseError carry the
/// offending token.
Result<SqlQuery> ParseSql(std::string_view sql);

/// Parses and executes `sql` against `catalog`, composing the query.h
/// operators: Scan → Filter → Aggregate/Project → Sort → Limit.
///
/// Usage:
///
///   PPDB_ASSIGN_OR_RETURN(
///       ResultSet rs,
///       ExecuteSql(catalog,
///                  "SELECT city, COUNT(*) AS n FROM people "
///                  "WHERE age >= 30 GROUP BY city ORDER BY n DESC"));
Result<ResultSet> ExecuteSql(const Catalog& catalog, std::string_view sql);

/// Executes an already-parsed query.
Result<ResultSet> ExecuteQuery(const Catalog& catalog, const SqlQuery& query);

}  // namespace ppdb::rel

#endif  // PPDB_RELATIONAL_SQL_H_

#include "relational/expression.h"

#include <cmath>

#include "common/macros.h"

namespace ppdb::rel {

namespace {

const char* BinaryOpSymbol(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
  }
  return "?";
}

class LiteralExpr final : public Expression {
 public:
  explicit LiteralExpr(Value value)
      : Expression(Kind::kLiteral), value_(std::move(value)) {}

  Result<Value> Evaluate(const Row&, const Schema&) const override {
    return value_;
  }

  std::string ToString() const override { return value_.ToString(); }

 private:
  Value value_;
};

class ColumnExpr final : public Expression {
 public:
  explicit ColumnExpr(std::string name)
      : Expression(Kind::kColumn), name_(std::move(name)) {}

  Result<Value> Evaluate(const Row& row, const Schema& schema) const override {
    PPDB_ASSIGN_OR_RETURN(int j, schema.IndexOf(name_));
    if (static_cast<size_t>(j) >= row.values.size()) {
      return Status::Internal("row narrower than schema");
    }
    return row.values[static_cast<size_t>(j)];
  }

  std::string ToString() const override { return name_; }

 private:
  std::string name_;
};

class UnaryExpr final : public Expression {
 public:
  UnaryExpr(UnaryOp op, ExprPtr operand)
      : Expression(Kind::kUnary), op_(op), operand_(std::move(operand)) {}

  Result<Value> Evaluate(const Row& row, const Schema& schema) const override {
    PPDB_ASSIGN_OR_RETURN(Value v, operand_->Evaluate(row, schema));
    switch (op_) {
      case UnaryOp::kIsNull:
        return Value::Bool(v.is_null());
      case UnaryOp::kNot: {
        if (v.is_null()) return Value::Null();
        PPDB_ASSIGN_OR_RETURN(bool b, v.AsBool());
        return Value::Bool(!b);
      }
      case UnaryOp::kNegate: {
        if (v.is_null()) return Value::Null();
        if (v.type() == DataType::kInt64) {
          return Value::Int64(-v.AsInt64().value());
        }
        PPDB_ASSIGN_OR_RETURN(double d, v.AsNumeric());
        return Value::Double(-d);
      }
    }
    return Status::Internal("unhandled unary op");
  }

  std::string ToString() const override {
    switch (op_) {
      case UnaryOp::kNot:
        return "NOT " + operand_->ToString();
      case UnaryOp::kNegate:
        return "-" + operand_->ToString();
      case UnaryOp::kIsNull:
        return operand_->ToString() + " IS NULL";
    }
    return "?";
  }

 private:
  UnaryOp op_;
  ExprPtr operand_;
};

class BinaryExpr final : public Expression {
 public:
  BinaryExpr(BinaryOp op, ExprPtr lhs, ExprPtr rhs)
      : Expression(Kind::kBinary),
        op_(op),
        lhs_(std::move(lhs)),
        rhs_(std::move(rhs)) {}

  Result<Value> Evaluate(const Row& row, const Schema& schema) const override {
    if (op_ == BinaryOp::kAnd || op_ == BinaryOp::kOr) {
      return EvaluateLogical(row, schema);
    }
    PPDB_ASSIGN_OR_RETURN(Value a, lhs_->Evaluate(row, schema));
    PPDB_ASSIGN_OR_RETURN(Value b, rhs_->Evaluate(row, schema));
    if (a.is_null() || b.is_null()) return Value::Null();
    switch (op_) {
      case BinaryOp::kEq:
        return Value::Bool(a == b);
      case BinaryOp::kNe:
        return Value::Bool(!(a == b));
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe: {
        PPDB_ASSIGN_OR_RETURN(int cmp, a.Compare(b));
        switch (op_) {
          case BinaryOp::kLt:
            return Value::Bool(cmp < 0);
          case BinaryOp::kLe:
            return Value::Bool(cmp <= 0);
          case BinaryOp::kGt:
            return Value::Bool(cmp > 0);
          default:
            return Value::Bool(cmp >= 0);
        }
      }
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
      case BinaryOp::kMul:
      case BinaryOp::kDiv:
        return EvaluateArithmetic(a, b);
      default:
        return Status::Internal("unhandled binary op");
    }
  }

  std::string ToString() const override {
    return "(" + lhs_->ToString() + " " + BinaryOpSymbol(op_) + " " +
           rhs_->ToString() + ")";
  }

 private:
  // SQL three-valued logic: null AND false = false, null OR true = true.
  Result<Value> EvaluateLogical(const Row& row, const Schema& schema) const {
    PPDB_ASSIGN_OR_RETURN(Value a, lhs_->Evaluate(row, schema));
    PPDB_ASSIGN_OR_RETURN(Value b, rhs_->Evaluate(row, schema));
    auto as_tristate = [](const Value& v) -> Result<int> {
      if (v.is_null()) return -1;  // unknown
      PPDB_ASSIGN_OR_RETURN(bool b2, v.AsBool());
      return b2 ? 1 : 0;
    };
    PPDB_ASSIGN_OR_RETURN(int ta, as_tristate(a));
    PPDB_ASSIGN_OR_RETURN(int tb, as_tristate(b));
    if (op_ == BinaryOp::kAnd) {
      if (ta == 0 || tb == 0) return Value::Bool(false);
      if (ta == 1 && tb == 1) return Value::Bool(true);
      return Value::Null();
    }
    if (ta == 1 || tb == 1) return Value::Bool(true);
    if (ta == 0 && tb == 0) return Value::Bool(false);
    return Value::Null();
  }

  Result<Value> EvaluateArithmetic(const Value& a, const Value& b) const {
    bool both_int =
        a.type() == DataType::kInt64 && b.type() == DataType::kInt64;
    PPDB_ASSIGN_OR_RETURN(double da, a.AsNumeric());
    PPDB_ASSIGN_OR_RETURN(double db, b.AsNumeric());
    if (op_ == BinaryOp::kDiv) {
      if (db == 0.0) return Status::InvalidArgument("division by zero");
      return Value::Double(da / db);
    }
    double result = op_ == BinaryOp::kAdd   ? da + db
                    : op_ == BinaryOp::kSub ? da - db
                                            : da * db;
    if (both_int) return Value::Int64(static_cast<int64_t>(result));
    return Value::Double(result);
  }

  BinaryOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

}  // namespace

ExprPtr Lit(Value value) {
  return std::make_shared<LiteralExpr>(std::move(value));
}

ExprPtr Col(std::string name) {
  return std::make_shared<ColumnExpr>(std::move(name));
}

ExprPtr Unary(UnaryOp op, ExprPtr operand) {
  return std::make_shared<UnaryExpr>(op, std::move(operand));
}

ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<BinaryExpr>(op, std::move(lhs), std::move(rhs));
}

ExprPtr Eq(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kEq, std::move(a), std::move(b));
}
ExprPtr Ne(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kNe, std::move(a), std::move(b));
}
ExprPtr Lt(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kLt, std::move(a), std::move(b));
}
ExprPtr Le(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kLe, std::move(a), std::move(b));
}
ExprPtr Gt(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kGt, std::move(a), std::move(b));
}
ExprPtr Ge(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kGe, std::move(a), std::move(b));
}
ExprPtr And(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kAnd, std::move(a), std::move(b));
}
ExprPtr Or(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kOr, std::move(a), std::move(b));
}
ExprPtr Not(ExprPtr a) { return Unary(UnaryOp::kNot, std::move(a)); }
ExprPtr Add(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kAdd, std::move(a), std::move(b));
}
ExprPtr Sub(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kSub, std::move(a), std::move(b));
}
ExprPtr Mul(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kMul, std::move(a), std::move(b));
}
ExprPtr Div(ExprPtr a, ExprPtr b) {
  return Binary(BinaryOp::kDiv, std::move(a), std::move(b));
}
ExprPtr IsNull(ExprPtr a) { return Unary(UnaryOp::kIsNull, std::move(a)); }

}  // namespace ppdb::rel

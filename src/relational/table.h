#ifndef PPDB_RELATIONAL_TABLE_H_
#define PPDB_RELATIONAL_TABLE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace ppdb::rel {

/// Identifier of a data provider. The paper's simplifying assumption 5 is
/// that each tuple in a data table represents a single provider; a
/// ProviderId therefore doubles as a row key in the default (single-record)
/// mode.
using ProviderId = int64_t;

/// One record t_i: a tuple tagged with the id of the provider who supplied
/// it, so violation analysis can join data with preferences.
struct Row {
  ProviderId provider = 0;
  std::vector<Value> values;

  friend bool operator==(const Row& a, const Row& b) {
    return a.provider == b.provider && a.values == b.values;
  }
};

/// An in-memory relation T = {t_1, ..., t_n} (paper §4).
///
/// Two modes:
///  - `Create` (default): one row per provider — the paper's assumption 5.
///    Point operations (`GetRow`, `GetCell`) address rows by provider.
///  - `CreateMultiRecord`: the extension the paper sketches ("multiple
///    records may exist in the same table for a given data provider") — a
///    provider may own many rows; use `RowsForProvider` to enumerate them.
///    `GetRow`/`GetCell` error with kFailedPrecondition when the provider
///    owns more than one row (the lookup is ambiguous).
///
/// The table preserves insertion order for scans and maintains a provider
/// index for point lookups. All mutating operations validate against the
/// schema. A Table is copyable (used by what-if scenario snapshots).
class Table {
 public:
  /// Creates an empty single-record table. `name` must be a valid
  /// identifier.
  static Result<Table> Create(std::string name, Schema schema);

  /// Creates an empty table permitting multiple rows per provider.
  static Result<Table> CreateMultiRecord(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// True when multiple rows per provider are permitted.
  bool multi_record() const { return multi_record_; }

  /// Number of rows n.
  int64_t num_rows() const { return static_cast<int64_t>(rows_.size()); }

  /// Number of distinct providers with at least one row.
  int64_t num_providers() const {
    return static_cast<int64_t>(provider_index_.size());
  }

  /// Inserts a row for `provider`. In single-record mode errors when the
  /// provider already has a row (assumption 5); multi-record mode appends.
  Status Insert(ProviderId provider, std::vector<Value> values);

  /// Returns the unique row for `provider`; kNotFound when absent,
  /// kFailedPrecondition when the provider owns several rows.
  Result<Row> GetRow(ProviderId provider) const;

  /// All rows owned by `provider`, in insertion order (empty when absent).
  std::vector<Row> RowsForProvider(ProviderId provider) const;

  /// True iff `provider` has at least one row.
  bool ContainsProvider(ProviderId provider) const;

  /// Replaces the datum at attribute ordinal `j` in *every* row owned by
  /// `provider` (exactly one in single-record mode).
  Status UpdateCell(ProviderId provider, int attribute_index, Value value);

  /// Returns the datum t_i^j from the provider's unique row, addressing the
  /// attribute by name. Same ambiguity rules as GetRow.
  Result<Value> GetCell(ProviderId provider,
                        std::string_view attribute_name) const;

  /// True iff some row of `provider` carries a non-null datum for the
  /// attribute — "the provider supplies this datum" in either mode. Errors
  /// when the attribute does not exist; false when the provider is absent.
  Result<bool> ProviderSuppliesAttribute(
      ProviderId provider, std::string_view attribute_name) const;

  /// Removes all of the provider's rows; used when a provider defaults and
  /// withdraws their data. Errors with kNotFound when absent.
  Status EraseProvider(ProviderId provider);

  /// Removes all listed providers' rows in one pass (ids without a row are
  /// ignored). Returns the number of rows removed. O(n + k), versus O(n·k)
  /// for repeated EraseProvider calls.
  int64_t EraseProviders(const std::vector<ProviderId>& providers);

  /// All rows in insertion order (erasures compact the order).
  const std::vector<Row>& rows() const { return rows_; }

  /// Distinct provider ids, in first-insertion order.
  std::vector<ProviderId> ProviderIds() const;

  /// Renders the table as aligned text (for examples and debugging).
  std::string ToString(int64_t max_rows = 20) const;

 private:
  Table(std::string name, Schema schema, bool multi_record);
  void Reindex();

  std::string name_;
  Schema schema_;
  bool multi_record_;
  std::vector<Row> rows_;
  /// provider -> indices of its rows, in insertion order.
  std::unordered_map<ProviderId, std::vector<size_t>> provider_index_;
};

}  // namespace ppdb::rel

#endif  // PPDB_RELATIONAL_TABLE_H_

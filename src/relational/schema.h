#ifndef PPDB_RELATIONAL_SCHEMA_H_
#define PPDB_RELATIONAL_SCHEMA_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "relational/value.h"

namespace ppdb::rel {

/// Definition of one attribute A^j in a relation schema (paper §4):
/// a name, a domain type, and an optional human-readable description.
struct AttributeDef {
  std::string name;
  DataType type = DataType::kString;
  std::string description;

  friend bool operator==(const AttributeDef& a, const AttributeDef& b) {
    return a.name == b.name && a.type == b.type;
  }
};

/// An ordered list of attribute definitions,
/// T(A^1 ∈ D^1, ..., A^K ∈ D^K) in the paper's notation.
///
/// Attribute names are unique and validated as identifiers.
class Schema {
 public:
  /// Builds a schema from attribute definitions; errors on duplicate or
  /// invalid names.
  static Result<Schema> Create(std::vector<AttributeDef> attributes);

  /// Number of attributes K.
  int num_attributes() const { return static_cast<int>(attributes_.size()); }

  /// Attribute at ordinal `j` (0-based). Requires 0 <= j < num_attributes().
  const AttributeDef& attribute(int j) const {
    return attributes_[static_cast<size_t>(j)];
  }

  /// All attributes in declaration order.
  const std::vector<AttributeDef>& attributes() const { return attributes_; }

  /// Ordinal of the attribute named `name`, or kNotFound.
  Result<int> IndexOf(std::string_view name) const;

  /// True iff an attribute with this name exists.
  bool Contains(std::string_view name) const;

  /// Checks that `values` is assignable to this schema: correct arity and
  /// every value either null or of the attribute's type.
  Status ValidateRow(const std::vector<Value>& values) const;

  /// Renders e.g. "(age: int64, weight: double)".
  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.attributes_ == b.attributes_;
  }

 private:
  explicit Schema(std::vector<AttributeDef> attributes);

  std::vector<AttributeDef> attributes_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace ppdb::rel

#endif  // PPDB_RELATIONAL_SCHEMA_H_

#ifndef PPDB_RELATIONAL_CSV_H_
#define PPDB_RELATIONAL_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "relational/table.h"

namespace ppdb::rel {

/// Parses one CSV document into rows of fields. Handles quoted fields with
/// embedded commas, doubled quotes and newlines. The final line may omit the
/// trailing newline.
Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text);

/// Reads a table from CSV text.
///
/// The first CSV row must be a header. When `header_has_provider_id` is
/// true, the first column is interpreted as the provider id (an integer) and
/// is not part of the schema; otherwise providers are numbered 1..n in file
/// order. Remaining columns must match `schema` in order and are parsed with
/// `Value::Parse` (empty fields become null).
Result<Table> TableFromCsv(std::string name, const Schema& schema,
                           std::string_view text,
                           bool header_has_provider_id = true);

/// Serializes `table` to CSV with a header row. The provider id is emitted
/// as the first column, named "provider_id".
std::string TableToCsv(const Table& table);

}  // namespace ppdb::rel

#endif  // PPDB_RELATIONAL_CSV_H_

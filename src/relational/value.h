#ifndef PPDB_RELATIONAL_VALUE_H_
#define PPDB_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/result.h"

namespace ppdb::rel {

/// Type of a relational datum.
enum class DataType {
  kNull,    ///< The absence of a value (suppressed or missing datum).
  kBool,    ///< true / false.
  kInt64,   ///< 64-bit signed integer.
  kDouble,  ///< IEEE double.
  kString,  ///< UTF-8 text.
};

/// Returns "null", "bool", "int64", "double" or "string".
std::string_view DataTypeName(DataType type);

/// Parses a type name as produced by `DataTypeName`.
Result<DataType> DataTypeFromName(std::string_view name);

/// A single typed datum t_i^j: the value supplied by data provider i for
/// attribute A^j (paper §4). Values are immutable once constructed.
///
/// A null `Value` represents a suppressed datum — e.g. the result of
/// generalizing to granularity level 0, or a provider who defaulted and
/// "contribute[s] zero information to the system" (§2).
class Value {
 public:
  /// Constructs a null value.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Repr(v)); }
  static Value Int64(int64_t v) { return Value(Repr(v)); }
  static Value Double(double v) { return Value(Repr(v)); }
  static Value String(std::string v) { return Value(Repr(std::move(v))); }

  DataType type() const;

  bool is_null() const { return type() == DataType::kNull; }

  /// Typed accessors. Each errors with kFailedPrecondition when the value
  /// holds a different type.
  Result<bool> AsBool() const;
  Result<int64_t> AsInt64() const;
  Result<double> AsDouble() const;
  Result<std::string> AsString() const;

  /// Numeric view: int64 widened to double; errors for other types.
  Result<double> AsNumeric() const;

  /// Renders the value for display; null renders as "NULL".
  std::string ToString() const;

  /// Parses `text` as a value of `type`. An empty string parses to null for
  /// every type.
  static Result<Value> Parse(std::string_view text, DataType type);

  /// Structural equality: same type and same payload. Null equals null.
  friend bool operator==(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Total order for sorting within one type. Null sorts before everything;
  /// comparing distinct non-null types errors with kIncomparable. Numeric
  /// types (int64/double) are mutually comparable by numeric value.
  Result<int> Compare(const Value& other) const;

 private:
  using Repr = std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Repr data) : data_(std::move(data)) {}

  Repr data_;
};

}  // namespace ppdb::rel

#endif  // PPDB_RELATIONAL_VALUE_H_

#ifndef PPDB_RELATIONAL_QUERY_H_
#define PPDB_RELATIONAL_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/expression.h"
#include "relational/schema.h"
#include "relational/table.h"

namespace ppdb::rel {

/// A materialized intermediate or final query result: a schema plus rows.
/// Provider ids are threaded through every operator so that downstream
/// privacy analysis can always attribute a result row to its provider(s).
struct ResultSet {
  Schema schema;
  std::vector<Row> rows;

  int64_t num_rows() const { return static_cast<int64_t>(rows.size()); }

  /// Renders the result as aligned text.
  std::string ToString(int64_t max_rows = 20) const;
};

/// Aggregate functions supported by `Aggregate`.
enum class AggOp {
  kCount,  ///< Row count (ignores the input column, which may be empty).
  kSum,
  kAvg,
  kMin,
  kMax,
};

/// One aggregate to compute: `op` over `column`, emitted as `output_name`.
struct AggSpec {
  AggOp op = AggOp::kCount;
  std::string column;  // Ignored for kCount; may be empty.
  std::string output_name;
};

/// Materializes a full scan of `table`.
ResultSet Scan(const Table& table);

/// Keeps the rows for which `predicate` evaluates to true (null counts as
/// false, SQL-style).
Result<ResultSet> Filter(const ResultSet& input, const ExprPtr& predicate);

/// Keeps only the named columns, in the given order.
Result<ResultSet> Project(const ResultSet& input,
                          const std::vector<std::string>& columns);

/// Stable-sorts by `column`. Errors when any pair of values in the column is
/// incomparable.
Result<ResultSet> Sort(const ResultSet& input, const std::string& column,
                       bool ascending = true);

/// Keeps the first `n` rows.
ResultSet Limit(const ResultSet& input, int64_t n);

/// Equi-join on left.`left_column` == right.`right_column` (hash join).
/// Output schema is the left schema followed by the right schema; colliding
/// attribute names on the right are suffixed with "_r". Null keys never
/// match. The output row carries the *left* provider id.
Result<ResultSet> HashJoin(const ResultSet& left, const ResultSet& right,
                           const std::string& left_column,
                           const std::string& right_column);

/// Groups by `group_by` columns (may be empty for a global aggregate) and
/// computes `aggs` per group. Output schema is the group-by columns followed
/// by one column per aggregate. Null values are skipped by kSum/kAvg/kMin/
/// kMax (kCount counts rows). Group rows carry provider id 0 — an aggregate
/// row no longer belongs to a single provider.
Result<ResultSet> Aggregate(const ResultSet& input,
                            const std::vector<std::string>& group_by,
                            const std::vector<AggSpec>& aggs);

}  // namespace ppdb::rel

#endif  // PPDB_RELATIONAL_QUERY_H_

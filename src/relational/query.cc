#include "relational/query.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <unordered_map>

#include "common/macros.h"

namespace ppdb::rel {

std::string ResultSet::ToString(int64_t max_rows) const {
  std::string out = schema.ToString() + "\n";
  int64_t shown = 0;
  for (const Row& row : rows) {
    if (shown++ >= max_rows) {
      out += "... (" + std::to_string(num_rows() - max_rows) + " more)\n";
      break;
    }
    out += "  [";
    for (size_t j = 0; j < row.values.size(); ++j) {
      if (j > 0) out += ", ";
      out += row.values[j].ToString();
    }
    out += "]\n";
  }
  return out;
}

ResultSet Scan(const Table& table) {
  return ResultSet{table.schema(), table.rows()};
}

Result<ResultSet> Filter(const ResultSet& input, const ExprPtr& predicate) {
  ResultSet out{input.schema, {}};
  for (const Row& row : input.rows) {
    PPDB_ASSIGN_OR_RETURN(Value v, predicate->Evaluate(row, input.schema));
    if (v.is_null()) continue;
    PPDB_ASSIGN_OR_RETURN(bool keep, v.AsBool());
    if (keep) out.rows.push_back(row);
  }
  return out;
}

Result<ResultSet> Project(const ResultSet& input,
                          const std::vector<std::string>& columns) {
  std::vector<int> indices;
  std::vector<AttributeDef> defs;
  indices.reserve(columns.size());
  for (const std::string& name : columns) {
    PPDB_ASSIGN_OR_RETURN(int j, input.schema.IndexOf(name));
    indices.push_back(j);
    defs.push_back(input.schema.attribute(j));
  }
  PPDB_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(defs)));
  ResultSet out{std::move(schema), {}};
  out.rows.reserve(input.rows.size());
  for (const Row& row : input.rows) {
    Row projected{row.provider, {}};
    projected.values.reserve(indices.size());
    for (int j : indices) {
      projected.values.push_back(row.values[static_cast<size_t>(j)]);
    }
    out.rows.push_back(std::move(projected));
  }
  return out;
}

Result<ResultSet> Sort(const ResultSet& input, const std::string& column,
                       bool ascending) {
  PPDB_ASSIGN_OR_RETURN(int j, input.schema.IndexOf(column));
  ResultSet out = input;
  Status failure = Status::OK();
  std::stable_sort(
      out.rows.begin(), out.rows.end(), [&](const Row& a, const Row& b) {
        if (!failure.ok()) return false;
        Result<int> cmp = a.values[static_cast<size_t>(j)].Compare(
            b.values[static_cast<size_t>(j)]);
        if (!cmp.ok()) {
          failure = cmp.status();
          return false;
        }
        return ascending ? cmp.value() < 0 : cmp.value() > 0;
      });
  PPDB_RETURN_NOT_OK(failure);
  return out;
}

ResultSet Limit(const ResultSet& input, int64_t n) {
  ResultSet out{input.schema, {}};
  int64_t take = std::min<int64_t>(n, input.num_rows());
  if (take > 0) {
    out.rows.assign(input.rows.begin(), input.rows.begin() + take);
  }
  return out;
}

Result<ResultSet> HashJoin(const ResultSet& left, const ResultSet& right,
                           const std::string& left_column,
                           const std::string& right_column) {
  PPDB_ASSIGN_OR_RETURN(int lj, left.schema.IndexOf(left_column));
  PPDB_ASSIGN_OR_RETURN(int rj, right.schema.IndexOf(right_column));

  std::vector<AttributeDef> defs = left.schema.attributes();
  for (const AttributeDef& def : right.schema.attributes()) {
    AttributeDef copy = def;
    if (left.schema.Contains(copy.name)) copy.name += "_r";
    defs.push_back(std::move(copy));
  }
  PPDB_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(defs)));

  // Build side: string rendering of the key gives us hashing across types
  // (keys within one column share a type, so renderings collide iff values
  // are equal — modulo int64/double cross-type joins, which we normalize).
  auto render_key = [](const Value& v) -> std::string {
    if (v.type() == DataType::kInt64 || v.type() == DataType::kDouble) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%.17g", v.AsNumeric().value());
      return buf;
    }
    return std::string(DataTypeName(v.type())) + ":" + v.ToString();
  };

  std::unordered_map<std::string, std::vector<const Row*>> build;
  for (const Row& row : right.rows) {
    const Value& key = row.values[static_cast<size_t>(rj)];
    if (key.is_null()) continue;
    build[render_key(key)].push_back(&row);
  }

  ResultSet out{std::move(schema), {}};
  for (const Row& lrow : left.rows) {
    const Value& key = lrow.values[static_cast<size_t>(lj)];
    if (key.is_null()) continue;
    auto it = build.find(render_key(key));
    if (it == build.end()) continue;
    for (const Row* rrow : it->second) {
      Row joined{lrow.provider, lrow.values};
      joined.values.insert(joined.values.end(), rrow->values.begin(),
                           rrow->values.end());
      out.rows.push_back(std::move(joined));
    }
  }
  return out;
}

namespace {

struct AggState {
  int64_t count = 0;     // All rows (kCount semantics).
  int64_t non_null = 0;  // Rows with a value (kAvg denominator).
  double sum = 0.0;
  Value min;
  Value max;

  Status Update(const Value& v) {
    ++count;
    if (v.is_null()) return Status::OK();
    ++non_null;
    Result<double> num = v.AsNumeric();
    if (num.ok()) sum += num.value();
    if (min.is_null()) {
      min = v;
    } else {
      PPDB_ASSIGN_OR_RETURN(int cmp, v.Compare(min));
      if (cmp < 0) min = v;
    }
    if (max.is_null()) {
      max = v;
    } else {
      PPDB_ASSIGN_OR_RETURN(int cmp, v.Compare(max));
      if (cmp > 0) max = v;
    }
    return Status::OK();
  }
};

}  // namespace

Result<ResultSet> Aggregate(const ResultSet& input,
                            const std::vector<std::string>& group_by,
                            const std::vector<AggSpec>& aggs) {
  if (aggs.empty()) {
    return Status::InvalidArgument("Aggregate requires at least one AggSpec");
  }
  std::vector<int> key_indices;
  std::vector<AttributeDef> defs;
  for (const std::string& name : group_by) {
    PPDB_ASSIGN_OR_RETURN(int j, input.schema.IndexOf(name));
    key_indices.push_back(j);
    defs.push_back(input.schema.attribute(j));
  }
  std::vector<int> agg_indices;
  for (const AggSpec& spec : aggs) {
    if (spec.op == AggOp::kCount) {
      agg_indices.push_back(-1);
      defs.push_back(AttributeDef{spec.output_name, DataType::kInt64, ""});
      continue;
    }
    PPDB_ASSIGN_OR_RETURN(int j, input.schema.IndexOf(spec.column));
    agg_indices.push_back(j);
    DataType out_type = (spec.op == AggOp::kMin || spec.op == AggOp::kMax)
                            ? input.schema.attribute(j).type
                            : DataType::kDouble;
    defs.push_back(AttributeDef{spec.output_name, out_type, ""});
  }
  PPDB_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(defs)));

  // std::map on the rendered key keeps group order deterministic.
  struct Group {
    std::vector<Value> key_values;
    std::vector<AggState> states;
  };
  std::map<std::string, Group> groups;
  for (const Row& row : input.rows) {
    std::string key;
    std::vector<Value> key_values;
    for (int j : key_indices) {
      const Value& v = row.values[static_cast<size_t>(j)];
      key += v.ToString();
      key += '\x1f';
      key_values.push_back(v);
    }
    auto [it, inserted] = groups.try_emplace(std::move(key));
    if (inserted) {
      it->second.key_values = std::move(key_values);
      it->second.states.resize(aggs.size());
    }
    for (size_t a = 0; a < aggs.size(); ++a) {
      const Value& v = agg_indices[a] < 0
                           ? Value::Null()
                           : row.values[static_cast<size_t>(agg_indices[a])];
      PPDB_RETURN_NOT_OK(it->second.states[a].Update(v));
    }
  }

  ResultSet out{std::move(schema), {}};
  for (auto& [key, group] : groups) {
    Row row{0, group.key_values};
    for (size_t a = 0; a < aggs.size(); ++a) {
      const AggState& st = group.states[a];
      switch (aggs[a].op) {
        case AggOp::kCount:
          row.values.push_back(Value::Int64(st.count));
          break;
        case AggOp::kSum:
          row.values.push_back(Value::Double(st.sum));
          break;
        case AggOp::kAvg:
          row.values.push_back(st.non_null == 0
                                   ? Value::Null()
                                   : Value::Double(st.sum /
                                                   static_cast<double>(
                                                       st.non_null)));
          break;
        case AggOp::kMin:
          row.values.push_back(st.min);
          break;
        case AggOp::kMax:
          row.values.push_back(st.max);
          break;
      }
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

}  // namespace ppdb::rel

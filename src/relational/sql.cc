#include "relational/sql.h"

#include <cctype>

#include "common/macros.h"
#include "common/string_util.h"

namespace ppdb::rel {

namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

enum class TokenKind {
  kIdentifier,  // Column/table names and keywords (case-insensitive).
  kNumber,
  kString,  // 'single quoted', '' escapes a quote.
  kSymbol,  // Operators and punctuation, text holds the symbol.
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // Identifier (original case), symbol, or literal body.
  std::string upper;  // Upper-cased identifier text, for keyword matching.
};

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  auto peek = [&](size_t off = 0) -> char {
    return i + off < sql.size() ? sql[i + off] : '\0';
  };
  while (i < sql.size()) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < sql.size() &&
             (std::isalnum(static_cast<unsigned char>(sql[i])) ||
              sql[i] == '_' || sql[i] == '.')) {
        ++i;
      }
      Token token;
      token.kind = TokenKind::kIdentifier;
      token.text = std::string(sql.substr(start, i - start));
      token.upper = token.text;
      for (char& ch : token.upper) {
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      }
      tokens.push_back(std::move(token));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      size_t start = i;
      bool saw_dot = false;
      while (i < sql.size() &&
             (std::isdigit(static_cast<unsigned char>(sql[i])) ||
              (sql[i] == '.' && !saw_dot))) {
        if (sql[i] == '.') saw_dot = true;
        ++i;
      }
      // Exponent part.
      if (i < sql.size() && (sql[i] == 'e' || sql[i] == 'E')) {
        size_t exp = i + 1;
        if (exp < sql.size() && (sql[exp] == '+' || sql[exp] == '-')) ++exp;
        if (exp < sql.size() &&
            std::isdigit(static_cast<unsigned char>(sql[exp]))) {
          i = exp;
          while (i < sql.size() &&
                 std::isdigit(static_cast<unsigned char>(sql[i]))) {
            ++i;
          }
        }
      }
      tokens.push_back(Token{TokenKind::kNumber,
                             std::string(sql.substr(start, i - start)), ""});
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string body;
      bool closed = false;
      while (i < sql.size()) {
        if (sql[i] == '\'') {
          if (peek(1) == '\'') {
            body += '\'';
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        body += sql[i++];
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal");
      }
      tokens.push_back(Token{TokenKind::kString, std::move(body), ""});
      continue;
    }
    // Two-character operators first.
    std::string_view two = sql.substr(i, 2);
    if (two == "!=" || two == "<>" || two == "<=" || two == ">=") {
      tokens.push_back(Token{TokenKind::kSymbol, std::string(two), ""});
      i += 2;
      continue;
    }
    if (std::string_view("=<>+-*/(),").find(c) != std::string_view::npos) {
      tokens.push_back(Token{TokenKind::kSymbol, std::string(1, c), ""});
      ++i;
      continue;
    }
    return Status::ParseError(std::string("unexpected character '") + c +
                              "' in SQL");
  }
  tokens.push_back(Token{TokenKind::kEnd, "", ""});
  return tokens;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SqlQuery> ParseQuery() {
    SqlQuery query;
    PPDB_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    PPDB_RETURN_NOT_OK(ParseSelectList(&query));
    PPDB_RETURN_NOT_OK(ExpectKeyword("FROM"));
    PPDB_ASSIGN_OR_RETURN(query.table, ExpectIdentifier("table name"));

    if (AcceptKeyword("JOIN")) {
      JoinClause join;
      PPDB_ASSIGN_OR_RETURN(join.table, ExpectIdentifier("JOIN table"));
      PPDB_RETURN_NOT_OK(ExpectKeyword("ON"));
      PPDB_ASSIGN_OR_RETURN(join.left_column,
                            ExpectIdentifier("join column"));
      PPDB_RETURN_NOT_OK(ExpectSymbol("="));
      PPDB_ASSIGN_OR_RETURN(join.right_column,
                            ExpectIdentifier("join column"));
      query.join = std::move(join);
    }

    if (AcceptKeyword("WHERE")) {
      PPDB_ASSIGN_OR_RETURN(query.where, ParseExpression());
    }
    if (AcceptKeyword("GROUP")) {
      PPDB_RETURN_NOT_OK(ExpectKeyword("BY"));
      do {
        PPDB_ASSIGN_OR_RETURN(std::string column,
                              ExpectIdentifier("GROUP BY column"));
        query.group_by.push_back(std::move(column));
      } while (AcceptSymbol(","));
    }
    if (AcceptKeyword("HAVING")) {
      if (query.group_by.empty()) {
        return Status::ParseError("HAVING requires GROUP BY");
      }
      PPDB_ASSIGN_OR_RETURN(query.having, ParseExpression());
    }
    if (AcceptKeyword("ORDER")) {
      PPDB_RETURN_NOT_OK(ExpectKeyword("BY"));
      PPDB_ASSIGN_OR_RETURN(std::string column,
                            ExpectIdentifier("ORDER BY column"));
      query.order_by = std::move(column);
      if (AcceptKeyword("DESC")) {
        query.order_ascending = false;
      } else {
        AcceptKeyword("ASC");
      }
    }
    if (AcceptKeyword("LIMIT")) {
      const Token& token = Current();
      if (token.kind != TokenKind::kNumber) {
        return Status::ParseError("LIMIT expects a number");
      }
      PPDB_ASSIGN_OR_RETURN(query.limit, ParseInt64(token.text));
      Advance();
    }
    if (Current().kind != TokenKind::kEnd) {
      return Status::ParseError("unexpected trailing input: '" +
                                Current().text + "'");
    }
    return query;
  }

 private:
  const Token& Current() const { return tokens_[pos_]; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  bool AcceptKeyword(std::string_view keyword) {
    if (Current().kind == TokenKind::kIdentifier &&
        Current().upper == keyword) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectKeyword(std::string_view keyword) {
    if (!AcceptKeyword(keyword)) {
      return Status::ParseError("expected " + std::string(keyword) +
                                ", got '" + Current().text + "'");
    }
    return Status::OK();
  }

  bool AcceptSymbol(std::string_view symbol) {
    if (Current().kind == TokenKind::kSymbol && Current().text == symbol) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectSymbol(std::string_view symbol) {
    if (!AcceptSymbol(symbol)) {
      return Status::ParseError("expected '" + std::string(symbol) +
                                "', got '" + Current().text + "'");
    }
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier(std::string_view what) {
    if (Current().kind != TokenKind::kIdentifier) {
      return Status::ParseError("expected " + std::string(what) + ", got '" +
                                Current().text + "'");
    }
    std::string name = Current().text;
    Advance();
    return name;
  }

  static bool IsAggregateName(const std::string& upper) {
    return upper == "COUNT" || upper == "SUM" || upper == "AVG" ||
           upper == "MIN" || upper == "MAX";
  }

  Status ParseSelectList(SqlQuery* query) {
    if (AcceptSymbol("*")) {
      // Construct in place: moving a SelectItem whose optional<AggSpec> is
      // disengaged trips a GCC 12 maybe-uninitialized false positive.
      query->select.emplace_back();
      query->select.back().star = true;
      return Status::OK();
    }
    do {
      PPDB_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      query->select.push_back(std::move(item));
    } while (AcceptSymbol(","));
    return Status::OK();
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    if (Current().kind != TokenKind::kIdentifier) {
      return Status::ParseError("expected column or aggregate, got '" +
                                Current().text + "'");
    }
    std::string name = Current().text;
    std::string upper = Current().upper;
    Advance();

    if (IsAggregateName(upper) && AcceptSymbol("(")) {
      AggSpec spec;
      if (upper == "COUNT") {
        spec.op = AggOp::kCount;
        if (!AcceptSymbol("*")) {
          // COUNT(column) counts rows too (nulls included), matching the
          // engine's kCount semantics; the column is noted but unused.
          PPDB_ASSIGN_OR_RETURN(spec.column,
                                ExpectIdentifier("COUNT argument"));
        }
        item.output_name = "count";
      } else {
        spec.op = upper == "SUM"   ? AggOp::kSum
                  : upper == "AVG" ? AggOp::kAvg
                  : upper == "MIN" ? AggOp::kMin
                                   : AggOp::kMax;
        PPDB_ASSIGN_OR_RETURN(spec.column,
                              ExpectIdentifier("aggregate argument"));
        item.output_name = ToLower(upper) + "_" + spec.column;
      }
      PPDB_RETURN_NOT_OK(ExpectSymbol(")"));
      item.aggregate = std::move(spec);
    } else {
      item.column = name;
      item.output_name = name;
    }
    if (AcceptKeyword("AS")) {
      PPDB_ASSIGN_OR_RETURN(item.output_name, ExpectIdentifier("alias"));
    }
    if (item.aggregate.has_value()) {
      item.aggregate->output_name = item.output_name;
    }
    return item;
  }

  // Expression grammar, loosest to tightest:
  //   or_expr   := and_expr {OR and_expr}
  //   and_expr  := not_expr {AND not_expr}
  //   not_expr  := NOT not_expr | comparison
  //   comparison:= additive [(= | != | <> | < | <= | > | >=) additive]
  //              | additive IS [NOT] NULL
  //   additive  := multiplicative {(+|-) multiplicative}
  //   multiplicative := unary {(*|/) unary}
  //   unary     := - unary | primary
  //   primary   := number | string | TRUE | FALSE | NULL | column | ( expr )
  Result<ExprPtr> ParseExpression() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    PPDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (AcceptKeyword("OR")) {
      PPDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Or(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    PPDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (AcceptKeyword("AND")) {
      PPDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = And(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (AcceptKeyword("NOT")) {
      PPDB_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return Not(std::move(operand));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    PPDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    if (AcceptKeyword("IS")) {
      bool negated = AcceptKeyword("NOT");
      PPDB_RETURN_NOT_OK(ExpectKeyword("NULL"));
      ExprPtr test = IsNull(std::move(lhs));
      return negated ? Not(std::move(test)) : test;
    }
    struct OpMap {
      std::string_view symbol;
      BinaryOp op;
    };
    static constexpr OpMap kOps[] = {
        {"=", BinaryOp::kEq},  {"!=", BinaryOp::kNe}, {"<>", BinaryOp::kNe},
        {"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe}, {"<", BinaryOp::kLt},
        {">", BinaryOp::kGt},
    };
    for (const OpMap& entry : kOps) {
      if (AcceptSymbol(entry.symbol)) {
        PPDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
        return Binary(entry.op, std::move(lhs), std::move(rhs));
      }
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    PPDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (true) {
      if (AcceptSymbol("+")) {
        PPDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = Add(std::move(lhs), std::move(rhs));
      } else if (AcceptSymbol("-")) {
        PPDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = Sub(std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    PPDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (true) {
      if (AcceptSymbol("*")) {
        PPDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = Mul(std::move(lhs), std::move(rhs));
      } else if (AcceptSymbol("/")) {
        PPDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = Div(std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (AcceptSymbol("-")) {
      PPDB_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return Unary(UnaryOp::kNegate, std::move(operand));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& token = Current();
    switch (token.kind) {
      case TokenKind::kNumber: {
        std::string text = token.text;
        Advance();
        if (text.find('.') == std::string::npos &&
            text.find('e') == std::string::npos &&
            text.find('E') == std::string::npos) {
          PPDB_ASSIGN_OR_RETURN(int64_t value, ParseInt64(text));
          return Lit(Value::Int64(value));
        }
        PPDB_ASSIGN_OR_RETURN(double value, ParseDouble(text));
        return Lit(Value::Double(value));
      }
      case TokenKind::kString: {
        std::string body = token.text;
        Advance();
        return Lit(Value::String(std::move(body)));
      }
      case TokenKind::kIdentifier: {
        if (token.upper == "TRUE") {
          Advance();
          return Lit(Value::Bool(true));
        }
        if (token.upper == "FALSE") {
          Advance();
          return Lit(Value::Bool(false));
        }
        if (token.upper == "NULL") {
          Advance();
          return Lit(Value::Null());
        }
        std::string name = token.text;
        Advance();
        return Col(std::move(name));
      }
      case TokenKind::kSymbol:
        if (token.text == "(") {
          Advance();
          PPDB_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpression());
          PPDB_RETURN_NOT_OK(ExpectSymbol(")"));
          return inner;
        }
        break;
      case TokenKind::kEnd:
        break;
    }
    return Status::ParseError("expected expression, got '" + token.text +
                              "'");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SqlQuery> ParseSql(std::string_view sql) {
  PPDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseQuery();
}

Result<ResultSet> ExecuteQuery(const Catalog& catalog,
                               const SqlQuery& query) {
  PPDB_ASSIGN_OR_RETURN(const Table* table, catalog.GetTable(query.table));
  ResultSet current = Scan(*table);
  if (query.join.has_value()) {
    PPDB_ASSIGN_OR_RETURN(const Table* right,
                          catalog.GetTable(query.join->table));
    PPDB_ASSIGN_OR_RETURN(
        current, HashJoin(current, Scan(*right), query.join->left_column,
                          query.join->right_column));
  }
  if (query.where != nullptr) {
    PPDB_ASSIGN_OR_RETURN(current, Filter(current, query.where));
  }

  bool has_aggregate = false;
  for (const SelectItem& item : query.select) {
    if (item.aggregate.has_value()) has_aggregate = true;
  }

  if (has_aggregate || !query.group_by.empty()) {
    std::vector<AggSpec> aggs;
    std::vector<std::string> output_order;
    for (const SelectItem& item : query.select) {
      if (item.star) {
        return Status::InvalidArgument(
            "SELECT * cannot be combined with aggregation");
      }
      if (item.aggregate.has_value()) {
        aggs.push_back(*item.aggregate);
        output_order.push_back(item.output_name);
        continue;
      }
      // A bare column must be one of the GROUP BY keys.
      bool is_key = false;
      for (const std::string& key : query.group_by) {
        if (key == *item.column) is_key = true;
      }
      if (!is_key) {
        return Status::InvalidArgument(
            "column '" + *item.column +
            "' must appear in GROUP BY or inside an aggregate");
      }
      output_order.push_back(*item.column);
    }
    if (aggs.empty()) {
      return Status::InvalidArgument(
          "GROUP BY requires at least one aggregate in the SELECT list");
    }
    PPDB_ASSIGN_OR_RETURN(current,
                          Aggregate(current, query.group_by, aggs));
    // Aggregate emits keys then aggregates; project into SELECT order.
    // (Aliases for group keys are not supported; keys keep their names.)
    PPDB_ASSIGN_OR_RETURN(current, Project(current, output_order));
    if (query.having != nullptr) {
      PPDB_ASSIGN_OR_RETURN(current, Filter(current, query.having));
    }
  } else {
    if (query.having != nullptr) {
      return Status::InvalidArgument("HAVING requires aggregation");
    }
    bool star = query.select.size() == 1 && query.select[0].star;
    if (!star) {
      std::vector<std::string> columns;
      for (const SelectItem& item : query.select) {
        columns.push_back(*item.column);
      }
      PPDB_ASSIGN_OR_RETURN(current, Project(current, columns));
      // Apply aliases by rebuilding the schema names in place.
      std::vector<AttributeDef> defs = current.schema.attributes();
      for (size_t i = 0; i < query.select.size(); ++i) {
        defs[i].name = query.select[i].output_name;
      }
      PPDB_ASSIGN_OR_RETURN(Schema renamed, Schema::Create(std::move(defs)));
      current.schema = std::move(renamed);
    }
  }

  if (query.order_by.has_value()) {
    PPDB_ASSIGN_OR_RETURN(
        current, Sort(current, *query.order_by, query.order_ascending));
  }
  if (query.limit.has_value()) {
    current = Limit(current, *query.limit);
  }
  return current;
}

Result<ResultSet> ExecuteSql(const Catalog& catalog, std::string_view sql) {
  PPDB_ASSIGN_OR_RETURN(SqlQuery query, ParseSql(sql));
  return ExecuteQuery(catalog, query);
}

}  // namespace ppdb::rel

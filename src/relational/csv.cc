#include "relational/csv.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace ppdb::rel {

Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) {
          return Status::ParseError("unexpected quote inside unquoted field");
        }
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        break;
      case '\r':
        // Swallow the CR of a CRLF pair; a bare CR also ends the row.
        if (i + 1 < text.size() && text[i + 1] == '\n') break;
        end_row();
        break;
      case '\n':
        end_row();
        break;
      default:
        field += c;
        field_started = true;
        break;
    }
  }
  if (in_quotes) return Status::ParseError("unterminated quoted field");
  if (field_started || !row.empty()) end_row();
  return rows;
}

Result<Table> TableFromCsv(std::string name, const Schema& schema,
                           std::string_view text,
                           bool header_has_provider_id) {
  PPDB_ASSIGN_OR_RETURN(auto records, ParseCsv(text));
  if (records.empty()) {
    return Status::ParseError("CSV input has no header row");
  }
  const std::vector<std::string>& header = records[0];
  size_t data_offset = header_has_provider_id ? 1 : 0;
  if (header.size() != static_cast<size_t>(schema.num_attributes()) +
                           data_offset) {
    return Status::ParseError(
        "CSV header has " + std::to_string(header.size()) +
        " columns, expected " +
        std::to_string(schema.num_attributes() + static_cast<int>(data_offset)));
  }
  for (int j = 0; j < schema.num_attributes(); ++j) {
    const std::string& column = header[static_cast<size_t>(j) + data_offset];
    if (column != schema.attribute(j).name) {
      return Status::ParseError("CSV header column '" + column +
                                "' does not match schema attribute '" +
                                schema.attribute(j).name + "'");
    }
  }

  PPDB_ASSIGN_OR_RETURN(Table table, Table::Create(std::move(name), schema));
  for (size_t r = 1; r < records.size(); ++r) {
    const std::vector<std::string>& record = records[r];
    if (record.size() != header.size()) {
      return Status::ParseError("CSV row " + std::to_string(r) + " has " +
                                std::to_string(record.size()) +
                                " fields, expected " +
                                std::to_string(header.size()));
    }
    ProviderId provider;
    if (header_has_provider_id) {
      Result<int64_t> parsed = ParseInt64(record[0]);
      if (!parsed.ok()) {
        return parsed.status().WithPrefix("CSV row " + std::to_string(r) +
                                          ": bad provider id");
      }
      provider = parsed.value();
    } else {
      provider = static_cast<ProviderId>(r);
    }
    std::vector<Value> values;
    values.reserve(static_cast<size_t>(schema.num_attributes()));
    for (int j = 0; j < schema.num_attributes(); ++j) {
      Result<Value> value = Value::Parse(
          record[static_cast<size_t>(j) + data_offset], schema.attribute(j).type);
      if (!value.ok()) {
        return value.status().WithPrefix("CSV row " + std::to_string(r) +
                                         ", column '" +
                                         schema.attribute(j).name + "'");
      }
      values.push_back(std::move(value).value());
    }
    PPDB_RETURN_NOT_OK(
        table.Insert(provider, std::move(values))
            .WithPrefix("CSV row " + std::to_string(r)));
  }
  return table;
}

std::string TableToCsv(const Table& table) {
  std::string out = "provider_id";
  for (const AttributeDef& def : table.schema().attributes()) {
    out += ',';
    out += CsvEscape(def.name);
  }
  out += '\n';
  for (const Row& row : table.rows()) {
    out += std::to_string(row.provider);
    for (const Value& v : row.values) {
      out += ',';
      if (!v.is_null()) out += CsvEscape(v.ToString());
    }
    out += '\n';
  }
  return out;
}

}  // namespace ppdb::rel

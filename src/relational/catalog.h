#ifndef PPDB_RELATIONAL_CATALOG_H_
#define PPDB_RELATIONAL_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "relational/table.h"

namespace ppdb::rel {

/// Registry of the tables that constitute the house's data repository.
///
/// The catalog owns its tables; callers receive stable `Table*` handles that
/// remain valid until the table is dropped. Move-only.
class Catalog {
 public:
  Catalog() = default;
  Catalog(Catalog&&) noexcept = default;
  Catalog& operator=(Catalog&&) noexcept = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty table and registers it. Errors when the name is taken.
  Result<Table*> CreateTable(std::string name, Schema schema);

  /// Registers an already-built table (e.g. loaded from CSV).
  Result<Table*> AddTable(Table table);

  /// Looks up a table by name.
  Result<Table*> GetTable(std::string_view name);
  Result<const Table*> GetTable(std::string_view name) const;

  /// Drops a table. Errors with kNotFound when absent.
  Status DropTable(std::string_view name);

  /// True iff a table with this name exists.
  bool Contains(std::string_view name) const;

  /// Names of all tables, sorted.
  std::vector<std::string> TableNames() const;

  int64_t num_tables() const { return static_cast<int64_t>(tables_.size()); }

 private:
  // std::map keeps TableNames() deterministic; unique_ptr keeps Table*
  // handles stable across rehash/moves.
  std::map<std::string, std::unique_ptr<Table>, std::less<>> tables_;
};

}  // namespace ppdb::rel

#endif  // PPDB_RELATIONAL_CATALOG_H_

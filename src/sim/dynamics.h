#ifndef PPDB_SIM_DYNAMICS_H_
#define PPDB_SIM_DYNAMICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "privacy/config.h"
#include "violation/policy_search.h"

namespace ppdb::sim {

/// One round of the house–provider dynamic.
struct DynamicsRound {
  int round = 0;
  /// Providers present at the start of the round.
  int64_t population = 0;
  /// Policy the house chose this round (its best response).
  privacy::HousePolicy policy;
  /// House utility at that choice, against the start-of-round population.
  double utility = 0.0;
  /// Providers who defaulted under the chosen policy and left.
  int64_t departures = 0;
  /// Moves the greedy search accepted this round.
  int64_t moves = 0;
};

/// Outcome of iterating the dynamic to a fixed point.
struct DynamicsResult {
  std::vector<DynamicsRound> rounds;
  /// True when the process stopped because nobody departed and the policy
  /// stopped moving (a stable outcome); false when max_rounds hit first.
  bool converged = false;
  /// The system at the end: final policy and the surviving population
  /// (departed providers' preferences and thresholds removed).
  privacy::PrivacyConfig final_config;

  const DynamicsRound& final_round() const { return rounds.back(); }
};

/// Iterates the §10 dynamic the paper leaves as future work ("the
/// challenging problem of real-time dynamics occurring between a house and
/// a set of (possibly very heterogeneous) data providers"):
///
///   repeat:
///     1. the house best-responds to the current population
///        (GreedyPolicySearch from its current policy);
///     2. providers whose Violation_i now exceeds v_i default and LEAVE —
///        their preferences, thresholds and data quit the system (§2:
///        "they will not participate, and contribute zero information");
///   until nobody leaves and the policy is stable, or max_rounds.
///
/// Departure makes this differ from the one-shot §9 analysis: each exit
/// shrinks the base the house earns U from, so the house may re-narrow in
/// later rounds — the equilibrium-seeking behaviour van Heerde et al. and
/// the game-theoretic related work describe.
///
/// `config` is copied; the caller's population is untouched.
Result<DynamicsResult> RunHouseProviderDynamics(
    const privacy::PrivacyConfig& config,
    const violation::SearchOptions& search_options, int max_rounds = 16);

}  // namespace ppdb::sim

#endif  // PPDB_SIM_DYNAMICS_H_

#ifndef PPDB_SIM_POPULATION_H_
#define PPDB_SIM_POPULATION_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "privacy/config.h"
#include "relational/table.h"
#include "sim/westin.h"

namespace ppdb::sim {

/// One attribute of the synthetic database: its name, Σ^a, and the normal
/// distribution its numeric data is drawn from.
struct AttributeSpec {
  std::string name;
  /// Σ^a, the attribute sensitivity (Eq. 10).
  double attribute_sensitivity = 1.0;
  /// Synthetic data: x_i ~ N(data_mean, data_stddev), stored as double.
  double data_mean = 0.0;
  double data_stddev = 1.0;
};

/// Configuration of a synthetic provider population.
struct PopulationConfig {
  int64_t num_providers = 1000;
  std::vector<AttributeSpec> attributes;
  std::vector<std::string> purposes;
  /// Mix over {fundamentalist, pragmatist, unconcerned}; need not be
  /// normalized.
  std::array<double, 3> segment_mix = kDefaultSegmentMix;
  /// Per-segment draw profiles; defaults to `DefaultProfile`.
  std::array<SegmentProfile, 3> profiles = {
      DefaultProfile(WestinSegment::kFundamentalist),
      DefaultProfile(WestinSegment::kPragmatist),
      DefaultProfile(WestinSegment::kUnconcerned),
  };
  /// Scales the population's tuples live on.
  privacy::ScaleSet scales;
  /// Name of the generated data table.
  std::string table_name = "providers";
  uint64_t seed = 42;
};

/// A generated population: a `PrivacyConfig` whose preference store,
/// sensitivity model and thresholds are filled (the policy is left empty —
/// pair it with `MakeUniformPolicy` or a hand-built one), the synthetic
/// data table, and the segment assignment.
struct Population {
  privacy::PrivacyConfig config;
  rel::Table data;
  /// segments[k] is the segment of the provider with id k+1 (ids are 1..N).
  std::vector<WestinSegment> segments;

  int64_t num_providers() const {
    return static_cast<int64_t>(segments.size());
  }

  /// The segment of `provider` (ids 1..N); errors when out of range.
  Result<WestinSegment> SegmentOf(privacy::ProviderId provider) const;
};

/// Draws populations per a `PopulationConfig`. Deterministic in the seed.
///
/// Usage:
///
///   PopulationConfig cfg;
///   cfg.attributes = {{"age", 2.0, 45, 15}, {"weight", 4.0, 75, 12}};
///   cfg.purposes = {"service", "marketing"};
///   PPDB_ASSIGN_OR_RETURN(Population pop,
///                         PopulationGenerator(cfg).Generate());
class PopulationGenerator {
 public:
  explicit PopulationGenerator(PopulationConfig config);

  /// Generates a population. Each call with the same config yields the same
  /// population.
  Result<Population> Generate() const;

 private:
  PopulationConfig config_;
};

/// Builds a house policy with one tuple per (attribute, purpose), all at the
/// same fractional position of each scale: level = round(fraction × max).
/// Fractions are clamped to [0, 1]. Also installs every attribute's Σ^a
/// into `config->sensitivities` and registers the purposes.
Result<privacy::HousePolicy> MakeUniformPolicy(
    const std::vector<AttributeSpec>& attributes,
    const std::vector<std::string>& purposes, double visibility_fraction,
    double granularity_fraction, double retention_fraction,
    privacy::PrivacyConfig* config);

}  // namespace ppdb::sim

#endif  // PPDB_SIM_POPULATION_H_

#ifndef PPDB_SIM_WESTIN_H_
#define PPDB_SIM_WESTIN_H_

#include <array>
#include <string_view>

namespace ppdb::sim {

/// Westin's privacy segmentation of the public, the survey lens the paper
/// cites for population-level privacy attitudes ([11], [21]).
enum class WestinSegment {
  /// Highly protective: distrustful of data collection, tight preferences,
  /// high sensitivities, low default thresholds.
  kFundamentalist = 0,
  /// The weighing middle: moderate preferences and thresholds.
  kPragmatist = 1,
  /// Untroubled by collection: loose preferences, high thresholds.
  kUnconcerned = 2,
};

inline constexpr std::array<WestinSegment, 3> kAllSegments = {
    WestinSegment::kFundamentalist,
    WestinSegment::kPragmatist,
    WestinSegment::kUnconcerned,
};

/// Returns "fundamentalist", "pragmatist" or "unconcerned".
std::string_view WestinSegmentName(WestinSegment segment);

/// The 1999 Westin/Harris mix reported by Kumaraguru & Cranor's survey of
/// Westin's studies [11]: 25% fundamentalist, 57% pragmatist,
/// 18% unconcerned. A reasonable default when no population survey exists.
inline constexpr std::array<double, 3> kDefaultSegmentMix = {0.25, 0.57,
                                                             0.18};

/// How one segment's providers are drawn. Preference levels on each ordered
/// dimension are sampled around `mean_level_fraction × max_level` with
/// Gaussian jitter; sensitivities and thresholds are log-normal (right
/// skew: a minority cares intensely), matching the qualitative shape of the
/// valuation studies the paper cites ([8]).
struct SegmentProfile {
  /// Mean stated preference level as a fraction of each scale's max (0 =
  /// share nothing, 1 = share everything).
  double mean_level_fraction = 0.5;
  /// Std-dev of the level jitter, as a fraction of the scale max.
  double level_jitter_fraction = 0.15;
  /// Probability that the provider states a preference for a given
  /// (attribute, purpose) pair at all (unstated pairs fall to Def. 1's
  /// implicit zero tuple).
  double statement_probability = 0.8;
  /// log-normal(mu, sigma) for the datum sensitivity s_i^a.
  double sensitivity_mu = 0.0;
  double sensitivity_sigma = 0.35;
  /// log-normal(mu, sigma) for the per-dimension sensitivities s_i^a[dim].
  double dimension_sensitivity_mu = 0.0;
  double dimension_sensitivity_sigma = 0.35;
  /// log-normal(mu, sigma) for the default threshold v_i.
  double threshold_mu = 3.0;
  double threshold_sigma = 0.8;
};

/// Default profiles for the three segments, calibrated so fundamentalists
/// prefer tight levels / feel violations strongly / default early, and
/// unconcerned the reverse.
SegmentProfile DefaultProfile(WestinSegment segment);

}  // namespace ppdb::sim

#endif  // PPDB_SIM_WESTIN_H_

#include "sim/scenario.h"

#include <unordered_set>
#include <utility>

#include "common/macros.h"
#include "violation/default_model.h"
#include "violation/detector.h"

namespace ppdb::sim {

double DefaultOnsetResult::FractionDefaultedBy(int k) const {
  if (num_providers == 0) return 0.0;
  // onset_steps holds only defaulted providers; Evaluate() is their CDF.
  double defaulted = static_cast<double>(onset_steps.count()) *
                     onset_steps.Evaluate(static_cast<double>(k));
  return defaulted / static_cast<double>(num_providers);
}

Status CalibrateThresholdsToPolicy(Population* population,
                                   double headroom_mu, double headroom_sigma,
                                   uint64_t seed) {
  violation::ViolationDetector detector(&population->config);
  PPDB_ASSIGN_OR_RETURN(violation::ViolationReport report,
                        detector.Analyze());
  Rng rng(seed);
  for (const violation::ProviderViolation& pv : report.providers) {
    population->config.thresholds[pv.provider] =
        pv.total_severity + rng.NextLogNormal(headroom_mu, headroom_sigma);
  }
  return Status::OK();
}

ScenarioRunner::ScenarioRunner(const Population* population)
    : population_(population) {}

Result<std::vector<violation::ExpansionPoint>> ScenarioRunner::RunExpansion(
    const std::vector<violation::ExpansionStep>& schedule,
    double utility_per_provider, double extra_utility_per_step) const {
  violation::WhatIfAnalyzer::Options options;
  options.utility_per_provider = utility_per_provider;
  options.extra_utility_per_step = extra_utility_per_step;
  violation::WhatIfAnalyzer analyzer(&population_->config, options);
  return analyzer.RunSchedule(schedule);
}

Result<DefaultOnsetResult> ScenarioRunner::DefaultOnsets(
    const std::vector<violation::ExpansionStep>& schedule) const {
  DefaultOnsetResult out;
  out.num_providers = population_->num_providers();

  privacy::PrivacyConfig scratch = population_->config;
  std::unordered_set<privacy::ProviderId> defaulted;

  for (size_t k = 0; k <= schedule.size(); ++k) {
    if (k > 0) {
      const violation::ExpansionStep& step = schedule[k - 1];
      if (step.attribute.has_value()) {
        PPDB_ASSIGN_OR_RETURN(scratch.policy,
                              scratch.policy.WidenedForAttribute(
                                  *step.attribute, step.dimension, step.delta,
                                  scratch.scales));
      } else {
        PPDB_ASSIGN_OR_RETURN(
            scratch.policy,
            scratch.policy.Widened(step.dimension, step.delta,
                                   scratch.scales));
      }
    }
    violation::ViolationDetector detector(&scratch);
    PPDB_ASSIGN_OR_RETURN(violation::ViolationReport report,
                          detector.Analyze());
    violation::DefaultReport defaults =
        violation::ComputeDefaults(report, scratch);
    for (const violation::ProviderDefault& pd : defaults.providers) {
      if (!pd.defaulted || defaulted.contains(pd.provider)) continue;
      defaulted.insert(pd.provider);
      double onset = static_cast<double>(k);
      out.onset_steps.Add(onset);
      PPDB_ASSIGN_OR_RETURN(WestinSegment segment,
                            population_->SegmentOf(pd.provider));
      out.onset_by_segment[static_cast<size_t>(segment)].Add(onset);
      ++out.defaulted_by_segment[static_cast<size_t>(segment)];
    }
  }
  out.never_defaulted =
      out.num_providers - static_cast<int64_t>(defaulted.size());
  return out;
}

}  // namespace ppdb::sim

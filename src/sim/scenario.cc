#include "sim/scenario.h"

#include <unordered_set>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/thread_pool.h"
#include "violation/default_model.h"
#include "violation/detector.h"

namespace ppdb::sim {

double DefaultOnsetResult::FractionDefaultedBy(int k) const {
  if (num_providers == 0) return 0.0;
  // onset_steps holds only defaulted providers; Evaluate() is their CDF.
  double defaulted = static_cast<double>(onset_steps.count()) *
                     onset_steps.Evaluate(static_cast<double>(k));
  return defaulted / static_cast<double>(num_providers);
}

Status CalibrateThresholdsToPolicy(Population* population,
                                   double headroom_mu, double headroom_sigma,
                                   uint64_t seed) {
  violation::ViolationDetector detector(&population->config);
  PPDB_ASSIGN_OR_RETURN(violation::ViolationReport report,
                        detector.Analyze());
  Rng rng(seed);
  for (const violation::ProviderViolation& pv : report.providers) {
    population->config.thresholds[pv.provider] =
        pv.total_severity + rng.NextLogNormal(headroom_mu, headroom_sigma);
  }
  return Status::OK();
}

ScenarioRunner::ScenarioRunner(const Population* population, Options options)
    : population_(population), options_(options) {}

Result<std::vector<violation::ExpansionPoint>> ScenarioRunner::RunExpansion(
    const std::vector<violation::ExpansionStep>& schedule,
    double utility_per_provider, double extra_utility_per_step) const {
  violation::WhatIfAnalyzer::Options options;
  options.utility_per_provider = utility_per_provider;
  options.extra_utility_per_step = extra_utility_per_step;
  options.num_threads = options_.num_threads;
  violation::WhatIfAnalyzer analyzer(&population_->config, options);
  return analyzer.RunSchedule(schedule);
}

Result<DefaultOnsetResult> ScenarioRunner::DefaultOnsets(
    const std::vector<violation::ExpansionStep>& schedule) const {
  DefaultOnsetResult out;
  out.num_providers = population_->num_providers();

  // Build the cumulative policies serially, score every step's population
  // in parallel (each step reads the fixed config plus its own policy via
  // the detector's zero-copy override), then scan the per-step default
  // reports in step order so each provider's first onset is attributed
  // deterministically.
  std::vector<privacy::HousePolicy> policies;
  policies.reserve(schedule.size() + 1);
  policies.push_back(population_->config.policy);
  for (const violation::ExpansionStep& step : schedule) {
    privacy::HousePolicy next;
    if (step.attribute.has_value()) {
      PPDB_ASSIGN_OR_RETURN(next,
                            policies.back().WidenedForAttribute(
                                *step.attribute, step.dimension, step.delta,
                                population_->config.scales));
    } else {
      PPDB_ASSIGN_OR_RETURN(
          next, policies.back().Widened(step.dimension, step.delta,
                                        population_->config.scales));
    }
    policies.push_back(std::move(next));
  }

  const int64_t n = static_cast<int64_t>(policies.size());
  std::vector<violation::DefaultReport> reports(static_cast<size_t>(n));
  std::vector<Status> statuses(static_cast<size_t>(n));
  ThreadPool::Shared().ParallelRange(
      0, n, /*grain=*/1, ThreadPool::ResolveThreadCount(options_.num_threads),
      [&](int64_t /*shard*/, int64_t begin, int64_t end) {
        for (int64_t k = begin; k < end; ++k) {
          const size_t at = static_cast<size_t>(k);
          violation::ViolationDetector::Options detector_options;
          detector_options.policy_override = &policies[at];
          violation::ViolationDetector detector(&population_->config,
                                                detector_options);
          Result<violation::ViolationReport> report = detector.Analyze();
          if (!report.ok()) {
            statuses[at] = report.status();
            continue;
          }
          reports[at] =
              violation::ComputeDefaults(report.value(), population_->config);
        }
      });
  for (const Status& status : statuses) PPDB_RETURN_NOT_OK(status);

  std::unordered_set<privacy::ProviderId> defaulted;
  for (size_t k = 0; k < static_cast<size_t>(n); ++k) {
    for (const violation::ProviderDefault& pd : reports[k].providers) {
      if (!pd.defaulted || defaulted.contains(pd.provider)) continue;
      defaulted.insert(pd.provider);
      double onset = static_cast<double>(k);
      out.onset_steps.Add(onset);
      PPDB_ASSIGN_OR_RETURN(WestinSegment segment,
                            population_->SegmentOf(pd.provider));
      out.onset_by_segment[static_cast<size_t>(segment)].Add(onset);
      ++out.defaulted_by_segment[static_cast<size_t>(segment)];
    }
  }
  out.never_defaulted =
      out.num_providers - static_cast<int64_t>(defaulted.size());
  return out;
}

}  // namespace ppdb::sim

#include "sim/dynamics.h"

#include <utility>

#include "common/macros.h"
#include "violation/default_model.h"
#include "violation/detector.h"

namespace ppdb::sim {

Result<DynamicsResult> RunHouseProviderDynamics(
    const privacy::PrivacyConfig& config,
    const violation::SearchOptions& search_options, int max_rounds) {
  if (max_rounds < 1) {
    return Status::InvalidArgument("need at least one round");
  }
  privacy::PrivacyConfig state = config;
  DynamicsResult result;

  for (int round = 1; round <= max_rounds; ++round) {
    DynamicsRound record;
    record.round = round;
    record.population = state.preferences.num_providers();
    if (record.population == 0) {
      // Everyone left; the empty outcome is trivially stable.
      record.policy = state.policy;
      result.rounds.push_back(std::move(record));
      result.converged = true;
      break;
    }

    // 1. House best-responds to the current population.
    PPDB_ASSIGN_OR_RETURN(
        violation::SearchResult search,
        violation::GreedyPolicySearch(state, search_options));
    bool policy_moved = !search.trajectory.empty();
    record.moves = static_cast<int64_t>(search.trajectory.size());
    record.utility = search.best_utility;
    record.policy = search.best_policy;
    state.policy = std::move(search.best_policy);

    // 2. Defaulted providers leave the system.
    violation::ViolationDetector detector(&state,
                                          search_options.detector_options);
    PPDB_ASSIGN_OR_RETURN(violation::ViolationReport report,
                          detector.Analyze());
    violation::DefaultReport defaults =
        violation::ComputeDefaults(report, state);
    for (privacy::ProviderId departing : defaults.DefaultedProviders()) {
      if (state.preferences.Contains(departing)) {
        PPDB_RETURN_NOT_OK(state.preferences.Erase(departing));
      }
      state.thresholds.erase(departing);
    }
    record.departures = defaults.num_defaulted;
    result.rounds.push_back(std::move(record));

    if (!policy_moved && defaults.num_defaulted == 0) {
      result.converged = true;
      break;
    }
  }
  result.final_config = std::move(state);
  return result;
}

}  // namespace ppdb::sim

#ifndef PPDB_SIM_SCENARIO_H_
#define PPDB_SIM_SCENARIO_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "sim/population.h"
#include "stats/empirical_cdf.h"
#include "violation/what_if.h"

namespace ppdb::sim {

/// The empirical default-onset distribution produced by widening a policy
/// step by step over a fixed population — the cumulative distribution
/// function §10 proposes to construct ("empirically construct a cumulative
/// distribution function of the number of defaults as the house expands its
/// privacy policies").
struct DefaultOnsetResult {
  /// One sample per provider who defaulted: the first (1-based) step index
  /// at which default_i flipped to 1.
  stats::EmpiricalCdf onset_steps;
  /// Same, split by Westin segment.
  std::array<stats::EmpiricalCdf, 3> onset_by_segment;
  /// Providers who never defaulted across the whole schedule.
  int64_t never_defaulted = 0;
  /// Defaults after the full schedule, per segment.
  std::array<int64_t, 3> defaulted_by_segment = {0, 0, 0};
  int64_t num_providers = 0;

  /// Fraction of providers defaulted by step `k` (the CDF at k).
  double FractionDefaultedBy(int k) const;
};

/// Re-draws every provider's default threshold as
/// v_i = Violation_i(current policy) + lognormal(headroom_mu,
/// headroom_sigma), so that no provider defaults under the population's
/// current policy. This operationalizes §9's starting assumption — "let us
/// assume that currently, no data providers have defaulted; i.e. all
/// Violation_i are less than the critical v_i" — while keeping the
/// *slack* heterogeneous across providers. The population's
/// `config.policy` must already be set.
Status CalibrateThresholdsToPolicy(Population* population,
                                   double headroom_mu, double headroom_sigma,
                                   uint64_t seed);

/// Drives §9/§10-style experiments over a generated population: expansion
/// curves (utility trade-off) and default-onset CDFs.
///
/// The population's `config.policy` must be set (e.g. via
/// `MakeUniformPolicy`) before running scenarios. `population` must outlive
/// the runner.
class ScenarioRunner {
 public:
  struct Options {
    /// Threads used to evaluate the points of a schedule concurrently
    /// (0 = hardware concurrency, 1 = serial). Schedule points are
    /// independent once the cumulative policies are built, and results
    /// are merged in step order — identical at any setting. The
    /// violation detector inside each point parallelizes over providers
    /// on its own (`ViolationDetector::Options::num_threads`).
    int num_threads = 1;
  };

  explicit ScenarioRunner(const Population* population)
      : ScenarioRunner(population, Options()) {}
  ScenarioRunner(const Population* population, Options options);

  /// Runs a cumulative expansion schedule and reports the §9 economics at
  /// every point (delegates to violation::WhatIfAnalyzer).
  Result<std::vector<violation::ExpansionPoint>> RunExpansion(
      const std::vector<violation::ExpansionStep>& schedule,
      double utility_per_provider, double extra_utility_per_step) const;

  /// Computes the default-onset CDF over a cumulative schedule: for each
  /// provider, the first step at which they default.
  Result<DefaultOnsetResult> DefaultOnsets(
      const std::vector<violation::ExpansionStep>& schedule) const;

 private:
  const Population* population_;
  Options options_;
};

}  // namespace ppdb::sim

#endif  // PPDB_SIM_SCENARIO_H_

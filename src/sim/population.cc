#include "sim/population.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/macros.h"

namespace ppdb::sim {

using privacy::Dimension;
using privacy::PrivacyTuple;
using privacy::PurposeId;

Result<WestinSegment> Population::SegmentOf(
    privacy::ProviderId provider) const {
  if (provider < 1 || provider > num_providers()) {
    return Status::OutOfRange("provider id " + std::to_string(provider) +
                              " outside population 1.." +
                              std::to_string(num_providers()));
  }
  return segments[static_cast<size_t>(provider - 1)];
}

PopulationGenerator::PopulationGenerator(PopulationConfig config)
    : config_(std::move(config)) {}

namespace {

/// Draws a preference level around fraction×max with Gaussian jitter,
/// clamped to the scale.
int DrawLevel(const privacy::OrderedScale& scale, double fraction,
              double jitter_fraction, Rng& rng) {
  double max = static_cast<double>(scale.max_level());
  double raw = rng.NextGaussian(fraction * max, jitter_fraction * max);
  int level = static_cast<int>(std::lround(raw));
  return std::clamp(level, 0, scale.max_level());
}

}  // namespace

Result<Population> PopulationGenerator::Generate() const {
  if (config_.num_providers <= 0) {
    return Status::InvalidArgument("population needs at least one provider");
  }
  if (config_.attributes.empty()) {
    return Status::InvalidArgument("population needs at least one attribute");
  }
  if (config_.purposes.empty()) {
    return Status::InvalidArgument("population needs at least one purpose");
  }

  Rng rng(config_.seed);

  privacy::PrivacyConfig config;
  config.scales = config_.scales;
  std::vector<PurposeId> purpose_ids;
  for (const std::string& purpose : config_.purposes) {
    PPDB_ASSIGN_OR_RETURN(PurposeId id, config.purposes.Register(purpose));
    purpose_ids.push_back(id);
  }
  for (const AttributeSpec& attr : config_.attributes) {
    PPDB_RETURN_NOT_OK(config.sensitivities.SetAttributeSensitivity(
        attr.name, attr.attribute_sensitivity));
  }

  // Synthetic data table: one double column per attribute.
  std::vector<rel::AttributeDef> defs;
  for (const AttributeSpec& attr : config_.attributes) {
    defs.push_back(rel::AttributeDef{attr.name, rel::DataType::kDouble, ""});
  }
  PPDB_ASSIGN_OR_RETURN(rel::Schema schema,
                        rel::Schema::Create(std::move(defs)));
  PPDB_ASSIGN_OR_RETURN(rel::Table table,
                        rel::Table::Create(config_.table_name,
                                           std::move(schema)));

  std::vector<WestinSegment> segments;
  segments.reserve(static_cast<size_t>(config_.num_providers));
  const std::vector<double> mix(config_.segment_mix.begin(),
                                config_.segment_mix.end());

  for (int64_t i = 1; i <= config_.num_providers; ++i) {
    WestinSegment segment = kAllSegments[rng.NextCategorical(mix)];
    segments.push_back(segment);
    const SegmentProfile& profile =
        config_.profiles[static_cast<size_t>(segment)];

    // Data row.
    std::vector<rel::Value> values;
    values.reserve(config_.attributes.size());
    for (const AttributeSpec& attr : config_.attributes) {
      values.push_back(rel::Value::Double(
          rng.NextGaussian(attr.data_mean, attr.data_stddev)));
    }
    PPDB_RETURN_NOT_OK(table.Insert(i, std::move(values)));

    // Preferences and sensitivities.
    privacy::ProviderPreferences& prefs = config.preferences.ForProvider(i);
    for (const AttributeSpec& attr : config_.attributes) {
      privacy::DimensionSensitivity sens;
      sens.value = rng.NextLogNormal(profile.sensitivity_mu,
                                     profile.sensitivity_sigma);
      sens.visibility = rng.NextLogNormal(profile.dimension_sensitivity_mu,
                                          profile.dimension_sensitivity_sigma);
      sens.granularity = rng.NextLogNormal(
          profile.dimension_sensitivity_mu,
          profile.dimension_sensitivity_sigma);
      sens.retention = rng.NextLogNormal(profile.dimension_sensitivity_mu,
                                         profile.dimension_sensitivity_sigma);
      PPDB_RETURN_NOT_OK(config.sensitivities.SetProviderSensitivity(
          i, attr.name, sens));

      for (PurposeId purpose : purpose_ids) {
        if (!rng.NextBool(profile.statement_probability)) continue;
        PrivacyTuple tuple = PrivacyTuple::ZeroFor(purpose);
        tuple.visibility =
            DrawLevel(config.scales.visibility, profile.mean_level_fraction,
                      profile.level_jitter_fraction, rng);
        tuple.granularity =
            DrawLevel(config.scales.granularity, profile.mean_level_fraction,
                      profile.level_jitter_fraction, rng);
        tuple.retention =
            DrawLevel(config.scales.retention, profile.mean_level_fraction,
                      profile.level_jitter_fraction, rng);
        PPDB_RETURN_NOT_OK(prefs.Add(attr.name, tuple));
      }
    }

    config.thresholds[i] =
        rng.NextLogNormal(profile.threshold_mu, profile.threshold_sigma);
  }

  Population population{std::move(config), std::move(table),
                        std::move(segments)};
  return population;
}

Result<privacy::HousePolicy> MakeUniformPolicy(
    const std::vector<AttributeSpec>& attributes,
    const std::vector<std::string>& purposes, double visibility_fraction,
    double granularity_fraction, double retention_fraction,
    privacy::PrivacyConfig* config) {
  auto level_at = [](const privacy::OrderedScale& scale, double fraction) {
    fraction = std::clamp(fraction, 0.0, 1.0);
    return static_cast<int>(
        std::lround(fraction * static_cast<double>(scale.max_level())));
  };
  privacy::HousePolicy policy;
  for (const std::string& purpose : purposes) {
    PPDB_ASSIGN_OR_RETURN(PurposeId id, config->purposes.Register(purpose));
    for (const AttributeSpec& attr : attributes) {
      PrivacyTuple tuple = PrivacyTuple::ZeroFor(id);
      tuple.visibility =
          level_at(config->scales.visibility, visibility_fraction);
      tuple.granularity =
          level_at(config->scales.granularity, granularity_fraction);
      tuple.retention =
          level_at(config->scales.retention, retention_fraction);
      PPDB_RETURN_NOT_OK(policy.Add(attr.name, tuple));
      PPDB_RETURN_NOT_OK(config->sensitivities.SetAttributeSensitivity(
          attr.name, attr.attribute_sensitivity));
    }
  }
  return policy;
}

}  // namespace ppdb::sim

#include "sim/westin.h"

namespace ppdb::sim {

std::string_view WestinSegmentName(WestinSegment segment) {
  switch (segment) {
    case WestinSegment::kFundamentalist:
      return "fundamentalist";
    case WestinSegment::kPragmatist:
      return "pragmatist";
    case WestinSegment::kUnconcerned:
      return "unconcerned";
  }
  return "unknown";
}

SegmentProfile DefaultProfile(WestinSegment segment) {
  SegmentProfile profile;
  switch (segment) {
    case WestinSegment::kFundamentalist:
      profile.mean_level_fraction = 0.25;
      profile.level_jitter_fraction = 0.12;
      profile.statement_probability = 0.95;
      profile.sensitivity_mu = 0.6;   // median s ≈ 1.8
      profile.sensitivity_sigma = 0.4;
      profile.dimension_sensitivity_mu = 0.4;
      profile.dimension_sensitivity_sigma = 0.4;
      profile.threshold_mu = 2.3;     // median v ≈ 10
      profile.threshold_sigma = 0.7;
      break;
    case WestinSegment::kPragmatist:
      profile.mean_level_fraction = 0.55;
      profile.level_jitter_fraction = 0.18;
      profile.statement_probability = 0.8;
      profile.sensitivity_mu = 0.0;   // median s ≈ 1
      profile.sensitivity_sigma = 0.35;
      profile.dimension_sensitivity_mu = 0.0;
      profile.dimension_sensitivity_sigma = 0.35;
      profile.threshold_mu = 3.4;     // median v ≈ 30
      profile.threshold_sigma = 0.8;
      break;
    case WestinSegment::kUnconcerned:
      profile.mean_level_fraction = 0.85;
      profile.level_jitter_fraction = 0.15;
      profile.statement_probability = 0.5;
      profile.sensitivity_mu = -0.5;  // median s ≈ 0.6
      profile.sensitivity_sigma = 0.3;
      profile.dimension_sensitivity_mu = -0.4;
      profile.dimension_sensitivity_sigma = 0.3;
      profile.threshold_mu = 4.6;     // median v ≈ 100
      profile.threshold_sigma = 0.9;
      break;
  }
  return profile;
}

}  // namespace ppdb::sim

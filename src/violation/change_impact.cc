#include "violation/change_impact.h"

#include <cstdio>

#include "common/macros.h"
#include "violation/incremental.h"

namespace ppdb::violation {

std::string ChangeImpact::Summary() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "Policy change: %zu use(s) added, %zu removed, %zu level move(s). "
      "P(W) %.4f -> %.4f; P(Default) %.4f -> %.4f. "
      "%zu provider(s) newly violated, %zu cleared; "
      "%zu newly defaulted, %zu recovered.\n",
      diff.added.size(), diff.removed.size(), diff.level_changes.size(),
      p_violation_before, p_violation_after, p_default_before,
      p_default_after, newly_violated.size(), no_longer_violated.size(),
      newly_defaulted.size(), recovered.size());
  return buf;
}

Result<ChangeImpact> AssessPolicyChange(
    const privacy::PrivacyConfig& config,
    const privacy::HousePolicy& new_policy,
    ViolationDetector::Options detector_options) {
  // One view materialization replaces the old two full scans: the before
  // side is read from maintained state, and a level-only change computes
  // the after side from positional deltas (O(N·Δ) instead of O(N·|HP|)).
  PPDB_ASSIGN_OR_RETURN(ViolationView view,
                        ViolationView::Create(&config, detector_options));
  return view.AssessPolicyChange(new_policy);
}

}  // namespace ppdb::violation

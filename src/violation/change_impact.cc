#include "violation/change_impact.h"

#include <cstdio>

#include "common/macros.h"
#include "violation/default_model.h"

namespace ppdb::violation {

std::string ChangeImpact::Summary() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "Policy change: %zu use(s) added, %zu removed, %zu level move(s). "
      "P(W) %.4f -> %.4f; P(Default) %.4f -> %.4f. "
      "%zu provider(s) newly violated, %zu cleared; "
      "%zu newly defaulted, %zu recovered.\n",
      diff.added.size(), diff.removed.size(), diff.level_changes.size(),
      p_violation_before, p_violation_after, p_default_before,
      p_default_after, newly_violated.size(), no_longer_violated.size(),
      newly_defaulted.size(), recovered.size());
  return buf;
}

Result<ChangeImpact> AssessPolicyChange(
    const privacy::PrivacyConfig& config,
    const privacy::HousePolicy& new_policy,
    ViolationDetector::Options detector_options) {
  ChangeImpact impact;
  impact.diff = privacy::DiffPolicies(config.policy, new_policy);

  ViolationDetector before_detector(&config, detector_options);
  PPDB_ASSIGN_OR_RETURN(ViolationReport before, before_detector.Analyze());
  DefaultReport before_defaults = ComputeDefaults(before, config);

  ViolationDetector::Options after_options = detector_options;
  after_options.policy_override = &new_policy;
  ViolationDetector after_detector(&config, after_options);
  PPDB_ASSIGN_OR_RETURN(ViolationReport after, after_detector.Analyze());
  DefaultReport after_defaults = ComputeDefaults(after, config);

  impact.p_violation_before = before.ProbabilityOfViolation();
  impact.p_violation_after = after.ProbabilityOfViolation();
  impact.p_default_before = before_defaults.ProbabilityOfDefault();
  impact.p_default_after = after_defaults.ProbabilityOfDefault();
  impact.total_violations_before = before.total_severity;
  impact.total_violations_after = after.total_severity;

  // Both reports cover the identical, sorted provider set (same config
  // population); walk them in lockstep.
  PPDB_CHECK(before.providers.size() == after.providers.size());
  for (size_t i = 0; i < before.providers.size(); ++i) {
    const ProviderViolation& b = before.providers[i];
    const ProviderViolation& a = after.providers[i];
    PPDB_CHECK(b.provider == a.provider);
    if (!b.violated && a.violated) {
      impact.newly_violated.push_back(a.provider);
    } else if (b.violated && !a.violated) {
      impact.no_longer_violated.push_back(a.provider);
    }
    bool defaulted_before = before_defaults.providers[i].defaulted;
    bool defaulted_after = after_defaults.providers[i].defaulted;
    if (!defaulted_before && defaulted_after) {
      impact.newly_defaulted.push_back(a.provider);
    } else if (defaulted_before && !defaulted_after) {
      impact.recovered.push_back(a.provider);
    }
  }
  return impact;
}

}  // namespace ppdb::violation

#ifndef PPDB_VIOLATION_UTILITY_H_
#define PPDB_VIOLATION_UTILITY_H_

#include <cstdint>

#include "common/result.h"
#include "violation/default_model.h"

namespace ppdb::violation {

/// The §9 utility model: what a house gains or loses by expanding its
/// privacy policy, under the paper's simplifying assumptions (per-provider
/// utilities, free provider choice, no incentives).
///
/// All functions are pure; the what-if analyzer threads them over expansion
/// schedules.
class UtilityModel {
 public:
  /// Creates a model with utility-per-provider U. U must be positive: the
  /// §9 algebra divides by it.
  static Result<UtilityModel> Create(double utility_per_provider);

  /// U.
  double utility_per_provider() const { return utility_per_provider_; }

  /// Utility_current = N_current × U (Eq. 25).
  double CurrentUtility(int64_t n_current) const;

  /// N_future = N_current − Σ_i default_i (Eq. 26).
  static int64_t FutureProviders(int64_t n_current,
                                 const DefaultReport& defaults);

  /// Utility_future = N_future × (U + T) (Eq. 27), where T is the extra
  /// utility per provider the expansion yields.
  double FutureUtility(int64_t n_future, double extra_utility) const;

  /// Whether the expansion is justified: Utility_future > Utility_current
  /// (Eq. 28–29).
  bool ExpansionJustified(int64_t n_current, int64_t n_future,
                          double extra_utility) const;

  /// The break-even extra utility per provider (Eq. 31):
  /// T > U × (N_current / N_future − 1).
  /// Errors when n_future is zero (every provider defaulted: no finite T
  /// recovers the loss) or when n_future > n_current (defaults cannot add
  /// providers).
  Result<double> BreakEvenExtraUtility(int64_t n_current,
                                       int64_t n_future) const;

 private:
  explicit UtilityModel(double utility_per_provider)
      : utility_per_provider_(utility_per_provider) {}

  double utility_per_provider_;
};

}  // namespace ppdb::violation

#endif  // PPDB_VIOLATION_UTILITY_H_

#ifndef PPDB_VIOLATION_POLICY_SEARCH_H_
#define PPDB_VIOLATION_POLICY_SEARCH_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "privacy/config.h"
#include "violation/what_if.h"

namespace ppdb::violation {

/// Per-provider market value of the data a policy exposes. The §9 algebra
/// treats the extra utility T as given; a DataValueModel is where it comes
/// from: T(policy) = model(policy) − model(baseline policy).
using DataValueModel = std::function<double(
    const privacy::HousePolicy& policy, const privacy::PrivacyConfig&)>;

/// A simple, monotone value model: each policy tuple contributes its
/// attribute sensitivity Σ^a times its normalized exposure
/// (level / max_level averaged over the three ordered dimensions), scaled
/// by `scale`. More exposed data for more purposes ⇒ more salable value —
/// the §9 premise that "information provided to the house ... defines a
/// revenue stream in terms of its value to third-parties".
DataValueModel MakeLinearExposureValue(double scale);

/// One accepted move of the greedy search.
struct SearchStep {
  privacy::Dimension dimension = privacy::Dimension::kVisibility;
  std::string attribute;
  /// +1 widened, −1 narrowed.
  int delta = 0;
  /// Total house utility after the move.
  double utility = 0.0;
  int64_t n_remaining = 0;
};

/// Outcome of a policy search.
struct SearchResult {
  privacy::HousePolicy best_policy;
  /// N_remaining × (U + T) at the best policy.
  double best_utility = 0.0;
  /// Utility of the unmodified policy, for comparison.
  double baseline_utility = 0.0;
  /// Accepted moves, in order.
  std::vector<SearchStep> trajectory;
};

/// Options for `GreedyPolicySearch`.
struct SearchOptions {
  /// U in Eq. 25; must be positive.
  double utility_per_provider = 1.0;
  /// The value model supplying T; required.
  DataValueModel value_model;
  /// Upper bound on accepted moves (a safety stop, not a tuning knob).
  int max_steps = 64;
  /// When true the search may also narrow the policy (delta −1) — it can
  /// then *recover* defaulted providers and find an interior optimum even
  /// from an over-wide starting policy.
  bool allow_narrowing = true;
  /// Forwarded to the violation detector. Its `deadline` also bounds the
  /// search itself: candidates are polled between evaluations and the
  /// search returns `kDeadlineExceeded` with the number of accepted moves
  /// when the token expires mid-climb.
  ViolationDetector::Options detector_options;
  /// Threads used to evaluate the candidate moves of each greedy step
  /// concurrently (0 = hardware concurrency, 1 = serial). Candidates are
  /// scored independently and the winning move is selected by a serial
  /// scan in enumeration order, so the accepted trajectory is identical
  /// at any setting. Within-candidate parallelism is controlled
  /// separately by `detector_options.num_threads`.
  int num_threads = 1;
};

/// Greedy hill-climb over single-level policy moves.
///
/// At each iteration every (attribute, dimension, ±1) move is evaluated
/// against the full population — defaults recomputed per Defs. 4–5, utility
/// as N_remaining × (U + T) with T from the value model — and the best
/// strictly-improving move is accepted; the search stops at a local
/// optimum. This mechanizes the paper's closing observation that weakening
/// the §9 assumptions "leads naturally to a game theoretic setting": the
/// result is the house's best response to a fixed provider population.
///
/// The population (preferences, sensitivities, thresholds) is held fixed;
/// `config` is not modified.
Result<SearchResult> GreedyPolicySearch(const privacy::PrivacyConfig& config,
                                        const SearchOptions& options);

/// Exhaustively evaluates every prefix of `schedule` (the E3 sweep) and
/// returns the utility-maximizing stopping point.
struct PrefixResult {
  /// Index (0 = baseline) of the best prefix.
  int best_prefix = 0;
  double best_utility = 0.0;
  /// Utility at every prefix, 0..schedule.size().
  std::vector<double> utilities;
};

/// `extra_utility_at(k)` supplies T after k steps (the §9 T, as a function
/// of how far the policy has widened). `num_threads` fans the prefix
/// evaluations out over the pool (0 = hardware concurrency, 1 = serial);
/// the result is identical at any setting.
Result<PrefixResult> BestExpansionPrefix(
    const privacy::PrivacyConfig& config,
    const std::vector<ExpansionStep>& schedule, double utility_per_provider,
    const std::function<double(int)>& extra_utility_at, int num_threads = 1);

}  // namespace ppdb::violation

#endif  // PPDB_VIOLATION_POLICY_SEARCH_H_

#include "violation/metrics.h"

#include "violation/kernel/severity_kernel.h"

namespace ppdb::violation {

namespace {

void SetDispatchGauges(const ViolationMetrics& m) {
  const kernel::Target target = kernel::SelectedTarget();
  m.dispatch_scalar->Set(target == kernel::Target::kScalar ? 1.0 : 0.0);
  m.dispatch_avx2->Set(target == kernel::Target::kAvx2 ? 1.0 : 0.0);
  m.dispatch_neon->Set(target == kernel::Target::kNeon ? 1.0 : 0.0);
}

}  // namespace

const ViolationMetrics& ViolationMetrics::Get() {
  static const ViolationMetrics metrics = [] {
    obs::MetricsRegistry& r = obs::MetricsRegistry::Default();
    ViolationMetrics m;
    m.analyze_seconds = r.GetHistogram(
        "ppdb_violation_analyze_seconds",
        "Wall time of one full violation scan (index build, shard "
        "fan-out, reduce).");
    m.analyze_ok = r.GetCounter("ppdb_violation_analyze_total",
                                "Full violation scans, by outcome.",
                                {{"result", "ok"}});
    m.analyze_deadline = r.GetCounter("ppdb_violation_analyze_total",
                                      "Full violation scans, by outcome.",
                                      {{"result", "deadline_exceeded"}});
    m.analyze_error = r.GetCounter("ppdb_violation_analyze_total",
                                   "Full violation scans, by outcome.",
                                   {{"result", "error"}});
    m.pw = r.GetGauge("ppdb_violation_pw",
                      "P(W): probability a random provider is violated "
                      "(Def. 2), from the latest scan or live update.");
    m.pdefault = r.GetGauge(
        "ppdb_violation_pdefault",
        "P(default): probability a random provider exceeds its tolerance "
        "threshold (Defs. 4-5), from the live monitor.");
    m.total_severity = r.GetGauge(
        "ppdb_violation_total_severity",
        "Population-wide total violation severity, Violations (Eq. 16).");
    m.providers = r.GetGauge("ppdb_violation_providers",
                             "Providers in the monitored population.");
    const char* kDispatchHelp =
        "Severity-kernel implementation selected by dispatch (1 on the "
        "active target's series, 0 elsewhere).";
    m.dispatch_scalar = r.GetGauge("ppdb_violation_kernel_dispatch",
                                   kDispatchHelp, {{"target", "scalar"}});
    m.dispatch_avx2 = r.GetGauge("ppdb_violation_kernel_dispatch",
                                 kDispatchHelp, {{"target", "avx2"}});
    m.dispatch_neon = r.GetGauge("ppdb_violation_kernel_dispatch",
                                 kDispatchHelp, {{"target", "neon"}});
    // Seed the dispatch gauges: the kernel publishes on selection changes,
    // but the initial auto-selection may predate registration.
    SetDispatchGauges(m);
    return m;
  }();
  return metrics;
}

void PublishKernelDispatch() { SetDispatchGauges(ViolationMetrics::Get()); }

}  // namespace ppdb::violation

#include "violation/metrics.h"

namespace ppdb::violation {

const ViolationMetrics& ViolationMetrics::Get() {
  static const ViolationMetrics metrics = [] {
    obs::MetricsRegistry& r = obs::MetricsRegistry::Default();
    ViolationMetrics m;
    m.analyze_seconds = r.GetHistogram(
        "ppdb_violation_analyze_seconds",
        "Wall time of one full violation scan (index build, shard "
        "fan-out, reduce).");
    m.analyze_ok = r.GetCounter("ppdb_violation_analyze_total",
                                "Full violation scans, by outcome.",
                                {{"result", "ok"}});
    m.analyze_deadline = r.GetCounter("ppdb_violation_analyze_total",
                                      "Full violation scans, by outcome.",
                                      {{"result", "deadline_exceeded"}});
    m.analyze_error = r.GetCounter("ppdb_violation_analyze_total",
                                   "Full violation scans, by outcome.",
                                   {{"result", "error"}});
    m.pw = r.GetGauge("ppdb_violation_pw",
                      "P(W): probability a random provider is violated "
                      "(Def. 2), from the latest scan or live update.");
    m.pdefault = r.GetGauge(
        "ppdb_violation_pdefault",
        "P(default): probability a random provider exceeds its tolerance "
        "threshold (Defs. 4-5), from the live monitor.");
    m.total_severity = r.GetGauge(
        "ppdb_violation_total_severity",
        "Population-wide total violation severity, Violations (Eq. 16).");
    m.providers = r.GetGauge("ppdb_violation_providers",
                             "Providers in the monitored population.");
    return m;
  }();
  return metrics;
}

}  // namespace ppdb::violation

#ifndef PPDB_VIOLATION_CHANGE_IMPACT_H_
#define PPDB_VIOLATION_CHANGE_IMPACT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "privacy/config.h"
#include "privacy/policy_diff.h"
#include "violation/detector.h"

namespace ppdb::violation {

/// Before/after assessment of a policy change over a fixed population —
/// the audit a social-network user (or regulator) would want when the site
/// announces new terms (§10: "the dynamics of changing privacy policies in
/// databases").
struct ChangeImpact {
  privacy::PolicyDiff diff;

  double p_violation_before = 0.0;
  double p_violation_after = 0.0;
  double p_default_before = 0.0;
  double p_default_after = 0.0;
  double total_violations_before = 0.0;
  double total_violations_after = 0.0;

  /// Providers violated after but not before.
  std::vector<ProviderId> newly_violated;
  /// Providers violated before but not after.
  std::vector<ProviderId> no_longer_violated;
  /// Providers whose default bit flipped 0 -> 1.
  std::vector<ProviderId> newly_defaulted;
  /// Providers whose default bit flipped 1 -> 0 (won back by narrowing).
  std::vector<ProviderId> recovered;

  /// One-paragraph summary.
  std::string Summary() const;
};

/// Assesses replacing `config.policy` with `new_policy` against the
/// config's population. `config` is not modified.
Result<ChangeImpact> AssessPolicyChange(
    const privacy::PrivacyConfig& config,
    const privacy::HousePolicy& new_policy,
    ViolationDetector::Options detector_options = {});

}  // namespace ppdb::violation

#endif  // PPDB_VIOLATION_CHANGE_IMPACT_H_

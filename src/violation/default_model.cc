#include "violation/default_model.h"

#include <cstdio>

namespace ppdb::violation {

std::vector<ProviderId> DefaultReport::DefaultedProviders() const {
  std::vector<ProviderId> out;
  for (const ProviderDefault& pd : providers) {
    if (pd.defaulted) out.push_back(pd.provider);
  }
  return out;
}

std::string DefaultReport::ToString(int64_t max_providers) const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "DefaultReport: N=%lld, defaulted=%lld, P(Default)=%.4f\n",
                static_cast<long long>(num_providers()),
                static_cast<long long>(num_defaulted),
                ProbabilityOfDefault());
  std::string out = buf;
  int64_t shown = 0;
  for (const ProviderDefault& pd : providers) {
    if (!pd.defaulted) continue;
    if (shown++ >= max_providers) {
      out += "  ...\n";
      break;
    }
    std::snprintf(buf, sizeof(buf),
                  "  provider %lld: Violation_i=%.3f > v_i=%.3f\n",
                  static_cast<long long>(pd.provider), pd.violation,
                  pd.threshold);
    out += buf;
  }
  return out;
}

DefaultReport ComputeDefaults(const ViolationReport& report,
                              const privacy::PrivacyConfig& config) {
  DefaultReport out;
  out.providers.reserve(report.providers.size());
  for (const ProviderViolation& pv : report.providers) {
    ProviderDefault pd;
    pd.provider = pv.provider;
    pd.violation = pv.total_severity;
    pd.threshold = config.ThresholdFor(pv.provider);
    // Def. 4: strict inequality — a violation exactly at the threshold is
    // tolerated (Bob in the paper's §8 example stays at 80 < 100).
    pd.defaulted = pd.violation > pd.threshold;
    if (pd.defaulted) ++out.num_defaulted;
    out.providers.push_back(pd);
  }
  return out;
}

}  // namespace ppdb::violation

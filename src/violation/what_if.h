#ifndef PPDB_VIOLATION_WHAT_IF_H_
#define PPDB_VIOLATION_WHAT_IF_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "privacy/config.h"
#include "violation/detector.h"
#include "violation/utility.h"

namespace ppdb::violation {

/// One widening move in a policy-expansion schedule (§9): increase
/// `dimension` by `delta` levels (clamped to the scale) on every policy
/// tuple, or only on the tuples for `attribute` when set.
struct ExpansionStep {
  privacy::Dimension dimension = privacy::Dimension::kVisibility;
  int delta = 1;
  std::optional<std::string> attribute;
};

/// The measured state after applying a prefix of the expansion schedule.
/// Point 0 is the baseline (unmodified) policy; point k reflects steps
/// 1..k applied cumulatively.
struct ExpansionPoint {
  int step_index = 0;
  /// The widened policy at this point.
  privacy::HousePolicy policy;
  /// Census P(W) against the full initial population.
  double p_violation = 0.0;
  /// Census P(Default) against the full initial population.
  double p_default = 0.0;
  /// Violations (Eq. 16) at this policy.
  double total_violations = 0.0;
  /// N_future = N_current − defaults (Eq. 26).
  int64_t n_remaining = 0;
  int64_t num_defaulted = 0;
  /// Utility_current = N_current × U (Eq. 25) — the baseline the expansion
  /// must beat.
  double utility_current = 0.0;
  /// Utility_future = N_future × (U + T_k) (Eq. 27), with T_k the
  /// cumulative extra utility modelled for this point.
  double utility_future = 0.0;
  /// T_k used above.
  double extra_utility = 0.0;
  /// Break-even T (Eq. 31): the minimum extra utility per provider that
  /// justifies this point. +inf when every provider defaulted.
  double break_even_extra_utility = 0.0;
  /// Eq. 28: utility_future > utility_current.
  bool justified = false;
};

/// Replays "what if the house widened its policy like this?" scenarios
/// against a fixed provider population (§9 and the 'what if' scenarios of
/// §10).
///
/// The initial population (the config's providers) is held fixed; each
/// schedule point re-runs the violation detector and default model against
/// the cumulatively widened policy. Extra utility is modelled as
/// `extra_utility_per_step × k` at point k — each widening step unlocks the
/// same additional per-provider value, the simplest model consistent with
/// §9's "additional utility above U per data provider available to the
/// house due to the expansion of its privacy policy".
class WhatIfAnalyzer {
 public:
  struct Options {
    /// U in Eq. 25; must be positive.
    double utility_per_provider = 1.0;
    /// Extra per-provider utility unlocked by each widening step.
    double extra_utility_per_step = 0.0;
    /// Forwarded to the violation detector at every point. Its `deadline`
    /// also bounds the sweep itself: `RunSchedule` polls the token between
    /// schedule points and returns `kDeadlineExceeded` ("evaluated k of n
    /// schedule points") when it expires mid-sweep.
    ViolationDetector::Options detector_options;
    /// Threads used to evaluate schedule points concurrently (0 = hardware
    /// concurrency, 1 = serial). The cumulative policies are built
    /// serially first, so points are independent; they are reported in
    /// schedule order and every point's report is thread-count
    /// independent — results are identical at any setting. Within-point
    /// parallelism is controlled separately by
    /// `detector_options.num_threads`.
    int num_threads = 1;
  };

  /// `config` must outlive the analyzer.
  WhatIfAnalyzer(const privacy::PrivacyConfig* config, Options options);

  /// Evaluates the baseline and every cumulative prefix of `steps`;
  /// returns steps.size() + 1 points.
  Result<std::vector<ExpansionPoint>> RunSchedule(
      const std::vector<ExpansionStep>& steps) const;

  /// Convenience: a schedule of `count` unit widenings of `dimension`.
  static std::vector<ExpansionStep> UniformSchedule(
      privacy::Dimension dimension, int count);

 private:
  Result<ExpansionPoint> Evaluate(int step_index,
                                  privacy::HousePolicy policy) const;

  const privacy::PrivacyConfig* config_;
  Options options_;
};

}  // namespace ppdb::violation

#endif  // PPDB_VIOLATION_WHAT_IF_H_

#include "violation/detector.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "common/macros.h"
#include "common/thread_pool.h"
#include "obs/trace.h"
#include "privacy/dimension.h"
#include "privacy/tuple_columns.h"
#include "violation/kernel/severity_kernel.h"
#include "violation/metrics.h"

namespace ppdb::violation {

using privacy::PreferenceTuple;
using privacy::PrivacyTuple;
using privacy::ProviderPreferences;

namespace {

/// Providers per shard of the parallel Analyze loop. Fixed — and in
/// particular independent of the thread count — so shard boundaries and the
/// merge order are deterministic at any parallelism.
constexpr int64_t kProviderGrain = 512;

/// Providers analyzed between deadline polls inside a shard. Coarse enough
/// that the steady_clock read is noise, fine enough that an expired
/// request releases its worker within a few hundred providers.
constexpr int64_t kDeadlineStride = 128;

/// One house-policy tuple preprocessed for the per-provider inner loop: the
/// interned attribute id and the precomputed ancestor purposes (hierarchy
/// extension), so neither is recomputed per provider.
struct PreparedPolicyTuple {
  const privacy::PolicyTuple* policy = nullptr;
  int32_t attr_id = -1;
  std::vector<privacy::PurposeId> ancestors;
};

struct PreparedPolicy {
  std::vector<PreparedPolicyTuple> tuples;
  /// The policy's own tuple storage, for column builders that consume the
  /// raw (attribute, tuple) sequence.
  const std::vector<privacy::PolicyTuple>* source = nullptr;
  /// Interned policy attribute names; views into the policy's own strings.
  std::vector<std::string_view> attributes;
  std::unordered_map<std::string_view, int32_t> attr_ids;

  /// The interned id of `attribute`, or -1 when the policy never mentions
  /// it (no comparable policy tuple can exist, Eq. 13).
  int32_t AttrId(std::string_view attribute) const {
    auto it = attr_ids.find(attribute);
    return it == attr_ids.end() ? -1 : it->second;
  }
};

PreparedPolicy PreparePolicy(const privacy::HousePolicy& policy,
                             const privacy::PurposeHierarchy* hierarchy) {
  PreparedPolicy out;
  out.source = &policy.tuples();
  out.tuples.reserve(policy.tuples().size());
  for (const privacy::PolicyTuple& pt : policy.tuples()) {
    PreparedPolicyTuple prepared;
    prepared.policy = &pt;
    auto [it, inserted] = out.attr_ids.try_emplace(
        pt.attribute, static_cast<int32_t>(out.attributes.size()));
    if (inserted) out.attributes.push_back(pt.attribute);
    prepared.attr_id = it->second;
    if (hierarchy != nullptr) {
      prepared.ancestors = hierarchy->AncestorsOf(pt.tuple.purpose);
    }
    out.tuples.push_back(std::move(prepared));
  }
  return out;
}

/// The flattened preference index: each analyzed provider's stated
/// preferences for policy attributes, packed into one contiguous array with
/// every provider's slice sorted by (attr_id, purpose). The hot loop does
/// binary search over flat memory instead of a per-(provider, policy tuple)
/// map lookup plus linear string scan.
struct FlatPreferenceIndex {
  struct Entry {
    int32_t attr_id = 0;
    privacy::PurposeId purpose = 0;
    PrivacyTuple tuple;
  };
  std::vector<Entry> entries;
  /// Provider at position i of the sorted provider list owns
  /// entries[offsets[i] .. offsets[i + 1]).
  std::vector<size_t> offsets;

  const PrivacyTuple* Find(size_t position, int32_t attr_id,
                           privacy::PurposeId purpose) const {
    const Entry* begin = entries.data() + offsets[position];
    const Entry* end = entries.data() + offsets[position + 1];
    const std::pair<int32_t, privacy::PurposeId> key(attr_id, purpose);
    const Entry* it = std::lower_bound(
        begin, end, key,
        [](const Entry& e, const std::pair<int32_t, privacy::PurposeId>& k) {
          return std::pair(e.attr_id, e.purpose) < k;
        });
    if (it != end && it->attr_id == attr_id && it->purpose == purpose) {
      return &it->tuple;
    }
    return nullptr;
  }
};

FlatPreferenceIndex BuildIndex(const std::vector<ProviderId>& providers,
                               const privacy::PreferenceStore& store,
                               const PreparedPolicy& policy) {
  FlatPreferenceIndex index;
  index.offsets.reserve(providers.size() + 1);
  index.offsets.push_back(0);
  // Resolve every provider once up front so `entries` can be reserved
  // exactly — regrowing a multi-megabyte vector dominates index build time
  // at census scale.
  std::vector<const ProviderPreferences*> resolved;
  resolved.reserve(providers.size());
  size_t total_tuples = 0;
  for (ProviderId id : providers) {
    Result<const ProviderPreferences*> found = store.Find(id);
    const ProviderPreferences* prefs = found.ok() ? found.value() : nullptr;
    resolved.push_back(prefs);
    if (prefs != nullptr) total_tuples += prefs->tuples().size();
  }
  index.entries.reserve(total_tuples);
  for (const ProviderPreferences* prefs : resolved) {
    if (prefs != nullptr) {
      const size_t slice_begin = index.entries.size();
      for (const PreferenceTuple& pt : prefs->tuples()) {
        int32_t attr_id = policy.AttrId(pt.attribute);
        if (attr_id < 0) continue;
        index.entries.push_back(
            FlatPreferenceIndex::Entry{attr_id, pt.tuple.purpose, pt.tuple});
      }
      std::sort(index.entries.begin() + static_cast<int64_t>(slice_begin),
                index.entries.end(),
                [](const FlatPreferenceIndex::Entry& a,
                   const FlatPreferenceIndex::Entry& b) {
                  return std::pair(a.attr_id, a.purpose) <
                         std::pair(b.attr_id, b.purpose);
                });
    }
    index.offsets.push_back(index.entries.size());
  }
  return index;
}

/// Per-thread buffers for the kernel-backed provider analysis, reused
/// across providers so the hot loop never allocates: the preference-side
/// row columns and kernel outputs, the provider σ columns (filled only for
/// providers with explicit entries), and the violated-attribute dedupe
/// scratch.
struct AnalysisScratch {
  kernel::RowScratch row;
  privacy::SensitivityColumns provider_sens;
  std::vector<std::string_view> violated_attributes;
};

/// The Def. 1 / Eq. 14-15 evaluation for one provider, in three passes:
/// build the preference row (SoA columns aligned with the policy columns),
/// run the batched severity kernel over it (Eqs. 12-14), then reduce and —
/// only for exceeding rows — reconstruct the per-dimension incidents.
/// `find_pref` resolves (attr_id, attribute, purpose) to the provider's
/// stated tuple or nullptr.
template <typename FindPref>
ProviderViolation AnalyzeOne(const privacy::PrivacyConfig& config,
                             const ViolationDetector::Options& options,
                             const PreparedPolicy& policy,
                             const privacy::PolicyColumns& columns,
                             const privacy::SensitivityColumns& unit_sens,
                             ProviderId provider, FindPref&& find_pref,
                             AnalysisScratch& scratch) {
  ProviderViolation out;
  out.provider = provider;
  scratch.violated_attributes.clear();

  const size_t n = policy.tuples.size();
  kernel::RowScratch& row = scratch.row;
  row.Resize(n);

  // Pass 1 — row build. Select the preference tuple Def. 1 compares
  // against each policy tuple: stated for (a, purpose); else (with the
  // hierarchy extension) the most specific stated preference for an
  // ancestor purpose; else the implicit zero tuple. Pairs Def. 1 excludes
  // outright get active = 0 and contribute exactly nothing downstream.
  for (size_t j = 0; j < n; ++j) {
    const PreparedPolicyTuple& prepared = policy.tuples[j];
    const privacy::PolicyTuple& policy_tuple = *prepared.policy;
    row.active[j] = 0;
    row.implicit[j] = 0;
    row.pref_v[j] = 0;
    row.pref_g[j] = 0;
    row.pref_r[j] = 0;

    // Data scoping: with a table, only attributes the provider actually
    // supplies (a non-null datum in some owned row) are in play. Providers
    // absent from the table supply no data and incur no violations.
    if (options.data_table != nullptr) {
      Result<bool> supplies = options.data_table->ProviderSuppliesAttribute(
          provider, policy_tuple.attribute);
      if (!supplies.ok() || !supplies.value()) continue;
    }

    const PrivacyTuple* pref = find_pref(
        prepared.attr_id, policy_tuple.attribute, policy_tuple.tuple.purpose);
    if (pref == nullptr) {
      // Consent to an ancestor purpose covers this specialization; only
      // the levels matter to the kernel, so no purpose rebase is needed.
      for (privacy::PurposeId ancestor : prepared.ancestors) {
        pref = find_pref(prepared.attr_id, policy_tuple.attribute, ancestor);
        if (pref != nullptr) break;
      }
    }
    if (pref != nullptr) {
      row.pref_v[j] = pref->visibility;
      row.pref_g[j] = pref->granularity;
      row.pref_r[j] = pref->retention;
    } else {
      if (!options.implicit_zero_preferences) continue;
      const PrivacyTuple zero =
          PrivacyTuple::ZeroFor(policy_tuple.tuple.purpose);
      row.pref_v[j] = zero.visibility;
      row.pref_g[j] = zero.granularity;
      row.pref_r[j] = zero.retention;
      row.implicit[j] = 1;
    }
    row.active[j] = -1;
  }

  // σ_i columns: the shared all-ones preset unless this provider has
  // explicit entries — the common census-scale case skips the per-tuple
  // map lookups entirely.
  const privacy::SensitivityColumns* sens = &unit_sens;
  if (config.sensitivities.HasEntriesFor(provider)) {
    scratch.provider_sens.FillFor(config.sensitivities, provider,
                                  *policy.source);
    sens = &scratch.provider_sens;
  }

  // Pass 2 — the batched Eqs. 12-14 kernel over all n pairs.
  kernel::ConfInput in;
  in.pref_v = row.pref_v.data();
  in.pref_g = row.pref_g.data();
  in.pref_r = row.pref_r.data();
  in.pol_v = columns.levels.visibility.data();
  in.pol_g = columns.levels.granularity.data();
  in.pol_r = columns.levels.retention.data();
  in.attr_sens = columns.attr_sens.data();
  in.sens_val = sens->value.data();
  in.sens_v = sens->visibility.data();
  in.sens_g = sens->granularity.data();
  in.sens_r = sens->retention.data();
  in.active = row.active.data();
  const bool any_exceed = kernel::ConfKernel(in, row.Output(), n);

  // Eq. 15: the sum over tuples is association-sensitive, so it stays
  // scalar and in tuple order regardless of dispatch target. Inactive
  // rows contribute exactly +0.0, a bitwise no-op on the non-negative
  // running total.
  for (size_t j = 0; j < n; ++j) out.total_severity += row.conf[j];

  // Pass 3 — incident reconstruction, entered only when some pair
  // exceeded. Scans rows in tuple order and dimensions in the fixed
  // V, G, R order, so incidents match the pair-at-a-time path exactly.
  if (any_exceed) {
    for (size_t j = 0; j < n; ++j) {
      const int32_t diffs[3] = {row.diff_v[j], row.diff_g[j], row.diff_r[j]};
      if ((diffs[0] | diffs[1] | diffs[2]) == 0) continue;
      const privacy::PolicyTuple& policy_tuple = *policy.tuples[j].policy;
      out.violated = true;
      if (std::find(scratch.violated_attributes.begin(),
                    scratch.violated_attributes.end(),
                    std::string_view(policy_tuple.attribute)) ==
          scratch.violated_attributes.end()) {
        scratch.violated_attributes.push_back(policy_tuple.attribute);
      }
      if (out.incidents.empty()) {
        // One up-front reservation per violated provider, sized to the
        // policy (see the allocation note in detector.h).
        out.incidents.reserve(n);
      }
      const int32_t pref_levels[3] = {row.pref_v[j], row.pref_g[j],
                                      row.pref_r[j]};
      const int32_t policy_levels[3] = {columns.levels.visibility[j],
                                        columns.levels.granularity[j],
                                        columns.levels.retention[j]};
      const double dim_sens[3] = {sens->visibility[j], sens->granularity[j],
                                  sens->retention[j]};
      for (size_t d = 0; d < privacy::kOrderedDimensions.size(); ++d) {
        if (diffs[d] <= 0) continue;
        // Recompute the Eq. 14 summand with the kernel's exact operation
        // chain, so the stored weighted severity is bit-for-bit the one
        // that entered conf.
        const double weighted = static_cast<double>(diffs[d]) *
                                columns.attr_sens[j] * sens->value[j] *
                                dim_sens[d];
        ViolationIncident incident;
        incident.provider = provider;
        incident.attribute = policy_tuple.attribute;
        incident.purpose = policy_tuple.tuple.purpose;
        incident.dimension = privacy::kOrderedDimensions[d];
        incident.preference_level = pref_levels[d];
        incident.policy_level = policy_levels[d];
        incident.diff = diffs[d];
        incident.weighted_severity = weighted;
        incident.from_implicit_preference = row.implicit[j] != 0;
        out.max_incident_severity =
            std::max(out.max_incident_severity, weighted);
        out.incidents.push_back(std::move(incident));
      }
    }
  }
  out.num_attributes_violated =
      static_cast<int>(scratch.violated_attributes.size());
  return out;
}

}  // namespace

ViolationDetector::ViolationDetector(const privacy::PrivacyConfig* config,
                                     Options options)
    : config_(config), options_(options) {}

Result<ViolationReport> ViolationDetector::Analyze() const {
  std::vector<ProviderId> providers = config_->preferences.ProviderIds();
  if (options_.data_table != nullptr) {
    for (ProviderId id : options_.data_table->ProviderIds()) {
      providers.push_back(id);
    }
  }
  return AnalyzeProviders(std::move(providers));
}

Result<ViolationReport> ViolationDetector::AnalyzeProviders(
    std::vector<ProviderId> providers) const {
  const ViolationMetrics& metrics = ViolationMetrics::Get();
  const auto scan_started = std::chrono::steady_clock::now();

  std::sort(providers.begin(), providers.end());
  providers.erase(std::unique(providers.begin(), providers.end()),
                  providers.end());

  const privacy::HousePolicy& house_policy =
      options_.policy_override != nullptr ? *options_.policy_override
                                          : config_->policy;
  PreparedPolicy prepared;
  FlatPreferenceIndex index;
  privacy::PolicyColumns columns;
  privacy::SensitivityColumns unit_sens;
  {
    obs::SpanScope span("index_build");
    prepared = PreparePolicy(house_policy, options_.purpose_hierarchy);
    index = BuildIndex(providers, config_->preferences, prepared);
    // Policy-side columns are provider-invariant: built once, streamed by
    // every shard. The all-ones σ preset serves every provider without
    // explicit sensitivity entries.
    columns = privacy::PolicyColumns::Build(house_policy.tuples(),
                                            config_->sensitivities);
    unit_sens.FillOnes(prepared.tuples.size());
    span.Note("policy_tuples", static_cast<int64_t>(prepared.tuples.size()));
    span.Note("index_entries", static_cast<int64_t>(index.entries.size()));
  }

  const int64_t n = static_cast<int64_t>(providers.size());
  const int threads = ThreadPool::ResolveThreadCount(options_.num_threads);
  const int64_t num_shards = ThreadPool::NumShards(0, n, kProviderGrain);

  // Cooperative deadline: any shard that observes expiry sets the flag, and
  // every shard (including ones not yet started) bails at its next poll.
  std::atomic<bool> expired{false};
  std::vector<std::vector<ProviderViolation>> partials(
      static_cast<size_t>(num_shards));
  {
    obs::SpanScope span("shard_fanout");
    span.Note("providers", n);
    span.Note("shards", num_shards);
    span.Note("threads", threads);
    ThreadPool::Shared().ParallelRange(
        0, n, kProviderGrain, threads,
        [&](int64_t shard, int64_t begin, int64_t end) {
          if (expired.load(std::memory_order_relaxed)) return;
          std::vector<ProviderViolation>& out =
              partials[static_cast<size_t>(shard)];
          out.reserve(static_cast<size_t>(end - begin));
          AnalysisScratch scratch;
          for (int64_t i = begin; i < end; ++i) {
            if ((i - begin) % kDeadlineStride == 0 &&
                options_.deadline.Expired()) {
              expired.store(true, std::memory_order_relaxed);
              return;
            }
            const size_t position = static_cast<size_t>(i);
            auto find_pref = [&](int32_t attr_id,
                                 std::string_view /*attribute*/,
                                 privacy::PurposeId purpose) {
              return index.Find(position, attr_id, purpose);
            };
            out.push_back(AnalyzeOne(*config_, options_, prepared, columns,
                                     unit_sens, providers[position], find_pref,
                                     scratch));
          }
        });
  }

  const auto finish = [&](obs::Counter* outcome) {
    metrics.analyze_seconds->Observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      scan_started)
            .count());
    outcome->Add();
  };

  if (expired.load(std::memory_order_relaxed)) {
    int64_t analyzed = 0;
    for (const std::vector<ProviderViolation>& partial : partials) {
      analyzed += static_cast<int64_t>(partial.size());
    }
    finish(metrics.analyze_deadline);
    return Status::DeadlineExceeded(
        "Analyze: analyzed " + std::to_string(analyzed) + " of " +
        std::to_string(n) + " providers before the deadline expired");
  }

  ViolationReport report;
  {
    obs::SpanScope span("reduce");
    report.providers.reserve(providers.size());
    for (std::vector<ProviderViolation>& partial : partials) {
      for (ProviderViolation& pv : partial) {
        report.providers.push_back(std::move(pv));
      }
    }
    // Aggregate in final provider order — the same addition sequence as the
    // serial loop, so totals are bitwise-identical at any thread count.
    for (const ProviderViolation& pv : report.providers) {
      report.total_severity += pv.total_severity;
      if (pv.violated) ++report.num_violated;
    }
  }
  finish(metrics.analyze_ok);
  // Gauges reflect the real policy only: what-if and policy-search scans
  // run hypothetical policies via policy_override and must not overwrite
  // the live values.
  if (options_.policy_override == nullptr) {
    metrics.pw->Set(report.ProbabilityOfViolation());
    metrics.total_severity->Set(report.total_severity);
    metrics.providers->Set(static_cast<double>(n));
  }
  return report;
}

Result<ProviderViolation> ViolationDetector::AnalyzeProvider(
    ProviderId provider) const {
  const privacy::HousePolicy& house_policy =
      options_.policy_override != nullptr ? *options_.policy_override
                                          : config_->policy;
  const PreparedPolicy prepared =
      PreparePolicy(house_policy, options_.purpose_hierarchy);
  const privacy::PolicyColumns columns =
      privacy::PolicyColumns::Build(house_policy.tuples(),
                                    config_->sensitivities);
  privacy::SensitivityColumns unit_sens;
  unit_sens.FillOnes(prepared.tuples.size());

  // An absent provider entry behaves as an empty preference set: every
  // policy purpose is unstated and (under Def. 1) implicitly zero. The
  // object is a function-local static: initialization is thread-safe
  // (C++11 magic statics), it is const and never mutated afterwards, so
  // sharing it across concurrent detector threads is safe — and unlike the
  // old `*new ProviderPreferences(0)` it is destroyed at process exit.
  static const ProviderPreferences kEmpty{0};
  const ProviderPreferences* prefs = &kEmpty;
  Result<const ProviderPreferences*> found =
      config_->preferences.Find(provider);
  if (found.ok()) prefs = found.value();

  AnalysisScratch scratch;
  PrivacyTuple stated_storage;
  auto find_pref = [&](int32_t /*attr_id*/, std::string_view attribute,
                       privacy::PurposeId purpose) -> const PrivacyTuple* {
    Result<PrivacyTuple> stated = prefs->Find(attribute, purpose);
    if (!stated.ok()) return nullptr;
    stated_storage = std::move(stated).value();
    return &stated_storage;
  };
  return AnalyzeOne(*config_, options_, prepared, columns, unit_sens, provider,
                    find_pref, scratch);
}

}  // namespace ppdb::violation

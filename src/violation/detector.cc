#include "violation/detector.h"

#include <algorithm>
#include <unordered_set>

#include "common/macros.h"
#include "violation/conflict.h"

namespace ppdb::violation {

using privacy::PreferenceTuple;
using privacy::PrivacyTuple;
using privacy::ProviderPreferences;

ViolationDetector::ViolationDetector(const privacy::PrivacyConfig* config,
                                     Options options)
    : config_(config), options_(options) {}

Result<ViolationReport> ViolationDetector::Analyze() const {
  std::vector<ProviderId> providers = config_->preferences.ProviderIds();
  if (options_.data_table != nullptr) {
    for (ProviderId id : options_.data_table->ProviderIds()) {
      providers.push_back(id);
    }
  }
  return AnalyzeProviders(std::move(providers));
}

Result<ViolationReport> ViolationDetector::AnalyzeProviders(
    std::vector<ProviderId> providers) const {
  std::sort(providers.begin(), providers.end());
  providers.erase(std::unique(providers.begin(), providers.end()),
                  providers.end());
  ViolationReport report;
  report.providers.reserve(providers.size());
  for (ProviderId id : providers) {
    PPDB_ASSIGN_OR_RETURN(ProviderViolation pv, AnalyzeProvider(id));
    report.total_severity += pv.total_severity;
    if (pv.violated) ++report.num_violated;
    report.providers.push_back(std::move(pv));
  }
  return report;
}

Result<ProviderViolation> ViolationDetector::AnalyzeProvider(
    ProviderId provider) const {
  ProviderViolation out;
  out.provider = provider;

  // An absent provider entry behaves as an empty preference set: every
  // policy purpose is unstated and (under Def. 1) implicitly zero.
  static const ProviderPreferences& kEmpty = *new ProviderPreferences(0);
  const ProviderPreferences* prefs = &kEmpty;
  Result<const ProviderPreferences*> found =
      config_->preferences.Find(provider);
  if (found.ok()) prefs = found.value();

  std::unordered_set<std::string> violated_attributes;

  const privacy::HousePolicy& house_policy =
      options_.policy_override != nullptr ? *options_.policy_override
                                          : config_->policy;
  for (const privacy::PolicyTuple& policy : house_policy.tuples()) {
    // Data scoping: with a table, only attributes the provider actually
    // supplies (a non-null datum in some owned row) are in play. Providers
    // absent from the table supply no data and incur no violations.
    if (options_.data_table != nullptr) {
      Result<bool> supplies = options_.data_table->ProviderSuppliesAttribute(
          provider, policy.attribute);
      if (!supplies.ok() || !supplies.value()) continue;
    }

    // Select the preference tuple Def. 1 compares against this policy
    // tuple: stated for (a, purpose); else (with the hierarchy extension)
    // the most specific stated preference for an ancestor purpose; else the
    // implicit zero tuple.
    bool implicit = false;
    PrivacyTuple pref_tuple;
    Result<PrivacyTuple> stated =
        prefs->Find(policy.attribute, policy.tuple.purpose);
    if (stated.ok()) {
      pref_tuple = stated.value();
    } else {
      bool resolved = false;
      if (options_.purpose_hierarchy != nullptr) {
        for (privacy::PurposeId ancestor :
             options_.purpose_hierarchy->AncestorsOf(policy.tuple.purpose)) {
          Result<PrivacyTuple> inherited =
              prefs->Find(policy.attribute, ancestor);
          if (inherited.ok()) {
            pref_tuple = inherited.value();
            // Rebase onto the policy purpose so the tuples are comparable:
            // consent to the ancestor covers this specialization.
            pref_tuple.purpose = policy.tuple.purpose;
            resolved = true;
            break;
          }
        }
      }
      if (!resolved) {
        if (!options_.implicit_zero_preferences) continue;
        pref_tuple = PrivacyTuple::ZeroFor(policy.tuple.purpose);
        implicit = true;
      }
    }

    PreferenceTuple pref{provider, policy.attribute, pref_tuple};
    ConflictBreakdown breakdown =
        Conflict(pref, policy, config_->sensitivities);
    out.total_severity += breakdown.total;
    for (const DimensionConflict& dc : breakdown.per_dimension) {
      if (dc.diff <= 0) continue;
      out.violated = true;
      violated_attributes.insert(policy.attribute);
      ViolationIncident incident;
      incident.provider = provider;
      incident.attribute = policy.attribute;
      incident.purpose = policy.tuple.purpose;
      incident.dimension = dc.dimension;
      incident.preference_level = dc.preference_level;
      incident.policy_level = dc.policy_level;
      incident.diff = dc.diff;
      incident.weighted_severity = dc.weighted;
      incident.from_implicit_preference = implicit;
      out.max_incident_severity =
          std::max(out.max_incident_severity, dc.weighted);
      out.incidents.push_back(std::move(incident));
    }
  }
  out.num_attributes_violated =
      static_cast<int>(violated_attributes.size());
  return out;
}

}  // namespace ppdb::violation

#include "violation/detector.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "common/macros.h"
#include "common/thread_pool.h"
#include "obs/trace.h"
#include "privacy/tuple_columns.h"
#include "violation/analysis_core.h"
#include "violation/kernel/severity_kernel.h"
#include "violation/metrics.h"

namespace ppdb::violation {

using privacy::PrivacyTuple;
using privacy::ProviderPreferences;

namespace {

/// Providers per shard of the parallel Analyze loop: one canonical
/// reduction block (see analysis_core.h). Fixed — and in particular
/// independent of the thread count — so shard boundaries, the merge order,
/// and the association shape of the Eq. 16 sum are deterministic at any
/// parallelism and identical to the incremental view's aggregation tree.
constexpr int64_t kProviderGrain = internal::kSeverityReduceBlock;

/// Providers analyzed between deadline polls inside a shard. Coarse enough
/// that the steady_clock read is noise, fine enough that an expired
/// request releases its worker within a few hundred providers.
constexpr int64_t kDeadlineStride = 128;

}  // namespace

ViolationDetector::ViolationDetector(const privacy::PrivacyConfig* config,
                                     Options options)
    : config_(config), options_(options) {}

Result<ViolationReport> ViolationDetector::Analyze() const {
  std::vector<ProviderId> providers = config_->preferences.ProviderIds();
  if (options_.data_table != nullptr) {
    for (ProviderId id : options_.data_table->ProviderIds()) {
      providers.push_back(id);
    }
  }
  return AnalyzeProviders(std::move(providers));
}

Result<ViolationReport> ViolationDetector::AnalyzeProviders(
    std::vector<ProviderId> providers) const {
  const ViolationMetrics& metrics = ViolationMetrics::Get();
  const auto scan_started = std::chrono::steady_clock::now();

  std::sort(providers.begin(), providers.end());
  providers.erase(std::unique(providers.begin(), providers.end()),
                  providers.end());

  const privacy::HousePolicy& house_policy =
      options_.policy_override != nullptr ? *options_.policy_override
                                          : config_->policy;
  internal::PreparedPolicy prepared;
  internal::FlatPreferenceIndex index;
  privacy::PolicyColumns columns;
  privacy::SensitivityColumns unit_sens;
  {
    obs::SpanScope span("index_build");
    prepared = internal::PreparePolicy(house_policy,
                                       options_.purpose_hierarchy);
    index = internal::BuildIndex(providers, config_->preferences, prepared);
    // Policy-side columns are provider-invariant: built once, streamed by
    // every shard. The all-ones σ preset serves every provider without
    // explicit sensitivity entries.
    columns = privacy::PolicyColumns::Build(house_policy.tuples(),
                                            config_->sensitivities);
    unit_sens.FillOnes(prepared.tuples.size());
    span.Note("policy_tuples", static_cast<int64_t>(prepared.tuples.size()));
    span.Note("index_entries", static_cast<int64_t>(index.entries.size()));
  }

  const int64_t n = static_cast<int64_t>(providers.size());
  const int threads = ThreadPool::ResolveThreadCount(options_.num_threads);
  const int64_t num_shards = ThreadPool::NumShards(0, n, kProviderGrain);

  // Cooperative deadline: any shard that observes expiry sets the flag, and
  // every shard (including ones not yet started) bails at its next poll.
  std::atomic<bool> expired{false};
  std::vector<std::vector<ProviderViolation>> partials(
      static_cast<size_t>(num_shards));
  {
    obs::SpanScope span("shard_fanout");
    span.Note("providers", n);
    span.Note("shards", num_shards);
    span.Note("threads", threads);
    ThreadPool::Shared().ParallelRange(
        0, n, kProviderGrain, threads,
        [&](int64_t shard, int64_t begin, int64_t end) {
          if (expired.load(std::memory_order_relaxed)) return;
          std::vector<ProviderViolation>& out =
              partials[static_cast<size_t>(shard)];
          out.reserve(static_cast<size_t>(end - begin));
          internal::AnalysisScratch scratch;
          for (int64_t i = begin; i < end; ++i) {
            if ((i - begin) % kDeadlineStride == 0 &&
                options_.deadline.Expired()) {
              expired.store(true, std::memory_order_relaxed);
              return;
            }
            const size_t position = static_cast<size_t>(i);
            auto find_pref = [&](int32_t attr_id,
                                 std::string_view /*attribute*/,
                                 privacy::PurposeId purpose) {
              return index.Find(position, attr_id, purpose);
            };
            out.push_back(internal::AnalyzeOne(*config_, options_, prepared,
                                               columns, unit_sens,
                                               providers[position], find_pref,
                                               scratch));
          }
        });
  }

  const auto finish = [&](obs::Counter* outcome) {
    metrics.analyze_seconds->Observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      scan_started)
            .count());
    outcome->Add();
  };

  if (expired.load(std::memory_order_relaxed)) {
    int64_t analyzed = 0;
    for (const std::vector<ProviderViolation>& partial : partials) {
      analyzed += static_cast<int64_t>(partial.size());
    }
    finish(metrics.analyze_deadline);
    return Status::DeadlineExceeded(
        "Analyze: analyzed " + std::to_string(analyzed) + " of " +
        std::to_string(n) + " providers before the deadline expired");
  }

  ViolationReport report;
  {
    obs::SpanScope span("reduce");
    report.providers.reserve(providers.size());
    for (std::vector<ProviderViolation>& partial : partials) {
      for (ProviderViolation& pv : partial) {
        report.providers.push_back(std::move(pv));
      }
    }
    // Aggregate in the canonical blocked shape (analysis_core.h): flat
    // within each kSeverityReduceBlock-provider block of the final provider
    // order, block partials summed in block order. Independent of the
    // thread count — one shard is one block — and mirrored exactly by the
    // incremental view's aggregation tree, so full scans and maintained
    // state agree bitwise.
    report.total_severity = internal::BlockedSeveritySum(
        static_cast<int64_t>(report.providers.size()),
        [&](int64_t i) { return report.providers[i].total_severity; });
    for (const ProviderViolation& pv : report.providers) {
      if (pv.violated) ++report.num_violated;
    }
  }
  finish(metrics.analyze_ok);
  // Gauges reflect the real policy only: what-if and policy-search scans
  // run hypothetical policies via policy_override and must not overwrite
  // the live values.
  if (options_.policy_override == nullptr) {
    metrics.pw->Set(report.ProbabilityOfViolation());
    metrics.total_severity->Set(report.total_severity);
    metrics.providers->Set(static_cast<double>(n));
  }
  return report;
}

Result<ProviderViolation> ViolationDetector::AnalyzeProvider(
    ProviderId provider) const {
  const privacy::HousePolicy& house_policy =
      options_.policy_override != nullptr ? *options_.policy_override
                                          : config_->policy;
  const internal::PreparedPolicy prepared =
      internal::PreparePolicy(house_policy, options_.purpose_hierarchy);
  const privacy::PolicyColumns columns =
      privacy::PolicyColumns::Build(house_policy.tuples(),
                                    config_->sensitivities);
  privacy::SensitivityColumns unit_sens;
  unit_sens.FillOnes(prepared.tuples.size());

  // An absent provider entry behaves as an empty preference set: every
  // policy purpose is unstated and (under Def. 1) implicitly zero. The
  // object is a function-local static: initialization is thread-safe
  // (C++11 magic statics), it is const and never mutated afterwards, so
  // sharing it across concurrent detector threads is safe — and unlike the
  // old `*new ProviderPreferences(0)` it is destroyed at process exit.
  static const ProviderPreferences kEmpty{0};
  const ProviderPreferences* prefs = &kEmpty;
  Result<const ProviderPreferences*> found =
      config_->preferences.Find(provider);
  if (found.ok()) prefs = found.value();

  internal::AnalysisScratch scratch;
  PrivacyTuple stated_storage;
  auto find_pref = [&](int32_t /*attr_id*/, std::string_view attribute,
                       privacy::PurposeId purpose) -> const PrivacyTuple* {
    Result<PrivacyTuple> stated = prefs->Find(attribute, purpose);
    if (!stated.ok()) return nullptr;
    stated_storage = std::move(stated).value();
    return &stated_storage;
  };
  return internal::AnalyzeOne(*config_, options_, prepared, columns, unit_sens,
                              provider, find_pref, scratch);
}

}  // namespace ppdb::violation

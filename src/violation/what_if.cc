#include "violation/what_if.h"

#include <limits>
#include <utility>

#include "common/macros.h"
#include "violation/default_model.h"

namespace ppdb::violation {

WhatIfAnalyzer::WhatIfAnalyzer(const privacy::PrivacyConfig* config,
                               Options options)
    : config_(config), options_(options) {}

std::vector<ExpansionStep> WhatIfAnalyzer::UniformSchedule(
    privacy::Dimension dimension, int count) {
  std::vector<ExpansionStep> steps;
  steps.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    steps.push_back(ExpansionStep{dimension, 1, std::nullopt});
  }
  return steps;
}

Result<std::vector<ExpansionPoint>> WhatIfAnalyzer::RunSchedule(
    const std::vector<ExpansionStep>& steps) const {
  std::vector<ExpansionPoint> points;
  points.reserve(steps.size() + 1);

  privacy::HousePolicy policy = config_->policy;
  PPDB_ASSIGN_OR_RETURN(ExpansionPoint baseline, Evaluate(0, policy));
  points.push_back(std::move(baseline));

  int index = 0;
  for (const ExpansionStep& step : steps) {
    ++index;
    if (step.attribute.has_value()) {
      PPDB_ASSIGN_OR_RETURN(
          policy, policy.WidenedForAttribute(*step.attribute, step.dimension,
                                             step.delta, config_->scales));
    } else {
      PPDB_ASSIGN_OR_RETURN(
          policy, policy.Widened(step.dimension, step.delta,
                                 config_->scales));
    }
    PPDB_ASSIGN_OR_RETURN(ExpansionPoint point, Evaluate(index, policy));
    points.push_back(std::move(point));
  }
  return points;
}

Result<ExpansionPoint> WhatIfAnalyzer::Evaluate(
    int step_index, privacy::HousePolicy policy) const {
  // Evaluate the widened policy against the fixed population without
  // copying the (potentially large) preference store: the detector's
  // policy override reads `policy` in place of config's.
  ViolationDetector::Options detector_options = options_.detector_options;
  detector_options.policy_override = &policy;
  ViolationDetector detector(config_, detector_options);
  PPDB_ASSIGN_OR_RETURN(ViolationReport report, detector.Analyze());
  DefaultReport defaults = ComputeDefaults(report, *config_);

  PPDB_ASSIGN_OR_RETURN(
      UtilityModel utility,
      UtilityModel::Create(options_.utility_per_provider));

  ExpansionPoint point;
  point.step_index = step_index;
  point.policy = std::move(policy);
  point.p_violation = report.ProbabilityOfViolation();
  point.p_default = defaults.ProbabilityOfDefault();
  point.total_violations = report.total_severity;
  int64_t n_current = report.num_providers();
  point.num_defaulted = defaults.num_defaulted;
  point.n_remaining = UtilityModel::FutureProviders(n_current, defaults);
  point.utility_current = utility.CurrentUtility(n_current);
  point.extra_utility =
      options_.extra_utility_per_step * static_cast<double>(step_index);
  point.utility_future =
      utility.FutureUtility(point.n_remaining, point.extra_utility);
  Result<double> break_even =
      utility.BreakEvenExtraUtility(n_current, point.n_remaining);
  point.break_even_extra_utility =
      break_even.ok() ? break_even.value()
                      : std::numeric_limits<double>::infinity();
  point.justified = point.utility_future > point.utility_current;
  return point;
}

}  // namespace ppdb::violation

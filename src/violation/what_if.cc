#include "violation/what_if.h"

#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/thread_pool.h"
#include "violation/default_model.h"

namespace ppdb::violation {

WhatIfAnalyzer::WhatIfAnalyzer(const privacy::PrivacyConfig* config,
                               Options options)
    : config_(config), options_(options) {}

std::vector<ExpansionStep> WhatIfAnalyzer::UniformSchedule(
    privacy::Dimension dimension, int count) {
  std::vector<ExpansionStep> steps;
  steps.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    steps.push_back(ExpansionStep{dimension, 1, std::nullopt});
  }
  return steps;
}

Result<std::vector<ExpansionPoint>> WhatIfAnalyzer::RunSchedule(
    const std::vector<ExpansionStep>& steps) const {
  // The cumulative policies are built serially (each widening is cheap and
  // depends on the previous one); the expensive per-point population
  // evaluation then fans out over the pool.
  std::vector<privacy::HousePolicy> policies;
  policies.reserve(steps.size() + 1);
  policies.push_back(config_->policy);
  for (const ExpansionStep& step : steps) {
    privacy::HousePolicy next;
    if (step.attribute.has_value()) {
      PPDB_ASSIGN_OR_RETURN(
          next, policies.back().WidenedForAttribute(
                    *step.attribute, step.dimension, step.delta,
                    config_->scales));
    } else {
      PPDB_ASSIGN_OR_RETURN(
          next, policies.back().Widened(step.dimension, step.delta,
                                        config_->scales));
    }
    policies.push_back(std::move(next));
  }

  const int64_t n = static_cast<int64_t>(policies.size());
  const Deadline& deadline = options_.detector_options.deadline;
  std::vector<ExpansionPoint> points(static_cast<size_t>(n));
  std::vector<Status> statuses(static_cast<size_t>(n));
  ThreadPool::Shared().ParallelRange(
      0, n, /*grain=*/1, ThreadPool::ResolveThreadCount(options_.num_threads),
      [&](int64_t /*shard*/, int64_t begin, int64_t end) {
        for (int64_t k = begin; k < end; ++k) {
          const size_t at = static_cast<size_t>(k);
          // Deadline checkpoint between points; the detector inside
          // Evaluate polls the same token at provider granularity.
          if (deadline.Expired()) {
            statuses[at] = Status::DeadlineExceeded("schedule point skipped");
            continue;
          }
          Result<ExpansionPoint> point =
              Evaluate(static_cast<int>(k), std::move(policies[at]));
          if (point.ok()) {
            points[at] = std::move(point).value();
          } else {
            statuses[at] = point.status();
          }
        }
      });
  int64_t evaluated = 0;
  for (const Status& status : statuses) {
    if (status.ok()) ++evaluated;
  }
  for (const Status& status : statuses) {
    if (status.IsDeadlineExceeded()) {
      return Status::DeadlineExceeded(
          "what-if: evaluated " + std::to_string(evaluated) + " of " +
          std::to_string(n) + " schedule points before the deadline expired");
    }
    PPDB_RETURN_NOT_OK(status);
  }
  return points;
}

Result<ExpansionPoint> WhatIfAnalyzer::Evaluate(
    int step_index, privacy::HousePolicy policy) const {
  // Evaluate the widened policy against the fixed population without
  // copying the (potentially large) preference store: the detector's
  // policy override reads `policy` in place of config's.
  ViolationDetector::Options detector_options = options_.detector_options;
  detector_options.policy_override = &policy;
  ViolationDetector detector(config_, detector_options);
  PPDB_ASSIGN_OR_RETURN(ViolationReport report, detector.Analyze());
  DefaultReport defaults = ComputeDefaults(report, *config_);

  PPDB_ASSIGN_OR_RETURN(
      UtilityModel utility,
      UtilityModel::Create(options_.utility_per_provider));

  ExpansionPoint point;
  point.step_index = step_index;
  point.policy = std::move(policy);
  point.p_violation = report.ProbabilityOfViolation();
  point.p_default = defaults.ProbabilityOfDefault();
  point.total_violations = report.total_severity;
  int64_t n_current = report.num_providers();
  point.num_defaulted = defaults.num_defaulted;
  point.n_remaining = UtilityModel::FutureProviders(n_current, defaults);
  point.utility_current = utility.CurrentUtility(n_current);
  point.extra_utility =
      options_.extra_utility_per_step * static_cast<double>(step_index);
  point.utility_future =
      utility.FutureUtility(point.n_remaining, point.extra_utility);
  Result<double> break_even =
      utility.BreakEvenExtraUtility(n_current, point.n_remaining);
  point.break_even_extra_utility =
      break_even.ok() ? break_even.value()
                      : std::numeric_limits<double>::infinity();
  point.justified = point.utility_future > point.utility_current;
  return point;
}

}  // namespace ppdb::violation

#include "violation/live_monitor.h"

#include <utility>

#include "common/macros.h"
#include "violation/metrics.h"

namespace ppdb::violation {

namespace {

/// Mirrors the view's O(1) aggregates into the violation gauges. Called
/// after every population change so a scrape between full scans still sees
/// current values.
void PublishGauges(const LivePopulationMonitor& monitor) {
  const ViolationMetrics& metrics = ViolationMetrics::Get();
  metrics.pw->Set(monitor.ProbabilityOfViolation());
  metrics.pdefault->Set(monitor.ProbabilityOfDefault());
  metrics.total_severity->Set(monitor.TotalViolations());
  metrics.providers->Set(static_cast<double>(monitor.num_providers()));
}

}  // namespace

Result<LivePopulationMonitor> LivePopulationMonitor::Create(
    privacy::PrivacyConfig config,
    ViolationDetector::Options detector_options) {
  LivePopulationMonitor monitor(std::move(config), detector_options);
  PPDB_ASSIGN_OR_RETURN(
      ViolationView view,
      ViolationView::Create(monitor.config_.get(), detector_options));
  monitor.view_.emplace(std::move(view));
  // Registers the ppdb_violation_* families at startup and resets the
  // population gauges for this (new) monitored population.
  PublishGauges(monitor);
  return monitor;
}

LivePopulationMonitor::LivePopulationMonitor(
    privacy::PrivacyConfig config, ViolationDetector::Options detector_options)
    : config_(std::make_unique<privacy::PrivacyConfig>(std::move(config))),
      detector_options_(detector_options) {}

Status LivePopulationMonitor::CheckpointNow() {
  if (!hook_.save) {
    return Status::FailedPrecondition("no checkpoint hook installed");
  }
  Status status = hook_.save(*config_);
  last_checkpoint_status_ = status;
  if (status.ok()) {
    ++checkpoints_taken_;
    events_since_checkpoint_ = 0;
  }
  return status;
}

Status LivePopulationMonitor::CountEvent() {
  // The counter always tracks — it is the "durability debt" surfaced by
  // stats even when periodic checkpoints are off — but only a positive
  // cadence triggers a checkpoint from here.
  ++events_since_checkpoint_;
  if (hook_.every_events <= 0 || !hook_.save) return Status::OK();
  if (events_since_checkpoint_ < hook_.every_events) return Status::OK();
  return CheckpointNow();
}

Status LivePopulationMonitor::AddProvider(ProviderId provider,
                                          double threshold) {
  if (config_->preferences.Contains(provider)) {
    return Status::AlreadyExists("provider " + std::to_string(provider) +
                                 " is already monitored");
  }
  config_->preferences.ForProvider(provider);  // Creates the empty entry.
  config_->thresholds[provider] = threshold;
  PPDB_RETURN_NOT_OK(view_->OnProviderAdded(provider));
  PublishGauges(*this);
  (void)CountEvent();  // Checkpoint outcome lands in last_checkpoint_status.
  return Status::OK();
}

Status LivePopulationMonitor::RemoveProvider(ProviderId provider) {
  if (!config_->preferences.Contains(provider)) {
    return Status::NotFound("provider " + std::to_string(provider) +
                            " is not monitored");
  }
  PPDB_RETURN_NOT_OK(config_->preferences.Erase(provider));
  config_->thresholds.erase(provider);
  PPDB_RETURN_NOT_OK(view_->OnProviderRemoved(provider));
  PublishGauges(*this);
  (void)CountEvent();
  return Status::OK();
}

Status LivePopulationMonitor::SetPreference(
    ProviderId provider, std::string_view attribute,
    const privacy::PrivacyTuple& tuple) {
  PPDB_RETURN_NOT_OK(tuple.ValidateAgainst(config_->scales));
  config_->preferences.ForProvider(provider).Set(attribute, tuple);
  PPDB_RETURN_NOT_OK(
      view_->OnPreferenceChanged(provider, attribute, tuple.purpose));
  PublishGauges(*this);
  (void)CountEvent();
  return Status::OK();
}

Status LivePopulationMonitor::RemovePreference(ProviderId provider,
                                               std::string_view attribute,
                                               privacy::PurposeId purpose) {
  if (!config_->preferences.Contains(provider)) {
    return Status::NotFound("provider " + std::to_string(provider) +
                            " is not monitored");
  }
  PPDB_RETURN_NOT_OK(
      config_->preferences.ForProvider(provider).Remove(attribute, purpose));
  PPDB_RETURN_NOT_OK(view_->OnPreferenceChanged(provider, attribute, purpose));
  PublishGauges(*this);
  (void)CountEvent();
  return Status::OK();
}

Status LivePopulationMonitor::SetThreshold(ProviderId provider,
                                           double threshold) {
  if (!config_->preferences.Contains(provider)) {
    return Status::NotFound("provider " + std::to_string(provider) +
                            " is not monitored");
  }
  if (threshold < 0.0) {
    return Status::InvalidArgument("threshold must be non-negative");
  }
  config_->thresholds[provider] = threshold;
  // Severity is unchanged; only the default bit can flip.
  PPDB_RETURN_NOT_OK(view_->OnThresholdChanged(provider));
  PublishGauges(*this);
  (void)CountEvent();
  return Status::OK();
}

Status LivePopulationMonitor::SetPolicy(privacy::HousePolicy policy) {
  PPDB_RETURN_NOT_OK(policy.ValidateAgainst(config_->scales));
  config_->policy = std::move(policy);
  PPDB_RETURN_NOT_OK(view_->OnPolicyChanged());
  PublishGauges(*this);
  (void)CountEvent();
  return Status::OK();
}

Result<ProviderViolation> LivePopulationMonitor::ForProvider(
    ProviderId provider) const {
  return view_->MaterializeProvider(provider);
}

Result<bool> LivePopulationMonitor::IsDefaulted(ProviderId provider) const {
  return view_->IsDefaulted(provider);
}

}  // namespace ppdb::violation

#ifndef PPDB_VIOLATION_DETECTOR_H_
#define PPDB_VIOLATION_DETECTOR_H_

#include <vector>

#include "common/deadline.h"
#include "common/result.h"
#include "privacy/config.h"
#include "relational/table.h"
#include "violation/report.h"

namespace ppdb::violation {

/// Evaluates Def. 1 (w_i), Eq. 15 (Violation_i) and Eq. 16 (Violations) for
/// the providers of a `PrivacyConfig`.
///
/// For every provider i and every house policy tuple <a, p'> ∈ HP, the
/// detector selects the provider's preference for (a, p'[Pr]) — the stated
/// tuple, or the implicit zero tuple <i, a, pr, 0, 0, 0> when none was
/// stated (Def. 1's rule) — and accumulates conf(pref, Pol) (Eq. 14).
/// Stated preferences for (attribute, purpose) pairs the policy never
/// mentions contribute nothing, exactly as in the paper: a conflict needs a
/// comparable policy tuple.
///
/// Usage:
///
///   ViolationDetector detector(&config);
///   PPDB_ASSIGN_OR_RETURN(ViolationReport report, detector.Analyze());
///   double pw = report.ProbabilityOfViolation();
class ViolationDetector {
 public:
  struct Options {
    /// When true (the default, per Def. 1), an unstated preference for a
    /// purpose the policy mentions is treated as the zero tuple; when
    /// false, such policy tuples are simply skipped (a strictly more
    /// lenient, non-paper semantics useful for sensitivity analysis).
    bool implicit_zero_preferences = true;

    /// When set, enables the purpose-hierarchy extension (§3 assumption 4 /
    /// ref [5]): a policy tuple for purpose q is checked against the
    /// provider's most specific stated preference among q and its ancestors
    /// (consent to a broad purpose covers its specializations). Must
    /// outlive the detector.
    const privacy::PurposeHierarchy* purpose_hierarchy = nullptr;

    /// When set, analysis is restricted to attributes for which the
    /// provider actually supplies a non-null datum in this table (a
    /// provider with no weight on file cannot have their weight misused).
    /// Providers absent from the table supply no data and incur no
    /// violations. Must outlive the detector.
    const rel::Table* data_table = nullptr;

    /// When set, this policy is analyzed instead of `config->policy` — the
    /// zero-copy path for what-if sweeps and policy search, which evaluate
    /// many candidate policies against one fixed population. Must outlive
    /// the detector.
    const privacy::HousePolicy* policy_override = nullptr;

    /// Threads used by `Analyze`/`AnalyzeProviders`: 0 = one per hardware
    /// thread, 1 = the serial loop, n = at most n threads. The population
    /// is split into fixed-size provider shards whose partial reports are
    /// merged in shard order, so the report — provider order, every
    /// per-provider field, and the bitwise value of `total_severity` — is
    /// identical at every thread count.
    int num_threads = 0;

    /// Cooperative cancellation: the sharded `Analyze` loop polls this
    /// token every few hundred providers and bails out with
    /// `kDeadlineExceeded` — the error message carries partial-progress
    /// stats ("analyzed X of N providers") — instead of hogging worker
    /// threads until the census completes. The default token never
    /// expires and costs nothing to check.
    Deadline deadline;
  };

  /// `config` must outlive the detector.
  explicit ViolationDetector(const privacy::PrivacyConfig* config)
      : ViolationDetector(config, Options()) {}
  ViolationDetector(const privacy::PrivacyConfig* config, Options options);

  /// Analyzes every provider in the config's preference store and, when
  /// `Options::data_table` is set, every provider present in that table.
  Result<ViolationReport> Analyze() const;

  /// Analyzes exactly the given providers (duplicates removed, output in
  /// ascending provider order). Providers without stored preferences are
  /// analyzed with empty preference sets (everything implicit).
  ///
  /// Before the per-provider loop runs, the analyzed policy and the
  /// provider preferences are flattened: policy attributes are interned,
  /// ancestor purposes are precomputed, and each provider's stated
  /// preferences for policy attributes are packed into one contiguous
  /// sorted array, so the hot loop does binary search over flat memory
  /// instead of per-(provider, tuple) hash/linear lookups.
  ///
  /// Allocation behaviour: `ViolationReport::providers` is reserved to the
  /// provider count up front, and a provider's `incidents` vector is
  /// reserved to the policy-tuple count when its first incident is found
  /// (violation-free providers allocate nothing). Since each policy tuple
  /// can yield at most three incidents (one per ordered dimension), a
  /// violated provider performs at most a handful of geometric regrowths
  /// past that initial reservation, and typically exactly one allocation.
  Result<ViolationReport> AnalyzeProviders(
      std::vector<ProviderId> providers) const;

  /// Analyzes a single provider.
  Result<ProviderViolation> AnalyzeProvider(ProviderId provider) const;

 private:
  const privacy::PrivacyConfig* config_;
  Options options_;
};

}  // namespace ppdb::violation

#endif  // PPDB_VIOLATION_DETECTOR_H_

#ifndef PPDB_VIOLATION_PROBABILITY_H_
#define PPDB_VIOLATION_PROBABILITY_H_

#include <cstdint>

#include "common/result.h"
#include "common/rng.h"
#include "stats/confidence.h"
#include "violation/default_model.h"
#include "violation/report.h"

namespace ppdb::violation {

/// The outcome of a trial-based relative-frequency estimation (Def. 2 / 5):
/// τ trials of "select a provider uniformly at random (with replacement)
/// and test the event", yielding τ(A)/τ → P(A).
struct TrialEstimate {
  int64_t trials = 0;
  /// τ(A): trials in which the event occurred.
  int64_t hits = 0;
  /// τ(A)/τ.
  double estimate = 0.0;
  /// Wilson 95% confidence interval for the estimate.
  stats::ConfidenceInterval ci95;
  /// The exact census value the estimate approximates (Σ_i a_i / N);
  /// reported so convergence is measurable.
  double census = 0.0;
  /// |estimate − census|.
  double AbsoluteError() const {
    double err = estimate - census;
    return err < 0 ? -err : err;
  }
};

/// Estimates P(W) (Def. 2) by τ random trials over the report's providers.
/// Errors when `trials` <= 0 or the report is empty.
///
/// Trials are split into fixed-size shards, each driven by a sub-RNG whose
/// seed is drawn from `rng` up front in shard order. The estimate is
/// therefore a pure function of (seed, τ): `num_threads` (0 = hardware
/// concurrency, 1 = serial) only changes how the shards are scheduled,
/// never the result.
Result<TrialEstimate> EstimateViolationProbability(
    const ViolationReport& report, int64_t trials, Rng& rng,
    int num_threads = 1);

/// Estimates P(Default) (Def. 5) by τ random trials. Sharded and seeded
/// exactly like `EstimateViolationProbability`.
Result<TrialEstimate> EstimateDefaultProbability(const DefaultReport& report,
                                                 int64_t trials, Rng& rng,
                                                 int num_threads = 1);

/// α-PPDB certification (Def. 3): whether P(W) ≤ α, with supporting data.
struct AlphaCertification {
  double alpha = 0.0;
  /// Census P(W).
  double p_violation = 0.0;
  /// Def. 3 verdict: p_violation <= alpha.
  bool certified = false;
  int64_t num_providers = 0;
  int64_t num_violated = 0;
  /// Wilson interval on P(W) at `confidence`, treating the census as a
  /// binomial sample of the provider population — the margin a future
  /// provider joining the database would face.
  stats::ConfidenceInterval interval;
  /// True when the entire interval lies at or below alpha (a conservative
  /// certification robust to population churn).
  bool certified_with_margin = false;
};

/// Certifies `report` against threshold `alpha` (Def. 3). Errors when alpha
/// is outside [0, 1] or the report is empty.
Result<AlphaCertification> CertifyAlphaPpdb(const ViolationReport& report,
                                            double alpha,
                                            double confidence = 0.95);

}  // namespace ppdb::violation

#endif  // PPDB_VIOLATION_PROBABILITY_H_

#include "violation/report.h"

#include <algorithm>
#include <cstdio>

namespace ppdb::violation {

const ProviderViolation* ViolationReport::Find(ProviderId provider) const {
  auto it = std::lower_bound(providers.begin(), providers.end(), provider,
                             [](const ProviderViolation& pv, ProviderId id) {
                               return pv.provider < id;
                             });
  if (it == providers.end() || it->provider != provider) return nullptr;
  return &*it;
}

std::string ViolationReport::ToString(int64_t max_providers) const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "ViolationReport: N=%lld, violated=%lld, P(W)=%.4f, "
                "Violations=%.3f\n",
                static_cast<long long>(num_providers()),
                static_cast<long long>(num_violated),
                ProbabilityOfViolation(), total_severity);
  std::string out = buf;
  int64_t shown = 0;
  for (const ProviderViolation& pv : providers) {
    if (!pv.violated) continue;
    if (shown++ >= max_providers) {
      out += "  ...\n";
      break;
    }
    std::snprintf(buf, sizeof(buf),
                  "  provider %lld: Violation_i=%.3f, incidents=%zu, "
                  "attributes=%d, max_incident=%.3f\n",
                  static_cast<long long>(pv.provider), pv.total_severity,
                  pv.incidents.size(), pv.num_attributes_violated,
                  pv.max_incident_severity);
    out += buf;
  }
  return out;
}

}  // namespace ppdb::violation

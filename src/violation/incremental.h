#ifndef PPDB_VIOLATION_INCREMENTAL_H_
#define PPDB_VIOLATION_INCREMENTAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "privacy/config.h"
#include "privacy/tuple_columns.h"
#include "violation/analysis_core.h"
#include "violation/change_impact.h"
#include "violation/detector.h"
#include "violation/report.h"

namespace ppdb::violation {

/// The violation quantities of the paper — per-cell conf contributions
/// (Eq. 14), the per-provider Violation_i vector (Eq. 15), house Violations
/// (Eq. 16) and the P(W)/P(Default) counters (Def. 2, Defs. 4-5) — treated
/// as one materialized view with O(Δ) delta maintenance instead of batch
/// outputs.
///
/// The view stores conf for every (provider, policy tuple) cell plus a
/// small aggregation tree over the per-provider severities. An event
/// (preference edit, threshold move, policy change, membership change,
/// datum change) recomputes only its affected cells through exactly the
/// shared analysis core the batch detector runs (`analysis_core.h`) and
/// propagates deltas upward: integer counters move by exact increments,
/// float sums are *re-run* — flat within the affected provider's row in
/// tuple order, flat within the affected 512-provider block, block partials
/// in block order — so every maintained float is bitwise-identical to what
/// a full `ViolationDetector::Analyze` computes from scratch. That is the
/// drift-oracle contract: `CheckDrift` runs the full analysis and compares
/// bitwise, not within a tolerance.
///
/// The view reads `*config` but never mutates it: the owner applies the
/// mutation to the config first, then notifies the view (`On*`). `config`
/// must outlive the view and its address must be stable (hold the config
/// behind a pointer if the owner is movable).
///
/// Thread safety: thread-compatible, externally synchronized — same
/// contract as `LivePopulationMonitor`, which embeds one behind
/// `DatabaseService`'s writer lock.
class ViolationView {
 public:
  /// §9 expansion inequality (Eqs. 25-31) evaluated from maintained
  /// counters — the standing query behind the `expansion-check` command.
  struct ExpansionCheck {
    int64_t n_current = 0;    ///< N
    int64_t n_defaulted = 0;  ///< Σ_i default_i
    int64_t n_future = 0;     ///< N_future (Eq. 26)
    double utility_per_provider = 0.0;  ///< U
    double extra_utility = 0.0;         ///< T
    double utility_current = 0.0;       ///< Eq. 25
    double utility_future = 0.0;        ///< Eq. 27
    bool justified = false;             ///< Eqs. 28-29
    /// Eq. 31 break-even T; meaningful iff `has_break_even` (false when
    /// every provider defaulted — no finite T recovers the loss).
    bool has_break_even = false;
    double break_even_extra_utility = 0.0;
  };

  /// Outcome of one forced full recompute against the maintained state.
  struct DriftReport {
    /// True iff every maintained quantity matched the full analysis
    /// bitwise.
    bool clean = true;
    int64_t providers_checked = 0;
    int64_t mismatched_providers = 0;
    /// First few mismatches, for logs.
    std::string detail;
  };

  /// What-if for a single provider, answered from the view without
  /// touching the rest of the population: only the policy cells that
  /// actually changed are recomputed, so the cost is O(Δ) — independent of
  /// house size N.
  struct ProviderImpact {
    ProviderId provider = 0;
    privacy::PolicyDiff diff;
    double severity_before = 0.0;
    double severity_after = 0.0;
    bool violated_before = false;
    bool violated_after = false;
    bool defaulted_before = false;
    bool defaulted_after = false;
    /// Cells the answer recomputed through the kernel.
    int64_t cells_recomputed = 0;
  };

  /// Builds the view over `config`'s current population (preference-store
  /// providers plus, when `options.data_table` is set, every provider in
  /// the table — the same population `Analyze` covers). `options` follows
  /// `ViolationDetector::Options`; `policy_override` must be unset (the
  /// view materializes the real policy) and `deadline` is ignored (events
  /// are O(Δ)). `options.num_threads` is used by the drift oracle's full
  /// recompute.
  static Result<ViolationView> Create(const privacy::PrivacyConfig* config,
                                      ViolationDetector::Options options = {});

  ViolationView(ViolationView&&) noexcept = default;
  ViolationView& operator=(ViolationView&&) noexcept = default;
  ViolationView(const ViolationView&) = delete;
  ViolationView& operator=(const ViolationView&) = delete;

  // --- event notifications (the config mutation already happened) -------

  /// Provider joined (or its table rows changed its membership): computes
  /// the provider's full row. Idempotent — recomputes when already present.
  Status OnProviderAdded(ProviderId provider);

  /// Provider left: drops the row. Keeps (and recomputes) the row when the
  /// provider is still in the analyzed population through the data table.
  Status OnProviderRemoved(ProviderId provider);

  /// One stated preference for (attribute, purpose) was set or removed:
  /// recomputes exactly the cells whose Def. 1 selection can see it — the
  /// policy tuples for `attribute` whose purpose is `purpose` or (with the
  /// hierarchy extension) descends from it. Inserts the provider when the
  /// event introduced it.
  Status OnPreferenceChanged(ProviderId provider, std::string_view attribute,
                             privacy::PurposeId purpose);

  /// v_i moved: no cells — only the default bit can flip.
  Status OnThresholdChanged(ProviderId provider);

  /// A datum for (provider, attribute) appeared, changed or disappeared:
  /// recomputes the cells of that attribute (the data-scoping mask may
  /// flip) and resolves the provider's population membership.
  Status OnDatumChanged(ProviderId provider, std::string_view attribute);

  /// The house policy was replaced. When the new policy keeps the same
  /// (attribute, purpose) cell sequence, only the columns whose levels
  /// moved are recomputed — O(N·Δ) instead of O(N·|HP|); a shape change
  /// (tuples added/removed/reordered) rebuilds the view.
  Status OnPolicyChanged();

  /// Full rebuild from the config — the fallback every event path may
  /// degrade to, and the recovery action after a detected drift.
  Status RebuildAll();

  // --- O(1) queries from maintained state -------------------------------

  int64_t num_providers() const {
    return static_cast<int64_t>(providers_.size());
  }
  int64_t num_violated() const { return num_violated_; }
  int64_t num_defaulted() const { return num_defaulted_; }

  /// Violations (Eq. 16); bitwise what a full Analyze would return.
  double TotalViolations() const { return total_severity_; }

  /// Census P(W) (Def. 2); 0 when empty.
  double ProbabilityOfViolation() const {
    return providers_.empty() ? 0.0
                              : static_cast<double>(num_violated_) /
                                    static_cast<double>(providers_.size());
  }

  /// Census P(Default) (Def. 5); 0 when empty.
  double ProbabilityOfDefault() const {
    return providers_.empty() ? 0.0
                              : static_cast<double>(num_defaulted_) /
                                    static_cast<double>(providers_.size());
  }

  bool Contains(ProviderId provider) const;

  /// Violation_i (Eq. 15); kNotFound when absent. O(log N).
  Result<double> SeverityFor(ProviderId provider) const;

  /// w_i (Def. 1); kNotFound when absent.
  Result<bool> IsViolated(ProviderId provider) const;

  /// default_i (Def. 4); kNotFound when absent.
  Result<bool> IsDefaulted(ProviderId provider) const;

  /// §9 expansion inequality from maintained counters; O(1). Errors when
  /// `utility_per_provider` is not positive (the Eq. 31 algebra divides by
  /// it).
  Result<ExpansionCheck> CheckExpansion(double utility_per_provider,
                                        double extra_utility) const;

  // --- materialization (recomputes incidents on demand) -----------------

  /// The full per-provider result, incidents included. O(|HP|): one row
  /// recompute through the cached policy preparation.
  Result<ProviderViolation> MaterializeProvider(ProviderId provider) const;

  /// A full ViolationReport equivalent to running the batch detector now —
  /// aggregates from maintained state, incidents recomputed for violated
  /// providers only.
  ViolationReport Snapshot() const;

  // --- what-if through the view -----------------------------------------

  /// Before/after assessment of replacing the config's policy with
  /// `new_policy`, with the before side read from maintained state (no
  /// first full scan) and the after side recomputed only for the cells the
  /// change touches when the policy shape is preserved.
  Result<ChangeImpact> AssessPolicyChange(
      const privacy::HousePolicy& new_policy) const;

  /// Same question for one provider; O(Δ), never scales with N.
  Result<ProviderImpact> AssessPolicyChangeForProvider(
      ProviderId provider, const privacy::HousePolicy& new_policy) const;

  // --- drift oracle -----------------------------------------------------

  /// Runs a full `ViolationDetector::Analyze` over the config and compares
  /// every maintained quantity bitwise: per-provider severity, w_i and
  /// default_i, the population counters and the Eq. 16 total. A mismatch
  /// means the delta plumbing is wrong (or the config was mutated behind
  /// the view's back); `RebuildAll` resynchronizes.
  Result<DriftReport> CheckDrift();

  // --- introspection (stats posture, tests) -----------------------------

  /// Policy tuples per provider row (|HP| as materialized).
  int64_t policy_tuples() const {
    return static_cast<int64_t>(prepared_.tuples.size());
  }
  /// Materialized cells: providers × policy tuples.
  int64_t total_cells() const { return num_providers() * policy_tuples(); }
  /// Kernel cells recomputed by the most recent event.
  int64_t last_delta_cells() const { return last_delta_cells_; }
  /// Events served by the O(Δ) path since construction.
  int64_t delta_events() const { return delta_events_; }
  /// Events that degraded to a full rebuild.
  int64_t rebuild_events() const { return rebuild_events_; }
  int64_t drift_checks_clean() const { return drift_checks_clean_; }
  int64_t drift_checks_failed() const { return drift_checks_failed_; }

 private:
  /// Per-cell maintained state for one provider row, aligned with the
  /// policy tuple sequence.
  struct Row {
    /// conf(pref, Pol) per cell (Eq. 14), exactly as the kernel computed
    /// it.
    std::vector<double> conf;
    /// 1 iff the cell has a positive diff on some dimension (the Def. 1
    /// existence condition at cell granularity).
    std::vector<uint8_t> exceed;
  };

  ViolationView(const privacy::PrivacyConfig* config,
                ViolationDetector::Options options);

  /// Position of `provider` in the ascending provider order, or -1.
  int64_t PositionOf(ProviderId provider) const;

  /// Cells whose Def. 1 preference selection can observe a stated
  /// preference for (attribute, purpose).
  std::vector<int32_t> CellsForPreference(std::string_view attribute,
                                          privacy::PurposeId purpose) const;
  /// Cells of one attribute (the data-scoping mask's blast radius).
  std::vector<int32_t> CellsForAttribute(std::string_view attribute) const;

  /// True iff the provider belongs to the analyzed population right now.
  bool ShouldExist(ProviderId provider) const;
  /// Inserts / drops / recomputes the provider's row to match
  /// `ShouldExist`, refreshing the aggregation tree. Returns the kernel
  /// cells recomputed.
  int64_t ResyncProvider(ProviderId provider);

  struct GatherScratch {
    std::vector<int32_t> pol_v, pol_g, pol_r;
    std::vector<double> attr_sens, sens_val, sens_v, sens_g, sens_r;
    std::vector<double> out_conf;
    std::vector<uint8_t> out_exceed;
  };

  /// Recomputes exactly `cells` of `provider`'s row against (`policy`,
  /// `columns`) — gathered lanes through the shared kernel, bitwise what a
  /// full row build computes for those cells (the kernel is lane-pure).
  /// Writes conf/exceed per lane; mutates only the caller's scratch, so
  /// const what-if queries can run it with local buffers under a reader
  /// lock.
  void ComputeCells(ProviderId provider, const internal::PreparedPolicy& policy,
                    const privacy::PolicyColumns& columns,
                    const std::vector<int32_t>& cells,
                    internal::AnalysisScratch& scratch, GatherScratch& gather,
                    double* conf_out, uint8_t* exceed_out) const;

  /// Recomputes the whole row at `pos` (all cells through the kernel) and
  /// its per-provider summaries; patches the integer counters. Does not
  /// touch the block sums.
  void ComputeFullRow(int64_t pos);

  /// Recomputes exactly `cells` of the row at `pos` (gathered kernel call)
  /// and re-derives the row summaries; patches the integer counters. Does
  /// not touch the block sums.
  void RecomputeCellsLocal(int64_t pos, const std::vector<int32_t>& cells);

  /// Flat tuple-order resum of row `pos` with `cells` → (conf, exceed)
  /// substituted — the severity/violated a full recompute would produce
  /// after the change, without mutating the view. `cells` must be sorted.
  void PatchedRowSummary(int64_t pos, const std::vector<int32_t>& cells,
                         const double* conf, const uint8_t* exceed,
                         double* severity_out, bool* violated_out) const;

  /// Re-derives severity (flat, tuple order), the exceed count and the
  /// default bit of row `pos` from its cells; patches the integer
  /// counters.
  void RefreshRowSummaries(int64_t pos);

  /// Recomputes the block partial containing `pos` and the root, in the
  /// canonical shape.
  void RefreshBlockAndTotal(int64_t pos);
  /// Recomputes every block partial and the root (membership changes and
  /// policy-wide deltas).
  void RebuildTree();

  /// Metric + counter bookkeeping for one applied event.
  void CountDelta(int64_t cells, double seconds);
  void CountRebuild(int64_t cells, double seconds);

  const privacy::PrivacyConfig* config_;
  ViolationDetector::Options options_;

  // Cached policy preparation, rebuilt on policy changes only — the
  // per-event cost the old per-provider refresh paid on every preference
  // edit.
  internal::PreparedPolicy prepared_;
  privacy::PolicyColumns columns_;
  privacy::SensitivityColumns unit_sens_;
  /// Copy of the prepared policy's tuple sequence, for the shape diff on
  /// `OnPolicyChanged` (the live policy object is already the new one by
  /// then).
  std::vector<privacy::PolicyTuple> cached_policy_;

  // Per-provider state, position-indexed by ascending provider id.
  std::vector<ProviderId> providers_;
  std::vector<Row> rows_;
  std::vector<double> severity_;
  std::vector<int32_t> exceed_count_;
  std::vector<uint8_t> defaulted_;

  // Aggregation tree: per-block severity partials + maintained counters.
  std::vector<double> block_severity_;
  double total_severity_ = 0.0;
  int64_t num_violated_ = 0;
  int64_t num_defaulted_ = 0;

  // Reused scratch for the event (writer) paths only; const query methods
  // allocate locally so concurrent readers never share buffers.
  internal::AnalysisScratch scratch_;
  GatherScratch gather_;

  int64_t last_delta_cells_ = 0;
  int64_t delta_events_ = 0;
  int64_t rebuild_events_ = 0;
  int64_t drift_checks_clean_ = 0;
  int64_t drift_checks_failed_ = 0;
};

}  // namespace ppdb::violation

#endif  // PPDB_VIOLATION_INCREMENTAL_H_

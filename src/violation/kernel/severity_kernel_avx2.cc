// AVX2 severity kernel: 4 (preference, policy) pairs per iteration.
//
// Compiled on every x86-64 build via per-function target attributes (the
// translation unit itself stays baseline, so linking it into a non-AVX2
// binary is safe); callers reach it only through runtime dispatch after
// __builtin_cpu_supports("avx2").
//
// Bitwise contract: each lane performs exactly the scalar reference's
// operation sequence — int32 subtract/max, int32→double convert, the
// three-factor multiply chain in source order, then (wv + wg) + wr — and
// the remainder lanes run the scalar reference itself, so output arrays
// are bit-for-bit identical to ConfKernelScalar on every input.
#include "violation/kernel/severity_kernel.h"

#if PPDB_KERNEL_HAVE_AVX2

#include <immintrin.h>

#include "violation/kernel/severity_kernel_internal.h"

namespace ppdb::violation::kernel {

namespace {

#define PPDB_AVX2 __attribute__((target("avx2")))

/// Weighted severity of one dimension for 4 lanes: diff × Σ^a × s × s[dim],
/// multiplied left-to-right exactly like the scalar reference.
PPDB_AVX2 inline __m256d WeightedLanes(__m128i diff, __m256d attr_sens,
                                       __m256d sens_val, __m256d sens_dim) {
  const __m256d d = _mm256_cvtepi32_pd(diff);
  return _mm256_mul_pd(
      _mm256_mul_pd(_mm256_mul_pd(d, attr_sens), sens_val), sens_dim);
}

}  // namespace

PPDB_AVX2 bool ConfKernelAvx2(const ConfInput& in, const ConfOutput& out,
                              size_t n) {
  const __m128i zero = _mm_setzero_si128();
  __m128i any = zero;
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m128i act =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in.active + j));
    const __m128i dv = _mm_and_si128(
        _mm_max_epi32(
            _mm_sub_epi32(_mm_loadu_si128(
                              reinterpret_cast<const __m128i*>(in.pol_v + j)),
                          _mm_loadu_si128(reinterpret_cast<const __m128i*>(
                              in.pref_v + j))),
            zero),
        act);
    const __m128i dg = _mm_and_si128(
        _mm_max_epi32(
            _mm_sub_epi32(_mm_loadu_si128(
                              reinterpret_cast<const __m128i*>(in.pol_g + j)),
                          _mm_loadu_si128(reinterpret_cast<const __m128i*>(
                              in.pref_g + j))),
            zero),
        act);
    const __m128i dr = _mm_and_si128(
        _mm_max_epi32(
            _mm_sub_epi32(_mm_loadu_si128(
                              reinterpret_cast<const __m128i*>(in.pol_r + j)),
                          _mm_loadu_si128(reinterpret_cast<const __m128i*>(
                              in.pref_r + j))),
            zero),
        act);
    any = _mm_or_si128(any, _mm_or_si128(dv, _mm_or_si128(dg, dr)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out.diff_v + j), dv);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out.diff_g + j), dg);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out.diff_r + j), dr);

    const __m256d attr_sens = _mm256_loadu_pd(in.attr_sens + j);
    const __m256d sens_val = _mm256_loadu_pd(in.sens_val + j);
    const __m256d wv =
        WeightedLanes(dv, attr_sens, sens_val, _mm256_loadu_pd(in.sens_v + j));
    const __m256d wg =
        WeightedLanes(dg, attr_sens, sens_val, _mm256_loadu_pd(in.sens_g + j));
    const __m256d wr =
        WeightedLanes(dr, attr_sens, sens_val, _mm256_loadu_pd(in.sens_r + j));
    __m256d conf = _mm256_add_pd(_mm256_add_pd(wv, wg), wr);
    // Inactive lanes must yield exactly +0.0, even when a zero diff meets
    // an infinite sensitivity (0 × inf = NaN): and-masking with the lane's
    // sign-extended active flag squashes them, matching the scalar skip.
    conf = _mm256_and_pd(conf,
                         _mm256_castsi256_pd(_mm256_cvtepi32_epi64(act)));
    _mm256_storeu_pd(out.conf + j, conf);
  }
  bool any_exceed = _mm_testz_si128(any, any) == 0;
  if (j < n) {
    any_exceed |= ConfKernelScalar(internal::Offset(in, j),
                                   internal::Offset(out, j), n - j);
  }
  return any_exceed;
}

PPDB_AVX2 void DiffKernelAvx2(const int32_t* pref, const int32_t* policy,
                              int32_t* diff, size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256i p =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pref + j));
    const __m256i q =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(policy + j));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(diff + j),
                        _mm256_max_epi32(_mm256_sub_epi32(q, p), zero));
  }
  if (j < n) DiffKernelScalar(pref + j, policy + j, diff + j, n - j);
}

#undef PPDB_AVX2

}  // namespace ppdb::violation::kernel

#endif  // PPDB_KERNEL_HAVE_AVX2

#ifndef PPDB_VIOLATION_KERNEL_SEVERITY_KERNEL_H_
#define PPDB_VIOLATION_KERNEL_SEVERITY_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/result.h"

/// The data-oriented severity kernel: Eqs. 12–14 evaluated over
/// structure-of-arrays tuple columns instead of one (preference, policy)
/// pair at a time.
///
/// The kernel layer is the only part of the tree allowed to include
/// platform intrinsics headers (<immintrin.h>, <arm_neon.h>; enforced by
/// tools/ppdb_lint.sh). Three implementations are provided — portable
/// scalar (always compiled), AVX2 (x86-64) and NEON (aarch64) — selected
/// at runtime behind one dispatched entry point. Every implementation is
/// bitwise-identical: per-lane IEEE-754 operations are issued in exactly
/// the order of the scalar reference, and reductions that are sensitive to
/// association (the Eq. 15 sum over tuples) stay with the caller, so a
/// `ViolationReport` does not depend on the dispatch target.

// Compile-time availability of the SIMD paths. PPDB_ENABLE_SIMD_KERNELS is
// defined by CMake (option PPDB_ENABLE_SIMD, default ON); switching it off
// compiles the scalar fallback alone, which CI exercises as a matrix leg.
#if defined(PPDB_ENABLE_SIMD_KERNELS) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define PPDB_KERNEL_HAVE_AVX2 1
#else
#define PPDB_KERNEL_HAVE_AVX2 0
#endif
#if defined(PPDB_ENABLE_SIMD_KERNELS) && defined(__aarch64__)
#define PPDB_KERNEL_HAVE_NEON 1
#else
#define PPDB_KERNEL_HAVE_NEON 0
#endif

namespace ppdb::violation::kernel {

/// A dispatch target. kScalar is always compiled in; the SIMD targets
/// exist when the build architecture provides them (see the macros above)
/// and are eligible only when the host CPU supports them at runtime.
enum class Target {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

/// "scalar", "avx2" or "neon".
std::string_view TargetName(Target target);

/// The targets compiled into this binary, scalar first.
std::vector<Target> CompiledTargets();

/// True iff `target` is compiled in and the host CPU can execute it.
bool TargetSupported(Target target);

/// The target the dispatched kernels will use: a ForceTarget override if
/// one is active, else the PPDB_KERNEL_DISPATCH environment variable
/// ("scalar" | "avx2" | "neon" | "auto", read once and cached), else the
/// widest supported target. Falls back to scalar, never fails.
Target SelectedTarget();

/// Pins dispatch to `target` (tests, benchmarks, operational overrides).
/// kInvalidArgument when the target is not compiled in or the host cannot
/// execute it. Takes effect for every subsequent kernel call.
Status ForceTarget(Target target);

/// Clears a ForceTarget override; dispatch returns to env/auto selection.
void ClearForcedTarget();

/// Re-reads PPDB_KERNEL_DISPATCH (tests mutate the environment and need
/// the cached value refreshed; production reads it once).
void ReloadEnvForTest();

/// One batch of comparable (preference, policy) pairs in SoA form. All
/// arrays have length `n`; entry j holds the pair for policy tuple j.
///
/// `active` is 0 for pairs the caller excluded (data-scoped attributes the
/// provider does not supply, unstated purposes under
/// `implicit_zero_preferences = false`) and -1 (all bits) for live pairs.
/// Inactive lanes produce diff = 0 and conf = +0.0 — exactly what the
/// pair-at-a-time path produces by skipping them, since Eq. 15 adds their
/// contribution as zero.
struct ConfInput {
  const int32_t* pref_v = nullptr;  ///< preference levels, V
  const int32_t* pref_g = nullptr;  ///< preference levels, G
  const int32_t* pref_r = nullptr;  ///< preference levels, R
  const int32_t* pol_v = nullptr;   ///< policy levels, V
  const int32_t* pol_g = nullptr;   ///< policy levels, G
  const int32_t* pol_r = nullptr;   ///< policy levels, R
  const double* attr_sens = nullptr;  ///< Σ^a per tuple (purpose-resolved)
  const double* sens_val = nullptr;   ///< s_i^a per tuple
  const double* sens_v = nullptr;     ///< s_i^a[V] per tuple
  const double* sens_g = nullptr;     ///< s_i^a[G] per tuple
  const double* sens_r = nullptr;     ///< s_i^a[R] per tuple
  const int32_t* active = nullptr;    ///< 0 = skip, -1 = live
};

/// Kernel outputs, length `n`. `conf[j]` is conf(pref_j, Pol_j) (Eq. 14)
/// accumulated in the fixed V, G, R dimension order; the per-dimension
/// diffs (Eq. 12) let the caller reconstruct the full per-dimension
/// `ConflictBreakdown` (incidents, breadth, depth) for exceeding pairs.
struct ConfOutput {
  int32_t* diff_v = nullptr;
  int32_t* diff_g = nullptr;
  int32_t* diff_r = nullptr;
  double* conf = nullptr;
};

/// Evaluates Eqs. 12–14 for `n` pairs; returns true iff some active pair
/// has a positive diff on some dimension (the Def. 1 existence condition
/// for this batch).
bool ConfKernel(const ConfInput& in, const ConfOutput& out, size_t n);

/// Direct (non-dispatched) entry points, for equivalence tests and
/// microbenchmarks. Calling a SIMD entry point on an unsupported host is
/// undefined; check TargetSupported first.
bool ConfKernelScalar(const ConfInput& in, const ConfOutput& out, size_t n);
#if PPDB_KERNEL_HAVE_AVX2
bool ConfKernelAvx2(const ConfInput& in, const ConfOutput& out, size_t n);
#endif
#if PPDB_KERNEL_HAVE_NEON
bool ConfKernelNeon(const ConfInput& in, const ConfOutput& out, size_t n);
#endif

/// diff (Eq. 12) alone, batched: diff[j] = max(policy[j] - pref[j], 0).
/// The standalone form backs the kernel microbenchmarks and metric
/// backends that need raw exceedances without severity weighting.
void DiffKernel(const int32_t* pref, const int32_t* policy, int32_t* diff,
                size_t n);
void DiffKernelScalar(const int32_t* pref, const int32_t* policy,
                      int32_t* diff, size_t n);
#if PPDB_KERNEL_HAVE_AVX2
void DiffKernelAvx2(const int32_t* pref, const int32_t* policy, int32_t* diff,
                    size_t n);
#endif
#if PPDB_KERNEL_HAVE_NEON
void DiffKernelNeon(const int32_t* pref, const int32_t* policy, int32_t* diff,
                    size_t n);
#endif

/// Reusable per-thread buffers for one provider row (pref-side inputs and
/// kernel outputs), sized to the policy tuple count. Resize keeps
/// capacity across providers so the hot loop does not allocate.
struct RowScratch {
  std::vector<int32_t> pref_v, pref_g, pref_r;
  std::vector<int32_t> active;
  std::vector<uint8_t> implicit;
  std::vector<int32_t> diff_v, diff_g, diff_r;
  std::vector<double> conf;

  void Resize(size_t n) {
    pref_v.resize(n);
    pref_g.resize(n);
    pref_r.resize(n);
    active.resize(n);
    implicit.resize(n);
    diff_v.resize(n);
    diff_g.resize(n);
    diff_r.resize(n);
    conf.resize(n);
  }

  ConfOutput Output() {
    return ConfOutput{diff_v.data(), diff_g.data(), diff_r.data(),
                      conf.data()};
  }
};

}  // namespace ppdb::violation::kernel

#endif  // PPDB_VIOLATION_KERNEL_SEVERITY_KERNEL_H_

// NEON severity kernel: 4 pairs per iteration (int32x4 level math, two
// float64x2 halves for the severity arithmetic).
//
// NEON is architecturally baseline on aarch64, so this translation unit
// compiles whenever the build targets aarch64 — no per-function target
// attribute or runtime CPU probe is needed.
//
// Bitwise contract: identical to the AVX2 unit — per-lane operations
// replay the scalar reference's sequence, remainder lanes run the scalar
// reference itself.
#include "violation/kernel/severity_kernel.h"

#if PPDB_KERNEL_HAVE_NEON

#include <arm_neon.h>

#include "violation/kernel/severity_kernel_internal.h"

namespace ppdb::violation::kernel {

namespace {

/// diff × Σ^a × s × s[dim] for one float64x2 half (lanes [lo, lo+1] of the
/// int32x4 when `high` is false, [2, 3] when true), multiplied
/// left-to-right like the scalar reference.
inline float64x2_t WeightedHalf(int32x4_t diff, bool high,
                                const double* attr_sens,
                                const double* sens_val,
                                const double* sens_dim) {
  const int64x2_t wide =
      high ? vmovl_high_s32(diff) : vmovl_s32(vget_low_s32(diff));
  const float64x2_t d = vcvtq_f64_s64(wide);
  const size_t at = high ? 2 : 0;
  return vmulq_f64(
      vmulq_f64(vmulq_f64(d, vld1q_f64(attr_sens + at)),
                vld1q_f64(sens_val + at)),
      vld1q_f64(sens_dim + at));
}

/// max(policy - pref, 0) masked by the active flags.
inline int32x4_t MaskedDiff(const int32_t* pref, const int32_t* policy,
                            int32x4_t act) {
  const int32x4_t d =
      vmaxq_s32(vsubq_s32(vld1q_s32(policy), vld1q_s32(pref)),
                vdupq_n_s32(0));
  return vandq_s32(d, act);
}

/// Squashes inactive lanes of one conf half to exactly +0.0.
inline float64x2_t MaskConf(float64x2_t conf, int32x4_t act, bool high) {
  const int64x2_t mask =
      high ? vmovl_high_s32(act) : vmovl_s32(vget_low_s32(act));
  return vreinterpretq_f64_s64(
      vandq_s64(vreinterpretq_s64_f64(conf), mask));
}

}  // namespace

bool ConfKernelNeon(const ConfInput& in, const ConfOutput& out, size_t n) {
  int32x4_t any = vdupq_n_s32(0);
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const int32x4_t act = vld1q_s32(in.active + j);
    const int32x4_t dv = MaskedDiff(in.pref_v + j, in.pol_v + j, act);
    const int32x4_t dg = MaskedDiff(in.pref_g + j, in.pol_g + j, act);
    const int32x4_t dr = MaskedDiff(in.pref_r + j, in.pol_r + j, act);
    any = vorrq_s32(any, vorrq_s32(dv, vorrq_s32(dg, dr)));
    vst1q_s32(out.diff_v + j, dv);
    vst1q_s32(out.diff_g + j, dg);
    vst1q_s32(out.diff_r + j, dr);

    for (const bool high : {false, true}) {
      const float64x2_t wv = WeightedHalf(dv, high, in.attr_sens + j,
                                          in.sens_val + j, in.sens_v + j);
      const float64x2_t wg = WeightedHalf(dg, high, in.attr_sens + j,
                                          in.sens_val + j, in.sens_g + j);
      const float64x2_t wr = WeightedHalf(dr, high, in.attr_sens + j,
                                          in.sens_val + j, in.sens_r + j);
      const float64x2_t conf =
          MaskConf(vaddq_f64(vaddq_f64(wv, wg), wr), act, high);
      vst1q_f64(out.conf + j + (high ? 2 : 0), conf);
    }
  }
  bool any_exceed = vmaxvq_u32(vreinterpretq_u32_s32(any)) != 0;
  if (j < n) {
    any_exceed |= ConfKernelScalar(internal::Offset(in, j),
                                   internal::Offset(out, j), n - j);
  }
  return any_exceed;
}

void DiffKernelNeon(const int32_t* pref, const int32_t* policy, int32_t* diff,
                    size_t n) {
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    vst1q_s32(diff + j,
              vmaxq_s32(vsubq_s32(vld1q_s32(policy + j), vld1q_s32(pref + j)),
                        vdupq_n_s32(0)));
  }
  if (j < n) DiffKernelScalar(pref + j, policy + j, diff + j, n - j);
}

}  // namespace ppdb::violation::kernel

#endif  // PPDB_KERNEL_HAVE_NEON

#ifndef PPDB_VIOLATION_KERNEL_SEVERITY_KERNEL_INTERNAL_H_
#define PPDB_VIOLATION_KERNEL_SEVERITY_KERNEL_INTERNAL_H_

#include <cstddef>

#include "violation/kernel/severity_kernel.h"

/// Shared between the SIMD translation units: pointer-offset views so a
/// vector kernel can hand its remainder lanes (n mod vector width) to the
/// scalar reference, which keeps the tail bitwise-identical by
/// construction.

namespace ppdb::violation::kernel::internal {

inline ConfInput Offset(const ConfInput& in, size_t j) {
  return ConfInput{in.pref_v + j,    in.pref_g + j,  in.pref_r + j,
                   in.pol_v + j,     in.pol_g + j,   in.pol_r + j,
                   in.attr_sens + j, in.sens_val + j, in.sens_v + j,
                   in.sens_g + j,    in.sens_r + j,  in.active + j};
}

inline ConfOutput Offset(const ConfOutput& out, size_t j) {
  return ConfOutput{out.diff_v + j, out.diff_g + j, out.diff_r + j,
                    out.conf + j};
}

}  // namespace ppdb::violation::kernel::internal

#endif  // PPDB_VIOLATION_KERNEL_SEVERITY_KERNEL_INTERNAL_H_

#include "violation/kernel/severity_kernel.h"

#include <atomic>
#include <cstdlib>
#include <optional>
#include <string>

#include "common/logging.h"
#include "violation/metrics.h"

namespace ppdb::violation::kernel {

namespace {

/// Encodes "no value" for the atomics below (Target enumerators are >= 0).
constexpr int kUnset = -1;
/// Env cache states: kUnset = not read yet, kEnvAuto = read, no override.
constexpr int kEnvAuto = -2;

std::atomic<int> g_forced{kUnset};
std::atomic<int> g_env{kUnset};

std::optional<Target> ParseTarget(std::string_view name) {
  if (name == "scalar") return Target::kScalar;
  if (name == "avx2") return Target::kAvx2;
  if (name == "neon") return Target::kNeon;
  return std::nullopt;
}

/// Reads PPDB_KERNEL_DISPATCH into the cache. Unknown names and targets
/// the host cannot execute fall back to auto selection with a warning —
/// an operator typo must degrade, not crash, the serving process.
int ReadEnv() {
  const char* value = std::getenv("PPDB_KERNEL_DISPATCH");
  if (value == nullptr || value[0] == '\0' ||
      std::string_view(value) == "auto") {
    return kEnvAuto;
  }
  std::optional<Target> target = ParseTarget(value);
  if (!target.has_value() || !TargetSupported(*target)) {
    PPDB_LOG(kWarning) << "PPDB_KERNEL_DISPATCH=" << value
                       << " is unknown or unsupported on this host; using "
                          "auto dispatch";
    return kEnvAuto;
  }
  return static_cast<int>(*target);
}

int EnvTarget() {
  int cached = g_env.load(std::memory_order_acquire);
  if (cached == kUnset) {
    cached = ReadEnv();
    g_env.store(cached, std::memory_order_release);
  }
  return cached;
}

/// The widest target the build and the host both support.
Target BestSupported() {
#if PPDB_KERNEL_HAVE_AVX2
  if (TargetSupported(Target::kAvx2)) return Target::kAvx2;
#endif
#if PPDB_KERNEL_HAVE_NEON
  if (TargetSupported(Target::kNeon)) return Target::kNeon;
#endif
  return Target::kScalar;
}

}  // namespace

std::string_view TargetName(Target target) {
  switch (target) {
    case Target::kScalar:
      return "scalar";
    case Target::kAvx2:
      return "avx2";
    case Target::kNeon:
      return "neon";
  }
  return "unknown";
}

std::vector<Target> CompiledTargets() {
  std::vector<Target> targets = {Target::kScalar};
#if PPDB_KERNEL_HAVE_AVX2
  targets.push_back(Target::kAvx2);
#endif
#if PPDB_KERNEL_HAVE_NEON
  targets.push_back(Target::kNeon);
#endif
  return targets;
}

bool TargetSupported(Target target) {
  switch (target) {
    case Target::kScalar:
      return true;
    case Target::kAvx2:
#if PPDB_KERNEL_HAVE_AVX2
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Target::kNeon:
      // NEON is architecturally baseline on aarch64: compiled-in means
      // executable.
      return PPDB_KERNEL_HAVE_NEON != 0;
  }
  return false;
}

Target SelectedTarget() {
  int forced = g_forced.load(std::memory_order_acquire);
  if (forced != kUnset) return static_cast<Target>(forced);
  int env = EnvTarget();
  if (env != kEnvAuto) return static_cast<Target>(env);
  return BestSupported();
}

Status ForceTarget(Target target) {
  if (!TargetSupported(target)) {
    return Status::InvalidArgument(
        "kernel dispatch target '" + std::string(TargetName(target)) +
        "' is not compiled in or not supported by this host");
  }
  g_forced.store(static_cast<int>(target), std::memory_order_release);
  PublishKernelDispatch();
  return Status::OK();
}

void ClearForcedTarget() {
  g_forced.store(kUnset, std::memory_order_release);
  PublishKernelDispatch();
}

void ReloadEnvForTest() {
  g_env.store(kUnset, std::memory_order_release);
  PublishKernelDispatch();
}

bool ConfKernelScalar(const ConfInput& in, const ConfOutput& out, size_t n) {
  int32_t any = 0;
  for (size_t j = 0; j < n; ++j) {
    if (in.active[j] == 0) {
      out.diff_v[j] = 0;
      out.diff_g[j] = 0;
      out.diff_r[j] = 0;
      out.conf[j] = 0.0;
      continue;
    }
    // Eq. 12 per dimension. Levels are small non-negative ints; the
    // subtraction cannot overflow.
    const int32_t dv = in.pol_v[j] > in.pref_v[j] ? in.pol_v[j] - in.pref_v[j]
                                                  : 0;
    const int32_t dg = in.pol_g[j] > in.pref_g[j] ? in.pol_g[j] - in.pref_g[j]
                                                  : 0;
    const int32_t dr = in.pol_r[j] > in.pref_r[j] ? in.pol_r[j] - in.pref_r[j]
                                                  : 0;
    any |= dv | dg | dr;
    out.diff_v[j] = dv;
    out.diff_g[j] = dg;
    out.diff_r[j] = dr;
    // One Eq. 14 summand per dimension, multiplied in the exact order of
    // the pair-at-a-time reference (violation/conflict.cc):
    // diff × Σ^a × s_i^a × s_i^a[dim]. The SIMD paths replay the same
    // per-lane operation sequence, so results are bitwise identical.
    const double wv = static_cast<double>(dv) * in.attr_sens[j] *
                      in.sens_val[j] * in.sens_v[j];
    const double wg = static_cast<double>(dg) * in.attr_sens[j] *
                      in.sens_val[j] * in.sens_g[j];
    const double wr = static_cast<double>(dr) * in.attr_sens[j] *
                      in.sens_val[j] * in.sens_r[j];
    out.conf[j] = (wv + wg) + wr;
  }
  return any != 0;
}

void DiffKernelScalar(const int32_t* pref, const int32_t* policy,
                      int32_t* diff, size_t n) {
  for (size_t j = 0; j < n; ++j) {
    diff[j] = policy[j] > pref[j] ? policy[j] - pref[j] : 0;
  }
}

bool ConfKernel(const ConfInput& in, const ConfOutput& out, size_t n) {
  switch (SelectedTarget()) {
#if PPDB_KERNEL_HAVE_AVX2
    case Target::kAvx2:
      return ConfKernelAvx2(in, out, n);
#endif
#if PPDB_KERNEL_HAVE_NEON
    case Target::kNeon:
      return ConfKernelNeon(in, out, n);
#endif
    default:
      return ConfKernelScalar(in, out, n);
  }
}

void DiffKernel(const int32_t* pref, const int32_t* policy, int32_t* diff,
                size_t n) {
  switch (SelectedTarget()) {
#if PPDB_KERNEL_HAVE_AVX2
    case Target::kAvx2:
      DiffKernelAvx2(pref, policy, diff, n);
      return;
#endif
#if PPDB_KERNEL_HAVE_NEON
    case Target::kNeon:
      DiffKernelNeon(pref, policy, diff, n);
      return;
#endif
    default:
      DiffKernelScalar(pref, policy, diff, n);
  }
}

}  // namespace ppdb::violation::kernel

#include "violation/incremental.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <string>
#include <utility>

#include "common/macros.h"
#include "obs/metrics.h"
#include "privacy/policy_diff.h"
#include "violation/default_model.h"
#include "violation/kernel/severity_kernel.h"
#include "violation/utility.h"

namespace ppdb::violation {

using privacy::PolicyTuple;
using privacy::PrivacyTuple;
using privacy::ProviderPreferences;

namespace {

/// The delta path's registry instruments, registered as one batch when the
/// first view is created. The batch detector's families (metrics.cc) stay
/// separate: a drift check runs both, and telling the full scan apart from
/// the event that triggered it is the point.
struct ViewMetrics {
  /// Kernel cells recomputed by one applied event (0 for threshold moves,
  /// |HP| for membership changes, N·Δ for policy level moves).
  obs::Histogram* delta_cells;
  /// Wall time applying one event to the view (delta or rebuild path).
  obs::Histogram* delta_seconds;
  /// Applied events by path: path="delta" | "rebuild".
  obs::Counter* events_delta;
  obs::Counter* events_rebuild;
  /// Drift-oracle outcomes: result="clean" | "drift".
  obs::Counter* drift_clean;
  obs::Counter* drift_detected;

  static const ViewMetrics& Get() {
    static const ViewMetrics metrics = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Default();
      ViewMetrics m;
      m.delta_cells = r.GetHistogram(
          "ppdb_view_delta_cells",
          "Kernel cells recomputed by one event applied to the violation "
          "view (the Δ of the O(Δ) path).");
      m.delta_seconds = r.GetHistogram(
          "ppdb_view_delta_seconds",
          "Wall time applying one event to the violation view, delta or "
          "rebuild path.");
      const char* kEventsHelp =
          "Events applied to the violation view, by path: delta = targeted "
          "cell recompute, rebuild = full view reconstruction.";
      m.events_delta = r.GetCounter("ppdb_view_delta_events_total",
                                    kEventsHelp, {{"path", "delta"}});
      m.events_rebuild = r.GetCounter("ppdb_view_delta_events_total",
                                      kEventsHelp, {{"path", "rebuild"}});
      const char* kDriftHelp =
          "Drift-oracle runs (full re-analysis compared bitwise against "
          "the maintained view), by result.";
      m.drift_clean = r.GetCounter("ppdb_view_delta_drift_checks_total",
                                   kDriftHelp, {{"result", "clean"}});
      m.drift_detected = r.GetCounter("ppdb_view_delta_drift_checks_total",
                                      kDriftHelp, {{"result", "drift"}});
      return m;
    }();
    return metrics;
  }
};

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Same (attribute, purpose) cell sequence — the precondition for
/// positional deltas between two policies.
bool SameShape(const std::vector<PolicyTuple>& a,
               const std::vector<PolicyTuple>& b) {
  if (a.size() != b.size()) return false;
  for (size_t j = 0; j < a.size(); ++j) {
    if (a[j].attribute != b[j].attribute ||
        a[j].tuple.purpose != b[j].tuple.purpose) {
      return false;
    }
  }
  return true;
}

/// Cell positions whose levels differ between two same-shape policies.
std::vector<int32_t> ChangedLevelCells(const std::vector<PolicyTuple>& a,
                                       const std::vector<PolicyTuple>& b) {
  std::vector<int32_t> cells;
  for (size_t j = 0; j < a.size(); ++j) {
    if (a[j].tuple.visibility != b[j].tuple.visibility ||
        a[j].tuple.granularity != b[j].tuple.granularity ||
        a[j].tuple.retention != b[j].tuple.retention) {
      cells.push_back(static_cast<int32_t>(j));
    }
  }
  return cells;
}

/// The drift oracle compares representations, not values: -0.0 vs +0.0 or
/// differently-rounded sums are drift even where == would pass.
bool BitwiseEqual(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

}  // namespace

ViolationView::ViolationView(const privacy::PrivacyConfig* config,
                             ViolationDetector::Options options)
    : config_(config), options_(options) {}

Result<ViolationView> ViolationView::Create(const privacy::PrivacyConfig* config,
                                            ViolationDetector::Options options) {
  if (config == nullptr) {
    return Status::InvalidArgument("ViolationView: config must not be null");
  }
  if (options.policy_override != nullptr) {
    return Status::InvalidArgument(
        "ViolationView materializes the config's own policy; evaluate "
        "hypothetical policies through AssessPolicyChange");
  }
  // Register the metric families before the first event can observe into
  // them (mirrors ViolationMetrics::Get at detector startup).
  ViewMetrics::Get();
  ViolationView view(config, options);
  PPDB_RETURN_NOT_OK(view.RebuildAll());
  // Construction is not an applied event: report a quiet initial posture.
  view.delta_events_ = 0;
  view.rebuild_events_ = 0;
  view.last_delta_cells_ = 0;
  return view;
}

int64_t ViolationView::PositionOf(ProviderId provider) const {
  auto it = std::lower_bound(providers_.begin(), providers_.end(), provider);
  if (it == providers_.end() || *it != provider) return -1;
  return it - providers_.begin();
}

bool ViolationView::Contains(ProviderId provider) const {
  return PositionOf(provider) >= 0;
}

bool ViolationView::ShouldExist(ProviderId provider) const {
  if (config_->preferences.Contains(provider)) return true;
  return options_.data_table != nullptr &&
         options_.data_table->ContainsProvider(provider);
}

std::vector<int32_t> ViolationView::CellsForPreference(
    std::string_view attribute, privacy::PurposeId purpose) const {
  std::vector<int32_t> cells;
  for (size_t j = 0; j < prepared_.tuples.size(); ++j) {
    const internal::PreparedPolicyTuple& t = prepared_.tuples[j];
    if (t.policy->attribute != attribute) continue;
    // The cell's Def. 1 selection sees a preference stated for its own
    // purpose, or (hierarchy extension) for any ancestor purpose.
    if (t.policy->tuple.purpose == purpose ||
        std::find(t.ancestors.begin(), t.ancestors.end(), purpose) !=
            t.ancestors.end()) {
      cells.push_back(static_cast<int32_t>(j));
    }
  }
  return cells;
}

std::vector<int32_t> ViolationView::CellsForAttribute(
    std::string_view attribute) const {
  std::vector<int32_t> cells;
  for (size_t j = 0; j < prepared_.tuples.size(); ++j) {
    if (prepared_.tuples[j].policy->attribute == attribute) {
      cells.push_back(static_cast<int32_t>(j));
    }
  }
  return cells;
}

void ViolationView::ComputeCells(ProviderId provider,
                                 const internal::PreparedPolicy& policy,
                                 const privacy::PolicyColumns& columns,
                                 const std::vector<int32_t>& cells,
                                 internal::AnalysisScratch& scratch,
                                 GatherScratch& gather, double* conf_out,
                                 uint8_t* exceed_out) const {
  const size_t k = cells.size();
  if (k == 0) return;
  kernel::RowScratch& row = scratch.row;
  row.Resize(k);

  const ProviderPreferences* prefs = nullptr;
  Result<const ProviderPreferences*> found =
      config_->preferences.Find(provider);
  if (found.ok()) prefs = found.value();
  PrivacyTuple stated_storage;
  auto find_pref = [&](int32_t /*attr_id*/, std::string_view attribute,
                       privacy::PurposeId purpose) -> const PrivacyTuple* {
    if (prefs == nullptr) return nullptr;
    Result<PrivacyTuple> stated = prefs->Find(attribute, purpose);
    if (!stated.ok()) return nullptr;
    stated_storage = std::move(stated).value();
    return &stated_storage;
  };

  // Pass 1, gathered: the same per-cell selection a full row build runs,
  // for the affected lanes only.
  for (size_t i = 0; i < k; ++i) {
    const size_t j = static_cast<size_t>(cells[i]);
    const internal::CellInputs cell =
        internal::BuildCell(options_, policy, provider, find_pref, j);
    row.pref_v[i] = cell.pref_v;
    row.pref_g[i] = cell.pref_g;
    row.pref_r[i] = cell.pref_r;
    row.active[i] = cell.active;
    row.implicit[i] = cell.implicit;
  }

  // σ side: the resolution rule is per-tuple, so explicit-sensitivity
  // providers pay the full O(|HP|) map fill (lookups only, no kernel work)
  // and the lanes are gathered from it; everyone else gathers ones.
  const privacy::SensitivityColumns* sens = internal::SelectSensitivity(
      *config_, policy, provider, unit_sens_, scratch.provider_sens);

  gather.pol_v.resize(k);
  gather.pol_g.resize(k);
  gather.pol_r.resize(k);
  gather.attr_sens.resize(k);
  gather.sens_val.resize(k);
  gather.sens_v.resize(k);
  gather.sens_g.resize(k);
  gather.sens_r.resize(k);
  for (size_t i = 0; i < k; ++i) {
    const size_t j = static_cast<size_t>(cells[i]);
    gather.pol_v[i] = columns.levels.visibility[j];
    gather.pol_g[i] = columns.levels.granularity[j];
    gather.pol_r[i] = columns.levels.retention[j];
    gather.attr_sens[i] = columns.attr_sens[j];
    gather.sens_val[i] = sens->value[j];
    gather.sens_v[i] = sens->visibility[j];
    gather.sens_g[i] = sens->granularity[j];
    gather.sens_r[i] = sens->retention[j];
  }

  // Pass 2 over the gathered lanes. The kernel is lane-pure (per-lane IEEE
  // order, no cross-lane operations), so a k-lane batch produces bitwise
  // the values the same lanes get inside a full |HP|-lane batch.
  kernel::ConfInput in;
  in.pref_v = row.pref_v.data();
  in.pref_g = row.pref_g.data();
  in.pref_r = row.pref_r.data();
  in.pol_v = gather.pol_v.data();
  in.pol_g = gather.pol_g.data();
  in.pol_r = gather.pol_r.data();
  in.attr_sens = gather.attr_sens.data();
  in.sens_val = gather.sens_val.data();
  in.sens_v = gather.sens_v.data();
  in.sens_g = gather.sens_g.data();
  in.sens_r = gather.sens_r.data();
  in.active = row.active.data();
  kernel::ConfKernel(in, row.Output(), k);

  for (size_t i = 0; i < k; ++i) {
    conf_out[i] = row.conf[i];
    exceed_out[i] =
        ((row.diff_v[i] | row.diff_g[i] | row.diff_r[i]) != 0) ? 1 : 0;
  }
}

void ViolationView::ComputeFullRow(int64_t pos) {
  const ProviderId provider = providers_[pos];
  const size_t n = prepared_.tuples.size();
  kernel::RowScratch& row = scratch_.row;
  row.Resize(n);

  const ProviderPreferences* prefs = nullptr;
  Result<const ProviderPreferences*> found =
      config_->preferences.Find(provider);
  if (found.ok()) prefs = found.value();
  PrivacyTuple stated_storage;
  auto find_pref = [&](int32_t /*attr_id*/, std::string_view attribute,
                       privacy::PurposeId purpose) -> const PrivacyTuple* {
    if (prefs == nullptr) return nullptr;
    Result<PrivacyTuple> stated = prefs->Find(attribute, purpose);
    if (!stated.ok()) return nullptr;
    stated_storage = std::move(stated).value();
    return &stated_storage;
  };

  for (size_t j = 0; j < n; ++j) {
    const internal::CellInputs cell =
        internal::BuildCell(options_, prepared_, provider, find_pref, j);
    row.pref_v[j] = cell.pref_v;
    row.pref_g[j] = cell.pref_g;
    row.pref_r[j] = cell.pref_r;
    row.active[j] = cell.active;
    row.implicit[j] = cell.implicit;
  }
  const privacy::SensitivityColumns* sens = internal::SelectSensitivity(
      *config_, prepared_, provider, unit_sens_, scratch_.provider_sens);
  const kernel::ConfInput in = internal::MakeConfInput(row, columns_, *sens);
  kernel::ConfKernel(in, row.Output(), n);

  Row& stored = rows_[pos];
  stored.conf.assign(row.conf.begin(), row.conf.end());
  stored.exceed.resize(n);
  for (size_t j = 0; j < n; ++j) {
    stored.exceed[j] =
        ((row.diff_v[j] | row.diff_g[j] | row.diff_r[j]) != 0) ? 1 : 0;
  }
  RefreshRowSummaries(pos);
}

void ViolationView::RecomputeCellsLocal(int64_t pos,
                                        const std::vector<int32_t>& cells) {
  if (cells.empty()) return;
  gather_.out_conf.resize(cells.size());
  gather_.out_exceed.resize(cells.size());
  ComputeCells(providers_[pos], prepared_, columns_, cells, scratch_, gather_,
               gather_.out_conf.data(), gather_.out_exceed.data());
  Row& stored = rows_[pos];
  for (size_t i = 0; i < cells.size(); ++i) {
    stored.conf[static_cast<size_t>(cells[i])] = gather_.out_conf[i];
    stored.exceed[static_cast<size_t>(cells[i])] = gather_.out_exceed[i];
  }
  RefreshRowSummaries(pos);
}

void ViolationView::RefreshRowSummaries(int64_t pos) {
  const Row& row = rows_[pos];
  // Eq. 15: flat sum in tuple order over the full row — re-running the sum
  // (rather than adding a float delta) is what keeps the maintained value
  // bitwise-identical to a from-scratch FinishProvider.
  double severity = 0.0;
  // ppdb-lint: allow(fp-accumulate) --
  // tuple-order flat sum IS the canonical Eq. 15 association shape.
  for (double c : row.conf) severity += c;
  int32_t exceed = 0;
  for (uint8_t e : row.exceed) exceed += e;

  const bool was_violated = exceed_count_[pos] > 0;
  const bool was_defaulted = defaulted_[pos] != 0;
  const bool now_violated = exceed > 0;
  const bool now_defaulted =
      severity > config_->ThresholdFor(providers_[pos]);

  severity_[pos] = severity;
  exceed_count_[pos] = exceed;
  defaulted_[pos] = now_defaulted ? 1 : 0;
  num_violated_ +=
      (now_violated ? 1 : 0) - (was_violated ? 1 : 0);
  num_defaulted_ +=
      (now_defaulted ? 1 : 0) - (was_defaulted ? 1 : 0);
}

void ViolationView::PatchedRowSummary(int64_t pos,
                                      const std::vector<int32_t>& cells,
                                      const double* conf,
                                      const uint8_t* exceed,
                                      double* severity_out,
                                      bool* violated_out) const {
  const Row& stored = rows_[pos];
  double severity = 0.0;
  int32_t exceed_count = 0;
  size_t c = 0;
  for (size_t j = 0; j < stored.conf.size(); ++j) {
    const bool patched =
        c < cells.size() && static_cast<size_t>(cells[c]) == j;
    // ppdb-lint: allow(fp-accumulate) --
    // cell-index order, identical to the stored row's canonical order.
    severity += patched ? conf[c] : stored.conf[j];
    exceed_count += patched ? exceed[c] : stored.exceed[j];
    if (patched) ++c;
  }
  *severity_out = severity;
  *violated_out = exceed_count > 0;
}

void ViolationView::RefreshBlockAndTotal(int64_t pos) {
  const int64_t block = pos / internal::kSeverityReduceBlock;
  const int64_t begin = block * internal::kSeverityReduceBlock;
  const int64_t end =
      std::min<int64_t>(static_cast<int64_t>(providers_.size()),
                        begin + internal::kSeverityReduceBlock);
  double block_sum = 0.0;
  // ppdb-lint: allow(fp-accumulate) --
  // provider-order block partial, the BlockedSeveritySum association shape.
  for (int64_t i = begin; i < end; ++i) block_sum += severity_[i];
  block_severity_[static_cast<size_t>(block)] = block_sum;
  // Re-run the root sum over the block partials in block order — the
  // association shape of BlockedSeveritySum, so the total matches a full
  // scan bitwise.
  double total = 0.0;
  // ppdb-lint: allow(fp-accumulate) --
  // block-order root sum, matches a full scan bitwise.
  for (double s : block_severity_) total += s;
  total_severity_ = total;
}

void ViolationView::RebuildTree() {
  const int64_t n = static_cast<int64_t>(providers_.size());
  const int64_t blocks =
      (n + internal::kSeverityReduceBlock - 1) / internal::kSeverityReduceBlock;
  block_severity_.assign(static_cast<size_t>(blocks), 0.0);
  for (int64_t b = 0; b < blocks; ++b) {
    const int64_t begin = b * internal::kSeverityReduceBlock;
    const int64_t end =
        std::min<int64_t>(n, begin + internal::kSeverityReduceBlock);
    double block_sum = 0.0;
    // ppdb-lint: allow(fp-accumulate) --
    // provider-order block partial, the BlockedSeveritySum association shape.
    for (int64_t i = begin; i < end; ++i) block_sum += severity_[i];
    block_severity_[static_cast<size_t>(b)] = block_sum;
  }
  double total = 0.0;
  // ppdb-lint: allow(fp-accumulate) --
  // block-order root sum, matches a full scan bitwise.
  for (double s : block_severity_) total += s;
  total_severity_ = total;
}

int64_t ViolationView::ResyncProvider(ProviderId provider) {
  const int64_t pos = PositionOf(provider);
  const bool should = ShouldExist(provider);
  const int64_t hp = static_cast<int64_t>(prepared_.tuples.size());

  if (should && pos >= 0) {
    ComputeFullRow(pos);
    RefreshBlockAndTotal(pos);
    return hp;
  }
  if (should) {
    const auto it =
        std::lower_bound(providers_.begin(), providers_.end(), provider);
    const int64_t idx = it - providers_.begin();
    providers_.insert(it, provider);
    rows_.insert(rows_.begin() + idx,
                 Row{std::vector<double>(static_cast<size_t>(hp), 0.0),
                     std::vector<uint8_t>(static_cast<size_t>(hp), 0)});
    severity_.insert(severity_.begin() + idx, 0.0);
    exceed_count_.insert(exceed_count_.begin() + idx, 0);
    defaulted_.insert(defaulted_.begin() + idx, 0);
    ComputeFullRow(idx);
    // Positions after idx shifted: block membership changed for every
    // later provider, so the whole tree is restated.
    RebuildTree();
    return hp;
  }
  if (pos >= 0) {
    num_violated_ -= exceed_count_[pos] > 0 ? 1 : 0;
    num_defaulted_ -= defaulted_[pos] != 0 ? 1 : 0;
    providers_.erase(providers_.begin() + pos);
    rows_.erase(rows_.begin() + pos);
    severity_.erase(severity_.begin() + pos);
    exceed_count_.erase(exceed_count_.begin() + pos);
    defaulted_.erase(defaulted_.begin() + pos);
    RebuildTree();
  }
  return 0;
}

void ViolationView::CountDelta(int64_t cells, double seconds) {
  const ViewMetrics& m = ViewMetrics::Get();
  last_delta_cells_ = cells;
  ++delta_events_;
  m.events_delta->Add();
  m.delta_cells->Observe(static_cast<double>(cells));
  m.delta_seconds->Observe(seconds);
}

void ViolationView::CountRebuild(int64_t cells, double seconds) {
  const ViewMetrics& m = ViewMetrics::Get();
  last_delta_cells_ = cells;
  ++rebuild_events_;
  m.events_rebuild->Add();
  m.delta_cells->Observe(static_cast<double>(cells));
  m.delta_seconds->Observe(seconds);
}

Status ViolationView::OnProviderAdded(ProviderId provider) {
  const auto started = std::chrono::steady_clock::now();
  const int64_t cells = ResyncProvider(provider);
  CountDelta(cells, SecondsSince(started));
  return Status::OK();
}

Status ViolationView::OnProviderRemoved(ProviderId provider) {
  const auto started = std::chrono::steady_clock::now();
  const int64_t cells = ResyncProvider(provider);
  CountDelta(cells, SecondsSince(started));
  return Status::OK();
}

Status ViolationView::OnPreferenceChanged(ProviderId provider,
                                          std::string_view attribute,
                                          privacy::PurposeId purpose) {
  const auto started = std::chrono::steady_clock::now();
  const int64_t pos = PositionOf(provider);
  if (pos < 0 || !ShouldExist(provider)) {
    // The event introduced or retired the provider (first preference, or a
    // store that drops emptied entries): membership first.
    const int64_t cells = ResyncProvider(provider);
    CountDelta(cells, SecondsSince(started));
    return Status::OK();
  }
  const std::vector<int32_t> cells = CellsForPreference(attribute, purpose);
  RecomputeCellsLocal(pos, cells);
  RefreshBlockAndTotal(pos);
  CountDelta(static_cast<int64_t>(cells.size()), SecondsSince(started));
  return Status::OK();
}

Status ViolationView::OnThresholdChanged(ProviderId provider) {
  const auto started = std::chrono::steady_clock::now();
  const int64_t pos = PositionOf(provider);
  if (pos >= 0) {
    const bool was = defaulted_[pos] != 0;
    const bool now =
        severity_[pos] > config_->ThresholdFor(providers_[pos]);
    defaulted_[pos] = now ? 1 : 0;
    num_defaulted_ += (now ? 1 : 0) - (was ? 1 : 0);
  }
  CountDelta(0, SecondsSince(started));
  return Status::OK();
}

Status ViolationView::OnDatumChanged(ProviderId provider,
                                     std::string_view attribute) {
  const auto started = std::chrono::steady_clock::now();
  const int64_t pos = PositionOf(provider);
  const bool should = ShouldExist(provider);
  if ((pos >= 0) != should) {
    const int64_t cells = ResyncProvider(provider);
    CountDelta(cells, SecondsSince(started));
    return Status::OK();
  }
  if (pos < 0) {
    CountDelta(0, SecondsSince(started));
    return Status::OK();
  }
  const std::vector<int32_t> cells = CellsForAttribute(attribute);
  RecomputeCellsLocal(pos, cells);
  RefreshBlockAndTotal(pos);
  CountDelta(static_cast<int64_t>(cells.size()), SecondsSince(started));
  return Status::OK();
}

Status ViolationView::OnPolicyChanged() {
  const auto started = std::chrono::steady_clock::now();
  const std::vector<PolicyTuple>& now_tuples = config_->policy.tuples();
  if (!SameShape(cached_policy_, now_tuples)) {
    // Tuples added, removed or reordered: cell positions have no stable
    // meaning across the change.
    return RebuildAll();
  }
  const std::vector<int32_t> changed =
      ChangedLevelCells(cached_policy_, now_tuples);
  // The cached preparation holds pointers into the *previous* policy's
  // tuple storage, which the replacement just destroyed — restate it
  // unconditionally, even for a no-op swap.
  prepared_ =
      internal::PreparePolicy(config_->policy, options_.purpose_hierarchy);
  columns_ =
      privacy::PolicyColumns::Build(now_tuples, config_->sensitivities);
  unit_sens_.FillOnes(prepared_.tuples.size());
  cached_policy_ = now_tuples;
  if (changed.empty()) {
    CountDelta(0, SecondsSince(started));
    return Status::OK();
  }
  const int64_t n = num_providers();
  for (int64_t pos = 0; pos < n; ++pos) {
    RecomputeCellsLocal(pos, changed);
  }
  RebuildTree();
  CountDelta(n * static_cast<int64_t>(changed.size()), SecondsSince(started));
  return Status::OK();
}

Status ViolationView::RebuildAll() {
  const auto started = std::chrono::steady_clock::now();
  std::vector<ProviderId> providers = config_->preferences.ProviderIds();
  if (options_.data_table != nullptr) {
    for (ProviderId id : options_.data_table->ProviderIds()) {
      providers.push_back(id);
    }
  }
  std::sort(providers.begin(), providers.end());
  providers.erase(std::unique(providers.begin(), providers.end()),
                  providers.end());

  prepared_ =
      internal::PreparePolicy(config_->policy, options_.purpose_hierarchy);
  columns_ = privacy::PolicyColumns::Build(config_->policy.tuples(),
                                           config_->sensitivities);
  unit_sens_.FillOnes(prepared_.tuples.size());
  cached_policy_ = config_->policy.tuples();

  const size_t n = providers.size();
  const size_t hp = prepared_.tuples.size();
  providers_ = std::move(providers);
  rows_.assign(n, Row{std::vector<double>(hp, 0.0),
                      std::vector<uint8_t>(hp, 0)});
  severity_.assign(n, 0.0);
  exceed_count_.assign(n, 0);
  defaulted_.assign(n, 0);
  num_violated_ = 0;
  num_defaulted_ = 0;
  for (int64_t pos = 0; pos < static_cast<int64_t>(n); ++pos) {
    ComputeFullRow(pos);
  }
  RebuildTree();
  CountRebuild(static_cast<int64_t>(n * hp), SecondsSince(started));
  return Status::OK();
}

Result<double> ViolationView::SeverityFor(ProviderId provider) const {
  const int64_t pos = PositionOf(provider);
  if (pos < 0) {
    return Status::NotFound("ViolationView: provider " +
                            std::to_string(provider) +
                            " is not in the monitored population");
  }
  return severity_[pos];
}

Result<bool> ViolationView::IsViolated(ProviderId provider) const {
  const int64_t pos = PositionOf(provider);
  if (pos < 0) {
    return Status::NotFound("ViolationView: provider " +
                            std::to_string(provider) +
                            " is not in the monitored population");
  }
  return exceed_count_[pos] > 0;
}

Result<bool> ViolationView::IsDefaulted(ProviderId provider) const {
  const int64_t pos = PositionOf(provider);
  if (pos < 0) {
    return Status::NotFound("ViolationView: provider " +
                            std::to_string(provider) +
                            " is not in the monitored population");
  }
  return defaulted_[pos] != 0;
}

Result<ViolationView::ExpansionCheck> ViolationView::CheckExpansion(
    double utility_per_provider, double extra_utility) const {
  PPDB_ASSIGN_OR_RETURN(UtilityModel model,
                        UtilityModel::Create(utility_per_provider));
  ExpansionCheck out;
  out.n_current = num_providers();
  out.n_defaulted = num_defaulted_;
  out.n_future = out.n_current - out.n_defaulted;
  out.utility_per_provider = utility_per_provider;
  out.extra_utility = extra_utility;
  out.utility_current = model.CurrentUtility(out.n_current);
  out.utility_future = model.FutureUtility(out.n_future, extra_utility);
  out.justified =
      model.ExpansionJustified(out.n_current, out.n_future, extra_utility);
  Result<double> break_even =
      model.BreakEvenExtraUtility(out.n_current, out.n_future);
  if (break_even.ok()) {
    out.has_break_even = true;
    out.break_even_extra_utility = break_even.value();
  }
  return out;
}

Result<ProviderViolation> ViolationView::MaterializeProvider(
    ProviderId provider) const {
  const int64_t pos = PositionOf(provider);
  if (pos < 0) {
    return Status::NotFound("ViolationView: provider " +
                            std::to_string(provider) +
                            " is not in the monitored population");
  }
  // Local scratch: materialization runs under reader locks and must not
  // share buffers with concurrent callers.
  internal::AnalysisScratch scratch;
  const ProviderPreferences* prefs = nullptr;
  Result<const ProviderPreferences*> found =
      config_->preferences.Find(provider);
  if (found.ok()) prefs = found.value();
  PrivacyTuple stated_storage;
  auto find_pref = [&](int32_t /*attr_id*/, std::string_view attribute,
                       privacy::PurposeId purpose) -> const PrivacyTuple* {
    if (prefs == nullptr) return nullptr;
    Result<PrivacyTuple> stated = prefs->Find(attribute, purpose);
    if (!stated.ok()) return nullptr;
    stated_storage = std::move(stated).value();
    return &stated_storage;
  };
  return internal::AnalyzeOne(*config_, options_, prepared_, columns_,
                              unit_sens_, provider, find_pref, scratch);
}

ViolationReport ViolationView::Snapshot() const {
  ViolationReport report;
  report.providers.reserve(providers_.size());
  internal::AnalysisScratch scratch;
  for (size_t pos = 0; pos < providers_.size(); ++pos) {
    if (exceed_count_[pos] > 0) {
      // Incidents are not materialized; one row recompute reconstructs
      // them (and, by the bitwise contract, the same severity).
      const ProviderId provider = providers_[pos];
      const ProviderPreferences* prefs = nullptr;
      Result<const ProviderPreferences*> found =
          config_->preferences.Find(provider);
      if (found.ok()) prefs = found.value();
      PrivacyTuple stated_storage;
      auto find_pref = [&](int32_t /*attr_id*/, std::string_view attribute,
                           privacy::PurposeId purpose) -> const PrivacyTuple* {
        if (prefs == nullptr) return nullptr;
        Result<PrivacyTuple> stated = prefs->Find(attribute, purpose);
        if (!stated.ok()) return nullptr;
        stated_storage = std::move(stated).value();
        return &stated_storage;
      };
      report.providers.push_back(internal::AnalyzeOne(
          *config_, options_, prepared_, columns_, unit_sens_, provider,
          find_pref, scratch));
    } else {
      ProviderViolation pv;
      pv.provider = providers_[pos];
      pv.total_severity = severity_[pos];
      report.providers.push_back(std::move(pv));
    }
  }
  report.total_severity = total_severity_;
  report.num_violated = num_violated_;
  return report;
}

Result<ChangeImpact> ViolationView::AssessPolicyChange(
    const privacy::HousePolicy& new_policy) const {
  ChangeImpact impact;
  impact.diff = privacy::DiffPolicies(config_->policy, new_policy);

  const int64_t n = num_providers();
  impact.p_violation_before = ProbabilityOfViolation();
  impact.p_default_before = ProbabilityOfDefault();
  impact.total_violations_before = total_severity_;

  std::vector<double> severity_after(static_cast<size_t>(n), 0.0);
  std::vector<uint8_t> violated_after(static_cast<size_t>(n), 0);

  if (SameShape(config_->policy.tuples(), new_policy.tuples())) {
    const std::vector<int32_t> changed =
        ChangedLevelCells(config_->policy.tuples(), new_policy.tuples());
    if (changed.empty()) {
      for (int64_t pos = 0; pos < n; ++pos) {
        severity_after[pos] = severity_[pos];
        violated_after[pos] = exceed_count_[pos] > 0 ? 1 : 0;
      }
    } else {
      const internal::PreparedPolicy prepared =
          internal::PreparePolicy(new_policy, options_.purpose_hierarchy);
      const privacy::PolicyColumns columns = privacy::PolicyColumns::Build(
          new_policy.tuples(), config_->sensitivities);
      internal::AnalysisScratch scratch;
      GatherScratch gather;
      std::vector<double> conf(changed.size());
      std::vector<uint8_t> exceed(changed.size());
      for (int64_t pos = 0; pos < n; ++pos) {
        ComputeCells(providers_[pos], prepared, columns, changed, scratch,
                     gather, conf.data(), exceed.data());
        bool violated = false;
        PatchedRowSummary(pos, changed, conf.data(), exceed.data(),
                          &severity_after[pos], &violated);
        violated_after[pos] = violated ? 1 : 0;
      }
    }
  } else {
    ViolationDetector::Options after_options = options_;
    after_options.policy_override = &new_policy;
    ViolationDetector after_detector(config_, after_options);
    PPDB_ASSIGN_OR_RETURN(ViolationReport after, after_detector.Analyze());
    PPDB_CHECK(static_cast<int64_t>(after.providers.size()) == n);
    for (int64_t pos = 0; pos < n; ++pos) {
      const ProviderViolation& pv = after.providers[pos];
      PPDB_CHECK(pv.provider == providers_[pos]);
      severity_after[pos] = pv.total_severity;
      violated_after[pos] = pv.violated ? 1 : 0;
    }
  }

  int64_t num_violated_after = 0;
  int64_t num_defaulted_after = 0;
  for (int64_t pos = 0; pos < n; ++pos) {
    const bool violated_b = exceed_count_[pos] > 0;
    const bool violated_a = violated_after[pos] != 0;
    const bool defaulted_b = defaulted_[pos] != 0;
    const bool defaulted_a =
        severity_after[pos] > config_->ThresholdFor(providers_[pos]);
    if (violated_a) ++num_violated_after;
    if (defaulted_a) ++num_defaulted_after;
    if (!violated_b && violated_a) {
      impact.newly_violated.push_back(providers_[pos]);
    } else if (violated_b && !violated_a) {
      impact.no_longer_violated.push_back(providers_[pos]);
    }
    if (!defaulted_b && defaulted_a) {
      impact.newly_defaulted.push_back(providers_[pos]);
    } else if (defaulted_b && !defaulted_a) {
      impact.recovered.push_back(providers_[pos]);
    }
  }
  impact.p_violation_after =
      n == 0 ? 0.0
             : static_cast<double>(num_violated_after) /
                   static_cast<double>(n);
  impact.p_default_after =
      n == 0 ? 0.0
             : static_cast<double>(num_defaulted_after) /
                   static_cast<double>(n);
  impact.total_violations_after = internal::BlockedSeveritySum(
      n, [&](int64_t i) { return severity_after[static_cast<size_t>(i)]; });
  return impact;
}

Result<ViolationView::ProviderImpact>
ViolationView::AssessPolicyChangeForProvider(
    ProviderId provider, const privacy::HousePolicy& new_policy) const {
  const int64_t pos = PositionOf(provider);
  if (pos < 0) {
    return Status::NotFound("ViolationView: provider " +
                            std::to_string(provider) +
                            " is not in the monitored population");
  }
  ProviderImpact out;
  out.provider = provider;
  out.diff = privacy::DiffPolicies(config_->policy, new_policy);
  out.severity_before = severity_[pos];
  out.violated_before = exceed_count_[pos] > 0;
  out.defaulted_before = defaulted_[pos] != 0;

  if (SameShape(config_->policy.tuples(), new_policy.tuples())) {
    const std::vector<int32_t> changed =
        ChangedLevelCells(config_->policy.tuples(), new_policy.tuples());
    if (changed.empty()) {
      out.severity_after = out.severity_before;
      out.violated_after = out.violated_before;
    } else {
      const internal::PreparedPolicy prepared =
          internal::PreparePolicy(new_policy, options_.purpose_hierarchy);
      const privacy::PolicyColumns columns = privacy::PolicyColumns::Build(
          new_policy.tuples(), config_->sensitivities);
      internal::AnalysisScratch scratch;
      GatherScratch gather;
      std::vector<double> conf(changed.size());
      std::vector<uint8_t> exceed(changed.size());
      ComputeCells(provider, prepared, columns, changed, scratch, gather,
                   conf.data(), exceed.data());
      PatchedRowSummary(pos, changed, conf.data(), exceed.data(),
                        &out.severity_after, &out.violated_after);
      out.cells_recomputed = static_cast<int64_t>(changed.size());
    }
  } else {
    // Shape change: positional deltas are meaningless; one single-provider
    // analysis (still independent of house size).
    ViolationDetector::Options after_options = options_;
    after_options.policy_override = &new_policy;
    ViolationDetector after_detector(config_, after_options);
    PPDB_ASSIGN_OR_RETURN(ProviderViolation pv,
                          after_detector.AnalyzeProvider(provider));
    out.severity_after = pv.total_severity;
    out.violated_after = pv.violated;
    out.cells_recomputed =
        static_cast<int64_t>(new_policy.tuples().size());
  }
  out.defaulted_after =
      out.severity_after > config_->ThresholdFor(provider);
  return out;
}

Result<ViolationView::DriftReport> ViolationView::CheckDrift() {
  ViolationDetector detector(config_, options_);
  PPDB_ASSIGN_OR_RETURN(ViolationReport full, detector.Analyze());
  const DefaultReport defaults = ComputeDefaults(full, *config_);

  DriftReport out;
  out.providers_checked = static_cast<int64_t>(full.providers.size());
  auto note = [&](const std::string& line) {
    if (out.detail.size() < 512) {
      out.detail += line;
      out.detail += '\n';
    }
  };

  if (static_cast<int64_t>(full.providers.size()) != num_providers()) {
    out.clean = false;
    note("population: view holds " + std::to_string(num_providers()) +
         " providers, full analysis " +
         std::to_string(full.providers.size()));
  } else {
    for (size_t i = 0; i < full.providers.size(); ++i) {
      const ProviderViolation& pv = full.providers[i];
      bool mismatch = false;
      if (pv.provider != providers_[i]) {
        mismatch = true;
      } else {
        if (!BitwiseEqual(pv.total_severity, severity_[i])) mismatch = true;
        if (pv.violated != (exceed_count_[i] > 0)) mismatch = true;
        if (defaults.providers[i].defaulted != (defaulted_[i] != 0)) {
          mismatch = true;
        }
      }
      if (mismatch) {
        out.clean = false;
        ++out.mismatched_providers;
        note("provider " + std::to_string(pv.provider) + ": full severity " +
             std::to_string(pv.total_severity) + ", view " +
             std::to_string(i < severity_.size() ? severity_[i] : 0.0));
      }
    }
    if (!BitwiseEqual(full.total_severity, total_severity_)) {
      out.clean = false;
      note("total severity: full " + std::to_string(full.total_severity) +
           ", view " + std::to_string(total_severity_));
    }
    if (full.num_violated != num_violated_) {
      out.clean = false;
      note("num_violated: full " + std::to_string(full.num_violated) +
           ", view " + std::to_string(num_violated_));
    }
    if (defaults.num_defaulted != num_defaulted_) {
      out.clean = false;
      note("num_defaulted: full " + std::to_string(defaults.num_defaulted) +
           ", view " + std::to_string(num_defaulted_));
    }
  }

  const ViewMetrics& m = ViewMetrics::Get();
  if (out.clean) {
    ++drift_checks_clean_;
    m.drift_clean->Add();
  } else {
    ++drift_checks_failed_;
    m.drift_detected->Add();
  }
  return out;
}

}  // namespace ppdb::violation

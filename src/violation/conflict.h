#ifndef PPDB_VIOLATION_CONFLICT_H_
#define PPDB_VIOLATION_CONFLICT_H_

#include <array>
#include <string>

#include "privacy/privacy_tuple.h"
#include "privacy/sensitivity.h"

namespace ppdb::violation {

/// diff : N × N → Z (Eq. 12): the amount by which a policy level `policy`
/// exceeds a preference level `pref`; zero when it does not.
///
///   diff(p, P) = P − p   if P > p
///                0       otherwise
constexpr int LevelDiff(int pref, int policy) {
  return policy > pref ? policy - pref : 0;
}

/// comp (Eq. 13): a preference tuple and a policy tuple are comparable iff
/// they are associated with the same attribute and share the same purpose.
bool Comparable(const privacy::PreferenceTuple& pref,
                const privacy::PolicyTuple& policy);

/// The contribution of one ordered dimension to a conflict: the raw level
/// difference and its sensitivity-weighted severity
/// diff(p[dim], p'[dim]) × Σ^a × s_i^a × s_i^a[dim] (one summand of Eq. 14).
struct DimensionConflict {
  privacy::Dimension dimension = privacy::Dimension::kVisibility;
  int preference_level = 0;
  int policy_level = 0;
  int diff = 0;
  double weighted = 0.0;
};

/// The full decomposition of conf(pref, Pol) (Eq. 14) for one
/// (preference tuple, policy tuple) pair.
struct ConflictBreakdown {
  bool comparable = false;
  /// Σ over dims of `per_dimension[d].weighted`; this is conf(pref, Pol).
  double total = 0.0;
  std::array<DimensionConflict, 3> per_dimension;  // V, G, R in that order.

  /// True iff some dimension has diff > 0 (the Def. 1 existence condition
  /// restricted to this pair). Note a violation can exist while `total` is 0
  /// when sensitivities are 0.
  bool HasExceedance() const {
    for (const DimensionConflict& dc : per_dimension) {
      if (dc.diff > 0) return true;
    }
    return false;
  }
};

/// conf(pref, Pol) (Eq. 14): the sensitivity-weighted privacy conflict
/// between a preference tuple and a policy tuple, decomposed per dimension.
/// Sensitivities are looked up in `sensitivities` for the policy tuple's
/// purpose. Non-comparable pairs yield an all-zero breakdown.
ConflictBreakdown Conflict(const privacy::PreferenceTuple& pref,
                           const privacy::PolicyTuple& policy,
                           const privacy::SensitivityModel& sensitivities);

}  // namespace ppdb::violation

#endif  // PPDB_VIOLATION_CONFLICT_H_

#ifndef PPDB_VIOLATION_REPORT_IO_H_
#define PPDB_VIOLATION_REPORT_IO_H_

#include <string>

#include "common/result.h"
#include "privacy/config.h"
#include "violation/default_model.h"
#include "violation/report.h"

namespace ppdb::violation {

/// Serializes the per-provider summary of a violation report as CSV:
/// provider_id, violated, total_severity, num_incidents,
/// num_attributes_violated, max_incident_severity.
std::string ViolationReportToCsv(const ViolationReport& report);

/// Serializes every incident as CSV: provider_id, attribute, purpose,
/// dimension, preference_level, policy_level, diff, weighted_severity,
/// implicit_preference. Purpose ids resolve to names via `purposes`.
std::string IncidentsToCsv(const ViolationReport& report,
                           const privacy::PurposeRegistry& purposes);

/// Serializes a default report as CSV: provider_id, violation, threshold,
/// defaulted.
std::string DefaultReportToCsv(const DefaultReport& report);

/// Renders the transparency statement for one provider: a plain-language
/// account of every way the house's stated policy exceeds their
/// preferences, with level names resolved against the scales — the §2
/// goal of making "the privacy practices of the house transparent enough
/// that data providers can identify the areas where alignment has not
/// been achieved". Errors with kNotFound when the provider is not in the
/// report.
Result<std::string> TransparencyStatement(const ViolationReport& report,
                                          privacy::ProviderId provider,
                                          const privacy::PrivacyConfig& config);

}  // namespace ppdb::violation

#endif  // PPDB_VIOLATION_REPORT_IO_H_

#include "violation/utility.h"

namespace ppdb::violation {

Result<UtilityModel> UtilityModel::Create(double utility_per_provider) {
  if (!(utility_per_provider > 0.0)) {
    return Status::InvalidArgument(
        "utility per provider must be positive (Eq. 30 divides by U)");
  }
  return UtilityModel(utility_per_provider);
}

double UtilityModel::CurrentUtility(int64_t n_current) const {
  return static_cast<double>(n_current) * utility_per_provider_;
}

int64_t UtilityModel::FutureProviders(int64_t n_current,
                                      const DefaultReport& defaults) {
  return n_current - defaults.num_defaulted;
}

double UtilityModel::FutureUtility(int64_t n_future,
                                   double extra_utility) const {
  return static_cast<double>(n_future) *
         (utility_per_provider_ + extra_utility);
}

bool UtilityModel::ExpansionJustified(int64_t n_current, int64_t n_future,
                                      double extra_utility) const {
  return FutureUtility(n_future, extra_utility) > CurrentUtility(n_current);
}

Result<double> UtilityModel::BreakEvenExtraUtility(int64_t n_current,
                                                   int64_t n_future) const {
  if (n_future <= 0) {
    return Status::FailedPrecondition(
        "no finite extra utility compensates for losing every provider");
  }
  if (n_future > n_current) {
    return Status::InvalidArgument(
        "n_future cannot exceed n_current: defaults only remove providers");
  }
  // Eq. 31: T > U (N_current / N_future − 1).
  return utility_per_provider_ *
         (static_cast<double>(n_current) / static_cast<double>(n_future) -
          1.0);
}

}  // namespace ppdb::violation

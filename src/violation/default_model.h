#ifndef PPDB_VIOLATION_DEFAULT_MODEL_H_
#define PPDB_VIOLATION_DEFAULT_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "privacy/config.h"
#include "violation/report.h"

namespace ppdb::violation {

/// The default assessment for one provider (Def. 4):
/// default_i = 1 iff Violation_i > v_i.
struct ProviderDefault {
  ProviderId provider = 0;
  /// Violation_i from the violation report.
  double violation = 0.0;
  /// The provider's threshold v_i.
  double threshold = 0.0;
  bool defaulted = false;
};

/// Default assessment of the whole population (Def. 4–5).
struct DefaultReport {
  /// Per-provider results in ascending provider order.
  std::vector<ProviderDefault> providers;
  int64_t num_defaulted = 0;

  int64_t num_providers() const {
    return static_cast<int64_t>(providers.size());
  }

  /// P(Default) (Def. 5) as an exact census: Σ_i default_i / N.
  double ProbabilityOfDefault() const {
    return providers.empty() ? 0.0
                             : static_cast<double>(num_defaulted) /
                                   static_cast<double>(providers.size());
  }

  /// Ids of the providers who defaulted, ascending.
  std::vector<ProviderId> DefaultedProviders() const;

  /// Renders a one-line summary plus one line per defaulted provider.
  std::string ToString(int64_t max_providers = 20) const;
};

/// Applies Def. 4 to a violation report: each provider defaults iff their
/// Violation_i exceeds the threshold v_i recorded in `config` (providers
/// without an explicit threshold use `config.fallback_threshold`).
DefaultReport ComputeDefaults(const ViolationReport& report,
                              const privacy::PrivacyConfig& config);

}  // namespace ppdb::violation

#endif  // PPDB_VIOLATION_DEFAULT_MODEL_H_

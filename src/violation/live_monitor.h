#ifndef PPDB_VIOLATION_LIVE_MONITOR_H_
#define PPDB_VIOLATION_LIVE_MONITOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <utility>

#include "common/result.h"
#include "privacy/config.h"
#include "violation/default_model.h"
#include "violation/detector.h"
#include "violation/incremental.h"

namespace ppdb::violation {

/// Incrementally maintained violation state for a live population.
///
/// §2 wants providers to "continuously monitor the state of their
/// privacy"; recomputing Def. 1 over everyone on every event is O(N·|HP|).
/// The monitor owns the config and a `ViolationView` over it: every event
/// mutates the config, then notifies the view, which recomputes only the
/// affected cells (O(Δ) — a preference edit touches the cells that can see
/// it, a threshold move touches none, a same-shape policy change touches
/// the moved columns) while keeping per-provider results and the
/// P(W)/P(Default) aggregates bitwise-identical to a full re-analysis.
///
/// Thread safety: thread-compatible, externally synchronized. The monitor
/// holds no mutex of its own; `DatabaseService` serializes every mutation
/// (and the checkpoint hook the mutations may fire) under its exclusive
/// writer lock, and takes the shared lock for read-only queries. The hook
/// installed via `SetCheckpointHook` therefore always runs with the
/// caller's exclusive lock held — see `DatabaseService::GuardedSave`.
///
/// Usage:
///
///   LivePopulationMonitor monitor(std::move(config));
///   monitor.SetPreference(42, "weight", tuple);
///   double pw = monitor.ProbabilityOfViolation();   // O(1)
class LivePopulationMonitor {
 public:
  /// Takes ownership of the config and materializes the view for every
  /// provider in its preference store.
  static Result<LivePopulationMonitor> Create(
      privacy::PrivacyConfig config,
      ViolationDetector::Options detector_options = {});

  LivePopulationMonitor(LivePopulationMonitor&&) noexcept = default;
  LivePopulationMonitor& operator=(LivePopulationMonitor&&) noexcept =
      default;

  // --- events ---------------------------------------------------------

  /// Registers a provider (with no stated preferences yet). Errors when
  /// already present.
  Status AddProvider(ProviderId provider, double threshold);

  /// Removes a provider entirely (preferences, threshold, results).
  Status RemoveProvider(ProviderId provider);

  /// Upserts one preference tuple and delta-refreshes that provider.
  Status SetPreference(ProviderId provider, std::string_view attribute,
                       const privacy::PrivacyTuple& tuple);

  /// Removes one stated preference and delta-refreshes that provider.
  Status RemovePreference(ProviderId provider, std::string_view attribute,
                          privacy::PurposeId purpose);

  /// Updates a provider's default threshold v_i and refreshes the default
  /// bit (no cells are touched — severity cannot change).
  Status SetThreshold(ProviderId provider, double threshold);

  /// Replaces the house policy. A level-only change delta-refreshes the
  /// moved columns; a shape change rebuilds the view.
  Status SetPolicy(privacy::HousePolicy policy);

  // --- durability -------------------------------------------------------

  /// Periodic checkpoint hook. Every `every_events` successful mutating
  /// events (provider joins/departures, preference/threshold/policy edits)
  /// the monitor hands its current config to `save` — typically a closure
  /// over `storage::SaveDatabase`, whose atomic commit protocol makes the
  /// checkpoint crash-safe. A failed checkpoint is reported (see below)
  /// but never blocks or rolls back the event that triggered it; the next
  /// event retries it.
  struct CheckpointHook {
    /// Checkpoint cadence in events; 0 disables checkpointing.
    int64_t every_events = 0;
    std::function<Status(const privacy::PrivacyConfig&)> save;
  };

  /// Installs (or, with a default-constructed hook, removes) the hook.
  /// Resets the event counter.
  void SetCheckpointHook(CheckpointHook hook) {
    hook_ = std::move(hook);
    events_since_checkpoint_ = 0;
  }

  /// Runs the hook now regardless of cadence. `kFailedPrecondition` when
  /// no hook is installed; otherwise whatever the hook returns (also
  /// recorded as `last_checkpoint_status`).
  Status CheckpointNow();

  /// Successful mutating events since the last successful checkpoint.
  int64_t events_since_checkpoint() const {
    return events_since_checkpoint_;
  }
  /// Checkpoints that have completed successfully.
  int64_t checkpoints_taken() const { return checkpoints_taken_; }
  /// Outcome of the most recent checkpoint attempt (OK before the first).
  const Status& last_checkpoint_status() const {
    return last_checkpoint_status_;
  }

  // --- queries (O(1) unless noted) --------------------------------------

  int64_t num_providers() const { return view_->num_providers(); }
  int64_t num_violated() const { return view_->num_violated(); }
  int64_t num_defaulted() const { return view_->num_defaulted(); }

  /// Violations (Eq. 16) over the current population.
  double TotalViolations() const { return view_->TotalViolations(); }

  /// Census P(W); 0 when empty.
  double ProbabilityOfViolation() const {
    return view_->ProbabilityOfViolation();
  }

  /// Census P(Default); 0 when empty.
  double ProbabilityOfDefault() const {
    return view_->ProbabilityOfDefault();
  }

  /// Current per-provider result; kNotFound when absent. O(|HP|) — the
  /// view materializes incidents on demand.
  Result<ProviderViolation> ForProvider(ProviderId provider) const;

  /// True iff the provider currently exceeds their threshold.
  Result<bool> IsDefaulted(ProviderId provider) const;

  /// The monitored configuration (read-only; mutate via the event API so
  /// the view stays consistent).
  const privacy::PrivacyConfig& config() const { return *config_; }

  /// The maintained view, for queries answered from materialized state
  /// (expansion checks, what-if) and for the drift oracle. The non-const
  /// overload exists because `CheckDrift`/`RebuildAll` bump counters; it
  /// must only be used under the owner's writer lock.
  const ViolationView& view() const { return *view_; }
  ViolationView& view() { return *view_; }

  /// Materializes a full ViolationReport equivalent to running the batch
  /// detector now. O(N).
  ViolationReport Snapshot() const { return view_->Snapshot(); }

 private:
  LivePopulationMonitor(privacy::PrivacyConfig config,
                        ViolationDetector::Options detector_options);

  /// Counts one successful mutating event and fires the checkpoint hook at
  /// the configured cadence. Returns the checkpoint status (OK when no
  /// checkpoint was due).
  Status CountEvent();

  // Behind a unique_ptr so the view's config pointer survives moves of the
  // monitor (DatabaseService::Create moves the monitor into place).
  std::unique_ptr<privacy::PrivacyConfig> config_;
  ViolationDetector::Options detector_options_;
  // Engaged by Create before the monitor is handed out; optional only
  // because the view itself is built through a fallible factory.
  std::optional<ViolationView> view_;

  CheckpointHook hook_;
  int64_t events_since_checkpoint_ = 0;
  int64_t checkpoints_taken_ = 0;
  Status last_checkpoint_status_;
};

}  // namespace ppdb::violation

#endif  // PPDB_VIOLATION_LIVE_MONITOR_H_

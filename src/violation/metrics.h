#ifndef PPDB_VIOLATION_METRICS_H_
#define PPDB_VIOLATION_METRICS_H_

#include "obs/metrics.h"

namespace ppdb::violation {

/// The violation engine's registry instruments, registered as one batch on
/// first use (monitor construction at service startup, or the first full
/// scan). Shared between the detector (full scans) and the live monitor
/// (incremental updates) so both publish into the same gauges.
struct ViolationMetrics {
  /// Wall time of one full AnalyzeProviders scan.
  obs::Histogram* analyze_seconds;
  /// Scan outcomes: result="ok" | "deadline_exceeded" | "error".
  obs::Counter* analyze_ok;
  obs::Counter* analyze_deadline;
  obs::Counter* analyze_error;
  /// P(W), the probability a random provider is violated (paper Def. 2).
  obs::Gauge* pw;
  /// P(default), the probability a random provider exceeds its tolerance
  /// threshold (paper Defs. 4-5). Published by the live monitor only.
  obs::Gauge* pdefault;
  /// Population-wide total violation severity, `Violations` (paper Eq. 16).
  obs::Gauge* total_severity;
  /// Providers in the analyzed / monitored population.
  obs::Gauge* providers;
  /// Which severity-kernel implementation dispatch selected: exactly one of
  /// the target-labelled series is 1 (see violation/kernel/).
  obs::Gauge* dispatch_scalar;
  obs::Gauge* dispatch_avx2;
  obs::Gauge* dispatch_neon;

  static const ViolationMetrics& Get();
};

/// Re-publishes the `ppdb_violation_kernel_dispatch` gauges from the
/// kernel's current selection. Called by the kernel layer whenever the
/// selection changes (ForceTarget / ClearForcedTarget / env reload) and by
/// Get() at registration.
void PublishKernelDispatch();

}  // namespace ppdb::violation

#endif  // PPDB_VIOLATION_METRICS_H_

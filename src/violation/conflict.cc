#include "violation/conflict.h"

namespace ppdb::violation {

using privacy::Dimension;

bool Comparable(const privacy::PreferenceTuple& pref,
                const privacy::PolicyTuple& policy) {
  return pref.attribute == policy.attribute &&
         pref.tuple.purpose == policy.tuple.purpose;
}

ConflictBreakdown Conflict(const privacy::PreferenceTuple& pref,
                           const privacy::PolicyTuple& policy,
                           const privacy::SensitivityModel& sensitivities) {
  ConflictBreakdown out;
  out.comparable = Comparable(pref, policy);
  if (!out.comparable) return out;

  const privacy::PurposeId purpose = policy.tuple.purpose;
  const double attr_sens =
      sensitivities.AttributeSensitivity(policy.attribute, purpose);
  const privacy::DimensionSensitivity provider_sens =
      sensitivities.ProviderSensitivity(pref.provider, policy.attribute,
                                        purpose);

  for (size_t d = 0; d < privacy::kOrderedDimensions.size(); ++d) {
    Dimension dim = privacy::kOrderedDimensions[d];
    DimensionConflict& dc = out.per_dimension[d];
    dc.dimension = dim;
    // Level() cannot fail for ordered dimensions.
    dc.preference_level = pref.tuple.Level(dim).value();
    dc.policy_level = policy.tuple.Level(dim).value();
    dc.diff = LevelDiff(dc.preference_level, dc.policy_level);
    // One summand of Eq. 14: diff × Σ^a × s_i^a × s_i^a[dim].
    dc.weighted = static_cast<double>(dc.diff) * attr_sens *
                  provider_sens.value *
                  provider_sens.ForDimension(dim).value();
    // ppdb-lint: allow(fp-accumulate) --
    // summed in kOrderedDimensions order (fixed), canonical for Eq. 14.
    out.total += dc.weighted;
  }
  return out;
}

}  // namespace ppdb::violation

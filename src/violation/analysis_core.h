#ifndef PPDB_VIOLATION_ANALYSIS_CORE_H_
#define PPDB_VIOLATION_ANALYSIS_CORE_H_

#include <algorithm>
#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "privacy/config.h"
#include "privacy/dimension.h"
#include "privacy/tuple_columns.h"
#include "violation/detector.h"
#include "violation/kernel/severity_kernel.h"
#include "violation/report.h"

/// The shared core of the Def. 1 / Eqs. 12-15 evaluation, used by both the
/// batch detector (`detector.cc`) and the incremental view
/// (`incremental.cc`). Keeping a single implementation is what makes the
/// drift-oracle contract enforceable: the maintained view recomputes an
/// affected cell with literally the same code — same preference selection,
/// same kernel, same operation order — that a full `Analyze` would run, so
/// the two can be compared bitwise rather than within a tolerance.
///
/// Internal header: everything here lives in `ppdb::violation::internal`
/// and may change without notice; include it only from src/violation.

namespace ppdb::violation::internal {

/// Providers per block of the canonical Eq. 16 reduction — and, equal by
/// construction, providers per shard of the parallel Analyze loop. Fixed
/// (independent of thread count and of whether the batch or the delta path
/// computed the severities) so the association shape of the population sum
/// is one canonical thing: severities are summed flat within each
/// 512-provider block of the ascending provider order, then block partials
/// are summed in block order. For populations of at most one block this is
/// exactly the flat sum.
inline constexpr int64_t kSeverityReduceBlock = 512;

/// Σ severity_of(i) for i in [0, n), in the canonical blocked association
/// shape described above. Both the detector's reduce and the view's
/// aggregation tree produce sums with exactly this shape.
template <typename GetSeverity>
double BlockedSeveritySum(int64_t n, GetSeverity&& severity_of) {
  double total = 0.0;
  for (int64_t begin = 0; begin < n; begin += kSeverityReduceBlock) {
    const int64_t end = std::min(n, begin + kSeverityReduceBlock);
    double block = 0.0;
    for (int64_t i = begin; i < end; ++i) block += severity_of(i);
    total += block;
  }
  return total;
}

/// One house-policy tuple preprocessed for the per-provider inner loop: the
/// interned attribute id and the precomputed ancestor purposes (hierarchy
/// extension), so neither is recomputed per provider.
struct PreparedPolicyTuple {
  const privacy::PolicyTuple* policy = nullptr;
  int32_t attr_id = -1;
  std::vector<privacy::PurposeId> ancestors;
};

struct PreparedPolicy {
  std::vector<PreparedPolicyTuple> tuples;
  /// The policy's own tuple storage, for column builders that consume the
  /// raw (attribute, tuple) sequence.
  const std::vector<privacy::PolicyTuple>* source = nullptr;
  /// Interned policy attribute names; views into the policy's own strings.
  std::vector<std::string_view> attributes;
  std::unordered_map<std::string_view, int32_t> attr_ids;

  /// The interned id of `attribute`, or -1 when the policy never mentions
  /// it (no comparable policy tuple can exist, Eq. 13).
  int32_t AttrId(std::string_view attribute) const {
    auto it = attr_ids.find(attribute);
    return it == attr_ids.end() ? -1 : it->second;
  }
};

inline PreparedPolicy PreparePolicy(const privacy::HousePolicy& policy,
                                    const privacy::PurposeHierarchy* hierarchy) {
  PreparedPolicy out;
  out.source = &policy.tuples();
  out.tuples.reserve(policy.tuples().size());
  for (const privacy::PolicyTuple& pt : policy.tuples()) {
    PreparedPolicyTuple prepared;
    prepared.policy = &pt;
    auto [it, inserted] = out.attr_ids.try_emplace(
        pt.attribute, static_cast<int32_t>(out.attributes.size()));
    if (inserted) out.attributes.push_back(pt.attribute);
    prepared.attr_id = it->second;
    if (hierarchy != nullptr) {
      prepared.ancestors = hierarchy->AncestorsOf(pt.tuple.purpose);
    }
    out.tuples.push_back(std::move(prepared));
  }
  return out;
}

/// The flattened preference index: each analyzed provider's stated
/// preferences for policy attributes, packed into one contiguous array with
/// every provider's slice sorted by (attr_id, purpose). The hot loop does
/// binary search over flat memory instead of a per-(provider, policy tuple)
/// map lookup plus linear string scan.
struct FlatPreferenceIndex {
  struct Entry {
    int32_t attr_id = 0;
    privacy::PurposeId purpose = 0;
    privacy::PrivacyTuple tuple;
  };
  std::vector<Entry> entries;
  /// Provider at position i of the sorted provider list owns
  /// entries[offsets[i] .. offsets[i + 1]).
  std::vector<size_t> offsets;

  const privacy::PrivacyTuple* Find(size_t position, int32_t attr_id,
                                    privacy::PurposeId purpose) const {
    const Entry* begin = entries.data() + offsets[position];
    const Entry* end = entries.data() + offsets[position + 1];
    const std::pair<int32_t, privacy::PurposeId> key(attr_id, purpose);
    const Entry* it = std::lower_bound(
        begin, end, key,
        [](const Entry& e, const std::pair<int32_t, privacy::PurposeId>& k) {
          return std::pair(e.attr_id, e.purpose) < k;
        });
    if (it != end && it->attr_id == attr_id && it->purpose == purpose) {
      return &it->tuple;
    }
    return nullptr;
  }
};

inline FlatPreferenceIndex BuildIndex(const std::vector<ProviderId>& providers,
                                      const privacy::PreferenceStore& store,
                                      const PreparedPolicy& policy) {
  FlatPreferenceIndex index;
  index.offsets.reserve(providers.size() + 1);
  index.offsets.push_back(0);
  // Resolve every provider once up front so `entries` can be reserved
  // exactly — regrowing a multi-megabyte vector dominates index build time
  // at census scale.
  std::vector<const privacy::ProviderPreferences*> resolved;
  resolved.reserve(providers.size());
  size_t total_tuples = 0;
  for (ProviderId id : providers) {
    Result<const privacy::ProviderPreferences*> found = store.Find(id);
    const privacy::ProviderPreferences* prefs =
        found.ok() ? found.value() : nullptr;
    resolved.push_back(prefs);
    if (prefs != nullptr) total_tuples += prefs->tuples().size();
  }
  index.entries.reserve(total_tuples);
  for (const privacy::ProviderPreferences* prefs : resolved) {
    if (prefs != nullptr) {
      const size_t slice_begin = index.entries.size();
      for (const privacy::PreferenceTuple& pt : prefs->tuples()) {
        int32_t attr_id = policy.AttrId(pt.attribute);
        if (attr_id < 0) continue;
        index.entries.push_back(
            FlatPreferenceIndex::Entry{attr_id, pt.tuple.purpose, pt.tuple});
      }
      std::sort(index.entries.begin() + static_cast<int64_t>(slice_begin),
                index.entries.end(),
                [](const FlatPreferenceIndex::Entry& a,
                   const FlatPreferenceIndex::Entry& b) {
                  return std::pair(a.attr_id, a.purpose) <
                         std::pair(b.attr_id, b.purpose);
                });
    }
    index.offsets.push_back(index.entries.size());
  }
  return index;
}

/// Per-thread buffers for the kernel-backed provider analysis, reused
/// across providers so the hot loop never allocates: the preference-side
/// row columns and kernel outputs, the provider σ columns (filled only for
/// providers with explicit entries), and the violated-attribute dedupe
/// scratch.
struct AnalysisScratch {
  kernel::RowScratch row;
  privacy::SensitivityColumns provider_sens;
  std::vector<std::string_view> violated_attributes;
};

/// The Def. 1 preference-side inputs of one (provider, policy tuple) cell.
struct CellInputs {
  int32_t pref_v = 0;
  int32_t pref_g = 0;
  int32_t pref_r = 0;
  /// 0 = excluded from the comparison, -1 (all bits) = live.
  int32_t active = 0;
  uint8_t implicit = 0;
};

/// Pass 1 for a single cell: select the preference tuple Def. 1 compares
/// against policy tuple j — stated for (a, purpose); else (with the
/// hierarchy extension) the most specific stated preference for an ancestor
/// purpose; else the implicit zero tuple. Pairs Def. 1 excludes outright
/// (data-scoped attributes the provider does not supply, unstated purposes
/// under `implicit_zero_preferences = false`) come back inactive and
/// contribute exactly nothing downstream. Both the batch row build and the
/// view's delta recompute call exactly this.
template <typename FindPref>
CellInputs BuildCell(const ViolationDetector::Options& options,
                     const PreparedPolicy& policy, ProviderId provider,
                     FindPref&& find_pref, size_t j) {
  CellInputs cell;
  const PreparedPolicyTuple& prepared = policy.tuples[j];
  const privacy::PolicyTuple& policy_tuple = *prepared.policy;

  // Data scoping: with a table, only attributes the provider actually
  // supplies (a non-null datum in some owned row) are in play. Providers
  // absent from the table supply no data and incur no violations.
  if (options.data_table != nullptr) {
    Result<bool> supplies = options.data_table->ProviderSuppliesAttribute(
        provider, policy_tuple.attribute);
    if (!supplies.ok() || !supplies.value()) return cell;
  }

  const privacy::PrivacyTuple* pref = find_pref(
      prepared.attr_id, policy_tuple.attribute, policy_tuple.tuple.purpose);
  if (pref == nullptr) {
    // Consent to an ancestor purpose covers this specialization; only
    // the levels matter to the kernel, so no purpose rebase is needed.
    for (privacy::PurposeId ancestor : prepared.ancestors) {
      pref = find_pref(prepared.attr_id, policy_tuple.attribute, ancestor);
      if (pref != nullptr) break;
    }
  }
  if (pref != nullptr) {
    cell.pref_v = pref->visibility;
    cell.pref_g = pref->granularity;
    cell.pref_r = pref->retention;
  } else {
    if (!options.implicit_zero_preferences) return cell;
    const privacy::PrivacyTuple zero =
        privacy::PrivacyTuple::ZeroFor(policy_tuple.tuple.purpose);
    cell.pref_v = zero.visibility;
    cell.pref_g = zero.granularity;
    cell.pref_r = zero.retention;
    cell.implicit = 1;
  }
  cell.active = -1;
  return cell;
}

/// σ_i columns for one provider: the shared all-ones preset unless the
/// provider has explicit entries — the common census-scale case skips the
/// per-tuple map lookups entirely.
inline const privacy::SensitivityColumns* SelectSensitivity(
    const privacy::PrivacyConfig& config, const PreparedPolicy& policy,
    ProviderId provider, const privacy::SensitivityColumns& unit_sens,
    privacy::SensitivityColumns& provider_sens) {
  if (!config.sensitivities.HasEntriesFor(provider)) return &unit_sens;
  provider_sens.FillFor(config.sensitivities, provider, *policy.source);
  return &provider_sens;
}

/// Assembles the kernel input block from a filled row and the
/// provider-invariant policy columns.
inline kernel::ConfInput MakeConfInput(
    const kernel::RowScratch& row, const privacy::PolicyColumns& columns,
    const privacy::SensitivityColumns& sens) {
  kernel::ConfInput in;
  in.pref_v = row.pref_v.data();
  in.pref_g = row.pref_g.data();
  in.pref_r = row.pref_r.data();
  in.pol_v = columns.levels.visibility.data();
  in.pol_g = columns.levels.granularity.data();
  in.pol_r = columns.levels.retention.data();
  in.attr_sens = columns.attr_sens.data();
  in.sens_val = sens.value.data();
  in.sens_v = sens.visibility.data();
  in.sens_g = sens.granularity.data();
  in.sens_r = sens.retention.data();
  in.active = row.active.data();
  return in;
}

/// Eq. 15 reduce plus incident reconstruction over a row the kernel just
/// filled. The sum over tuples is association-sensitive, so it stays scalar
/// and in tuple order regardless of dispatch target; inactive rows
/// contribute exactly +0.0, a bitwise no-op on the non-negative running
/// total. Incident reconstruction is entered only when some pair exceeded,
/// scanning rows in tuple order and dimensions in the fixed V, G, R order,
/// so incidents match the pair-at-a-time path exactly.
inline ProviderViolation FinishProvider(const PreparedPolicy& policy,
                                        const privacy::PolicyColumns& columns,
                                        const privacy::SensitivityColumns& sens,
                                        ProviderId provider, bool any_exceed,
                                        AnalysisScratch& scratch) {
  ProviderViolation out;
  out.provider = provider;
  scratch.violated_attributes.clear();
  kernel::RowScratch& row = scratch.row;
  const size_t n = policy.tuples.size();

  for (size_t j = 0; j < n; ++j) out.total_severity += row.conf[j];

  if (any_exceed) {
    for (size_t j = 0; j < n; ++j) {
      const int32_t diffs[3] = {row.diff_v[j], row.diff_g[j], row.diff_r[j]};
      if ((diffs[0] | diffs[1] | diffs[2]) == 0) continue;
      const privacy::PolicyTuple& policy_tuple = *policy.tuples[j].policy;
      out.violated = true;
      if (std::find(scratch.violated_attributes.begin(),
                    scratch.violated_attributes.end(),
                    std::string_view(policy_tuple.attribute)) ==
          scratch.violated_attributes.end()) {
        scratch.violated_attributes.push_back(policy_tuple.attribute);
      }
      if (out.incidents.empty()) {
        // One up-front reservation per violated provider, sized to the
        // policy (see the allocation note in detector.h).
        out.incidents.reserve(n);
      }
      const int32_t pref_levels[3] = {row.pref_v[j], row.pref_g[j],
                                      row.pref_r[j]};
      const int32_t policy_levels[3] = {columns.levels.visibility[j],
                                        columns.levels.granularity[j],
                                        columns.levels.retention[j]};
      const double dim_sens[3] = {sens.visibility[j], sens.granularity[j],
                                  sens.retention[j]};
      for (size_t d = 0; d < privacy::kOrderedDimensions.size(); ++d) {
        if (diffs[d] <= 0) continue;
        // Recompute the Eq. 14 summand with the kernel's exact operation
        // chain, so the stored weighted severity is bit-for-bit the one
        // that entered conf.
        const double weighted = static_cast<double>(diffs[d]) *
                                columns.attr_sens[j] * sens.value[j] *
                                dim_sens[d];
        ViolationIncident incident;
        incident.provider = provider;
        incident.attribute = policy_tuple.attribute;
        incident.purpose = policy_tuple.tuple.purpose;
        incident.dimension = privacy::kOrderedDimensions[d];
        incident.preference_level = pref_levels[d];
        incident.policy_level = policy_levels[d];
        incident.diff = diffs[d];
        incident.weighted_severity = weighted;
        incident.from_implicit_preference = row.implicit[j] != 0;
        out.max_incident_severity =
            std::max(out.max_incident_severity, weighted);
        out.incidents.push_back(std::move(incident));
      }
    }
  }
  out.num_attributes_violated =
      static_cast<int>(scratch.violated_attributes.size());
  return out;
}

/// The Def. 1 / Eq. 14-15 evaluation for one provider, in three passes:
/// build the preference row (SoA columns aligned with the policy columns),
/// run the batched severity kernel over it (Eqs. 12-14), then reduce and —
/// only for exceeding rows — reconstruct the per-dimension incidents.
/// `find_pref` resolves (attr_id, attribute, purpose) to the provider's
/// stated tuple or nullptr.
template <typename FindPref>
ProviderViolation AnalyzeOne(const privacy::PrivacyConfig& config,
                             const ViolationDetector::Options& options,
                             const PreparedPolicy& policy,
                             const privacy::PolicyColumns& columns,
                             const privacy::SensitivityColumns& unit_sens,
                             ProviderId provider, FindPref&& find_pref,
                             AnalysisScratch& scratch) {
  const size_t n = policy.tuples.size();
  kernel::RowScratch& row = scratch.row;
  row.Resize(n);

  // Pass 1 — row build.
  for (size_t j = 0; j < n; ++j) {
    const CellInputs cell = BuildCell(options, policy, provider, find_pref, j);
    row.pref_v[j] = cell.pref_v;
    row.pref_g[j] = cell.pref_g;
    row.pref_r[j] = cell.pref_r;
    row.active[j] = cell.active;
    row.implicit[j] = cell.implicit;
  }

  const privacy::SensitivityColumns* sens = SelectSensitivity(
      config, policy, provider, unit_sens, scratch.provider_sens);

  // Pass 2 — the batched Eqs. 12-14 kernel over all n pairs.
  const kernel::ConfInput in = MakeConfInput(row, columns, *sens);
  const bool any_exceed = kernel::ConfKernel(in, row.Output(), n);

  // Pass 3 — reduce + incidents.
  return FinishProvider(policy, columns, *sens, provider, any_exceed, scratch);
}

}  // namespace ppdb::violation::internal

#endif  // PPDB_VIOLATION_ANALYSIS_CORE_H_

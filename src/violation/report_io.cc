#include "violation/report_io.h"

#include <cstdio>

#include "common/string_util.h"

namespace ppdb::violation {

namespace {

std::string FormatDouble(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

std::string ViolationReportToCsv(const ViolationReport& report) {
  std::string out =
      "provider_id,violated,total_severity,num_incidents,"
      "num_attributes_violated,max_incident_severity\n";
  for (const ProviderViolation& pv : report.providers) {
    out += std::to_string(pv.provider);
    out += pv.violated ? ",1," : ",0,";
    out += FormatDouble(pv.total_severity);
    out += ',' + std::to_string(pv.incidents.size());
    out += ',' + std::to_string(pv.num_attributes_violated);
    out += ',' + FormatDouble(pv.max_incident_severity);
    out += '\n';
  }
  return out;
}

std::string IncidentsToCsv(const ViolationReport& report,
                           const privacy::PurposeRegistry& purposes) {
  std::string out =
      "provider_id,attribute,purpose,dimension,preference_level,"
      "policy_level,diff,weighted_severity,implicit_preference\n";
  for (const ProviderViolation& pv : report.providers) {
    for (const ViolationIncident& incident : pv.incidents) {
      Result<std::string> purpose_name = purposes.NameOf(incident.purpose);
      out += std::to_string(incident.provider);
      out += ',' + CsvEscape(incident.attribute);
      out += ',' +
             CsvEscape(purpose_name.ok()
                           ? purpose_name.value()
                           : "purpose#" + std::to_string(incident.purpose));
      out += ',';
      out += privacy::DimensionName(incident.dimension);
      out += ',' + std::to_string(incident.preference_level);
      out += ',' + std::to_string(incident.policy_level);
      out += ',' + std::to_string(incident.diff);
      out += ',' + FormatDouble(incident.weighted_severity);
      out += incident.from_implicit_preference ? ",1\n" : ",0\n";
    }
  }
  return out;
}

std::string DefaultReportToCsv(const DefaultReport& report) {
  std::string out = "provider_id,violation,threshold,defaulted\n";
  for (const ProviderDefault& pd : report.providers) {
    out += std::to_string(pd.provider);
    out += ',' + FormatDouble(pd.violation);
    out += ',' + FormatDouble(pd.threshold);
    out += pd.defaulted ? ",1\n" : ",0\n";
  }
  return out;
}

Result<std::string> TransparencyStatement(
    const ViolationReport& report, privacy::ProviderId provider,
    const privacy::PrivacyConfig& config) {
  const ProviderViolation* pv = report.Find(provider);
  if (pv == nullptr) {
    return Status::NotFound("provider " + std::to_string(provider) +
                            " is not in this report");
  }
  std::string out = "Privacy statement for provider " +
                    std::to_string(provider) + "\n";
  if (!pv->violated) {
    out += "The house's stated policy stays within all of your recorded "
           "privacy preferences. No violations.\n";
    return out;
  }
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "The stated policy exceeds your preferences in %zu way(s) "
                "across %d attribute(s); total severity %.2f.\n\n",
                pv->incidents.size(), pv->num_attributes_violated,
                pv->total_severity);
  out += buf;

  auto level_name = [&](privacy::Dimension dim, int level) -> std::string {
    Result<const privacy::OrderedScale*> scale =
        config.scales.ForDimension(dim);
    if (scale.ok()) {
      Result<std::string> name = scale.value()->NameOf(level);
      if (name.ok()) return name.value();
    }
    return "level " + std::to_string(level);
  };

  for (const ViolationIncident& incident : pv->incidents) {
    Result<std::string> purpose_name =
        config.purposes.NameOf(incident.purpose);
    out += "- Your '" + incident.attribute + "' data, used for purpose '" +
           (purpose_name.ok() ? purpose_name.value() : "unknown") + "': ";
    out += std::string(privacy::DimensionName(incident.dimension)) + " is '" +
           level_name(incident.dimension, incident.policy_level) + "'";
    if (incident.from_implicit_preference) {
      out += ", but you have stated no preference for this purpose (so the "
             "model assumes you allow nothing)";
    } else {
      out += ", beyond your preferred '" +
             level_name(incident.dimension, incident.preference_level) + "'";
    }
    std::snprintf(buf, sizeof(buf), " [severity %.2f]\n",
                  incident.weighted_severity);
    out += buf;
  }
  return out;
}

}  // namespace ppdb::violation

#include "violation/policy_search.h"

#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/thread_pool.h"
#include "violation/default_model.h"
#include "violation/detector.h"
#include "violation/utility.h"

namespace ppdb::violation {

DataValueModel MakeLinearExposureValue(double scale) {
  return [scale](const privacy::HousePolicy& policy,
                 const privacy::PrivacyConfig& config) {
    double value = 0.0;
    for (const privacy::PolicyTuple& pt : policy.tuples()) {
      double attr_sens = config.sensitivities.AttributeSensitivity(
          pt.attribute, pt.tuple.purpose);
      double exposure = 0.0;
      for (privacy::Dimension dim : privacy::kOrderedDimensions) {
        const privacy::OrderedScale& dim_scale =
            *config.scales.ForDimension(dim).value();
        int level = pt.tuple.Level(dim).value();
        if (dim_scale.max_level() > 0) {
          // ppdb-lint: allow(fp-accumulate) --
          // kOrderedDimensions order is fixed; sum is canonical.
          exposure += static_cast<double>(level) /
                      static_cast<double>(dim_scale.max_level());
        }
      }
      // ppdb-lint: allow(fp-accumulate) --
      // population order is fixed by the scenario; sum is canonical.
      value += attr_sens * exposure / 3.0;
    }
    return scale * value;
  };
}

namespace {

/// Evaluates total house utility at `policy` against the fixed population:
/// N_remaining × (U + T), T relative to `baseline_value`.
struct Evaluation {
  double utility = 0.0;
  int64_t n_remaining = 0;
};

Result<Evaluation> Evaluate(const privacy::PrivacyConfig& base_config,
                            const privacy::HousePolicy& policy,
                            const SearchOptions& options,
                            double baseline_value) {
  ViolationDetector::Options detector_options = options.detector_options;
  detector_options.policy_override = &policy;
  ViolationDetector detector(&base_config, detector_options);
  PPDB_ASSIGN_OR_RETURN(ViolationReport report, detector.Analyze());
  DefaultReport defaults = ComputeDefaults(report, base_config);
  Evaluation out;
  out.n_remaining =
      UtilityModel::FutureProviders(report.num_providers(), defaults);
  double extra = options.value_model(policy, base_config) - baseline_value;
  out.utility = static_cast<double>(out.n_remaining) *
                (options.utility_per_provider + extra);
  return out;
}

}  // namespace

Result<SearchResult> GreedyPolicySearch(const privacy::PrivacyConfig& config,
                                        const SearchOptions& options) {
  if (!(options.utility_per_provider > 0.0)) {
    return Status::InvalidArgument("utility per provider must be positive");
  }
  if (!options.value_model) {
    return Status::InvalidArgument("a value model is required");
  }
  if (config.policy.empty()) {
    return Status::FailedPrecondition(
        "policy search needs a non-empty starting policy");
  }

  const double baseline_value = options.value_model(config.policy, config);

  SearchResult result;
  result.best_policy = config.policy;
  PPDB_ASSIGN_OR_RETURN(
      Evaluation current,
      Evaluate(config, result.best_policy, options, baseline_value));
  result.baseline_utility = current.utility;
  result.best_utility = current.utility;

  std::vector<int> deltas = {1};
  if (options.allow_narrowing) deltas.push_back(-1);
  const std::vector<std::string> attributes = config.policy.Attributes();

  struct Candidate {
    privacy::Dimension dim = privacy::Dimension::kVisibility;
    const std::string* attribute = nullptr;
    int delta = 0;
    privacy::HousePolicy policy;
  };
  const int threads = ThreadPool::ResolveThreadCount(options.num_threads);
  const Deadline& deadline = options.detector_options.deadline;

  for (int step = 0; step < options.max_steps; ++step) {
    if (deadline.Expired()) {
      return Status::DeadlineExceeded(
          "policy search: accepted " +
          std::to_string(result.trajectory.size()) +
          " move(s) before the deadline expired");
    }
    // Enumerate the viable single-level moves (in the fixed attribute ×
    // dimension × delta order), then score them concurrently: each
    // evaluation reads only the fixed population and its own candidate
    // policy, so candidates are independent.
    std::vector<Candidate> candidates;
    for (const std::string& attribute : attributes) {
      for (privacy::Dimension dim : privacy::kOrderedDimensions) {
        for (int delta : deltas) {
          Result<privacy::HousePolicy> candidate =
              result.best_policy.WidenedForAttribute(attribute, dim, delta,
                                                     config.scales);
          if (!candidate.ok()) continue;
          // Clamped no-ops re-evaluate to the same policy; skip them.
          if (candidate.value().tuples() == result.best_policy.tuples()) {
            continue;
          }
          candidates.push_back(Candidate{dim, &attribute, delta,
                                         std::move(candidate).value()});
        }
      }
    }

    const int64_t n = static_cast<int64_t>(candidates.size());
    std::vector<Evaluation> evals(candidates.size());
    std::vector<Status> statuses(candidates.size());
    ThreadPool::Shared().ParallelRange(
        0, n, /*grain=*/1, threads,
        [&](int64_t /*shard*/, int64_t begin, int64_t end) {
          for (int64_t i = begin; i < end; ++i) {
            const size_t at = static_cast<size_t>(i);
            // Deadline checkpoint between candidates; the detector inside
            // Evaluate polls the same token at provider granularity.
            if (deadline.Expired()) {
              statuses[at] = Status::DeadlineExceeded("candidate skipped");
              continue;
            }
            Result<Evaluation> eval = Evaluate(config, candidates[at].policy,
                                               options, baseline_value);
            if (eval.ok()) {
              evals[at] = eval.value();
            } else {
              statuses[at] = eval.status();
            }
          }
        });

    // Select the winning move by a serial scan in enumeration order — the
    // same comparisons, in the same order, as the serial search, so the
    // accepted trajectory is identical at any thread count.
    double best_gain = 0.0;
    size_t best_index = candidates.size();
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (statuses[i].IsDeadlineExceeded()) {
        return Status::DeadlineExceeded(
            "policy search: accepted " +
            std::to_string(result.trajectory.size()) + " move(s), scored " +
            std::to_string(i) + " of " + std::to_string(candidates.size()) +
            " candidate(s) at step " + std::to_string(step) +
            " before the deadline expired");
      }
      PPDB_RETURN_NOT_OK(statuses[i]);
      double gain = evals[i].utility - result.best_utility;
      if (gain > best_gain + 1e-12) {
        best_gain = gain;
        best_index = i;
      }
    }
    if (best_index == candidates.size()) break;  // Local optimum.
    Candidate& winner = candidates[best_index];
    result.best_policy = std::move(winner.policy);
    result.best_utility = evals[best_index].utility;
    result.trajectory.push_back(SearchStep{winner.dim, *winner.attribute,
                                           winner.delta,
                                           evals[best_index].utility,
                                           evals[best_index].n_remaining});
  }
  return result;
}

Result<PrefixResult> BestExpansionPrefix(
    const privacy::PrivacyConfig& config,
    const std::vector<ExpansionStep>& schedule, double utility_per_provider,
    const std::function<double(int)>& extra_utility_at, int num_threads) {
  if (!(utility_per_provider > 0.0)) {
    return Status::InvalidArgument("utility per provider must be positive");
  }
  if (!extra_utility_at) {
    return Status::InvalidArgument("an extra-utility schedule is required");
  }
  WhatIfAnalyzer::Options options;
  options.utility_per_provider = utility_per_provider;
  options.num_threads = num_threads;
  WhatIfAnalyzer analyzer(&config, options);
  PPDB_ASSIGN_OR_RETURN(std::vector<ExpansionPoint> points,
                        analyzer.RunSchedule(schedule));
  PrefixResult out;
  out.best_utility = -1.0;
  for (const ExpansionPoint& point : points) {
    double utility =
        static_cast<double>(point.n_remaining) *
        (utility_per_provider + extra_utility_at(point.step_index));
    out.utilities.push_back(utility);
    if (utility > out.best_utility) {
      out.best_utility = utility;
      out.best_prefix = point.step_index;
    }
  }
  return out;
}

}  // namespace ppdb::violation

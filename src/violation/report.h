#ifndef PPDB_VIOLATION_REPORT_H_
#define PPDB_VIOLATION_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "privacy/dimension.h"
#include "privacy/provider_prefs.h"
#include "privacy/purpose.h"

namespace ppdb::violation {

using privacy::ProviderId;

/// One concrete exceedance: for (provider, attribute, purpose), the house
/// policy level on `dimension` strictly exceeds the provider's (stated or
/// implicit) preference level. These are the per-dimension events behind
/// Fig. 1(b)/(c).
struct ViolationIncident {
  ProviderId provider = 0;
  std::string attribute;
  privacy::PurposeId purpose = 0;
  privacy::Dimension dimension = privacy::Dimension::kVisibility;
  int preference_level = 0;
  int policy_level = 0;
  /// policy_level − preference_level (> 0 by construction).
  int diff = 0;
  /// diff × Σ^a × s_i^a × s_i^a[dim] — this incident's share of Eq. 14.
  double weighted_severity = 0.0;
  /// True when the preference side is the implicit <a, pr, 0, 0, 0> tuple
  /// substituted by Def. 1 for an unstated purpose.
  bool from_implicit_preference = false;
};

/// The complete violation assessment for one data provider.
struct ProviderViolation {
  ProviderId provider = 0;
  /// w_i of Def. 1: 1 iff some incident exists.
  bool violated = false;
  /// Violation_i of Eq. 15: the sum of conf over all (pref, policy) pairs.
  double total_severity = 0.0;
  /// Every exceedance, in (policy tuple, dimension) order.
  std::vector<ViolationIncident> incidents;
  /// Breadth (§7): number of distinct attributes with incidents.
  int num_attributes_violated = 0;
  /// Depth (§7): the largest single-incident weighted severity.
  double max_incident_severity = 0.0;
};

/// The violation assessment of a whole database: one entry per analyzed
/// provider, plus the aggregates of Eq. 8 and Eq. 16.
struct ViolationReport {
  /// Per-provider results in ascending provider order.
  std::vector<ProviderViolation> providers;
  /// Violations (Eq. 16): Σ_i Violation_i.
  double total_severity = 0.0;
  /// Number of providers with w_i = 1.
  int64_t num_violated = 0;

  int64_t num_providers() const {
    return static_cast<int64_t>(providers.size());
  }

  /// P(W) (Def. 2) computed as an exact census: Σ_i w_i / N.
  /// Returns 0 for an empty population.
  double ProbabilityOfViolation() const {
    return providers.empty() ? 0.0
                             : static_cast<double>(num_violated) /
                                   static_cast<double>(providers.size());
  }

  /// The entry for `provider`, or nullptr when it was not analyzed.
  const ProviderViolation* Find(ProviderId provider) const;

  /// Renders a human-readable summary (one line per violated provider).
  std::string ToString(int64_t max_providers = 20) const;
};

}  // namespace ppdb::violation

#endif  // PPDB_VIOLATION_REPORT_H_

#include "violation/probability.h"

#include <vector>

#include "common/macros.h"
#include "common/thread_pool.h"

namespace ppdb::violation {

namespace {

/// Trials per shard. Fixed (thread-count independent) so the mapping from
/// the caller's seed stream to per-shard sub-seeds — and therefore the hit
/// count — is reproducible at any parallelism.
constexpr int64_t kTrialGrain = 8192;

/// Runs τ trials of "draw index uniformly, test event[index]", sharded over
/// the pool with one serially-drawn sub-seed per shard.
Result<TrialEstimate> RunTrials(const std::vector<bool>& event, double census,
                                int64_t trials, Rng& rng, int num_threads) {
  if (trials <= 0) {
    return Status::InvalidArgument("trial count must be positive");
  }
  if (event.empty()) {
    return Status::FailedPrecondition(
        "cannot run trials over an empty population");
  }
  TrialEstimate out;
  out.trials = trials;
  out.census = census;

  const int64_t num_shards = ThreadPool::NumShards(0, trials, kTrialGrain);
  std::vector<uint64_t> seeds(static_cast<size_t>(num_shards));
  for (uint64_t& seed : seeds) seed = rng.NextUint64();

  const int threads = ThreadPool::ResolveThreadCount(num_threads);
  out.hits = ThreadPool::Shared().ParallelReduce(
      0, trials, kTrialGrain, threads, int64_t{0},
      [&](int64_t begin, int64_t end) {
        Rng sub(seeds[static_cast<size_t>(begin / kTrialGrain)]);
        int64_t hits = 0;
        for (int64_t t = begin; t < end; ++t) {
          size_t pick = static_cast<size_t>(sub.NextBounded(event.size()));
          if (event[pick]) ++hits;
        }
        return hits;
      },
      [](int64_t& acc, int64_t partial) { acc += partial; });

  out.estimate =
      static_cast<double>(out.hits) / static_cast<double>(out.trials);
  PPDB_ASSIGN_OR_RETURN(out.ci95,
                        stats::WilsonInterval(out.hits, out.trials, 0.95));
  return out;
}

}  // namespace

Result<TrialEstimate> EstimateViolationProbability(
    const ViolationReport& report, int64_t trials, Rng& rng,
    int num_threads) {
  std::vector<bool> event;
  event.reserve(report.providers.size());
  for (const ProviderViolation& pv : report.providers) {
    event.push_back(pv.violated);
  }
  return RunTrials(event, report.ProbabilityOfViolation(), trials, rng,
                   num_threads);
}

Result<TrialEstimate> EstimateDefaultProbability(const DefaultReport& report,
                                                 int64_t trials, Rng& rng,
                                                 int num_threads) {
  std::vector<bool> event;
  event.reserve(report.providers.size());
  for (const ProviderDefault& pd : report.providers) {
    event.push_back(pd.defaulted);
  }
  return RunTrials(event, report.ProbabilityOfDefault(), trials, rng,
                   num_threads);
}

Result<AlphaCertification> CertifyAlphaPpdb(const ViolationReport& report,
                                            double alpha, double confidence) {
  if (alpha < 0.0 || alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in [0, 1]");
  }
  if (report.providers.empty()) {
    return Status::FailedPrecondition(
        "cannot certify an empty population");
  }
  AlphaCertification out;
  out.alpha = alpha;
  out.num_providers = report.num_providers();
  out.num_violated = report.num_violated;
  out.p_violation = report.ProbabilityOfViolation();
  out.certified = out.p_violation <= alpha;
  PPDB_ASSIGN_OR_RETURN(
      out.interval,
      stats::WilsonInterval(report.num_violated, report.num_providers(),
                            confidence));
  out.certified_with_margin = out.interval.hi <= alpha;
  return out;
}

}  // namespace ppdb::violation

#include "violation/probability.h"

#include <vector>

#include "common/macros.h"

namespace ppdb::violation {

namespace {

/// Runs τ trials of "draw index uniformly, test event[index]".
Result<TrialEstimate> RunTrials(const std::vector<bool>& event, double census,
                                int64_t trials, Rng& rng) {
  if (trials <= 0) {
    return Status::InvalidArgument("trial count must be positive");
  }
  if (event.empty()) {
    return Status::FailedPrecondition(
        "cannot run trials over an empty population");
  }
  TrialEstimate out;
  out.trials = trials;
  out.census = census;
  for (int64_t t = 0; t < trials; ++t) {
    size_t pick = static_cast<size_t>(rng.NextBounded(event.size()));
    if (event[pick]) ++out.hits;
  }
  out.estimate =
      static_cast<double>(out.hits) / static_cast<double>(out.trials);
  PPDB_ASSIGN_OR_RETURN(out.ci95,
                        stats::WilsonInterval(out.hits, out.trials, 0.95));
  return out;
}

}  // namespace

Result<TrialEstimate> EstimateViolationProbability(
    const ViolationReport& report, int64_t trials, Rng& rng) {
  std::vector<bool> event;
  event.reserve(report.providers.size());
  for (const ProviderViolation& pv : report.providers) {
    event.push_back(pv.violated);
  }
  return RunTrials(event, report.ProbabilityOfViolation(), trials, rng);
}

Result<TrialEstimate> EstimateDefaultProbability(const DefaultReport& report,
                                                 int64_t trials, Rng& rng) {
  std::vector<bool> event;
  event.reserve(report.providers.size());
  for (const ProviderDefault& pd : report.providers) {
    event.push_back(pd.defaulted);
  }
  return RunTrials(event, report.ProbabilityOfDefault(), trials, rng);
}

Result<AlphaCertification> CertifyAlphaPpdb(const ViolationReport& report,
                                            double alpha, double confidence) {
  if (alpha < 0.0 || alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in [0, 1]");
  }
  if (report.providers.empty()) {
    return Status::FailedPrecondition(
        "cannot certify an empty population");
  }
  AlphaCertification out;
  out.alpha = alpha;
  out.num_providers = report.num_providers();
  out.num_violated = report.num_violated;
  out.p_violation = report.ProbabilityOfViolation();
  out.certified = out.p_violation <= alpha;
  PPDB_ASSIGN_OR_RETURN(
      out.interval,
      stats::WilsonInterval(report.num_violated, report.num_providers(),
                            confidence));
  out.certified_with_margin = out.interval.hi <= alpha;
  return out;
}

}  // namespace ppdb::violation

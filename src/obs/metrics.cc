#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace ppdb::obs {

namespace internal {

size_t ShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local const size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return index;
}

void AddDouble(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace internal

namespace {

/// Shortest round-trippable rendering of a double; integers print bare.
std::string Num(double v) {
  if (v == static_cast<double>(static_cast<int64_t>(v)) && v > -1e15 &&
      v < 1e15) {
    return std::to_string(static_cast<int64_t>(v));
  }
  // Shortest representation that round-trips, so bucket bounds render as
  // "0.00025" rather than their 17-digit expansion.
  char buf[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

/// Metric and label names must match [a-zA-Z_:][a-zA-Z0-9_:]*; anything
/// else is mapped to '_' so one bad call site cannot invalidate the whole
/// exposition.
std::string SanitizeName(std::string_view name) {
  std::string out(name.empty() ? std::string_view("_") : name);
  for (size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    c == '_' || c == ':' || (i > 0 && c >= '0' && c <= '9');
    if (!ok) out[i] = '_';
  }
  return out;
}

/// Escapes a label value per the exposition format: backslash, quote, and
/// newline.
std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// `{k1="v1",k2="v2"}`, or empty for no labels. Doubles as the sample key,
/// so samples with the same rendered labels are the same sample.
std::string RenderLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += SanitizeName(key) + "=\"" + EscapeLabelValue(value) + "\"";
  }
  out += '}';
  return out;
}

/// As RenderLabels but with `le="<bound>"` appended (histogram buckets).
std::string RenderLabelsWithLe(const Labels& labels, const std::string& le) {
  std::string out = "{";
  for (const auto& [key, value] : labels) {
    out += SanitizeName(key) + "=\"" + EscapeLabelValue(value) + "\",";
  }
  out += "le=\"" + le + "\"}";
  return out;
}

}  // namespace

// --- Counter ---------------------------------------------------------------

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const internal::ShardedSlot& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

// --- Histogram -------------------------------------------------------------

std::vector<double> Histogram::DefaultLatencyBucketsSeconds() {
  return {0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
          0.05,   0.1,     0.25,   0.5,   1.0,    2.5,   5.0,  10.0};
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = DefaultLatencyBucketsSeconds();
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_ = std::make_unique<internal::ShardedSlot[]>(kMetricShards *
                                                      (bounds_.size() + 1));
}

void Histogram::Observe(double value) {
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  const size_t shard = internal::ShardIndex();
  counts_[shard * (bounds_.size() + 1) + bucket].value.fetch_add(
      1, std::memory_order_relaxed);
  internal::AddDouble(sums_[shard].value, value);
}

int64_t Histogram::Count() const {
  int64_t total = 0;
  const size_t n = kMetricShards * (bounds_.size() + 1);
  for (size_t i = 0; i < n; ++i) {
    total += counts_[i].value.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const internal::ShardedDoubleSlot& slot : sums_) {
    total += slot.value.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<int64_t> Histogram::CumulativeCounts() const {
  std::vector<int64_t> cumulative(bounds_.size() + 1, 0);
  for (size_t shard = 0; shard < kMetricShards; ++shard) {
    for (size_t b = 0; b <= bounds_.size(); ++b) {
      cumulative[b] += counts_[shard * (bounds_.size() + 1) + b].value.load(
          std::memory_order_relaxed);
    }
  }
  for (size_t b = 1; b < cumulative.size(); ++b) {
    cumulative[b] += cumulative[b - 1];
  }
  return cumulative;
}

double Histogram::Percentile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const std::vector<int64_t> cumulative = CumulativeCounts();
  const int64_t total = cumulative.back();
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  int64_t below = 0;
  for (size_t b = 0; b < cumulative.size(); ++b) {
    if (static_cast<double>(cumulative[b]) < rank) {
      below = cumulative[b];
      continue;
    }
    if (b == bounds_.size()) return bounds_.back();  // +Inf bucket
    const double lower = b == 0 ? 0.0 : bounds_[b - 1];
    const double upper = bounds_[b];
    const int64_t in_bucket = cumulative[b] - below;
    if (in_bucket <= 0) return upper;
    const double fraction =
        (rank - static_cast<double>(below)) / static_cast<double>(in_bucket);
    return lower + (upper - lower) * fraction;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

// --- MetricsRegistry -------------------------------------------------------

MetricsRegistry& MetricsRegistry::Default() {
  // Leaked on purpose: instrumented layers hold bare pointers into the
  // registry from static storage, so it must outlive every static user.
  static MetricsRegistry* registry = new MetricsRegistry();  // ppdb-lint: allow(raw-new)
  return *registry;
}

MetricsRegistry::Sample* MetricsRegistry::GetSample(
    std::string_view name, std::string_view help, Type type, Labels labels,
    const std::vector<double>* buckets) {
  const std::string family_name = SanitizeName(name);
  const std::string key = RenderLabels(labels);

  MutexLock lock(mu_);
  auto [family_it, family_inserted] =
      families_.try_emplace(family_name, Family{});
  Family& family = family_it->second;
  if (family_inserted) {
    family.type = type;
    family.help = std::string(help);
    if (type == Type::kHistogram && buckets != nullptr) {
      family.buckets = *buckets;
    }
  }

  auto make_sample = [&](Sample& sample) {
    sample.labels = std::move(labels);
    switch (type) {
      case Type::kCounter:
        // ppdb-lint: allow(raw-new) -- instrument ctors are private to the
        // registry, so make_unique cannot reach them.
        sample.counter.reset(new Counter());
        break;
      case Type::kGauge:
        sample.gauge.reset(new Gauge());  // ppdb-lint: allow(raw-new)
        break;
      case Type::kHistogram:
        // ppdb-lint: allow(raw-new)
        sample.histogram.reset(new Histogram(
            family.type == Type::kHistogram ? family.buckets
                                            : std::vector<double>{}));
        break;
    }
  };

  if (family.type != type) {
    // Type conflict: hand back a working instrument that is simply never
    // rendered, so the call site stays correct and the exposition stays
    // valid.
    detached_.push_back(std::make_unique<Sample>());
    make_sample(*detached_.back());
    return detached_.back().get();
  }

  auto [sample_it, sample_inserted] = family.samples.try_emplace(key);
  if (sample_inserted) make_sample(sample_it->second);
  return &sample_it->second;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help, Labels labels) {
  return GetSample(name, help, Type::kCounter, std::move(labels), nullptr)
      ->counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, std::string_view help,
                                 Labels labels) {
  return GetSample(name, help, Type::kGauge, std::move(labels), nullptr)
      ->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help,
                                         std::vector<double> buckets,
                                         Labels labels) {
  if (buckets.empty()) buckets = Histogram::DefaultLatencyBucketsSeconds();
  return GetSample(name, help, Type::kHistogram, std::move(labels), &buckets)
      ->histogram.get();
}

size_t MetricsRegistry::num_families() const {
  MutexLock lock(mu_);
  return families_.size();
}

std::string MetricsRegistry::RenderPrometheus() const {
  MutexLock lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    out += "# HELP " + name + " " + family.help + "\n";
    out += "# TYPE " + name + " ";
    switch (family.type) {
      case Type::kCounter: out += "counter\n"; break;
      case Type::kGauge: out += "gauge\n"; break;
      case Type::kHistogram: out += "histogram\n"; break;
    }
    for (const auto& [key, sample] : family.samples) {
      switch (family.type) {
        case Type::kCounter:
          out += name + key + " " + std::to_string(sample.counter->Value()) +
                 "\n";
          break;
        case Type::kGauge:
          out += name + key + " " + Num(sample.gauge->Value()) + "\n";
          break;
        case Type::kHistogram: {
          const Histogram& h = *sample.histogram;
          const std::vector<int64_t> cumulative = h.CumulativeCounts();
          for (size_t b = 0; b < h.bucket_bounds().size(); ++b) {
            out += name + "_bucket" +
                   RenderLabelsWithLe(sample.labels,
                                      Num(h.bucket_bounds()[b])) +
                   " " + std::to_string(cumulative[b]) + "\n";
          }
          out += name + "_bucket" + RenderLabelsWithLe(sample.labels, "+Inf") +
                 " " + std::to_string(cumulative.back()) + "\n";
          out += name + "_sum" + key + " " + Num(h.Sum()) + "\n";
          out += name + "_count" + key + " " +
                 std::to_string(cumulative.back()) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace ppdb::obs

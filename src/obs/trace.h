#ifndef PPDB_OBS_TRACE_H_
#define PPDB_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace ppdb::obs {

/// One timed operation inside a trace. Spans form a tree via
/// `parent_index` into the owning trace's flat `spans` vector (-1 for the
/// root), in start order, so a trace is reconstructible without pointer
/// chasing and serializes deterministically.
struct SpanRecord {
  std::string name;
  int32_t parent_index = -1;
  /// Microseconds relative to the trace's start, so serialized traces are
  /// stable across wall-clock epochs.
  int64_t start_us = 0;
  int64_t duration_us = 0;
  /// Small key=value annotations (e.g. providers=1000, shards=2).
  std::vector<std::pair<std::string, std::string>> notes;
};

/// A completed per-request span tree. `trace_id` is deterministic: it is
/// derived from the broker request id (`ppdb-req-<id>`), never from a
/// random source, so identical runs produce identical trace dumps.
struct TraceRecord {
  std::string trace_id;
  std::string name;
  /// Microseconds since the tracer clock epoch at which the trace started.
  int64_t start_us = 0;
  int64_t duration_us = 0;
  std::vector<SpanRecord> spans;

  /// One JSON object, single line, keys in fixed order.
  std::string ToJson() const;
};

/// Collects the last N completed traces in a ring. Span creation inside an
/// active trace is mutex-free for the owning thread (the trace under
/// construction is thread_local); the tracer mutex is taken once per
/// completed trace to push into the ring.
///
/// The clock is injectable so tests can step time and assert byte-exact
/// JSON.
class Tracer {
 public:
  struct Options {
    /// Completed traces retained (oldest evicted first). Clamped >= 1.
    size_t ring_capacity = 64;
    /// Replacement clock for tests; nullptr uses steady_clock::now.
    std::function<std::chrono::steady_clock::time_point()> clock;
  };

  /// The process-wide default tracer (ring_capacity = 64, real clock).
  static Tracer& Default();

  Tracer() : Tracer(Options()) {}
  explicit Tracer(Options options);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Snapshot of the ring, oldest first.
  std::vector<TraceRecord> Snapshot() const;

  /// JSON array of `Snapshot()`, oldest first, on a single line.
  std::string SnapshotJson() const;

  /// Total traces ever completed (ring evictions included).
  int64_t traces_completed() const PPDB_EXCLUDES(mu_);

  /// Replaces the clock. Thread-safe: the clock lives behind its own
  /// mutex, so swapping it mid-traffic (a test stepping time while broker
  /// workers trace) is a synchronized hand-off, not a data race. Spans
  /// started before the swap keep whatever timestamps they already took.
  void set_clock(std::function<std::chrono::steady_clock::time_point()> clock)
      PPDB_EXCLUDES(clock_mu_);

 private:
  friend class TraceScope;
  friend class SpanScope;

  std::chrono::steady_clock::time_point Now() const PPDB_EXCLUDES(clock_mu_);
  void Commit(TraceRecord record) PPDB_EXCLUDES(mu_);

  Options options_;
  /// Guards only the clock: Now() is on the per-span hot path and must not
  /// contend with ring pushes in Commit(), which mu_ serializes.
  mutable Mutex clock_mu_{"trace_clock"} PPDB_LOCK_LEVEL(trace_clock)
      PPDB_ACQUIRED_AFTER(trace_ring) PPDB_ACQUIRED_BEFORE(metrics);
  std::function<std::chrono::steady_clock::time_point()> clock_
      PPDB_GUARDED_BY(clock_mu_);
  mutable Mutex mu_{"trace_ring"} PPDB_LOCK_LEVEL(trace_ring)
      PPDB_ACQUIRED_AFTER(pool) PPDB_ACQUIRED_BEFORE(trace_clock);
  std::deque<TraceRecord> ring_ PPDB_GUARDED_BY(mu_);
  int64_t completed_ PPDB_GUARDED_BY(mu_) = 0;
};

/// RAII root of a trace: starts the thread_local active trace on
/// construction, completes it and commits to the tracer's ring on
/// destruction. At most one TraceScope may be live per thread; a nested
/// TraceScope on the same thread is inert (spans keep attaching to the
/// outer trace) so layered instrumentation composes without coordination.
class TraceScope {
 public:
  /// `trace_id` should be deterministic (e.g. "ppdb-req-42" from the
  /// broker's request id); `name` labels the operation (e.g. "analyze").
  TraceScope(Tracer& tracer, std::string trace_id, std::string name);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  /// Whether this scope owns the thread's active trace (false when nested).
  bool active() const { return owns_; }

 private:
  Tracer* tracer_ = nullptr;
  bool owns_ = false;
  std::chrono::steady_clock::time_point started_;
};

/// RAII span inside the thread's active trace: records itself (with
/// wall-clock duration) into the trace's span tree on destruction. A
/// no-op when no trace is active on this thread, so instrumented code
/// needs no "is tracing on?" branches.
class SpanScope {
 public:
  explicit SpanScope(std::string_view name);
  ~SpanScope();

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  /// Attaches a key=value annotation (no-op when not recording).
  void Note(std::string_view key, std::string_view value);
  void Note(std::string_view key, int64_t value);

  /// Whether a trace is active and this span is recording.
  bool recording() const { return index_ >= 0; }

 private:
  int32_t index_ = -1;
  int32_t prior_parent_ = -1;
  std::chrono::steady_clock::time_point started_;
};

}  // namespace ppdb::obs

#endif  // PPDB_OBS_TRACE_H_

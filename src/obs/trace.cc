#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace ppdb::obs {

namespace {

/// The trace currently being built on this thread, if any. Owned by the
/// TraceScope that started it; spans append via the raw pointer without
/// locking because only the owning thread touches it.
struct ActiveTrace {
  Tracer* tracer = nullptr;
  TraceRecord record;
  std::chrono::steady_clock::time_point epoch;
  /// Parent index for the next span started on this thread (-1 = root).
  int32_t current_parent = -1;
};

thread_local ActiveTrace* t_active = nullptr;

std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

int64_t MicrosBetween(std::chrono::steady_clock::time_point from,
                      std::chrono::steady_clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::microseconds>(to - from)
      .count();
}

}  // namespace

// --- TraceRecord -----------------------------------------------------------

std::string TraceRecord::ToJson() const {
  std::string out = "{\"trace_id\":\"" + EscapeJson(trace_id) +
                    "\",\"name\":\"" + EscapeJson(name) +
                    "\",\"start_us\":" + std::to_string(start_us) +
                    ",\"duration_us\":" + std::to_string(duration_us) +
                    ",\"spans\":[";
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& span = spans[i];
    if (i > 0) out += ',';
    out += "{\"name\":\"" + EscapeJson(span.name) +
           "\",\"parent\":" + std::to_string(span.parent_index) +
           ",\"start_us\":" + std::to_string(span.start_us) +
           ",\"duration_us\":" + std::to_string(span.duration_us);
    if (!span.notes.empty()) {
      out += ",\"notes\":{";
      for (size_t n = 0; n < span.notes.size(); ++n) {
        if (n > 0) out += ',';
        out += "\"" + EscapeJson(span.notes[n].first) + "\":\"" +
               EscapeJson(span.notes[n].second) + "\"";
      }
      out += '}';
    }
    out += '}';
  }
  out += "]}";
  return out;
}

// --- Tracer ----------------------------------------------------------------

Tracer& Tracer::Default() {
  // Leaked for the same reason as MetricsRegistry::Default: static users.
  static Tracer* tracer = new Tracer();  // ppdb-lint: allow(raw-new)
  return *tracer;
}

Tracer::Tracer(Options options) : options_(std::move(options)) {
  options_.ring_capacity = std::max<size_t>(1, options_.ring_capacity);
  clock_ = std::move(options_.clock);
}

std::chrono::steady_clock::time_point Tracer::Now() const {
  MutexLock lock(clock_mu_);
  return clock_ ? clock_() : std::chrono::steady_clock::now();
}

void Tracer::Commit(TraceRecord record) {
  MutexLock lock(mu_);
  ring_.push_back(std::move(record));
  while (ring_.size() > options_.ring_capacity) ring_.pop_front();
  ++completed_;
}

std::vector<TraceRecord> Tracer::Snapshot() const {
  MutexLock lock(mu_);
  return std::vector<TraceRecord>(ring_.begin(), ring_.end());
}

std::string Tracer::SnapshotJson() const {
  const std::vector<TraceRecord> traces = Snapshot();
  std::string out = "[";
  for (size_t i = 0; i < traces.size(); ++i) {
    if (i > 0) out += ',';
    out += traces[i].ToJson();
  }
  out += ']';
  return out;
}

int64_t Tracer::traces_completed() const {
  MutexLock lock(mu_);
  return completed_;
}

void Tracer::set_clock(
    std::function<std::chrono::steady_clock::time_point()> clock) {
  MutexLock lock(clock_mu_);
  clock_ = std::move(clock);
}

// --- TraceScope ------------------------------------------------------------

TraceScope::TraceScope(Tracer& tracer, std::string trace_id,
                       std::string name) {
  if (t_active != nullptr) return;  // nested: attach to the outer trace
  tracer_ = &tracer;
  owns_ = true;
  started_ = tracer.Now();
  // ppdb-lint: allow(raw-new) -- ownership passes through the thread_local
  // raw pointer; the owning TraceScope deletes it in its destructor.
  auto* active = new ActiveTrace();
  active->tracer = &tracer;
  active->epoch = started_;
  active->record.trace_id = std::move(trace_id);
  active->record.name = std::move(name);
  active->record.start_us = MicrosBetween(
      std::chrono::steady_clock::time_point{}, started_);
  t_active = active;
}

TraceScope::~TraceScope() {
  if (!owns_) return;
  ActiveTrace* active = t_active;
  t_active = nullptr;
  active->record.duration_us = MicrosBetween(started_, tracer_->Now());
  tracer_->Commit(std::move(active->record));
  delete active;
}

// --- SpanScope -------------------------------------------------------------

SpanScope::SpanScope(std::string_view name) {
  ActiveTrace* active = t_active;
  if (active == nullptr) return;
  started_ = active->tracer->Now();
  SpanRecord span;
  span.name = std::string(name);
  span.parent_index = active->current_parent;
  span.start_us = MicrosBetween(active->epoch, started_);
  index_ = static_cast<int32_t>(active->record.spans.size());
  active->record.spans.push_back(std::move(span));
  prior_parent_ = active->current_parent;
  active->current_parent = index_;
}

SpanScope::~SpanScope() {
  if (index_ < 0) return;
  ActiveTrace* active = t_active;
  if (active == nullptr) return;  // trace ended before the span (bug guard)
  active->record.spans[static_cast<size_t>(index_)].duration_us =
      MicrosBetween(started_, active->tracer->Now());
  active->current_parent = prior_parent_;
}

void SpanScope::Note(std::string_view key, std::string_view value) {
  if (index_ < 0 || t_active == nullptr) return;
  t_active->record.spans[static_cast<size_t>(index_)].notes.emplace_back(
      std::string(key), std::string(value));
}

void SpanScope::Note(std::string_view key, int64_t value) {
  Note(key, std::string_view(std::to_string(value)));
}

}  // namespace ppdb::obs

#ifndef PPDB_OBS_METRICS_H_
#define PPDB_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace ppdb::obs {

/// Shards per hot-path metric. Each thread is pinned round-robin to one
/// cache-line-padded slot, so concurrent `Counter::Add` /
/// `Histogram::Observe` calls from distinct threads pay one relaxed
/// fetch_add on distinct cache lines instead of bouncing a shared line.
inline constexpr size_t kMetricShards = 16;

namespace internal {

/// One cache-line-isolated atomic cell of a sharded metric.
struct alignas(64) ShardedSlot {
  std::atomic<int64_t> value{0};
};

/// One cache-line-isolated double accumulator (CAS-add; see AddDouble).
struct alignas(64) ShardedDoubleSlot {
  std::atomic<double> value{0.0};
};

/// The calling thread's shard index, assigned round-robin on first use.
size_t ShardIndex();

/// Relaxed compare-exchange add for pre-C++20-fetch_add portability.
void AddDouble(std::atomic<double>& target, double delta);

}  // namespace internal

/// A monotonically increasing counter. `Add` is lock-free and touches only
/// the calling thread's shard; `Value` sums the shards (each shard read is
/// atomic, so the sum never under-counts a completed Add, though a sum
/// taken mid-traffic is not a single instant — see
/// `RequestBroker::Stats()` for the locked, mutually consistent view).
class Counter {
 public:
  void Add(int64_t delta = 1) {
    shards_[internal::ShardIndex()].value.fetch_add(delta,
                                                    std::memory_order_relaxed);
  }
  int64_t Value() const;

 private:
  friend class MetricsRegistry;
  Counter() = default;
  std::array<internal::ShardedSlot, kMetricShards> shards_;
};

/// A last-writer-wins instantaneous value (queue depth, breaker state,
/// P(W)). Not sharded: gauges are written at state transitions, not on the
/// per-request hot path.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

/// A fixed-bucket histogram (Prometheus classic style): `Observe` is one
/// relaxed add on the calling thread's shard of the matching bucket plus a
/// sharded sum update; `Percentile` reconstructs quantiles from the bucket
/// counts by linear interpolation, which is exact to within one bucket
/// width. Bucket bounds are fixed at registration so observation never
/// allocates or locks.
class Histogram {
 public:
  /// Upper bounds (seconds) tuned for request latencies: ~100us to 10s,
  /// roughly 2-2.5x apart. An implicit +Inf bucket is always appended.
  static std::vector<double> DefaultLatencyBucketsSeconds();

  void Observe(double value);

  /// Total observations (exact: shards never drop an Observe).
  int64_t Count() const;
  /// Sum of observed values (exact for integer-valued observations within
  /// 2^53; otherwise subject to double rounding only).
  double Sum() const;
  /// The q-quantile (q in [0,1]) reconstructed from bucket counts: linear
  /// interpolation inside the selected bucket, the bucket's lower bound for
  /// q=0, and the highest finite bound when the quantile lands in the +Inf
  /// bucket. Returns 0 when empty.
  double Percentile(double q) const;

  /// Ascending finite upper bounds (the +Inf bucket is implicit).
  const std::vector<double>& bucket_bounds() const { return bounds_; }
  /// Cumulative counts per bucket, ending with the +Inf bucket == Count().
  std::vector<int64_t> CumulativeCounts() const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);

  /// counts_[shard * (bounds_.size() + 1) + bucket]; fixed-size array
  /// because atomics are neither copyable nor movable.
  std::vector<double> bounds_;
  std::unique_ptr<internal::ShardedSlot[]> counts_;
  std::array<internal::ShardedDoubleSlot, kMetricShards> sums_;
};

/// Label set of one sample, e.g. {{"lane", "priority"}}. Order is
/// preserved in the rendered output.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// A process-wide registry of named metrics with Prometheus text-format
/// export.
///
/// `Get*` registers on first use and returns the same stable pointer on
/// every later call with the same (name, labels); instrumented code caches
/// the pointer (typically in a function-local static struct) so the hot
/// path never touches the registry mutex. Samples sharing a name form one
/// family rendered under a single `# HELP` / `# TYPE` header.
///
/// Misuse is non-fatal by design: a name re-registered as a different
/// metric type gets a detached instrument that works but is not exported,
/// so a buggy call site cannot corrupt the exposition.
class MetricsRegistry {
 public:
  /// The process-wide default registry every ppdb layer registers into.
  static MetricsRegistry& Default();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name, std::string_view help,
                      Labels labels = {});
  Gauge* GetGauge(std::string_view name, std::string_view help,
                  Labels labels = {});
  /// `buckets` empty means `Histogram::DefaultLatencyBucketsSeconds()`.
  /// Bounds are sorted and deduplicated; they apply to the whole family
  /// (the first registration wins).
  Histogram* GetHistogram(std::string_view name, std::string_view help,
                          std::vector<double> buckets = {},
                          Labels labels = {});

  /// Prometheus text exposition format, families in name order, samples in
  /// label order. Histograms emit cumulative `_bucket{le=...}` samples plus
  /// `_sum` and `_count`.
  std::string RenderPrometheus() const PPDB_EXCLUDES(mu_);

  /// Registered family count (for tests).
  size_t num_families() const PPDB_EXCLUDES(mu_);

 private:
  enum class Type { kCounter, kGauge, kHistogram };

  struct Sample {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    Type type = Type::kCounter;
    std::string help;
    std::vector<double> buckets;  // histogram families only
    std::map<std::string, Sample> samples;  // keyed by rendered label string
  };

  Sample* GetSample(std::string_view name, std::string_view help, Type type,
                    Labels labels, const std::vector<double>* buckets)
      PPDB_EXCLUDES(mu_);

  /// The innermost level of the global lock order: any component may
  /// register instruments while holding its own lock, and the registry
  /// acquires nothing in turn (instrument mutation is lock-free atomics).
  mutable Mutex mu_{"metrics"} PPDB_LOCK_LEVEL(metrics)
      PPDB_ACQUIRED_AFTER(trace_clock);
  std::map<std::string, Family> families_ PPDB_GUARDED_BY(mu_);
  /// Type-conflicted instruments: alive, functional, never exported.
  std::vector<std::unique_ptr<Sample>> detached_ PPDB_GUARDED_BY(mu_);
};

}  // namespace ppdb::obs

#endif  // PPDB_OBS_METRICS_H_

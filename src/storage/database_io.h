#ifndef PPDB_STORAGE_DATABASE_IO_H_
#define PPDB_STORAGE_DATABASE_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "audit/audit_log.h"
#include "audit/ledger.h"
#include "common/result.h"
#include "common/retry.h"
#include "privacy/config.h"
#include "relational/catalog.h"
#include "storage/fs.h"

namespace ppdb::storage {

/// Everything that constitutes one ppdb database on disk.
struct Database {
  rel::Catalog catalog;
  privacy::PrivacyConfig config;
  audit::IngestLedger ledger;
  audit::AuditLog log;
};

/// On-disk layout (all human-readable text, matching the library's
/// existing formats). A database directory holds numbered, immutable
/// generations plus a pointer file naming the committed one:
///
///   <dir>/CURRENT               "gen-<N>\n" — the committed generation
///   <dir>/gen-<N>/MANIFEST      format version + table inventory
///   <dir>/gen-<N>/privacy.ppdb  the privacy DSL (policy_dsl.h)
///   <dir>/gen-<N>/tables/<name>.csv
///                               one CSV per table (provider_id first)
///   <dir>/gen-<N>/ledger.csv    table,provider,attribute,ingest_day
///   <dir>/gen-<N>/audit.csv     the append-only audit log
///   <dir>/.staging-<N>/         an in-progress save; never read
///   <dir>/journal-gen-<N>       write-ahead event journal atop gen-<N>
///                               (see storage/journal.h; "journal-flat"
///                               for the pre-generation layout)
///
/// Commit protocol (crash-safe at every step):
///   1. every file is written into a fresh `.staging-<N>/`,
///   2. the staging dir is renamed to `gen-<N>/`,
///   3. `CURRENT` is swapped via temp-file + rename — the commit point.
/// The previous generation is retained for rollback; older ones and stray
/// staging dirs are pruned best-effort after commit. A crash anywhere
/// leaves either the old or the new generation committed, never a hybrid;
/// `LoadDatabase` discards torn leftovers (see `RecoveryReport`).
///
/// Pre-generation directories (MANIFEST at the top level) still load.
///
/// Thread safety: the free functions here are thread-compatible — they
/// mutate only the directory passed in and keep no shared mutable state
/// (metric instruments are sharded/atomic). Callers serialize saves per
/// database directory; `DatabaseService` does so under its writer lock.
struct SaveOptions {
  /// Bounded retry for transient (`kUnavailable`) filesystem faults on the
  /// staging writes and commit renames. `max_attempts = 1` disables.
  RetryOptions retry;
};

/// What `LoadDatabase` had to skip or repair to produce a database.
struct RecoveryReport {
  /// Name of the generation actually loaded, e.g. "gen-3"; "flat" for a
  /// pre-generation directory.
  std::string loaded_generation;
  /// Entries ignored during load: uncommitted staging dirs, generations
  /// newer than CURRENT, torn generations (with the load error), and
  /// stale or damaged journal segments.
  std::vector<std::string> discarded;
  /// True when the generation CURRENT named could not be loaded and an
  /// older committed generation was used instead.
  bool used_fallback = false;
  /// Write-ahead journal records replayed on top of the loaded
  /// generation — acknowledged events a crash kept out of a checkpoint.
  int64_t journal_replayed = 0;
  /// True when the journal ended in a torn record (amputated cleanly;
  /// a torn record was never acknowledged).
  bool journal_torn_tail = false;

  /// True when the load needed no recovery of any kind. Replayed journal
  /// events count as recovery: the in-memory state is ahead of the
  /// committed generation until the next checkpoint re-commits it.
  bool clean() const {
    return discarded.empty() && !used_fallback && journal_replayed == 0 &&
           !journal_torn_tail;
  }
  /// Human-readable multi-line summary.
  std::string ToString() const;
};

/// Atomically saves `database` (commit protocol above) via the process-wide
/// real filesystem.
Status SaveDatabase(std::string_view dir, const Database& database);

/// As above through an explicit filesystem (tests inject faults here).
Status SaveDatabase(std::string_view dir, const Database& database,
                    FileSystem& fs, const SaveOptions& options = {});

/// As above; on success `committed_generation` (when non-null) receives
/// the generation name just committed, e.g. "gen-4" — the base the
/// service rotates its journal segment to. A successful save prunes all
/// `journal-*` segments (their events are inside the new generation).
Status SaveDatabase(std::string_view dir, const Database& database,
                    FileSystem& fs, const SaveOptions& options,
                    std::string* committed_generation);

/// Loads the committed generation of a database directory. Schema types
/// are recorded in the manifest, so round-trips preserve typing exactly.
/// A nonexistent `dir` is `kNotFound` naming the path.
Result<Database> LoadDatabase(std::string_view dir);

/// As above through an explicit filesystem. When `report` is non-null it
/// receives what was skipped or recovered; falling back to an older
/// committed generation is not an error (the save that produced the newer
/// one never reported success).
Result<Database> LoadDatabase(std::string_view dir, FileSystem& fs,
                              RecoveryReport* report = nullptr);

/// Serializes an audit log to CSV (also usable standalone).
std::string AuditLogToCsv(const audit::AuditLog& log);

/// Parses an audit log from `AuditLogToCsv` output.
Result<audit::AuditLog> AuditLogFromCsv(std::string_view csv);

/// Serializes an ingest ledger to CSV.
std::string LedgerToCsv(const audit::IngestLedger& ledger);

/// Parses a ledger from `LedgerToCsv` output.
Result<audit::IngestLedger> LedgerFromCsv(std::string_view csv);

}  // namespace ppdb::storage

#endif  // PPDB_STORAGE_DATABASE_IO_H_

#ifndef PPDB_STORAGE_DATABASE_IO_H_
#define PPDB_STORAGE_DATABASE_IO_H_

#include <string>
#include <string_view>

#include "audit/audit_log.h"
#include "audit/ledger.h"
#include "common/result.h"
#include "privacy/config.h"
#include "relational/catalog.h"

namespace ppdb::storage {

/// Everything that constitutes one ppdb database on disk.
struct Database {
  rel::Catalog catalog;
  privacy::PrivacyConfig config;
  audit::IngestLedger ledger;
  audit::AuditLog log;
};

/// On-disk layout (all human-readable text, matching the library's
/// existing formats):
///
///   <dir>/MANIFEST            format version + table inventory
///   <dir>/privacy.ppdb        the privacy DSL (policy_dsl.h)
///   <dir>/tables/<name>.csv   one CSV per table (provider_id first);
///                             a header line `# multi_record` marks tables
///                             in multi-record mode via the manifest
///   <dir>/ledger.csv          table,provider,attribute,ingest_day
///   <dir>/audit.csv           the append-only audit log
///
/// `SaveDatabase` creates the directory (and `tables/`) as needed and
/// overwrites existing files; partially written state from a crashed save
/// is detected at load time via the manifest's table inventory.
Status SaveDatabase(std::string_view dir, const Database& database);

/// Loads a database previously written by `SaveDatabase`. Schema types are
/// recorded in the manifest, so round-trips preserve typing exactly.
Result<Database> LoadDatabase(std::string_view dir);

/// Serializes an audit log to CSV (also usable standalone).
std::string AuditLogToCsv(const audit::AuditLog& log);

/// Parses an audit log from `AuditLogToCsv` output.
Result<audit::AuditLog> AuditLogFromCsv(std::string_view csv);

/// Serializes an ingest ledger to CSV.
std::string LedgerToCsv(const audit::IngestLedger& ledger);

/// Parses a ledger from `LedgerToCsv` output.
Result<audit::IngestLedger> LedgerFromCsv(std::string_view csv);

}  // namespace ppdb::storage

#endif  // PPDB_STORAGE_DATABASE_IO_H_

#ifndef PPDB_STORAGE_JOURNAL_H_
#define PPDB_STORAGE_JOURNAL_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "privacy/config.h"
#include "storage/fs.h"

namespace ppdb::storage {

/// Write-ahead event journal.
///
/// Generation checkpoints (`SaveDatabase`) make durability checkpoint-
/// granular: a crash between checkpoints loses every event the service
/// already acknowledged since the last one. The journal closes that gap.
/// Every mutating event is encoded, CRC-framed, appended to the active
/// segment and fsync'd *before* it is applied in memory and acknowledged;
/// `LoadDatabase` replays the surviving tail on top of the committed
/// generation, so an acknowledged event survives any crash.
///
/// On-disk format of one segment (`<dir>/journal-<generation>`):
///
///   ppdb-journal v1 base=<generation>\n        — text header line
///   [u32 length LE][u32 crc32c LE][payload]    — repeated binary records
///
/// The CRC covers the payload. A torn final record (short frame, length
/// beyond EOF, or CRC mismatch) is a *clean stop*: everything before it
/// replays, the tail is reported and amputated, and nothing after a bad
/// frame is ever looked at — a record that was never fsync-acknowledged
/// was never acknowledged to a client either.
///
/// Lifecycle: a successful checkpoint commits every applied event into a
/// new generation, prunes all `journal-*` segments (`SaveDatabase` does
/// this best-effort after its commit point), and the service then calls
/// `RotateTo(new generation)` to start a fresh segment. Between a failed
/// append/fsync and the next successful checkpoint the journal is
/// *wedged*: appends fail with the original error so no event can be
/// acknowledged without durability, and a best-effort truncate amputates
/// whatever the failed batch may have partially written.
///
/// Group commit: concurrent appenders under the broker's writer lanes
/// share one fsync. The first appender to find no flush in progress
/// becomes the leader, optionally sleeps `Options::batch_window` to let
/// followers pile on, then writes and syncs the whole pending buffer as
/// one batch with the journal mutex released during I/O. Batch sizes and
/// fsync latencies land in the `ppdb_journal_batch_records` /
/// `ppdb_journal_fsync_seconds` histograms.
class Journal {
 public:
  struct Options {
    /// How long a group-commit leader waits for followers before syncing.
    /// 0 = sync immediately (latency-first); contention still batches.
    std::chrono::microseconds batch_window{0};
  };

  /// "journal-" — every segment name starts with this.
  static constexpr std::string_view kSegmentPrefix = "journal-";

  /// The segment name for a base generation, e.g. "journal-gen-3".
  static std::string SegmentNameFor(std::string_view generation);

  /// Opens (or creates) the segment for `base_generation` inside `dir`.
  /// An existing segment keeps its valid records — the service appends
  /// after the tail `LoadDatabase` just replayed — and a torn tail is
  /// truncated away first. A segment whose header does not match is
  /// recreated empty. `fs` must outlive the journal.
  static Result<std::unique_ptr<Journal>> Open(std::string dir,
                                               std::string base_generation,
                                               FileSystem& fs,
                                               Options options);

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;
  ~Journal();

  /// Appends one record and returns once it is fsync-durable (possibly as
  /// part of a shared batch). On any append/fsync failure the journal
  /// wedges and the caller must not apply or acknowledge the event.
  Status Append(std::string_view payload) PPDB_EXCLUDES(mu_);

  /// Starts a fresh segment for `generation` after a successful
  /// checkpoint, clearing any wedge. On failure the journal stays (or
  /// becomes) wedged.
  Status RotateTo(std::string_view generation) PPDB_EXCLUDES(mu_);

  /// True after an append/fsync failure until a successful `RotateTo`.
  bool wedged() const PPDB_EXCLUDES(mu_);

  /// Name of the active segment, e.g. "journal-gen-3".
  std::string segment_name() const PPDB_EXCLUDES(mu_);

  /// Durable bytes in the active segment (header included).
  uint64_t active_segment_bytes() const PPDB_EXCLUDES(mu_);

  /// Durable records in the active segment (survives reopen).
  int64_t records_in_segment() const PPDB_EXCLUDES(mu_);

 private:
  Journal(std::string dir, FileSystem& fs, Options options);

  /// Opens the segment for `base_generation`: `resume` keeps an existing
  /// segment's valid records (truncating a torn tail), otherwise the
  /// segment starts over (rotation).
  Status OpenSegmentLocked(const std::string& base_generation, bool resume)
      PPDB_REQUIRES(mu_);

  const std::string dir_;
  FileSystem& fs_;
  const Options options_;

  mutable Mutex mu_{"journal"} PPDB_LOCK_LEVEL(journal)
      PPDB_ACQUIRED_AFTER(service) PPDB_ACQUIRED_BEFORE(breaker);
  CondVar cv_;
  std::unique_ptr<AppendableFile> file_ PPDB_GUARDED_BY(mu_);
  std::string segment_name_ PPDB_GUARDED_BY(mu_);
  std::string segment_path_ PPDB_GUARDED_BY(mu_);
  /// Encoded frames accepted but not yet handed to a flush batch.
  std::string pending_ PPDB_GUARDED_BY(mu_);
  int64_t pending_records_ PPDB_GUARDED_BY(mu_) = 0;
  /// Ticket of the newest accepted record / newest durable record. An
  /// append returns OK iff durable_lsn_ reaches its own ticket.
  uint64_t next_lsn_ PPDB_GUARDED_BY(mu_) = 0;
  uint64_t durable_lsn_ PPDB_GUARDED_BY(mu_) = 0;
  /// True while a leader is flushing with mu_ released.
  bool flush_in_progress_ PPDB_GUARDED_BY(mu_) = false;
  /// Bytes known durable in the segment — the truncation target after a
  /// failed batch, whose partial bytes must not survive.
  uint64_t durable_bytes_ PPDB_GUARDED_BY(mu_) = 0;
  int64_t durable_records_ PPDB_GUARDED_BY(mu_) = 0;
  Status wedge_status_ PPDB_GUARDED_BY(mu_);
  bool wedged_ PPDB_GUARDED_BY(mu_) = false;
};

/// What one segment's raw bytes contain, as far as they are trustworthy.
struct JournalScan {
  /// The base generation named in the header, e.g. "gen-3".
  std::string base_generation;
  /// Payloads of every CRC-valid record, in order.
  std::vector<std::string> payloads;
  /// Bytes up to and including the last valid record (header included) —
  /// the truncation point that amputates a torn tail.
  uint64_t valid_bytes = 0;
  /// True when trailing bytes exist past the last valid record.
  bool torn_tail = false;
  /// Why the scan stopped early, e.g. "crc mismatch at offset 57".
  std::string torn_detail;
};

/// Parses one segment's bytes. Pure function of the input (the fuzz
/// surface): any byte string either scans — possibly with a torn tail —
/// or fails cleanly on a bad header. No payload with a failing CRC is
/// ever returned.
Result<JournalScan> ScanJournalSegment(std::string_view contents);

/// One replayable event — the journal's unit of payload, mirroring the
/// five mutating request kinds of the serve protocol.
struct JournalEvent {
  enum class Kind {
    kAddProvider,
    kRemoveProvider,
    kSetPreference,
    kRemovePreference,
    kSetThreshold,
  };

  Kind kind = Kind::kAddProvider;
  int64_t provider = 0;
  /// kAddProvider / kSetThreshold.
  double threshold = 0.0;
  /// kSetPreference / kRemovePreference.
  std::string attribute;
  /// Purpose *name* (ids are registry-relative; names survive reload).
  std::string purpose;
  int visibility = 0;
  int granularity = 0;
  int retention = 0;

  /// Single-line text payload, e.g. "pref 7 weight marketing 1 2 0".
  std::string Encode() const;

  /// Parses `Encode` output.
  static Result<JournalEvent> Decode(std::string_view payload);

  /// Checks the event would apply cleanly against `config` — the same
  /// preconditions the live monitor's event API enforces — without
  /// mutating anything. The service validates before appending, so a
  /// journal only ever holds events that were acknowledged `ok`.
  Status Validate(const privacy::PrivacyConfig& config) const;

  /// Applies the event to `config` (preferences + thresholds), enforcing
  /// `Validate`'s preconditions.
  Status Apply(privacy::PrivacyConfig& config) const;
};

/// Outcome of replaying one segment on top of its base generation.
struct JournalReplayResult {
  /// Events decoded, validated, and applied.
  int64_t replayed = 0;
  /// A torn tail was amputated (clean stop, not an error).
  bool torn_tail = false;
  std::string torn_detail;
  /// OK, or why replay stopped before the end (a record that fails to
  /// decode or apply — possible only if the journal and checkpoint
  /// disagree, e.g. after manual edits). Events before the stop stay
  /// applied; nothing after it is.
  Status stopped;
};

/// Replays a segment's events onto `config`. Errors (nothing applied)
/// when the bytes are not a journal or the header's base generation is
/// not `expected_base` — a stale segment from before the last checkpoint
/// must be discarded, not replayed.
Result<JournalReplayResult> ReplayJournal(std::string_view contents,
                                          std::string_view expected_base,
                                          privacy::PrivacyConfig& config);

}  // namespace ppdb::storage

#endif  // PPDB_STORAGE_JOURNAL_H_

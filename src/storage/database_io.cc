#include "storage/database_io.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/macros.h"
#include "common/string_util.h"
#include "privacy/policy_dsl.h"
#include "relational/csv.h"

namespace ppdb::storage {

namespace fs = std::filesystem;

namespace {

constexpr char kManifestName[] = "MANIFEST";
constexpr char kManifestHeader[] = "ppdb-manifest v1";

Status WriteFile(const fs::path& path, std::string_view contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot open '" + path.string() +
                            "' for writing");
  }
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size()));
  out.flush();
  if (!out) {
    return Status::Internal("write to '" + path.string() + "' failed");
  }
  return Status::OK();
}

Result<std::string> ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open '" + path.string() +
                            "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in && !in.eof()) {
    return Status::Internal("read from '" + path.string() + "' failed");
  }
  return std::move(buffer).str();
}

std::string OptionalToField(const std::optional<std::string>& value) {
  return value.value_or("");
}

}  // namespace

std::string AuditLogToCsv(const audit::AuditLog& log) {
  std::string out =
      "sequence,timestamp,kind,requester,purpose,table,provider,attribute,"
      "detail\n";
  for (const audit::AuditEvent& event : log.events()) {
    out += std::to_string(event.sequence);
    out += ',' + std::to_string(event.timestamp);
    out += ',';
    out += AuditEventKindName(event.kind);
    out += ',' + CsvEscape(event.requester);
    out += ',' + std::to_string(event.purpose);
    out += ',' + CsvEscape(event.table);
    out += ',';
    if (event.provider.has_value()) out += std::to_string(*event.provider);
    out += ',' + CsvEscape(OptionalToField(event.attribute));
    out += ',' + CsvEscape(event.detail);
    out += '\n';
  }
  return out;
}

Result<audit::AuditLog> AuditLogFromCsv(std::string_view csv) {
  PPDB_ASSIGN_OR_RETURN(auto rows, rel::ParseCsv(csv));
  if (rows.empty()) return Status::ParseError("audit CSV has no header");
  audit::AuditLog log;
  for (size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() != 9) {
      return Status::ParseError("audit CSV row " + std::to_string(r) +
                                " has " + std::to_string(row.size()) +
                                " fields, expected 9");
    }
    audit::AuditEvent event;
    PPDB_ASSIGN_OR_RETURN(event.timestamp, ParseInt64(row[1]));
    PPDB_ASSIGN_OR_RETURN(event.kind, audit::AuditEventKindFromName(row[2]));
    event.requester = row[3];
    PPDB_ASSIGN_OR_RETURN(int64_t purpose, ParseInt64(row[4]));
    event.purpose = static_cast<privacy::PurposeId>(purpose);
    event.table = row[5];
    if (!row[6].empty()) {
      PPDB_ASSIGN_OR_RETURN(int64_t provider, ParseInt64(row[6]));
      event.provider = provider;
    }
    if (!row[7].empty()) event.attribute = row[7];
    event.detail = row[8];
    log.Append(std::move(event));  // Reassigns sequence densely, in order.
  }
  return log;
}

std::string LedgerToCsv(const audit::IngestLedger& ledger) {
  std::string out = "table,provider,attribute,ingest_day\n";
  for (const audit::IngestLedger::Entry& entry : ledger.Entries()) {
    out += CsvEscape(entry.table);
    out += ',' + std::to_string(entry.provider);
    out += ',' + CsvEscape(entry.attribute);
    out += ',' + std::to_string(entry.day);
    out += '\n';
  }
  return out;
}

Result<audit::IngestLedger> LedgerFromCsv(std::string_view csv) {
  PPDB_ASSIGN_OR_RETURN(auto rows, rel::ParseCsv(csv));
  if (rows.empty()) return Status::ParseError("ledger CSV has no header");
  audit::IngestLedger ledger;
  for (size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() != 4) {
      return Status::ParseError("ledger CSV row " + std::to_string(r) +
                                " has " + std::to_string(row.size()) +
                                " fields, expected 4");
    }
    PPDB_ASSIGN_OR_RETURN(int64_t provider, ParseInt64(row[1]));
    PPDB_ASSIGN_OR_RETURN(int64_t day, ParseInt64(row[3]));
    ledger.RecordIngest(row[0], provider, row[2], day);
  }
  return ledger;
}

Status SaveDatabase(std::string_view dir, const Database& database) {
  fs::path root{std::string(dir)};
  std::error_code ec;
  fs::create_directories(root / "tables", ec);
  if (ec) {
    return Status::Internal("cannot create '" + root.string() +
                            "': " + ec.message());
  }

  // Manifest: version plus one line per table with mode and typed schema.
  std::string manifest = kManifestHeader;
  manifest += '\n';
  for (const std::string& name : database.catalog.TableNames()) {
    PPDB_ASSIGN_OR_RETURN(const rel::Table* table,
                          database.catalog.GetTable(name));
    manifest += "table " + name;
    manifest += table->multi_record() ? " multi" : " single";
    for (const rel::AttributeDef& def : table->schema().attributes()) {
      manifest += ' ' + def.name + ':';
      manifest += rel::DataTypeName(def.type);
    }
    manifest += '\n';
    PPDB_RETURN_NOT_OK(WriteFile(root / "tables" / (name + ".csv"),
                                 rel::TableToCsv(*table)));
  }
  PPDB_RETURN_NOT_OK(WriteFile(root / kManifestName, manifest));
  PPDB_RETURN_NOT_OK(WriteFile(
      root / "privacy.ppdb", privacy::SerializePrivacyConfig(database.config)));
  PPDB_RETURN_NOT_OK(
      WriteFile(root / "ledger.csv", LedgerToCsv(database.ledger)));
  PPDB_RETURN_NOT_OK(
      WriteFile(root / "audit.csv", AuditLogToCsv(database.log)));
  return Status::OK();
}

Result<Database> LoadDatabase(std::string_view dir) {
  fs::path root{std::string(dir)};
  PPDB_ASSIGN_OR_RETURN(std::string manifest,
                        ReadFile(root / kManifestName));
  std::vector<std::string_view> lines = Split(manifest, '\n');
  if (lines.empty() || TrimWhitespace(lines[0]) != kManifestHeader) {
    return Status::ParseError("'" + root.string() +
                              "' is not a ppdb database (bad manifest)");
  }

  Database database;
  for (size_t i = 1; i < lines.size(); ++i) {
    std::string_view line = TrimWhitespace(lines[i]);
    if (line.empty()) continue;
    std::vector<std::string_view> fields = SplitAndTrim(line, ' ');
    std::erase_if(fields,
                  [](std::string_view field) { return field.empty(); });
    if (fields.size() < 3 || fields[0] != "table") {
      return Status::ParseError("bad manifest line: '" + std::string(line) +
                                "'");
    }
    std::string name(fields[1]);
    bool multi = fields[2] == "multi";
    if (!multi && fields[2] != "single") {
      return Status::ParseError("bad table mode '" + std::string(fields[2]) +
                                "' in manifest");
    }
    std::vector<rel::AttributeDef> defs;
    for (size_t f = 3; f < fields.size(); ++f) {
      size_t colon = fields[f].find(':');
      if (colon == std::string_view::npos) {
        return Status::ParseError("bad attribute spec '" +
                                  std::string(fields[f]) + "' in manifest");
      }
      rel::AttributeDef def;
      def.name = std::string(fields[f].substr(0, colon));
      PPDB_ASSIGN_OR_RETURN(
          def.type, rel::DataTypeFromName(fields[f].substr(colon + 1)));
      defs.push_back(std::move(def));
    }
    PPDB_ASSIGN_OR_RETURN(rel::Schema schema,
                          rel::Schema::Create(std::move(defs)));
    PPDB_ASSIGN_OR_RETURN(std::string csv,
                          ReadFile(root / "tables" / (name + ".csv")));

    // TableFromCsv builds single-record tables; rebuild by hand for multi.
    PPDB_ASSIGN_OR_RETURN(rel::Table parsed,
                          [&]() -> Result<rel::Table> {
                            if (!multi) {
                              return rel::TableFromCsv(name, schema, csv);
                            }
                            PPDB_ASSIGN_OR_RETURN(auto rows,
                                                  rel::ParseCsv(csv));
                            PPDB_ASSIGN_OR_RETURN(
                                rel::Table table,
                                rel::Table::CreateMultiRecord(name, schema));
                            for (size_t r = 1; r < rows.size(); ++r) {
                              const auto& row = rows[r];
                              if (static_cast<int>(row.size()) !=
                                  schema.num_attributes() + 1) {
                                return Status::ParseError(
                                    "table CSV row arity mismatch");
                              }
                              PPDB_ASSIGN_OR_RETURN(int64_t provider,
                                                    ParseInt64(row[0]));
                              std::vector<rel::Value> values;
                              for (int j = 0; j < schema.num_attributes();
                                   ++j) {
                                PPDB_ASSIGN_OR_RETURN(
                                    rel::Value value,
                                    rel::Value::Parse(
                                        row[static_cast<size_t>(j) + 1],
                                        schema.attribute(j).type));
                                values.push_back(std::move(value));
                              }
                              PPDB_RETURN_NOT_OK(
                                  table.Insert(provider, std::move(values)));
                            }
                            return table;
                          }());
    PPDB_RETURN_NOT_OK(database.catalog.AddTable(std::move(parsed)).status());
  }

  PPDB_ASSIGN_OR_RETURN(std::string dsl, ReadFile(root / "privacy.ppdb"));
  PPDB_ASSIGN_OR_RETURN(database.config, privacy::ParsePrivacyConfig(dsl));
  PPDB_ASSIGN_OR_RETURN(std::string ledger_csv,
                        ReadFile(root / "ledger.csv"));
  PPDB_ASSIGN_OR_RETURN(database.ledger, LedgerFromCsv(ledger_csv));
  PPDB_ASSIGN_OR_RETURN(std::string audit_csv, ReadFile(root / "audit.csv"));
  PPDB_ASSIGN_OR_RETURN(database.log, AuditLogFromCsv(audit_csv));
  return database;
}

}  // namespace ppdb::storage

#include "storage/database_io.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <sstream>

#include "common/macros.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "privacy/policy_dsl.h"
#include "relational/csv.h"
#include "storage/journal.h"

namespace ppdb::storage {

namespace fs = std::filesystem;

namespace {

constexpr char kManifestName[] = "MANIFEST";
constexpr char kManifestHeader[] = "ppdb-manifest v1";
constexpr char kCurrentName[] = "CURRENT";
constexpr char kCurrentTmpName[] = "CURRENT.tmp";
constexpr char kGenPrefix[] = "gen-";
constexpr char kStagingPrefix[] = ".staging-";

std::string GenName(int64_t generation) {
  return kGenPrefix + std::to_string(generation);
}

/// Parses "<prefix><digits>" into the number; -1 when it does not match.
int64_t ParseNumberedName(std::string_view name, std::string_view prefix) {
  if (name.size() <= prefix.size() || name.substr(0, prefix.size()) != prefix) {
    return -1;
  }
  Result<int64_t> n = ParseInt64(name.substr(prefix.size()));
  return (n.ok() && *n >= 0) ? *n : -1;
}

std::string OptionalToField(const std::optional<std::string>& value) {
  return value.value_or("");
}

/// Writes the full file set of `database` into `dir` (which must already
/// contain a `tables/` subdirectory), retrying transient faults.
Status WriteDatabaseFiles(FileSystem& fsys, const RetryOptions& retry,
                          const fs::path& dir, const Database& database) {
  auto write = [&](const fs::path& path, const std::string& contents) {
    return RetryWithBackoff(retry, "write '" + path.string() + "'", [&] {
      return fsys.WriteFile(path.string(), contents);
    });
  };

  // Manifest: version plus one line per table with mode and typed schema.
  std::string manifest = kManifestHeader;
  manifest += '\n';
  for (const std::string& name : database.catalog.TableNames()) {
    PPDB_ASSIGN_OR_RETURN(const rel::Table* table,
                          database.catalog.GetTable(name));
    manifest += "table " + name;
    manifest += table->multi_record() ? " multi" : " single";
    for (const rel::AttributeDef& def : table->schema().attributes()) {
      manifest += ' ' + def.name + ':';
      manifest += rel::DataTypeName(def.type);
    }
    manifest += '\n';
    PPDB_RETURN_NOT_OK(
        write(dir / "tables" / (name + ".csv"), rel::TableToCsv(*table)));
  }
  PPDB_RETURN_NOT_OK(write(dir / kManifestName, manifest));
  PPDB_RETURN_NOT_OK(write(dir / "privacy.ppdb",
                           privacy::SerializePrivacyConfig(database.config)));
  PPDB_RETURN_NOT_OK(write(dir / "ledger.csv", LedgerToCsv(database.ledger)));
  PPDB_RETURN_NOT_OK(write(dir / "audit.csv", AuditLogToCsv(database.log)));
  return Status::OK();
}

/// Loads the full file set of one generation (or legacy flat) directory.
Result<Database> LoadDatabaseFiles(FileSystem& fsys, const fs::path& dir) {
  PPDB_ASSIGN_OR_RETURN(std::string manifest,
                        fsys.ReadFile((dir / kManifestName).string()));
  std::vector<std::string_view> lines = Split(manifest, '\n');
  if (lines.empty() || TrimWhitespace(lines[0]) != kManifestHeader) {
    return Status::ParseError("'" + dir.string() +
                              "' is not a ppdb database (bad manifest)");
  }

  Database database;
  for (size_t i = 1; i < lines.size(); ++i) {
    std::string_view line = TrimWhitespace(lines[i]);
    if (line.empty()) continue;
    std::vector<std::string_view> fields = SplitAndTrim(line, ' ');
    std::erase_if(fields,
                  [](std::string_view field) { return field.empty(); });
    if (fields.size() < 3 || fields[0] != "table") {
      return Status::ParseError("bad manifest line: '" + std::string(line) +
                                "'");
    }
    std::string name(fields[1]);
    bool multi = fields[2] == "multi";
    if (!multi && fields[2] != "single") {
      return Status::ParseError("bad table mode '" + std::string(fields[2]) +
                                "' in manifest");
    }
    std::vector<rel::AttributeDef> defs;
    for (size_t f = 3; f < fields.size(); ++f) {
      size_t colon = fields[f].find(':');
      if (colon == std::string_view::npos) {
        return Status::ParseError("bad attribute spec '" +
                                  std::string(fields[f]) + "' in manifest");
      }
      rel::AttributeDef def;
      def.name = std::string(fields[f].substr(0, colon));
      PPDB_ASSIGN_OR_RETURN(
          def.type, rel::DataTypeFromName(fields[f].substr(colon + 1)));
      defs.push_back(std::move(def));
    }
    PPDB_ASSIGN_OR_RETURN(rel::Schema schema,
                          rel::Schema::Create(std::move(defs)));
    PPDB_ASSIGN_OR_RETURN(
        std::string csv,
        fsys.ReadFile((dir / "tables" / (name + ".csv")).string()));

    // TableFromCsv builds single-record tables; rebuild by hand for multi.
    PPDB_ASSIGN_OR_RETURN(rel::Table parsed,
                          [&]() -> Result<rel::Table> {
                            if (!multi) {
                              return rel::TableFromCsv(name, schema, csv);
                            }
                            PPDB_ASSIGN_OR_RETURN(auto rows,
                                                  rel::ParseCsv(csv));
                            PPDB_ASSIGN_OR_RETURN(
                                rel::Table table,
                                rel::Table::CreateMultiRecord(name, schema));
                            for (size_t r = 1; r < rows.size(); ++r) {
                              const auto& row = rows[r];
                              if (static_cast<int>(row.size()) !=
                                  schema.num_attributes() + 1) {
                                return Status::ParseError(
                                    "table CSV row arity mismatch");
                              }
                              PPDB_ASSIGN_OR_RETURN(int64_t provider,
                                                    ParseInt64(row[0]));
                              std::vector<rel::Value> values;
                              for (int j = 0; j < schema.num_attributes();
                                   ++j) {
                                PPDB_ASSIGN_OR_RETURN(
                                    rel::Value value,
                                    rel::Value::Parse(
                                        row[static_cast<size_t>(j) + 1],
                                        schema.attribute(j).type));
                                values.push_back(std::move(value));
                              }
                              PPDB_RETURN_NOT_OK(
                                  table.Insert(provider, std::move(values)));
                            }
                            return table;
                          }());
    PPDB_RETURN_NOT_OK(database.catalog.AddTable(std::move(parsed)).status());
  }

  PPDB_ASSIGN_OR_RETURN(std::string dsl,
                        fsys.ReadFile((dir / "privacy.ppdb").string()));
  PPDB_ASSIGN_OR_RETURN(database.config, privacy::ParsePrivacyConfig(dsl));
  PPDB_ASSIGN_OR_RETURN(std::string ledger_csv,
                        fsys.ReadFile((dir / "ledger.csv").string()));
  PPDB_ASSIGN_OR_RETURN(database.ledger, LedgerFromCsv(ledger_csv));
  PPDB_ASSIGN_OR_RETURN(std::string audit_csv,
                        fsys.ReadFile((dir / "audit.csv").string()));
  PPDB_ASSIGN_OR_RETURN(database.log, AuditLogFromCsv(audit_csv));
  return database;
}

/// Directory inventory relevant to the commit protocol.
struct DirScan {
  std::vector<int64_t> generations;      // numbers of gen-<N> entries
  std::vector<std::string> stagings;     // names of .staging-<N> entries
  std::vector<std::string> journals;     // names of journal-* segments
  bool has_current = false;
  bool has_current_tmp = false;
  bool has_flat_manifest = false;        // pre-generation layout
};

Result<DirScan> ScanDirectory(FileSystem& fsys, const fs::path& root) {
  DirScan scan;
  PPDB_ASSIGN_OR_RETURN(std::vector<std::string> entries,
                        fsys.ListDirectory(root.string()));
  for (const std::string& entry : entries) {
    if (entry == kCurrentName) {
      scan.has_current = true;
    } else if (entry == kCurrentTmpName) {
      scan.has_current_tmp = true;
    } else if (entry == kManifestName) {
      scan.has_flat_manifest = true;
    } else if (entry.starts_with(Journal::kSegmentPrefix)) {
      scan.journals.push_back(entry);
    } else if (int64_t g = ParseNumberedName(entry, kGenPrefix); g >= 0) {
      scan.generations.push_back(g);
    } else if (ParseNumberedName(entry, kStagingPrefix) >= 0) {
      scan.stagings.push_back(entry);
    }
  }
  std::sort(scan.generations.rbegin(), scan.generations.rend());
  return scan;
}

/// Reads CURRENT and parses the generation it names; -1 when absent or
/// corrupt (`corrupt_note` gets a diagnostic in the latter case).
int64_t ReadCommittedGeneration(FileSystem& fsys, const fs::path& root,
                                const DirScan& scan,
                                std::string* corrupt_note) {
  if (!scan.has_current) return -1;
  Result<std::string> current = fsys.ReadFile((root / kCurrentName).string());
  if (!current.ok()) {
    *corrupt_note = "CURRENT (unreadable: " + current.status().message() + ")";
    return -1;
  }
  int64_t g = ParseNumberedName(TrimWhitespace(*current), kGenPrefix);
  if (g < 0) {
    *corrupt_note = "CURRENT (corrupt pointer '" +
                    std::string(TrimWhitespace(*current)) + "')";
  }
  return g;
}

/// The storage layer's registry instruments, registered as one batch on
/// first use (the first Save/Load — in a server, the startup load). The
/// fault counters are registered here too so they export as zeros in
/// production; `FaultInjectingFileSystem` bumps them under test.
struct StorageMetrics {
  obs::Histogram* save_seconds;
  obs::Histogram* load_seconds;
  obs::Counter* save_ok;
  obs::Counter* save_error;
  obs::Counter* load_ok;
  obs::Counter* load_error;
  obs::Counter* recovery_discarded;
  obs::Counter* recovery_fallback;

  static const StorageMetrics& Get() {
    static const StorageMetrics metrics = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Default();
      StorageMetrics m;
      m.save_seconds = r.GetHistogram(
          "ppdb_storage_save_seconds",
          "Wall time of one SaveDatabase generation commit.");
      m.load_seconds = r.GetHistogram(
          "ppdb_storage_load_seconds",
          "Wall time of one LoadDatabase call, recovery included.");
      m.save_ok =
          r.GetCounter("ppdb_storage_save_total", "SaveDatabase outcomes.",
                       {{"result", "ok"}});
      m.save_error =
          r.GetCounter("ppdb_storage_save_total", "SaveDatabase outcomes.",
                       {{"result", "error"}});
      m.load_ok =
          r.GetCounter("ppdb_storage_load_total", "LoadDatabase outcomes.",
                       {{"result", "ok"}});
      m.load_error =
          r.GetCounter("ppdb_storage_load_total", "LoadDatabase outcomes.",
                       {{"result", "error"}});
      m.recovery_discarded = r.GetCounter(
          "ppdb_storage_recovery_discarded_total",
          "Entries discarded during load recovery (stagings, uncommitted "
          "or torn generations, corrupt CURRENT).");
      m.recovery_fallback = r.GetCounter(
          "ppdb_storage_recovery_fallback_total",
          "Loads that fell back past the committed generation.");
      for (FaultKind kind :
           {FaultKind::kFailOp, FaultKind::kTornWrite, FaultKind::kNoSpace,
            FaultKind::kCrash}) {
        r.GetCounter("ppdb_storage_faults_injected_total",
                     "Faults injected by FaultInjectingFileSystem (tests "
                     "only; zero in production).",
                     {{"kind", std::string(FaultKindName(kind))}});
      }
      return m;
    }();
    return metrics;
  }
};

/// Replays the journal segment matching the loaded generation onto
/// `database` and reports every other (stale/damaged) segment as
/// discarded. Never fails the load: a journal problem costs at most the
/// un-replayable tail, which was never checkpoint-committed.
void ReplayJournals(FileSystem& fsys, const fs::path& root,
                    const std::vector<std::string>& journals,
                    Database& database, RecoveryReport& rep) {
  const std::string expected =
      Journal::SegmentNameFor(rep.loaded_generation);
  for (const std::string& name : journals) {
    if (name != expected) {
      rep.discarded.push_back(name + " (stale journal)");
      continue;
    }
    Result<std::string> contents = fsys.ReadFile((root / name).string());
    if (!contents.ok()) {
      rep.discarded.push_back(name + " (unreadable journal: " +
                              contents.status().message() + ")");
      continue;
    }
    Result<JournalReplayResult> replay =
        ReplayJournal(*contents, rep.loaded_generation, database.config);
    if (!replay.ok()) {
      rep.discarded.push_back(name + " (invalid journal: " +
                              replay.status().message() + ")");
      continue;
    }
    rep.journal_replayed += replay->replayed;
    if (replay->torn_tail) {
      rep.journal_torn_tail = true;
      rep.discarded.push_back(name + " (torn tail: " + replay->torn_detail +
                              ")");
    }
    if (!replay->stopped.ok()) {
      rep.discarded.push_back(name + " (replay stopped: " +
                              replay->stopped.message() + ")");
    }
  }
}

}  // namespace

std::string RecoveryReport::ToString() const {
  std::string out = "loaded " + loaded_generation;
  out += used_fallback ? " (fallback to an older committed generation)\n"
                       : "\n";
  for (const std::string& entry : discarded) {
    out += "discarded " + entry + '\n';
  }
  if (journal_replayed > 0) {
    out += "replayed " + std::to_string(journal_replayed) +
           " journal event" + (journal_replayed == 1 ? "" : "s") + '\n';
  }
  if (journal_torn_tail) {
    out += "journal ended in a torn record (amputated; it was never "
           "acknowledged)\n";
  }
  if (clean()) out += "clean: nothing discarded\n";
  return out;
}

std::string AuditLogToCsv(const audit::AuditLog& log) {
  std::string out =
      "sequence,timestamp,kind,requester,purpose,table,provider,attribute,"
      "detail\n";
  for (const audit::AuditEvent& event : log.events()) {
    out += std::to_string(event.sequence);
    out += ',' + std::to_string(event.timestamp);
    out += ',';
    out += AuditEventKindName(event.kind);
    out += ',' + CsvEscape(event.requester);
    out += ',' + std::to_string(event.purpose);
    out += ',' + CsvEscape(event.table);
    out += ',';
    if (event.provider.has_value()) out += std::to_string(*event.provider);
    out += ',' + CsvEscape(OptionalToField(event.attribute));
    out += ',' + CsvEscape(event.detail);
    out += '\n';
  }
  return out;
}

Result<audit::AuditLog> AuditLogFromCsv(std::string_view csv) {
  PPDB_ASSIGN_OR_RETURN(auto rows, rel::ParseCsv(csv));
  if (rows.empty()) return Status::ParseError("audit CSV has no header");
  audit::AuditLog log;
  for (size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() != 9) {
      return Status::ParseError("audit CSV row " + std::to_string(r) +
                                " has " + std::to_string(row.size()) +
                                " fields, expected 9");
    }
    audit::AuditEvent event;
    PPDB_ASSIGN_OR_RETURN(event.timestamp, ParseInt64(row[1]));
    PPDB_ASSIGN_OR_RETURN(event.kind, audit::AuditEventKindFromName(row[2]));
    event.requester = row[3];
    PPDB_ASSIGN_OR_RETURN(int64_t purpose, ParseInt64(row[4]));
    event.purpose = static_cast<privacy::PurposeId>(purpose);
    event.table = row[5];
    if (!row[6].empty()) {
      PPDB_ASSIGN_OR_RETURN(int64_t provider, ParseInt64(row[6]));
      event.provider = provider;
    }
    if (!row[7].empty()) event.attribute = row[7];
    event.detail = row[8];
    log.Append(std::move(event));  // Reassigns sequence densely, in order.
  }
  return log;
}

std::string LedgerToCsv(const audit::IngestLedger& ledger) {
  std::string out = "table,provider,attribute,ingest_day\n";
  for (const audit::IngestLedger::Entry& entry : ledger.Entries()) {
    out += CsvEscape(entry.table);
    out += ',' + std::to_string(entry.provider);
    out += ',' + CsvEscape(entry.attribute);
    out += ',' + std::to_string(entry.day);
    out += '\n';
  }
  return out;
}

Result<audit::IngestLedger> LedgerFromCsv(std::string_view csv) {
  PPDB_ASSIGN_OR_RETURN(auto rows, rel::ParseCsv(csv));
  if (rows.empty()) return Status::ParseError("ledger CSV has no header");
  audit::IngestLedger ledger;
  for (size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() != 4) {
      return Status::ParseError("ledger CSV row " + std::to_string(r) +
                                " has " + std::to_string(row.size()) +
                                " fields, expected 4");
    }
    PPDB_ASSIGN_OR_RETURN(int64_t provider, ParseInt64(row[1]));
    PPDB_ASSIGN_OR_RETURN(int64_t day, ParseInt64(row[3]));
    ledger.RecordIngest(row[0], provider, row[2], day);
  }
  return ledger;
}

Status SaveDatabase(std::string_view dir, const Database& database) {
  return SaveDatabase(dir, database, GetRealFileSystem());
}

static Status SaveDatabaseImpl(std::string_view dir, const Database& database,
                               FileSystem& fsys, const SaveOptions& options,
                               std::string* committed_generation) {
  const fs::path root{std::string(dir)};
  const RetryOptions& retry = options.retry;
  auto retried = [&](const std::string& what,
                     const std::function<Status()>& op) {
    return RetryWithBackoff(retry, what, op);
  };

  PPDB_RETURN_NOT_OK(retried("create '" + root.string() + "'", [&] {
    return fsys.CreateDirectories(root.string());
  }));

  // Pick the next generation number: one past everything on disk, whether
  // committed, torn, or staged, so the staging dir is always fresh.
  PPDB_ASSIGN_OR_RETURN(DirScan scan, ScanDirectory(fsys, root));
  std::string corrupt_note;
  int64_t committed = ReadCommittedGeneration(fsys, root, scan, &corrupt_note);
  int64_t next = committed;
  for (int64_t g : scan.generations) next = std::max(next, g);
  for (const std::string& staging : scan.stagings) {
    next = std::max(next, ParseNumberedName(staging, kStagingPrefix));
  }
  ++next;  // -1 (empty dir) becomes gen-0.

  const fs::path staging = root / (kStagingPrefix + std::to_string(next));
  const fs::path gen_dir = root / GenName(next);
  PPDB_RETURN_NOT_OK(retried("create '" + staging.string() + "'", [&] {
    return fsys.CreateDirectories((staging / "tables").string());
  }));
  PPDB_RETURN_NOT_OK(WriteDatabaseFiles(fsys, retry, staging, database));
  PPDB_RETURN_NOT_OK(retried("publish '" + gen_dir.string() + "'", [&] {
    return fsys.Rename(staging.string(), gen_dir.string());
  }));

  // Commit point: swap CURRENT via temp file + rename. Before the rename
  // lands the save never happened; after it the save is complete.
  const fs::path current_tmp = root / kCurrentTmpName;
  const fs::path current = root / kCurrentName;
  PPDB_RETURN_NOT_OK(retried("stage CURRENT", [&] {
    return fsys.WriteFile(current_tmp.string(), GenName(next) + "\n");
  }));
  PPDB_RETURN_NOT_OK(retried("commit CURRENT", [&] {
    return fsys.Rename(current_tmp.string(), current.string());
  }));
  if (committed_generation != nullptr) *committed_generation = GenName(next);

  // Best-effort prune: keep the new generation and the one it replaced
  // (rollback target); everything else — older generations, stray staging
  // dirs, and every journal segment (this commit captured all applied
  // events, so surviving segments are stale and would be discarded on
  // load anyway) — is garbage. Prune failures never fail a committed
  // save.
  for (int64_t g : scan.generations) {
    if (g == next || g == committed) continue;
    (void)fsys.RemoveAll((root / GenName(g)).string());
  }
  for (const std::string& stale : scan.stagings) {
    (void)fsys.RemoveAll((root / stale).string());
  }
  for (const std::string& journal : scan.journals) {
    (void)fsys.RemoveAll((root / journal).string());
  }
  return Status::OK();
}

Status SaveDatabase(std::string_view dir, const Database& database,
                    FileSystem& fsys, const SaveOptions& options) {
  return SaveDatabase(dir, database, fsys, options, nullptr);
}

Status SaveDatabase(std::string_view dir, const Database& database,
                    FileSystem& fsys, const SaveOptions& options,
                    std::string* committed_generation) {
  const StorageMetrics& metrics = StorageMetrics::Get();
  obs::SpanScope span("storage_save");
  const auto started = std::chrono::steady_clock::now();
  Status status =
      SaveDatabaseImpl(dir, database, fsys, options, committed_generation);
  metrics.save_seconds->Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count());
  (status.ok() ? metrics.save_ok : metrics.save_error)->Add();
  return status;
}

Result<Database> LoadDatabase(std::string_view dir) {
  return LoadDatabase(dir, GetRealFileSystem());
}

static Result<Database> LoadDatabaseImpl(std::string_view dir,
                                         FileSystem& fsys,
                                         RecoveryReport* report) {
  RecoveryReport local;
  RecoveryReport& rep = report != nullptr ? *report : local;
  rep = RecoveryReport{};

  const fs::path root{std::string(dir)};
  if (!fsys.Exists(root.string())) {
    return Status::NotFound("database directory '" + root.string() +
                            "' does not exist");
  }
  if (!fsys.IsDirectory(root.string())) {
    return Status::InvalidArgument("'" + root.string() +
                                   "' is not a directory");
  }

  PPDB_ASSIGN_OR_RETURN(DirScan scan, ScanDirectory(fsys, root));
  std::string corrupt_note;
  int64_t committed = ReadCommittedGeneration(fsys, root, scan, &corrupt_note);
  if (!corrupt_note.empty()) rep.discarded.push_back(corrupt_note);

  if (!scan.has_current && scan.generations.empty()) {
    // Pre-generation layout: the whole file set lives at the top level.
    if (scan.has_flat_manifest) {
      rep.loaded_generation = "flat";
      PPDB_ASSIGN_OR_RETURN(Database database, LoadDatabaseFiles(fsys, root));
      ReplayJournals(fsys, root, scan.journals, database, rep);
      return database;
    }
    return Status::NotFound("'" + root.string() +
                            "' is not a ppdb database directory "
                            "(no CURRENT, generation, or MANIFEST)");
  }

  // Anything never committed is discarded sight unseen: staging dirs, a
  // stray CURRENT.tmp, and generations newer than the CURRENT pointer
  // (their save crashed between the publish rename and the commit swap).
  for (const std::string& staging : scan.stagings) {
    rep.discarded.push_back(staging + " (uncommitted staging)");
  }
  if (scan.has_current_tmp) {
    rep.discarded.push_back(std::string(kCurrentTmpName) +
                            " (crash during commit)");
  }
  std::vector<int64_t> candidates;  // newest first
  for (int64_t g : scan.generations) {
    if (committed >= 0 && g > committed) {
      rep.discarded.push_back(GenName(g) +
                              " (complete but never committed)");
    } else {
      candidates.push_back(g);
    }
  }
  if (committed >= 0 &&
      std::find(candidates.begin(), candidates.end(), committed) ==
          candidates.end()) {
    // CURRENT names a generation whose directory is gone; fall through to
    // whatever else is loadable.
    rep.discarded.push_back(GenName(committed) +
                            " (named by CURRENT but missing)");
  }

  Status last_error;
  for (int64_t g : candidates) {
    Result<Database> loaded = LoadDatabaseFiles(fsys, root / GenName(g));
    if (loaded.ok()) {
      rep.loaded_generation = GenName(g);
      rep.used_fallback = committed >= 0 && g != committed;
      // Acknowledged events since this generation's checkpoint live in
      // its journal; replaying them makes recovery per-event, not
      // per-checkpoint. (After a fallback this is the *older*
      // generation's journal — those acks happened on top of it.)
      ReplayJournals(fsys, root, scan.journals, *loaded, rep);
      return loaded;
    }
    rep.discarded.push_back(GenName(g) +
                            " (torn: " + loaded.status().message() + ")");
    rep.used_fallback = true;
    last_error = loaded.status();
  }
  return Status(last_error.ok() ? StatusCode::kNotFound : last_error.code(),
                "no loadable generation in '" + root.string() + "'" +
                    (last_error.ok() ? "" : ": " + last_error.message()));
}

Result<Database> LoadDatabase(std::string_view dir, FileSystem& fsys,
                              RecoveryReport* report) {
  const StorageMetrics& metrics = StorageMetrics::Get();
  obs::SpanScope span("storage_load");
  RecoveryReport local;
  RecoveryReport* rep = report != nullptr ? report : &local;
  const auto started = std::chrono::steady_clock::now();
  Result<Database> loaded = LoadDatabaseImpl(dir, fsys, rep);
  metrics.load_seconds->Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count());
  (loaded.ok() ? metrics.load_ok : metrics.load_error)->Add();
  metrics.recovery_discarded->Add(
      static_cast<int64_t>(rep->discarded.size()));
  if (rep->used_fallback) metrics.recovery_fallback->Add();
  return loaded;
}

}  // namespace ppdb::storage

#include "storage/journal.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/crc32c.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ppdb::storage {

namespace {

constexpr char kHeaderPrefix[] = "ppdb-journal v1 base=";
/// Sanity cap on one record: serve request lines are bounded well under
/// this, so a larger length field is corruption, not data.
constexpr uint32_t kMaxRecordBytes = 1u << 20;

std::string HeaderFor(std::string_view base_generation) {
  return kHeaderPrefix + std::string(base_generation) + "\n";
}

void PutU32Le(std::string& out, uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

uint32_t GetU32Le(std::string_view in, size_t offset) {
  return static_cast<uint32_t>(static_cast<uint8_t>(in[offset])) |
         static_cast<uint32_t>(static_cast<uint8_t>(in[offset + 1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(in[offset + 2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(in[offset + 3])) << 24;
}

std::string EncodeFrame(std::string_view payload) {
  std::string frame;
  frame.reserve(8 + payload.size());
  PutU32Le(frame, static_cast<uint32_t>(payload.size()));
  PutU32Le(frame, Crc32c(payload));
  frame.append(payload);
  return frame;
}

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// The journal's registry instruments, registered as one batch on first
/// use — the first `Journal::Open` or replay, both of which happen during
/// service startup, so a metrics scrape always sees the families.
struct JournalMetrics {
  obs::Counter* appended;
  obs::Counter* replayed;
  obs::Counter* torn;
  obs::Counter* rotations;
  obs::Gauge* active_segment_bytes;
  obs::Histogram* batch_records;
  obs::Histogram* fsync_seconds;

  static const JournalMetrics& Get() {
    static const JournalMetrics metrics = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Default();
      JournalMetrics m;
      m.appended = r.GetCounter(
          "ppdb_journal_appended_records_total",
          "Records appended to the write-ahead journal and made durable.");
      m.replayed = r.GetCounter(
          "ppdb_journal_replayed_records_total",
          "Journal records replayed during database load recovery.");
      m.torn = r.GetCounter(
          "ppdb_journal_torn_records_total",
          "Torn journal tails amputated (at open or during replay).");
      m.rotations = r.GetCounter(
          "ppdb_journal_rotations_total",
          "Journal segment rotations after successful checkpoints.");
      m.active_segment_bytes = r.GetGauge(
          "ppdb_journal_active_segment_bytes",
          "Durable bytes in the active journal segment, header included.");
      m.batch_records = r.GetHistogram(
          "ppdb_journal_batch_records",
          "Records per group-commit batch (one shared fsync each).",
          {1, 2, 4, 8, 16, 32, 64, 128, 256});
      m.fsync_seconds = r.GetHistogram(
          "ppdb_journal_fsync_seconds",
          "Latency of one group-commit fsync.");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

std::string Journal::SegmentNameFor(std::string_view generation) {
  return std::string(kSegmentPrefix) + std::string(generation);
}

Journal::Journal(std::string dir, FileSystem& fs, Options options)
    : dir_(std::move(dir)), fs_(fs), options_(options) {}

Journal::~Journal() {
  MutexLock lock(mu_);
  if (file_ != nullptr) (void)file_->Close();
}

Result<std::unique_ptr<Journal>> Journal::Open(std::string dir,
                                               std::string base_generation,
                                               FileSystem& fs,
                                               Options options) {
  // The constructor is private, so make_unique cannot reach it.
  std::unique_ptr<Journal> journal(
      new Journal(std::move(dir), fs, options));  // ppdb-lint: allow(raw-new)
  MutexLock lock(journal->mu_);
  PPDB_RETURN_NOT_OK(journal->OpenSegmentLocked(base_generation,
                                                /*resume=*/true));
  return journal;
}

Status Journal::OpenSegmentLocked(const std::string& base_generation,
                                  bool resume) {
  const JournalMetrics& metrics = JournalMetrics::Get();
  segment_name_ = SegmentNameFor(base_generation);
  segment_path_ =
      (std::filesystem::path(dir_) / segment_name_).string();
  const std::string header = HeaderFor(base_generation);

  durable_bytes_ = 0;
  durable_records_ = 0;
  if (resume && fs_.Exists(segment_path_)) {
    Result<std::string> contents = fs_.ReadFile(segment_path_);
    if (contents.ok()) {
      Result<JournalScan> scan = ScanJournalSegment(*contents);
      if (scan.ok() && scan->base_generation == base_generation) {
        if (scan->torn_tail) {
          // Amputate the tail so appends resume on a record boundary.
          PPDB_RETURN_NOT_OK(
              fs_.TruncateFile(segment_path_, scan->valid_bytes));
          metrics.torn->Add();
        }
        durable_bytes_ = scan->valid_bytes;
        durable_records_ = static_cast<int64_t>(scan->payloads.size());
      }
    }
  }
  if (durable_bytes_ == 0 && fs_.Exists(segment_path_)) {
    // Not a resumable segment (wrong header, wrong base, unreadable, or a
    // rotation target): start it over.
    PPDB_RETURN_NOT_OK(fs_.RemoveAll(segment_path_));
  }

  PPDB_ASSIGN_OR_RETURN(file_, fs_.OpenAppendable(segment_path_));
  if (durable_bytes_ == 0) {
    PPDB_RETURN_NOT_OK(file_->Append(header));
    PPDB_RETURN_NOT_OK(file_->Sync());
    durable_bytes_ = header.size();
  }
  metrics.active_segment_bytes->Set(static_cast<double>(durable_bytes_));
  return Status::OK();
}

Status Journal::Append(std::string_view payload) {
  const JournalMetrics& metrics = JournalMetrics::Get();
  obs::SpanScope span("journal_append");
  const std::string frame = EncodeFrame(payload);

  mu_.Lock();
  if (wedged_) {
    Status out = wedge_status_;
    mu_.Unlock();
    return out;
  }
  const uint64_t my_lsn = ++next_lsn_;
  pending_.append(frame);
  ++pending_records_;

  // Followers wait out the in-progress flush; whoever finds none becomes
  // the next leader. A finished flush may already cover our record.
  while (true) {
    if (durable_lsn_ >= my_lsn) {
      mu_.Unlock();
      return Status::OK();
    }
    if (wedged_) {
      Status out = wedge_status_;
      mu_.Unlock();
      return out;
    }
    if (!flush_in_progress_) break;
    cv_.Wait(mu_);
  }

  // Leader: optionally hold the batch open so concurrent appenders can
  // pile on (they append to pending_ while we wait with mu_ released).
  flush_in_progress_ = true;
  if (options_.batch_window.count() > 0) {
    (void)cv_.WaitFor(mu_, options_.batch_window, [] { return false; });
  }
  std::string batch;
  batch.swap(pending_);
  const int64_t batch_records = pending_records_;
  pending_records_ = 0;
  const uint64_t batch_last_lsn = next_lsn_;
  AppendableFile* file = file_.get();
  mu_.Unlock();

  // The I/O runs without the mutex; flush_in_progress_ keeps this the
  // only thread touching the file.
  Status io = file->Append(batch);
  double fsync_elapsed = 0.0;
  if (io.ok()) {
    const auto started = std::chrono::steady_clock::now();
    io = file->Sync();
    fsync_elapsed = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - started)
                        .count();
  }

  mu_.Lock();
  flush_in_progress_ = false;
  if (io.ok()) {
    durable_lsn_ = batch_last_lsn;
    durable_bytes_ += batch.size();
    durable_records_ += batch_records;
    metrics.appended->Add(batch_records);
    metrics.batch_records->Observe(static_cast<double>(batch_records));
    metrics.fsync_seconds->Observe(fsync_elapsed);
    metrics.active_segment_bytes->Set(static_cast<double>(durable_bytes_));
    span.Note("batch_records", batch_records);
  } else {
    // The batch's durability is unknown (an fsync can fail with its bytes
    // already on disk, a torn append leaves a partial frame). Wedge so no
    // later event can be acknowledged atop an uncertain tail, and repair
    // best-effort: truncating to the durable prefix removes any partial
    // bytes so a resumed segment stays frame-aligned.
    wedged_ = true;
    wedge_status_ = io;
    pending_.clear();
    pending_records_ = 0;
    (void)fs_.TruncateFile(segment_path_, durable_bytes_);
  }
  cv_.NotifyAll();
  Status out = durable_lsn_ >= my_lsn ? Status::OK() : wedge_status_;
  mu_.Unlock();
  return out;
}

Status Journal::RotateTo(std::string_view generation) {
  const JournalMetrics& metrics = JournalMetrics::Get();
  MutexLock lock(mu_);
  cv_.Wait(mu_, [this] { return !flush_in_progress_; });
  // Frames still pending were never flushed; their appenders have already
  // been failed (rotation only happens after a checkpoint, which runs
  // under the same writer lock as appends — or after a wedge).
  pending_.clear();
  pending_records_ = 0;
  if (file_ != nullptr) {
    (void)file_->Close();
    file_.reset();
  }
  Status opened = OpenSegmentLocked(std::string(generation),
                                    /*resume=*/false);
  if (!opened.ok()) {
    wedged_ = true;
    wedge_status_ = opened;
    return opened;
  }
  wedged_ = false;
  wedge_status_ = Status::OK();
  durable_lsn_ = next_lsn_;
  metrics.rotations->Add();
  return Status::OK();
}

bool Journal::wedged() const {
  MutexLock lock(mu_);
  return wedged_;
}

std::string Journal::segment_name() const {
  MutexLock lock(mu_);
  return segment_name_;
}

uint64_t Journal::active_segment_bytes() const {
  MutexLock lock(mu_);
  return durable_bytes_;
}

int64_t Journal::records_in_segment() const {
  MutexLock lock(mu_);
  return durable_records_;
}

Result<JournalScan> ScanJournalSegment(std::string_view contents) {
  const size_t newline = contents.find('\n');
  if (newline == std::string_view::npos) {
    return Status::ParseError("journal has no header line");
  }
  std::string_view header = contents.substr(0, newline);
  constexpr size_t kPrefixLen = sizeof(kHeaderPrefix) - 1;
  if (header.size() <= kPrefixLen ||
      header.substr(0, kPrefixLen) != kHeaderPrefix) {
    return Status::ParseError("bad journal header '" + std::string(header) +
                              "'");
  }
  JournalScan scan;
  scan.base_generation = std::string(header.substr(kPrefixLen));

  size_t offset = newline + 1;
  scan.valid_bytes = offset;
  auto torn = [&](const std::string& why) {
    scan.torn_tail = true;
    scan.torn_detail = why + " at offset " + std::to_string(offset);
    return scan;
  };
  while (offset < contents.size()) {
    if (contents.size() - offset < 8) return torn("short frame header");
    const uint32_t length = GetU32Le(contents, offset);
    const uint32_t crc = GetU32Le(contents, offset + 4);
    if (length > kMaxRecordBytes) return torn("implausible record length");
    if (contents.size() - offset - 8 < length) {
      return torn("record length beyond end of segment");
    }
    std::string_view payload = contents.substr(offset + 8, length);
    if (Crc32c(payload) != crc) return torn("crc mismatch");
    scan.payloads.emplace_back(payload);
    offset += 8 + length;
    scan.valid_bytes = offset;
  }
  return scan;
}

std::string JournalEvent::Encode() const {
  switch (kind) {
    case Kind::kAddProvider:
      return "add " + std::to_string(provider) + ' ' + Num(threshold);
    case Kind::kRemoveProvider:
      return "remove " + std::to_string(provider);
    case Kind::kSetPreference:
      return "pref " + std::to_string(provider) + ' ' + attribute + ' ' +
             purpose + ' ' + std::to_string(visibility) + ' ' +
             std::to_string(granularity) + ' ' + std::to_string(retention);
    case Kind::kRemovePreference:
      return "unpref " + std::to_string(provider) + ' ' + attribute + ' ' +
             purpose;
    case Kind::kSetThreshold:
      return "threshold " + std::to_string(provider) + ' ' + Num(threshold);
  }
  return "";
}

Result<JournalEvent> JournalEvent::Decode(std::string_view payload) {
  std::vector<std::string_view> fields = Split(payload, ' ');
  if (fields.empty()) {
    return Status::ParseError("empty journal event");
  }
  auto arity = [&](size_t n) -> Status {
    if (fields.size() != n) {
      return Status::ParseError("journal event '" + std::string(fields[0]) +
                                "' has " + std::to_string(fields.size() - 1) +
                                " arguments, expected " +
                                std::to_string(n - 1));
    }
    return Status::OK();
  };
  auto level = [](std::string_view s) -> Result<int> {
    PPDB_ASSIGN_OR_RETURN(int64_t v, ParseInt64(s));
    if (v < 0 || v > 1000000) {
      return Status::ParseError("implausible level '" + std::string(s) + "'");
    }
    return static_cast<int>(v);
  };

  JournalEvent event;
  if (fields[0] == "add") {
    PPDB_RETURN_NOT_OK(arity(3));
    event.kind = Kind::kAddProvider;
    PPDB_ASSIGN_OR_RETURN(event.provider, ParseInt64(fields[1]));
    PPDB_ASSIGN_OR_RETURN(event.threshold, ParseDouble(fields[2]));
  } else if (fields[0] == "remove") {
    PPDB_RETURN_NOT_OK(arity(2));
    event.kind = Kind::kRemoveProvider;
    PPDB_ASSIGN_OR_RETURN(event.provider, ParseInt64(fields[1]));
  } else if (fields[0] == "pref") {
    PPDB_RETURN_NOT_OK(arity(7));
    event.kind = Kind::kSetPreference;
    PPDB_ASSIGN_OR_RETURN(event.provider, ParseInt64(fields[1]));
    event.attribute = std::string(fields[2]);
    event.purpose = std::string(fields[3]);
    PPDB_ASSIGN_OR_RETURN(event.visibility, level(fields[4]));
    PPDB_ASSIGN_OR_RETURN(event.granularity, level(fields[5]));
    PPDB_ASSIGN_OR_RETURN(event.retention, level(fields[6]));
  } else if (fields[0] == "unpref") {
    PPDB_RETURN_NOT_OK(arity(4));
    event.kind = Kind::kRemovePreference;
    PPDB_ASSIGN_OR_RETURN(event.provider, ParseInt64(fields[1]));
    event.attribute = std::string(fields[2]);
    event.purpose = std::string(fields[3]);
  } else if (fields[0] == "threshold") {
    PPDB_RETURN_NOT_OK(arity(3));
    event.kind = Kind::kSetThreshold;
    PPDB_ASSIGN_OR_RETURN(event.provider, ParseInt64(fields[1]));
    PPDB_ASSIGN_OR_RETURN(event.threshold, ParseDouble(fields[2]));
  } else {
    return Status::ParseError("unknown journal event kind '" +
                              std::string(fields[0]) + "'");
  }
  if (event.attribute.empty() &&
      (event.kind == Kind::kSetPreference ||
       event.kind == Kind::kRemovePreference)) {
    return Status::ParseError("journal event has empty attribute");
  }
  return event;
}

Status JournalEvent::Validate(const privacy::PrivacyConfig& config) const {
  // Mirrors LivePopulationMonitor's event preconditions so that a record
  // the service appended (post-validation) replays cleanly.
  switch (kind) {
    case Kind::kAddProvider:
      if (config.preferences.Contains(provider)) {
        return Status::AlreadyExists("provider " + std::to_string(provider) +
                                     " is already monitored");
      }
      return Status::OK();
    case Kind::kRemoveProvider:
      if (!config.preferences.Contains(provider)) {
        return Status::NotFound("provider " + std::to_string(provider) +
                                " is not monitored");
      }
      return Status::OK();
    case Kind::kSetPreference: {
      PPDB_ASSIGN_OR_RETURN(privacy::PurposeId id,
                            config.purposes.Lookup(purpose));
      privacy::PrivacyTuple tuple{id, visibility, granularity, retention};
      return tuple.ValidateAgainst(config.scales);
    }
    case Kind::kRemovePreference: {
      if (!config.preferences.Contains(provider)) {
        return Status::NotFound("provider " + std::to_string(provider) +
                                " is not monitored");
      }
      PPDB_ASSIGN_OR_RETURN(privacy::PurposeId id,
                            config.purposes.Lookup(purpose));
      PPDB_ASSIGN_OR_RETURN(const privacy::ProviderPreferences* prefs,
                            config.preferences.Find(provider));
      return prefs->Find(attribute, id).status();
    }
    case Kind::kSetThreshold:
      if (!config.preferences.Contains(provider)) {
        return Status::NotFound("provider " + std::to_string(provider) +
                                " is not monitored");
      }
      if (threshold < 0.0) {
        return Status::InvalidArgument("threshold must be non-negative");
      }
      return Status::OK();
  }
  return Status::Internal("unhandled journal event kind");
}

Status JournalEvent::Apply(privacy::PrivacyConfig& config) const {
  PPDB_RETURN_NOT_OK(Validate(config));
  switch (kind) {
    case Kind::kAddProvider:
      config.preferences.ForProvider(provider);  // Creates the empty entry.
      config.thresholds[provider] = threshold;
      return Status::OK();
    case Kind::kRemoveProvider:
      PPDB_RETURN_NOT_OK(config.preferences.Erase(provider));
      config.thresholds.erase(provider);
      return Status::OK();
    case Kind::kSetPreference: {
      PPDB_ASSIGN_OR_RETURN(privacy::PurposeId id,
                            config.purposes.Lookup(purpose));
      privacy::PrivacyTuple tuple{id, visibility, granularity, retention};
      config.preferences.ForProvider(provider).Set(attribute, tuple);
      return Status::OK();
    }
    case Kind::kRemovePreference: {
      PPDB_ASSIGN_OR_RETURN(privacy::PurposeId id,
                            config.purposes.Lookup(purpose));
      return config.preferences.ForProvider(provider).Remove(attribute, id);
    }
    case Kind::kSetThreshold:
      config.thresholds[provider] = threshold;
      return Status::OK();
  }
  return Status::Internal("unhandled journal event kind");
}

Result<JournalReplayResult> ReplayJournal(std::string_view contents,
                                          std::string_view expected_base,
                                          privacy::PrivacyConfig& config) {
  const JournalMetrics& metrics = JournalMetrics::Get();
  obs::SpanScope span("journal_replay");
  PPDB_ASSIGN_OR_RETURN(JournalScan scan, ScanJournalSegment(contents));
  if (scan.base_generation != expected_base) {
    return Status::FailedPrecondition(
        "journal base '" + scan.base_generation + "' does not match loaded "
        "generation '" + std::string(expected_base) + "'");
  }
  JournalReplayResult result;
  result.torn_tail = scan.torn_tail;
  result.torn_detail = scan.torn_detail;
  if (scan.torn_tail) metrics.torn->Add();
  for (const std::string& payload : scan.payloads) {
    Result<JournalEvent> event = JournalEvent::Decode(payload);
    Status applied = event.ok() ? event->Apply(config) : event.status();
    if (!applied.ok()) {
      // Only reachable when journal and checkpoint disagree (e.g. manual
      // edits): stop cleanly, keeping what replayed so far.
      result.stopped = Status(applied.code(),
                              "journal record " +
                                  std::to_string(result.replayed) + " ('" +
                                  payload + "'): " + applied.message());
      break;
    }
    ++result.replayed;
  }
  metrics.replayed->Add(result.replayed);
  span.Note("replayed", result.replayed);
  return result;
}

}  // namespace ppdb::storage

#ifndef PPDB_STORAGE_FS_H_
#define PPDB_STORAGE_FS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace ppdb::storage {

/// A file opened for durable appending — the primitive the write-ahead
/// journal is built on. `Append` adds bytes at the end (buffered, ordered);
/// `Sync` is the durability barrier: on OK every byte appended so far has
/// reached stable storage (fsync). `Close` releases the descriptor; a file
/// that is destroyed without `Close` is closed best-effort with the error
/// dropped, so callers that care about the last write call `Sync`+`Close`
/// explicitly.
///
/// Thread safety: thread-compatible. The journal serializes all calls on
/// one file behind its own mutex.
class AppendableFile {
 public:
  virtual ~AppendableFile() = default;

  virtual Status Append(std::string_view data) = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// The handful of filesystem operations the durability layer is built on.
///
/// `SaveDatabase`/`LoadDatabase` go through this interface so that tests can
/// substitute `FaultInjectingFileSystem` and exercise every crash point of
/// the commit protocol deterministically. Operations that mutate the disk
/// (`CreateDirectories`, `WriteFile`, `Rename`, `RemoveAll`) are the fault
/// injection sites; reads are assumed reliable.
///
/// `WriteFile` has write-through semantics: on OK the full contents are on
/// disk (buffered stream flushed and close-checked). `Rename` is the atomic
/// primitive the commit protocol relies on — it either fully happens or
/// fully doesn't, matching POSIX rename(2) within one filesystem.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Creates `path` and any missing parents. OK when it already exists.
  virtual Status CreateDirectories(const std::string& path) = 0;

  /// Atomically-ordered full-file write: truncate, write, flush, close.
  virtual Status WriteFile(const std::string& path,
                          std::string_view contents) = 0;

  /// Reads the whole file; `kNotFound` when it cannot be opened.
  virtual Result<std::string> ReadFile(const std::string& path) = 0;

  /// Renames `from` to `to`, replacing `to` if it exists.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  /// Recursively deletes `path`. OK when it does not exist.
  virtual Status RemoveAll(const std::string& path) = 0;

  /// True iff `path` exists (file or directory).
  virtual bool Exists(const std::string& path) = 0;

  /// True iff `path` exists and is a directory.
  virtual bool IsDirectory(const std::string& path) = 0;

  /// Names (not full paths) of the entries of directory `path`, sorted.
  virtual Result<std::vector<std::string>> ListDirectory(
      const std::string& path) = 0;

  /// Opens `path` for appending, creating it (empty) when absent. Writes
  /// through the returned handle land strictly at the end of the file.
  virtual Result<std::unique_ptr<AppendableFile>> OpenAppendable(
      const std::string& path) = 0;

  /// Truncates `path` to exactly `size` bytes (which must not exceed the
  /// current size). The journal uses this to amputate a torn tail before
  /// resuming appends.
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;
};

/// Production backend over std::filesystem / std::ofstream.
class RealFileSystem : public FileSystem {
 public:
  Status CreateDirectories(const std::string& path) override;
  Status WriteFile(const std::string& path,
                   std::string_view contents) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status RemoveAll(const std::string& path) override;
  bool Exists(const std::string& path) override;
  bool IsDirectory(const std::string& path) override;
  Result<std::vector<std::string>> ListDirectory(
      const std::string& path) override;
  Result<std::unique_ptr<AppendableFile>> OpenAppendable(
      const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
};

/// Process-wide shared `RealFileSystem` used by the convenience overloads.
RealFileSystem& GetRealFileSystem();

/// What happens at the targeted fault point.
///
/// The kind applies to whatever mutating operation sits at the targeted
/// index: a `kTornWrite` landing on a `Rename` degenerates to a clean
/// failure (renames cannot tear), which is exactly the "rename failure"
/// case of the crash matrix.
enum class FaultKind {
  /// The operation fails cleanly with `kUnavailable` (transient; a retry
  /// after the fault point has passed succeeds). Nothing reaches the disk.
  kFailOp,
  /// A `WriteFile` durably writes a seeded-random prefix of the payload,
  /// then fails with `kUnavailable`.
  kTornWrite,
  /// Like `kTornWrite` but fails with `kOutOfRange` carrying ENOSPC text —
  /// a permanent "disk full" that retrying must not mask.
  kNoSpace,
  /// Simulated process death: the operation tears (writes a prefix) and
  /// every subsequent mutating operation fails with `kInternal`. The disk
  /// is left exactly as a crash would leave it.
  kCrash,
};

/// Returns the canonical name of `kind`, e.g. "torn_write".
std::string_view FaultKindName(FaultKind kind);

/// One planned fault: fail the `fail_at_op`-th mutating operation (0-based,
/// counted since the plan was set) in the manner of `kind`.
struct FaultPlan {
  /// Index of the mutating op to fault; -1 never faults (counting only).
  int64_t fail_at_op = -1;
  FaultKind kind = FaultKind::kFailOp;
  /// For `kFailOp`: how many times the targeted op fails before it starts
  /// succeeding again. Lets tests exhaust (or satisfy) bounded retries.
  int transient_failures = 1;
  /// When non-empty, only mutating operations whose path contains this
  /// substring are counted and faulted; everything else passes through
  /// without consuming an op index. Lets a test target one subsystem's
  /// I/O (e.g. "journal-" vs ".staging-") without knowing the interleaved
  /// op numbering. A latched `kCrash` still fails *every* later mutating
  /// op regardless of the filter — a dead process writes nowhere.
  std::string path_filter = {};
};

/// Deterministic fault-injecting wrapper around another `FileSystem`.
///
/// Counts mutating operations and fails the one the plan names. Torn-write
/// prefix lengths are drawn from the seeded `Rng`, so a (plan, seed) pair
/// reproduces a crash byte-for-byte.
///
///   FaultInjectingFileSystem faulty(&real, Rng(seed));
///   faulty.SetPlan({.fail_at_op = 7, .kind = FaultKind::kCrash});
///   Status s = SaveDatabase(dir, db, faulty, opts);  // dies at op 7
class FaultInjectingFileSystem : public FileSystem {
 public:
  /// Wraps `base` (not owned; must outlive this object).
  FaultInjectingFileSystem(FileSystem* base, Rng rng);

  /// Installs a plan and resets the op counter and crash latch.
  void SetPlan(FaultPlan plan);

  /// Mutating operations seen since the last `SetPlan`.
  int64_t ops_seen() const { return ops_seen_; }
  /// Faults actually injected since the last `SetPlan`.
  int64_t faults_injected() const { return faults_injected_; }
  /// True once a `kCrash` fault has fired; all later mutations fail.
  bool crashed() const { return crashed_; }

  Status CreateDirectories(const std::string& path) override;
  Status WriteFile(const std::string& path,
                   std::string_view contents) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status RemoveAll(const std::string& path) override;
  bool Exists(const std::string& path) override;
  bool IsDirectory(const std::string& path) override;
  Result<std::vector<std::string>> ListDirectory(
      const std::string& path) override;
  /// The open itself is a mutating op (it may create the file); every
  /// `Append`/`Sync` through the returned handle is one more, sharing this
  /// filesystem's op counter — so a plan's `fail_at_op` walks save writes
  /// and journal appends on one timeline.
  Result<std::unique_ptr<AppendableFile>> OpenAppendable(
      const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;

 private:
  friend class FaultInjectingAppendableFile;

  /// Returns the fault status for this mutating op, or OK to pass through.
  /// `is_write` selects torn-write behaviour; `contents`/`path` feed it.
  /// A torn write lands its seeded-random prefix through `partial_write`
  /// when provided (appends must append the prefix, not truncate-write
  /// it), else through `base_->WriteFile`.
  Status NextOp(const std::string& path, bool is_write = false,
                std::string_view contents = {},
                const std::function<Status(std::string_view)>*
                    partial_write = nullptr);

  FileSystem* base_;
  Rng rng_;
  FaultPlan plan_;
  int64_t ops_seen_ = 0;
  int64_t faults_injected_ = 0;
  int remaining_transient_failures_ = 0;
  bool crashed_ = false;
};

}  // namespace ppdb::storage

#endif  // PPDB_STORAGE_FS_H_

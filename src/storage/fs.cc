#include "storage/fs.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/macros.h"
#include "obs/metrics.h"

namespace ppdb::storage {

namespace stdfs = std::filesystem;

namespace {

/// Registry mirror of `faults_injected()`, labelled by fault kind. The
/// family is registered by the storage-metrics batch (database_io.cc) so
/// production expositions carry it as zeros.
void CountInjectedFault(FaultKind kind) {
  obs::MetricsRegistry::Default()
      .GetCounter("ppdb_storage_faults_injected_total",
                  "Faults injected by FaultInjectingFileSystem (tests "
                  "only; zero in production).",
                  {{"kind", std::string(FaultKindName(kind))}})
      ->Add();
}

}  // namespace

namespace {

std::string ErrnoText() {
  return errno != 0 ? std::strerror(errno) : "unknown error";
}

}  // namespace

Status RealFileSystem::CreateDirectories(const std::string& path) {
  std::error_code ec;
  stdfs::create_directories(stdfs::path(path), ec);
  if (ec) {
    return Status::Internal("cannot create '" + path + "': " + ec.message());
  }
  return Status::OK();
}

Status RealFileSystem::WriteFile(const std::string& path,
                                 std::string_view contents) {
  errno = 0;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot open '" + path +
                            "' for writing: " + ErrnoText());
  }
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  out.flush();
  if (!out.good()) {
    return Status::Internal("write to '" + path + "' failed: " + ErrnoText());
  }
  // close() can surface a deferred I/O error (full disk, quota) that the
  // flush above did not; a save must not report success past it.
  out.close();
  if (!out.good()) {
    return Status::Internal("close of '" + path + "' failed: " + ErrnoText());
  }
  return Status::OK();
}

Result<std::string> RealFileSystem::ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in && !in.eof()) {
    return Status::Internal("read from '" + path + "' failed");
  }
  return std::move(buffer).str();
}

Status RealFileSystem::Rename(const std::string& from, const std::string& to) {
  std::error_code ec;
  stdfs::rename(stdfs::path(from), stdfs::path(to), ec);
  if (ec) {
    return Status::Internal("cannot rename '" + from + "' to '" + to +
                            "': " + ec.message());
  }
  return Status::OK();
}

Status RealFileSystem::RemoveAll(const std::string& path) {
  std::error_code ec;
  stdfs::remove_all(stdfs::path(path), ec);
  if (ec) {
    return Status::Internal("cannot remove '" + path + "': " + ec.message());
  }
  return Status::OK();
}

bool RealFileSystem::Exists(const std::string& path) {
  std::error_code ec;
  return stdfs::exists(stdfs::path(path), ec);
}

bool RealFileSystem::IsDirectory(const std::string& path) {
  std::error_code ec;
  return stdfs::is_directory(stdfs::path(path), ec);
}

Result<std::vector<std::string>> RealFileSystem::ListDirectory(
    const std::string& path) {
  std::error_code ec;
  stdfs::directory_iterator it(stdfs::path(path), ec);
  if (ec) {
    return Status::NotFound("cannot list '" + path + "': " + ec.message());
  }
  std::vector<std::string> names;
  for (const stdfs::directory_entry& entry : it) {
    names.push_back(entry.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

namespace {

/// POSIX O_APPEND-backed appendable file. Append loops over write(2)
/// (EINTR-safe); Sync is fsync(2) — the journal's durability barrier.
class PosixAppendableFile : public AppendableFile {
 public:
  PosixAppendableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixAppendableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) {
      return Status::Internal("append to closed '" + path_ + "'");
    }
    while (!data.empty()) {
      ssize_t n = ::write(fd_, data.data(), data.size());
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::Internal("append to '" + path_ +
                                "' failed: " + ErrnoText());
      }
      data.remove_prefix(static_cast<size_t>(n));
    }
    return Status::OK();
  }

  Status Sync() override {
    if (fd_ < 0) {
      return Status::Internal("sync of closed '" + path_ + "'");
    }
    if (::fsync(fd_) != 0) {
      return Status::Internal("fsync of '" + path_ +
                              "' failed: " + ErrnoText());
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) {
      return Status::Internal("close of '" + path_ +
                              "' failed: " + ErrnoText());
    }
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

}  // namespace

Result<std::unique_ptr<AppendableFile>> RealFileSystem::OpenAppendable(
    const std::string& path) {
  errno = 0;
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Status::Internal("cannot open '" + path +
                            "' for appending: " + ErrnoText());
  }
  return std::unique_ptr<AppendableFile>(
      std::make_unique<PosixAppendableFile>(fd, path));
}

Status RealFileSystem::TruncateFile(const std::string& path, uint64_t size) {
  errno = 0;
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Status::Internal("cannot truncate '" + path + "' to " +
                            std::to_string(size) + " bytes: " + ErrnoText());
  }
  return Status::OK();
}

RealFileSystem& GetRealFileSystem() {
  static RealFileSystem* const kInstance = new RealFileSystem();  // ppdb-lint: allow(raw-new)
  return *kInstance;
}

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kFailOp:
      return "fail_op";
    case FaultKind::kTornWrite:
      return "torn_write";
    case FaultKind::kNoSpace:
      return "no_space";
    case FaultKind::kCrash:
      return "crash";
  }
  return "unknown";
}

FaultInjectingFileSystem::FaultInjectingFileSystem(FileSystem* base, Rng rng)
    : base_(base), rng_(rng) {
  PPDB_CHECK(base != nullptr);
}

void FaultInjectingFileSystem::SetPlan(FaultPlan plan) {
  plan_ = plan;
  ops_seen_ = 0;
  faults_injected_ = 0;
  remaining_transient_failures_ = plan.transient_failures;
  crashed_ = false;
}

Status FaultInjectingFileSystem::NextOp(
    const std::string& path, bool is_write, std::string_view contents,
    const std::function<Status(std::string_view)>* partial_write) {
  if (crashed_) {
    // Process death is global: even ops outside the path filter fail.
    return Status::Internal("filesystem crashed at op " +
                            std::to_string(plan_.fail_at_op) + "; op on '" +
                            path + "' never ran");
  }
  if (!plan_.path_filter.empty() &&
      path.find(plan_.path_filter) == std::string::npos) {
    return Status::OK();  // outside the filter: uncounted pass-through
  }
  const int64_t op = ops_seen_++;
  if (plan_.fail_at_op < 0 || op < plan_.fail_at_op) return Status::OK();

  switch (plan_.kind) {
    case FaultKind::kFailOp:
      // Fails `transient_failures` consecutive ops starting at the target,
      // so a retry loop either outlasts the fault or gives up cleanly.
      if (op >= plan_.fail_at_op + plan_.transient_failures) {
        return Status::OK();
      }
      ++faults_injected_;
      CountInjectedFault(plan_.kind);
      return Status::Unavailable("injected transient fault at op " +
                                 std::to_string(op) + " on '" + path + "'");
    case FaultKind::kTornWrite:
    case FaultKind::kNoSpace:
    case FaultKind::kCrash: {
      if (op > plan_.fail_at_op) {
        // Only kCrash (latched above) outlives its target op.
        return Status::OK();
      }
      ++faults_injected_;
      CountInjectedFault(plan_.kind);
      if (is_write && !contents.empty()) {
        // A strict prefix lands durably; the seeded Rng picks how much.
        size_t torn = static_cast<size_t>(
            rng_.NextBounded(static_cast<uint64_t>(contents.size())));
        Status partial =
            partial_write != nullptr
                ? (*partial_write)(contents.substr(0, torn))
                : base_->WriteFile(path, contents.substr(0, torn));
        if (!partial.ok()) return partial;
      }
      if (plan_.kind == FaultKind::kCrash) {
        crashed_ = true;
        return Status::Internal("injected crash at op " + std::to_string(op) +
                                " on '" + path + "'");
      }
      if (plan_.kind == FaultKind::kNoSpace) {
        return Status::OutOfRange("injected ENOSPC at op " +
                                  std::to_string(op) + " on '" + path +
                                  "': no space left on device");
      }
      return Status::Unavailable("injected torn write at op " +
                                 std::to_string(op) + " on '" + path + "'");
    }
  }
  return Status::Internal("unreachable fault kind");
}

Status FaultInjectingFileSystem::CreateDirectories(const std::string& path) {
  PPDB_RETURN_NOT_OK(NextOp(path));
  return base_->CreateDirectories(path);
}

Status FaultInjectingFileSystem::WriteFile(const std::string& path,
                                           std::string_view contents) {
  PPDB_RETURN_NOT_OK(NextOp(path, /*is_write=*/true, contents));
  return base_->WriteFile(path, contents);
}

Result<std::string> FaultInjectingFileSystem::ReadFile(
    const std::string& path) {
  return base_->ReadFile(path);
}

Status FaultInjectingFileSystem::Rename(const std::string& from,
                                        const std::string& to) {
  PPDB_RETURN_NOT_OK(NextOp(from));
  return base_->Rename(from, to);
}

Status FaultInjectingFileSystem::RemoveAll(const std::string& path) {
  PPDB_RETURN_NOT_OK(NextOp(path));
  return base_->RemoveAll(path);
}

bool FaultInjectingFileSystem::Exists(const std::string& path) {
  return base_->Exists(path);
}

bool FaultInjectingFileSystem::IsDirectory(const std::string& path) {
  return base_->IsDirectory(path);
}

Result<std::vector<std::string>> FaultInjectingFileSystem::ListDirectory(
    const std::string& path) {
  return base_->ListDirectory(path);
}

/// Appendable handle whose Append and Sync are fault sites on the owning
/// filesystem's op timeline. A torn/ENOSPC/crash fault on an Append lands
/// a seeded-random *appended* prefix (mid-record torn write); any fault on
/// a Sync is clean-failing (an fsync cannot tear, but its bytes may
/// already be durable — exactly the gray zone the journal's repair
/// truncation and the recovery oracle have to handle).
class FaultInjectingAppendableFile : public AppendableFile {
 public:
  FaultInjectingAppendableFile(FaultInjectingFileSystem* owner,
                               std::unique_ptr<AppendableFile> base,
                               std::string path)
      : owner_(owner), base_(std::move(base)), path_(std::move(path)) {}

  Status Append(std::string_view data) override {
    const std::function<Status(std::string_view)> partial =
        [this](std::string_view prefix) { return base_->Append(prefix); };
    PPDB_RETURN_NOT_OK(
        owner_->NextOp(path_, /*is_write=*/true, data, &partial));
    return base_->Append(data);
  }

  Status Sync() override {
    PPDB_RETURN_NOT_OK(owner_->NextOp(path_));
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }

 private:
  FaultInjectingFileSystem* owner_;
  std::unique_ptr<AppendableFile> base_;
  std::string path_;
};

Result<std::unique_ptr<AppendableFile>>
FaultInjectingFileSystem::OpenAppendable(const std::string& path) {
  PPDB_RETURN_NOT_OK(NextOp(path));
  PPDB_ASSIGN_OR_RETURN(std::unique_ptr<AppendableFile> base,
                        base_->OpenAppendable(path));
  return std::unique_ptr<AppendableFile>(
      std::make_unique<FaultInjectingAppendableFile>(this, std::move(base),
                                                     path));
}

Status FaultInjectingFileSystem::TruncateFile(const std::string& path,
                                              uint64_t size) {
  PPDB_RETURN_NOT_OK(NextOp(path));
  return base_->TruncateFile(path, size);
}

}  // namespace ppdb::storage

#include "storage/fs.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/macros.h"
#include "obs/metrics.h"

namespace ppdb::storage {

namespace stdfs = std::filesystem;

namespace {

/// Registry mirror of `faults_injected()`, labelled by fault kind. The
/// family is registered by the storage-metrics batch (database_io.cc) so
/// production expositions carry it as zeros.
void CountInjectedFault(FaultKind kind) {
  obs::MetricsRegistry::Default()
      .GetCounter("ppdb_storage_faults_injected_total",
                  "Faults injected by FaultInjectingFileSystem (tests "
                  "only; zero in production).",
                  {{"kind", std::string(FaultKindName(kind))}})
      ->Add();
}

}  // namespace

namespace {

std::string ErrnoText() {
  return errno != 0 ? std::strerror(errno) : "unknown error";
}

}  // namespace

Status RealFileSystem::CreateDirectories(const std::string& path) {
  std::error_code ec;
  stdfs::create_directories(stdfs::path(path), ec);
  if (ec) {
    return Status::Internal("cannot create '" + path + "': " + ec.message());
  }
  return Status::OK();
}

Status RealFileSystem::WriteFile(const std::string& path,
                                 std::string_view contents) {
  errno = 0;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot open '" + path +
                            "' for writing: " + ErrnoText());
  }
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  out.flush();
  if (!out.good()) {
    return Status::Internal("write to '" + path + "' failed: " + ErrnoText());
  }
  // close() can surface a deferred I/O error (full disk, quota) that the
  // flush above did not; a save must not report success past it.
  out.close();
  if (!out.good()) {
    return Status::Internal("close of '" + path + "' failed: " + ErrnoText());
  }
  return Status::OK();
}

Result<std::string> RealFileSystem::ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in && !in.eof()) {
    return Status::Internal("read from '" + path + "' failed");
  }
  return std::move(buffer).str();
}

Status RealFileSystem::Rename(const std::string& from, const std::string& to) {
  std::error_code ec;
  stdfs::rename(stdfs::path(from), stdfs::path(to), ec);
  if (ec) {
    return Status::Internal("cannot rename '" + from + "' to '" + to +
                            "': " + ec.message());
  }
  return Status::OK();
}

Status RealFileSystem::RemoveAll(const std::string& path) {
  std::error_code ec;
  stdfs::remove_all(stdfs::path(path), ec);
  if (ec) {
    return Status::Internal("cannot remove '" + path + "': " + ec.message());
  }
  return Status::OK();
}

bool RealFileSystem::Exists(const std::string& path) {
  std::error_code ec;
  return stdfs::exists(stdfs::path(path), ec);
}

bool RealFileSystem::IsDirectory(const std::string& path) {
  std::error_code ec;
  return stdfs::is_directory(stdfs::path(path), ec);
}

Result<std::vector<std::string>> RealFileSystem::ListDirectory(
    const std::string& path) {
  std::error_code ec;
  stdfs::directory_iterator it(stdfs::path(path), ec);
  if (ec) {
    return Status::NotFound("cannot list '" + path + "': " + ec.message());
  }
  std::vector<std::string> names;
  for (const stdfs::directory_entry& entry : it) {
    names.push_back(entry.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

RealFileSystem& GetRealFileSystem() {
  static RealFileSystem* const kInstance = new RealFileSystem();  // ppdb-lint: allow(raw-new)
  return *kInstance;
}

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kFailOp:
      return "fail_op";
    case FaultKind::kTornWrite:
      return "torn_write";
    case FaultKind::kNoSpace:
      return "no_space";
    case FaultKind::kCrash:
      return "crash";
  }
  return "unknown";
}

FaultInjectingFileSystem::FaultInjectingFileSystem(FileSystem* base, Rng rng)
    : base_(base), rng_(rng) {
  PPDB_CHECK(base != nullptr);
}

void FaultInjectingFileSystem::SetPlan(FaultPlan plan) {
  plan_ = plan;
  ops_seen_ = 0;
  faults_injected_ = 0;
  remaining_transient_failures_ = plan.transient_failures;
  crashed_ = false;
}

Status FaultInjectingFileSystem::NextOp(const std::string& path,
                                        bool is_write,
                                        std::string_view contents) {
  const int64_t op = ops_seen_++;
  if (crashed_) {
    return Status::Internal("filesystem crashed at op " +
                            std::to_string(plan_.fail_at_op) +
                            "; op " + std::to_string(op) + " on '" + path +
                            "' never ran");
  }
  if (plan_.fail_at_op < 0 || op < plan_.fail_at_op) return Status::OK();

  switch (plan_.kind) {
    case FaultKind::kFailOp:
      // Fails `transient_failures` consecutive ops starting at the target,
      // so a retry loop either outlasts the fault or gives up cleanly.
      if (op >= plan_.fail_at_op + plan_.transient_failures) {
        return Status::OK();
      }
      ++faults_injected_;
      CountInjectedFault(plan_.kind);
      return Status::Unavailable("injected transient fault at op " +
                                 std::to_string(op) + " on '" + path + "'");
    case FaultKind::kTornWrite:
    case FaultKind::kNoSpace:
    case FaultKind::kCrash: {
      if (op > plan_.fail_at_op) {
        // Only kCrash (latched above) outlives its target op.
        return Status::OK();
      }
      ++faults_injected_;
      CountInjectedFault(plan_.kind);
      if (is_write && !contents.empty()) {
        // A strict prefix lands durably; the seeded Rng picks how much.
        size_t torn = static_cast<size_t>(
            rng_.NextBounded(static_cast<uint64_t>(contents.size())));
        Status partial = base_->WriteFile(path, contents.substr(0, torn));
        if (!partial.ok()) return partial;
      }
      if (plan_.kind == FaultKind::kCrash) {
        crashed_ = true;
        return Status::Internal("injected crash at op " + std::to_string(op) +
                                " on '" + path + "'");
      }
      if (plan_.kind == FaultKind::kNoSpace) {
        return Status::OutOfRange("injected ENOSPC at op " +
                                  std::to_string(op) + " on '" + path +
                                  "': no space left on device");
      }
      return Status::Unavailable("injected torn write at op " +
                                 std::to_string(op) + " on '" + path + "'");
    }
  }
  return Status::Internal("unreachable fault kind");
}

Status FaultInjectingFileSystem::CreateDirectories(const std::string& path) {
  PPDB_RETURN_NOT_OK(NextOp(path));
  return base_->CreateDirectories(path);
}

Status FaultInjectingFileSystem::WriteFile(const std::string& path,
                                           std::string_view contents) {
  PPDB_RETURN_NOT_OK(NextOp(path, /*is_write=*/true, contents));
  return base_->WriteFile(path, contents);
}

Result<std::string> FaultInjectingFileSystem::ReadFile(
    const std::string& path) {
  return base_->ReadFile(path);
}

Status FaultInjectingFileSystem::Rename(const std::string& from,
                                        const std::string& to) {
  PPDB_RETURN_NOT_OK(NextOp(from));
  return base_->Rename(from, to);
}

Status FaultInjectingFileSystem::RemoveAll(const std::string& path) {
  PPDB_RETURN_NOT_OK(NextOp(path));
  return base_->RemoveAll(path);
}

bool FaultInjectingFileSystem::Exists(const std::string& path) {
  return base_->Exists(path);
}

bool FaultInjectingFileSystem::IsDirectory(const std::string& path) {
  return base_->IsDirectory(path);
}

Result<std::vector<std::string>> FaultInjectingFileSystem::ListDirectory(
    const std::string& path) {
  return base_->ListDirectory(path);
}

}  // namespace ppdb::storage

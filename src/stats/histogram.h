#ifndef PPDB_STATS_HISTOGRAM_H_
#define PPDB_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace ppdb::stats {

/// Fixed-width binned histogram over [lo, hi).
///
/// Values below `lo` land in an underflow bucket, values at or above `hi` in
/// an overflow bucket, so `total_count()` always equals the number of Add()s.
class Histogram {
 public:
  /// Creates a histogram with `num_bins` equal-width bins over [lo, hi).
  /// Requires num_bins >= 1 and lo < hi.
  static Result<Histogram> Create(double lo, double hi, int num_bins);

  /// Incorporates one observation.
  void Add(double value);

  /// Number of regular bins (excluding under/overflow).
  int num_bins() const { return static_cast<int>(counts_.size()); }

  /// Count in bin `i` (0-based). Requires 0 <= i < num_bins().
  int64_t bin_count(int i) const { return counts_[static_cast<size_t>(i)]; }

  /// Inclusive lower edge of bin `i`.
  double bin_lo(int i) const { return lo_ + width_ * i; }

  /// Exclusive upper edge of bin `i`.
  double bin_hi(int i) const { return lo_ + width_ * (i + 1); }

  int64_t underflow_count() const { return underflow_; }
  int64_t overflow_count() const { return overflow_; }

  /// Total observations including under/overflow.
  int64_t total_count() const;

  /// Fraction of all observations in bin `i`; 0 when empty.
  double bin_fraction(int i) const;

  /// Renders an ASCII bar chart, one row per bin, `max_width` chars of bars.
  std::string ToAsciiArt(int max_width = 50) const;

 private:
  Histogram(double lo, double hi, int num_bins);

  double lo_;
  double width_;
  std::vector<int64_t> counts_;
  int64_t underflow_ = 0;
  int64_t overflow_ = 0;
};

}  // namespace ppdb::stats

#endif  // PPDB_STATS_HISTOGRAM_H_

#ifndef PPDB_STATS_TABLE_PRINTER_H_
#define PPDB_STATS_TABLE_PRINTER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace ppdb::stats {

/// Formats rows of mixed values as an aligned plain-text table, used by the
/// benchmark harness to print paper-style result tables.
///
/// Usage:
///
///   TablePrinter t({"provider", "conf", "defaults"});
///   t.AddRow({"Ted", "60", "1"});
///   t.Print(std::cout);
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row. Rows shorter than the header are padded with empty
  /// cells; longer rows are truncated to the header width.
  void AddRow(std::vector<std::string> cells);

  /// Number of data rows added so far.
  int64_t num_rows() const { return static_cast<int64_t>(rows_.size()); }

  /// Renders the table with a header rule and aligned columns.
  std::string ToString() const;

  /// Writes `ToString()` to `os`.
  void Print(std::ostream& os) const;

  /// Formats a double with `precision` digits after the decimal point.
  static std::string FormatDouble(double v, int precision = 3);

  /// Formats an integer with no decoration.
  static std::string FormatInt(int64_t v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ppdb::stats

#endif  // PPDB_STATS_TABLE_PRINTER_H_

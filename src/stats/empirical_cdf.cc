#include "stats/empirical_cdf.h"

#include <algorithm>
#include <cmath>

namespace ppdb::stats {

void EmpiricalCdf::Add(double value) {
  samples_.push_back(value);
  sorted_ = false;
}

void EmpiricalCdf::AddAll(const std::vector<double>& values) {
  samples_.insert(samples_.end(), values.begin(), values.end());
  sorted_ = false;
}

void EmpiricalCdf::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double EmpiricalCdf::Evaluate(double x) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

Result<double> EmpiricalCdf::Quantile(double q) const {
  if (samples_.empty()) {
    return Status::FailedPrecondition("quantile of empty sample");
  }
  if (q < 0.0 || q > 1.0) {
    return Status::InvalidArgument("quantile order must be in [0, 1]");
  }
  EnsureSorted();
  if (q == 0.0) return samples_.front();
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(samples_.size())));
  if (rank == 0) rank = 1;
  return samples_[rank - 1];
}

std::vector<double> EmpiricalCdf::SortedSamples() const {
  EnsureSorted();
  return samples_;
}

double EmpiricalCdf::KsDistance(const EmpiricalCdf& other) const {
  EnsureSorted();
  other.EnsureSorted();
  double sup = 0.0;
  for (double x : samples_) {
    sup = std::max(sup, std::fabs(Evaluate(x) - other.Evaluate(x)));
  }
  for (double x : other.samples_) {
    sup = std::max(sup, std::fabs(Evaluate(x) - other.Evaluate(x)));
  }
  return sup;
}

}  // namespace ppdb::stats

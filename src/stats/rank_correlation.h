#ifndef PPDB_STATS_RANK_CORRELATION_H_
#define PPDB_STATS_RANK_CORRELATION_H_

#include <vector>

#include "common/result.h"

namespace ppdb::stats {

/// Spearman's rank correlation coefficient between two equal-length
/// samples, with average ranks for ties (the Pearson correlation of the
/// rank vectors). Returns a value in [-1, 1]; errors when the samples
/// differ in length, have fewer than 2 elements, or either is constant
/// (rank variance zero).
///
/// Used by the ablation analysis to quantify how much sensitivity
/// weighting (Eq. 14) re-orders providers by severity.
Result<double> SpearmanCorrelation(const std::vector<double>& a,
                                   const std::vector<double>& b);

/// Average ranks (1-based, ties averaged) of `values`.
std::vector<double> AverageRanks(const std::vector<double>& values);

}  // namespace ppdb::stats

#endif  // PPDB_STATS_RANK_CORRELATION_H_

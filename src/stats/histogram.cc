#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ppdb::stats {

Result<Histogram> Histogram::Create(double lo, double hi, int num_bins) {
  if (num_bins < 1) {
    return Status::InvalidArgument("histogram needs at least one bin");
  }
  if (!(lo < hi)) {
    return Status::InvalidArgument("histogram range must satisfy lo < hi");
  }
  return Histogram(lo, hi, num_bins);
}

Histogram::Histogram(double lo, double hi, int num_bins)
    : lo_(lo),
      width_((hi - lo) / num_bins),
      counts_(static_cast<size_t>(num_bins), 0) {}

void Histogram::Add(double value) {
  if (value < lo_) {
    ++underflow_;
    return;
  }
  auto bin = static_cast<int64_t>((value - lo_) / width_);
  if (bin >= static_cast<int64_t>(counts_.size())) {
    ++overflow_;
    return;
  }
  ++counts_[static_cast<size_t>(bin)];
}

int64_t Histogram::total_count() const {
  int64_t total = underflow_ + overflow_;
  for (int64_t c : counts_) total += c;
  return total;
}

double Histogram::bin_fraction(int i) const {
  int64_t total = total_count();
  if (total == 0) return 0.0;
  return static_cast<double>(bin_count(i)) / static_cast<double>(total);
}

std::string Histogram::ToAsciiArt(int max_width) const {
  int64_t peak = 1;
  for (int64_t c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (int i = 0; i < num_bins(); ++i) {
    auto bar = static_cast<int>(
        std::lround(static_cast<double>(bin_count(i)) * max_width /
                    static_cast<double>(peak)));
    std::snprintf(line, sizeof(line), "[%10.3f, %10.3f) %8lld |", bin_lo(i),
                  bin_hi(i), static_cast<long long>(bin_count(i)));
    out += line;
    out.append(static_cast<size_t>(bar), '#');
    out += '\n';
  }
  return out;
}

}  // namespace ppdb::stats

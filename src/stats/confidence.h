#ifndef PPDB_STATS_CONFIDENCE_H_
#define PPDB_STATS_CONFIDENCE_H_

#include <cstdint>

#include "common/result.h"

namespace ppdb::stats {

/// A two-sided confidence interval [lo, hi].
struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;

  /// True iff `p` lies inside the interval (inclusive).
  bool Contains(double p) const { return p >= lo && p <= hi; }

  /// Interval width.
  double Width() const { return hi - lo; }
};

/// Returns the standard-normal quantile z such that Phi(z) = p, for
/// p in (0, 1). Uses the Acklam rational approximation (|error| < 1.2e-8).
Result<double> NormalQuantile(double p);

/// Wilson score interval for a binomial proportion.
///
/// Given `successes` out of `trials` and a two-sided confidence level (e.g.
/// 0.95), returns an interval for the true proportion. The Wilson interval is
/// well-behaved near 0 and 1, where the paper's violation/default
/// probabilities often live.
Result<ConfidenceInterval> WilsonInterval(int64_t successes, int64_t trials,
                                          double confidence);

/// Normal-approximation (Wald) interval for a binomial proportion, clamped to
/// [0, 1]. Kept for comparison with WilsonInterval in tests/benches.
Result<ConfidenceInterval> WaldInterval(int64_t successes, int64_t trials,
                                        double confidence);

}  // namespace ppdb::stats

#endif  // PPDB_STATS_CONFIDENCE_H_

#include "stats/rank_correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ppdb::stats {

std::vector<double> AverageRanks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Positions i..j (0-based) share the average 1-based rank.
    double average = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 +
                     1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = average;
    i = j + 1;
  }
  return ranks;
}

Result<double> SpearmanCorrelation(const std::vector<double>& a,
                                   const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("samples must have equal length");
  }
  if (a.size() < 2) {
    return Status::InvalidArgument("need at least two observations");
  }
  std::vector<double> ra = AverageRanks(a);
  std::vector<double> rb = AverageRanks(b);
  const double n = static_cast<double>(a.size());
  double mean = (n + 1.0) / 2.0;  // Mean of 1..n (ties preserve the mean).
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double da = ra[i] - mean;
    double db = rb[i] - mean;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a == 0.0 || var_b == 0.0) {
    return Status::FailedPrecondition(
        "rank correlation undefined for constant samples");
  }
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace ppdb::stats

#ifndef PPDB_STATS_EMPIRICAL_CDF_H_
#define PPDB_STATS_EMPIRICAL_CDF_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace ppdb::stats {

/// Empirical cumulative distribution function over a sample.
///
/// Section 10 of the paper proposes "empirically construct[ing] a cumulative
/// distribution function of the number of defaults as the house expands its
/// privacy policies"; this is the container that construction produces.
///
/// Samples are accumulated with Add(); queries implicitly sort (lazily, once
/// per batch of additions).
class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;

  /// Incorporates one observation.
  void Add(double value);

  /// Incorporates many observations.
  void AddAll(const std::vector<double>& values);

  /// Number of observations.
  int64_t count() const { return static_cast<int64_t>(samples_.size()); }

  /// F(x) = fraction of samples <= x. Returns 0 for an empty sample.
  double Evaluate(double x) const;

  /// Inverse CDF: smallest sample value v with F(v) >= q, for q in [0, 1].
  /// Errors on an empty sample or q outside [0, 1].
  Result<double> Quantile(double q) const;

  /// Convenience for Quantile(0.5).
  Result<double> Median() const { return Quantile(0.5); }

  /// Sorted copy of the underlying samples.
  std::vector<double> SortedSamples() const;

  /// One-sample Kolmogorov–Smirnov distance to another empirical CDF:
  /// sup_x |F_this(x) - F_other(x)| evaluated at all sample points.
  double KsDistance(const EmpiricalCdf& other) const;

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace ppdb::stats

#endif  // PPDB_STATS_EMPIRICAL_CDF_H_

#include "stats/running_stats.h"

#include <cmath>
#include <limits>

namespace ppdb::stats {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

void RunningStats::Add(double value) {
  if (count_ == 0) {
    min_ = kInf;
    max_ = -kInf;
  }
  ++count_;
  double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  int64_t n = count_ + other.count_;
  double delta = other.mean_ - mean_;
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  mean_ += delta * nb / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
  count_ = n;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::population_variance() const {
  if (count_ == 0) return 0.0;
  return m2_ / static_cast<double>(count_);
}

void RunningStats::Reset() { *this = RunningStats(); }

}  // namespace ppdb::stats

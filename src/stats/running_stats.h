#ifndef PPDB_STATS_RUNNING_STATS_H_
#define PPDB_STATS_RUNNING_STATS_H_

#include <cstdint>

namespace ppdb::stats {

/// Single-pass accumulator for count, mean, variance, min and max using
/// Welford's numerically stable update.
///
/// Usage:
///
///   RunningStats s;
///   for (double v : samples) s.Add(v);
///   double mu = s.mean(), sd = s.stddev();
class RunningStats {
 public:
  RunningStats() = default;

  /// Incorporates one observation.
  void Add(double value);

  /// Merges another accumulator into this one (parallel-combine rule).
  void Merge(const RunningStats& other);

  /// Number of observations seen.
  int64_t count() const { return count_; }

  /// Arithmetic mean; 0 when empty.
  double mean() const { return mean_; }

  /// Unbiased sample variance (n-1 denominator); 0 when fewer than 2 samples.
  double variance() const;

  /// Square root of `variance()`.
  double stddev() const;

  /// Population variance (n denominator); 0 when empty.
  double population_variance() const;

  /// Smallest observation; +inf when empty.
  double min() const { return min_; }

  /// Largest observation; -inf when empty.
  double max() const { return max_; }

  /// Sum of all observations.
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// Resets to the empty state.
  void Reset();

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // Sum of squared deviations from the running mean.
  double min_;
  double max_;
};

}  // namespace ppdb::stats

#endif  // PPDB_STATS_RUNNING_STATS_H_

#include "stats/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace ppdb::stats {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < cells.size(); ++c) {
      line += "| ";
      line += cells[c];
      line.append(widths[c] - cells[c].size() + 1, ' ');
    }
    line += "|\n";
    return line;
  };

  std::string rule;
  for (size_t w : widths) {
    rule += "+";
    rule.append(w + 2, '-');
  }
  rule += "+\n";

  std::string out = rule + render_row(headers_) + rule;
  for (const auto& row : rows_) out += render_row(row);
  out += rule;
  return out;
}

void TablePrinter::Print(std::ostream& os) const { os << ToString(); }

std::string TablePrinter::FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::FormatInt(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

}  // namespace ppdb::stats

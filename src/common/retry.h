#ifndef PPDB_COMMON_RETRY_H_
#define PPDB_COMMON_RETRY_H_

#include <chrono>
#include <functional>
#include <string_view>

#include "common/status.h"

namespace ppdb {

/// Policy for `RetryWithBackoff`: bounded attempts with exponential,
/// capped backoff between them.
///
/// The defaults are tuned for local-filesystem hiccups (a handful of
/// millisecond-scale waits); callers talking to slower media should widen
/// them. `sleep` exists so tests can record the backoff schedule instead
/// of actually waiting.
struct RetryOptions {
  /// Total attempts including the first one. 1 disables retrying.
  int max_attempts = 4;
  /// Wait before the second attempt.
  std::chrono::milliseconds initial_backoff{1};
  /// Each subsequent wait is the previous one times this factor.
  double backoff_multiplier = 2.0;
  /// Upper bound on any single wait. The exponential growth is computed in
  /// floating point and clamped here *before* conversion back to integer
  /// milliseconds, so extreme (attempts, multiplier) combinations can never
  /// overflow — the wait saturates at this cap instead.
  std::chrono::milliseconds max_backoff{50};
  /// Fraction of each wait randomly shaved off, in [0, 1] (clamped); 0
  /// disables jitter. With jitter j the actual sleep is uniform in
  /// [wait·(1−j), wait]. De-synchronizes the retry stampede that results
  /// when many callers hit the same fault at the same moment and would
  /// otherwise all retry in lockstep. Only the slept duration is jittered;
  /// the underlying exponential schedule stays deterministic.
  double jitter = 0.0;
  /// Seed for the jitter stream — fixed seeds make jittered schedules
  /// reproducible in tests. 0 derives a per-call seed from the clock.
  uint64_t jitter_seed = 0;
  /// Replacement for the real sleep; nullptr sleeps the calling thread.
  std::function<void(std::chrono::milliseconds)> sleep;
};

/// True iff `status` signals a failure worth retrying (`kUnavailable`).
/// Permanent errors (parse errors, not-found, internal invariant breaks)
/// are never transient.
bool IsTransient(const Status& status);

/// Runs `op` up to `options.max_attempts` times, sleeping with exponential
/// backoff between attempts, until it returns OK or a non-transient error.
///
/// The final status is returned unchanged when `op` never succeeded; when
/// retries were exhausted on a transient error the message is annotated
/// with `what` and the attempt count so logs show the retry history.
Status RetryWithBackoff(const RetryOptions& options, std::string_view what,
                        const std::function<Status()>& op);

}  // namespace ppdb

#endif  // PPDB_COMMON_RETRY_H_

#ifndef PPDB_COMMON_RETRY_H_
#define PPDB_COMMON_RETRY_H_

#include <chrono>
#include <functional>
#include <string_view>

#include "common/status.h"

namespace ppdb {

/// Policy for `RetryWithBackoff`: bounded attempts with exponential,
/// capped backoff between them.
///
/// The defaults are tuned for local-filesystem hiccups (a handful of
/// millisecond-scale waits); callers talking to slower media should widen
/// them. `sleep` exists so tests can record the backoff schedule instead
/// of actually waiting.
struct RetryOptions {
  /// Total attempts including the first one. 1 disables retrying.
  int max_attempts = 4;
  /// Wait before the second attempt.
  std::chrono::milliseconds initial_backoff{1};
  /// Each subsequent wait is the previous one times this factor.
  double backoff_multiplier = 2.0;
  /// Upper bound on any single wait.
  std::chrono::milliseconds max_backoff{50};
  /// Replacement for the real sleep; nullptr sleeps the calling thread.
  std::function<void(std::chrono::milliseconds)> sleep;
};

/// True iff `status` signals a failure worth retrying (`kUnavailable`).
/// Permanent errors (parse errors, not-found, internal invariant breaks)
/// are never transient.
bool IsTransient(const Status& status);

/// Runs `op` up to `options.max_attempts` times, sleeping with exponential
/// backoff between attempts, until it returns OK or a non-transient error.
///
/// The final status is returned unchanged when `op` never succeeded; when
/// retries were exhausted on a transient error the message is annotated
/// with `what` and the attempt count so logs show the retry history.
Status RetryWithBackoff(const RetryOptions& options, std::string_view what,
                        const std::function<Status()>& op);

}  // namespace ppdb

#endif  // PPDB_COMMON_RETRY_H_

#ifndef PPDB_COMMON_DEADLOCK_H_
#define PPDB_COMMON_DEADLOCK_H_

#include <atomic>
#include <string>

/// Runtime deadlock (lock-order inversion) detector — the dynamic
/// counterpart of `ppdb_analyze`'s static lock-order pass.
///
/// When enabled, every `Mutex`/`SharedMutex` acquisition is recorded on a
/// per-thread held-lock stack, and each new acquisition adds "held ->
/// acquired" edges to a process-wide order graph. An acquisition that
/// would close a cycle in that graph is a potential deadlock: two
/// executions disagreed about the order of the same pair of locks, and a
/// thread interleaving exists where both block forever. The detector
/// reports the full cycle — the names given to the mutexes at
/// construction, matching the PPDB_LOCK_LEVEL declarations — *before* the
/// acquisition blocks, so the report always outruns the hang it predicts.
///
/// The check is O(edges) per first-time edge (cached thereafter), so it is
/// meant for debug builds and tests: the default mode is kOff, in which
/// the hooks reduce to one relaxed atomic load per lock operation.
/// Detection is process-wide; tests serialize access with
/// `ScopedDetectionForTest`, which also resets the learned graph so
/// runs are independent.
namespace ppdb::deadlock {

enum class Mode {
  /// Hooks disabled; lock ops pay one relaxed atomic load.
  kOff = 0,
  /// Violations invoke the report handler and execution continues.
  kReport = 1,
  /// Violations invoke the report handler, then std::abort(). The default
  /// handler writes the cycle report to stderr first.
  kAbort = 2,
};

void SetMode(Mode mode);
Mode GetMode();

/// Receives the human-readable cycle report on a violation. Installing a
/// handler (tests capturing the report) replaces the default
/// stderr-writer; passing nullptr restores it. The handler runs on the
/// acquiring thread with the detector's internal lock NOT held, so it may
/// allocate and log, but must not acquire ppdb mutexes.
using ReportHandler = void (*)(const std::string& report);
void SetReportHandler(ReportHandler handler);

/// Hook: `mu` (named `name` at construction) is about to be acquired.
/// Learns edges from every currently-held lock to `mu`, checks them
/// against the order graph, and reports a cycle before the caller blocks.
/// `blocking` is false for try-acquisitions, which cannot deadlock by
/// themselves: they are pushed on the held stack (so later acquisitions
/// see them) but add no edges and trigger no check.
void OnAcquire(const void* mu, const char* name, bool blocking);

/// Hook: `mu` was released. Removes the most recent matching entry from
/// the held stack (lock lifetimes nest in RAII use, but out-of-order
/// release of hand-locked mutexes is tolerated).
void OnRelease(const void* mu);

/// Hook: `mu` is being destroyed. Forgets its node and edges so a new
/// mutex placed at the same address does not inherit them.
void OnDestroy(const void* mu);

/// True when any detection mode is active. Inline fast-path gate used by
/// the Mutex wrappers.
extern std::atomic<int> g_mode;
inline bool Enabled() {
  return g_mode.load(std::memory_order_relaxed) != static_cast<int>(Mode::kOff);
}

/// Number of violations reported since process start (monotonic).
int64_t ViolationCount();

/// Test harness: enables the given mode for its scope, resets the learned
/// order graph and the calling thread's held stack on entry and exit, and
/// restores the previous mode and handler. Serializes with other scopes.
class ScopedDetectionForTest {
 public:
  explicit ScopedDetectionForTest(Mode mode, ReportHandler handler = nullptr);
  ~ScopedDetectionForTest();

  ScopedDetectionForTest(const ScopedDetectionForTest&) = delete;
  ScopedDetectionForTest& operator=(const ScopedDetectionForTest&) = delete;

 private:
  Mode previous_mode_;
  ReportHandler previous_handler_;
};

}  // namespace ppdb::deadlock

#endif  // PPDB_COMMON_DEADLOCK_H_

#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace ppdb {

namespace {
bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}
}  // namespace

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && IsSpace(s[begin])) ++begin;
  size_t end = s.size();
  while (end > begin && IsSpace(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> Split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string_view> SplitAndTrim(std::string_view s, char delim) {
  std::vector<std::string_view> out = Split(s, delim);
  for (std::string_view& field : out) field = TrimWhitespace(field);
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = TrimWhitespace(s);
  if (s.empty()) return Status::ParseError("empty string is not an integer");
  int64_t value = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec == std::errc::result_out_of_range) {
    return Status::OutOfRange("integer out of range: '" + std::string(s) + "'");
  }
  if (ec != std::errc() || ptr != last) {
    return Status::ParseError("not an integer: '" + std::string(s) + "'");
  }
  return value;
}

Result<double> ParseDouble(std::string_view s) {
  s = TrimWhitespace(s);
  if (s.empty()) return Status::ParseError("empty string is not a number");
  // std::from_chars for doubles is missing on some libstdc++ configurations;
  // strtod on a NUL-terminated copy is portable and the inputs are short.
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  double value = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("number out of range: '" + buf + "'");
  }
  if (end != buf.c_str() + buf.size() || buf.empty()) {
    return Status::ParseError("not a number: '" + buf + "'");
  }
  return value;
}

bool IsValidIdentifier(std::string_view name) {
  if (name.empty()) return false;
  char first = name[0];
  if (!(std::isalpha(static_cast<unsigned char>(first)) || first == '_')) {
    return false;
  }
  for (char c : name.substr(1)) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '.' || c == '-')) {
      return false;
    }
  }
  return true;
}

std::string CsvEscape(std::string_view field) {
  bool needs_quotes = field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace ppdb

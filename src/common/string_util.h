#ifndef PPDB_COMMON_STRING_UTIL_H_
#define PPDB_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace ppdb {

/// Returns `s` with leading and trailing ASCII whitespace removed.
std::string_view TrimWhitespace(std::string_view s);

/// Splits `s` on every occurrence of `delim`. Adjacent delimiters produce
/// empty fields; an empty input produces a single empty field.
std::vector<std::string_view> Split(std::string_view s, char delim);

/// Splits `s` on `delim` and trims whitespace from every field.
std::vector<std::string_view> SplitAndTrim(std::string_view s, char delim);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True iff `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True iff `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Returns a lower-cased copy of `s` (ASCII only).
std::string ToLower(std::string_view s);

/// Parses a base-10 signed integer. The whole string must be consumed.
Result<int64_t> ParseInt64(std::string_view s);

/// Parses a floating point number. The whole string must be consumed.
Result<double> ParseDouble(std::string_view s);

/// True iff `name` is a valid ppdb identifier: `[A-Za-z_][A-Za-z0-9_.-]*`.
/// Identifiers name attributes, purposes, scale levels and providers.
bool IsValidIdentifier(std::string_view name);

/// Escapes a string for CSV output: wraps in quotes and doubles embedded
/// quotes when the value contains a comma, quote or newline.
std::string CsvEscape(std::string_view field);

}  // namespace ppdb

#endif  // PPDB_COMMON_STRING_UTIL_H_

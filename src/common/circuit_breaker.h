#ifndef PPDB_COMMON_CIRCUIT_BREAKER_H_
#define PPDB_COMMON_CIRCUIT_BREAKER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <string_view>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace ppdb {

/// A circuit breaker guarding a fallible dependency (in ppdb: the storage
/// backend behind `SaveDatabase` / live-monitor checkpoints).
///
/// State machine:
///
///   closed ── N consecutive transient failures ──▶ open
///   open ── `open_duration` elapsed ──▶ half-open (one probe allowed)
///   half-open ── probe succeeds ──▶ closed
///   half-open ── probe fails ──▶ open (timer restarts)
///
/// While open, `Allow()` fails fast with `kUnavailable` (carrying a
/// retry-after hint) instead of letting every request queue up behind a
/// dependency that is known to be down; the serving layer degrades to
/// read-only. Only *transient* failures (see `IsTransient` in
/// common/retry.h) move the machine — a permanent error (parse error,
/// ENOSPC) is the caller's bug or operator's problem, not a signal that
/// backing off will help.
///
/// Thread-safe. The clock is injectable so tests can step time instead of
/// sleeping.
///
/// Usage:
///
///   PPDB_RETURN_NOT_OK(breaker.Allow());
///   Status s = SaveDatabase(...);
///   breaker.Record(s);
///   return s;
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  struct Options {
    /// Consecutive transient failures that trip the breaker. Clamped >= 1.
    int failure_threshold = 3;
    /// How long the breaker stays open before admitting a half-open probe.
    std::chrono::milliseconds open_duration{1000};
    /// Replacement clock for tests; nullptr uses steady_clock::now.
    std::function<std::chrono::steady_clock::time_point()> clock;
    /// Invoked on every state change, under the breaker's lock — it must be
    /// fast and must not call back into the breaker. Lets an observability
    /// layer mirror the state machine (gauge + transition counter) without
    /// the breaker depending on it.
    std::function<void(State from, State to)> on_transition;
  };

  CircuitBreaker() : CircuitBreaker(Options()) {}
  explicit CircuitBreaker(Options options);

  /// OK when a call may proceed: the breaker is closed, or it is half-open
  /// and this caller claimed the single probe slot. `kUnavailable` (with a
  /// `retry_after_ms=` hint in the message) when open or when a probe is
  /// already in flight. A caller that was admitted MUST call `Record` with
  /// the call's outcome, or the probe slot leaks.
  Status Allow() PPDB_EXCLUDES(mu_);

  /// Feeds the machine the outcome of an admitted call: OK closes a
  /// half-open breaker and resets the failure streak; a transient error
  /// extends the streak (tripping at the threshold) or re-opens a
  /// half-open breaker; any other error only releases the probe slot.
  void Record(const Status& status) PPDB_EXCLUDES(mu_);

  State state() const PPDB_EXCLUDES(mu_);

  /// All observable breaker state captured under one lock acquisition, so
  /// the fields are mutually consistent — reading `state()` and `trips()`
  /// separately can interleave with a trip between the two reads.
  struct StatsSnapshot {
    State state = State::kClosed;
    int64_t trips = 0;
    int64_t rejected = 0;
    int64_t consecutive_failures = 0;
  };
  StatsSnapshot Snapshot() const PPDB_EXCLUDES(mu_);

  /// Canonical lower-case name of `state`, e.g. "half_open".
  static std::string_view StateName(State state);

  // --- counters (monotonic since construction) -------------------------

  /// Transitions into open.
  int64_t trips() const PPDB_EXCLUDES(mu_);
  /// `Allow` calls rejected while open / probing.
  int64_t rejected() const PPDB_EXCLUDES(mu_);
  /// Current consecutive transient-failure streak.
  int64_t consecutive_failures() const PPDB_EXCLUDES(mu_);

 private:
  std::chrono::steady_clock::time_point Now() const;
  /// Moves open -> half-open when the open window has elapsed.
  void MaybeHalfOpen() PPDB_REQUIRES(mu_);
  /// Sets state_ and fires on_transition when it actually changed.
  void SetState(State next) PPDB_REQUIRES(mu_);

  /// Immutable after construction (clock and on_transition are only ever
  /// *called* concurrently, never reassigned), so reads need no lock.
  Options options_;
  mutable Mutex mu_{"breaker"} PPDB_LOCK_LEVEL(breaker)
      PPDB_ACQUIRED_AFTER(journal) PPDB_ACQUIRED_BEFORE(pool);
  State state_ PPDB_GUARDED_BY(mu_) = State::kClosed;
  std::chrono::steady_clock::time_point opened_at_ PPDB_GUARDED_BY(mu_){};
  bool probe_in_flight_ PPDB_GUARDED_BY(mu_) = false;
  int64_t consecutive_failures_ PPDB_GUARDED_BY(mu_) = 0;
  int64_t trips_ PPDB_GUARDED_BY(mu_) = 0;
  int64_t rejected_ PPDB_GUARDED_BY(mu_) = 0;
};

}  // namespace ppdb

#endif  // PPDB_COMMON_CIRCUIT_BREAKER_H_

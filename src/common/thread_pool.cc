#include "common/thread_pool.h"

namespace ppdb {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(HardwareConcurrency());
  return pool;
}

int ThreadPool::HardwareConcurrency() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int ThreadPool::ResolveThreadCount(int requested) {
  if (requested == 0) return HardwareConcurrency();
  return requested < 1 ? 1 : requested;
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    tasks_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      // The predicate runs with mu_ held (CondVar re-acquires before each
      // evaluation), and the analysis checks it in this context.
      cv_.Wait(mu_, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained.
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::RunSharded(int64_t num_shards, int workers,
                            const std::function<void(int64_t)>& run_shard) {
  // Shared between the caller and the enqueued runner tasks. Held by
  // shared_ptr so a runner that only gets scheduled after every shard has
  // completed (and the caller has returned) can still safely observe the
  // exhausted counter and exit.
  struct State {
    std::atomic<int64_t> next{0};
    std::atomic<int64_t> completed{0};
    int64_t num_shards = 0;
    std::function<void(int64_t)> run_shard;
    // ppdb-lint: allow(guarded-by) -- mu exists only to pair with the
    // condvar; the state the wait predicate observes is atomic.
    // ppdb-lint: allow(lock-order) -- function-local completion latch,
    // held for a NotifyAll only, never around another acquisition.
    Mutex mu{"pool_shard_state"};
    CondVar done;
  };
  auto state = std::make_shared<State>();
  state->num_shards = num_shards;
  state->run_shard = run_shard;

  auto runner = [state] {
    while (true) {
      int64_t shard = state->next.fetch_add(1, std::memory_order_relaxed);
      if (shard >= state->num_shards) break;
      state->run_shard(shard);
      int64_t finished =
          state->completed.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (finished == state->num_shards) {
        MutexLock lock(state->mu);
        state->done.NotifyAll();
      }
    }
  };

  // The caller is one of the runners, so progress never depends on pool
  // availability (nested parallel loops included).
  for (int i = 1; i < workers; ++i) Enqueue(runner);
  runner();

  MutexLock lock(state->mu);
  state->done.Wait(state->mu, [&] {
    return state->completed.load(std::memory_order_acquire) == num_shards;
  });
}

}  // namespace ppdb

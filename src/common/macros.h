#ifndef PPDB_COMMON_MACROS_H_
#define PPDB_COMMON_MACROS_H_

#include <cstdlib>
#include <iostream>

#include "common/status.h"

/// Evaluates `expr` (a `Status` expression); returns it from the enclosing
/// function if it is not OK.
#define PPDB_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::ppdb::Status _ppdb_status = (expr);        \
    if (!_ppdb_status.ok()) return _ppdb_status; \
  } while (false)

/// As PPDB_RETURN_NOT_OK, but prepends `prefix + ": "` to the error
/// message on the failure path, so propagated errors carry call-site
/// context ("load manifest: open failed: ..." instead of "open failed").
#define PPDB_RETURN_NOT_OK_PREPEND(expr, prefix)                   \
  do {                                                             \
    ::ppdb::Status _ppdb_status = (expr);                          \
    if (!_ppdb_status.ok()) return _ppdb_status.WithPrefix(prefix); \
  } while (false)

/// Deliberately discards a `Status` or `Result<T>`. With both types
/// `[[nodiscard]]`, this is the only sanctioned way to drop one; every use
/// should carry a comment saying where the error is recorded instead
/// (e.g. "checkpoint outcome lands in last_checkpoint_status").
#define PPDB_IGNORE_ERROR(expr) (void)(expr)

#define PPDB_CONCAT_IMPL(x, y) x##y
#define PPDB_CONCAT(x, y) PPDB_CONCAT_IMPL(x, y)

/// Evaluates `rexpr` (a `Result<T>` expression); on error returns its status
/// from the enclosing function, otherwise declares `lhs` bound to the value.
///
///   PPDB_ASSIGN_OR_RETURN(auto table, catalog.GetTable("patients"));
#define PPDB_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  PPDB_ASSIGN_OR_RETURN_IMPL(PPDB_CONCAT(_ppdb_result_, __LINE__), lhs, rexpr)

#define PPDB_ASSIGN_OR_RETURN_IMPL(result, lhs, rexpr) \
  auto result = (rexpr);                               \
  if (!result.ok()) return result.status();            \
  lhs = std::move(result).value()

/// Aborts the process with a message when `condition` is false. Used for
/// programmer errors (broken invariants), not for input validation.
#define PPDB_CHECK(condition)                                             \
  do {                                                                    \
    if (!(condition)) {                                                   \
      std::cerr << "PPDB_CHECK failed at " << __FILE__ << ":" << __LINE__ \
                << ": " #condition << std::endl;                          \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

/// Like PPDB_CHECK but aborts when `expr` (a Status expression) is not OK.
#define PPDB_CHECK_OK(expr)                                                  \
  do {                                                                       \
    ::ppdb::Status _ppdb_check_status = (expr);                              \
    if (!_ppdb_check_status.ok()) {                                          \
      std::cerr << "PPDB_CHECK_OK failed at " << __FILE__ << ":" << __LINE__ \
                << ": " << _ppdb_check_status.ToString() << std::endl;       \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

#endif  // PPDB_COMMON_MACROS_H_

#ifndef PPDB_COMMON_STATUS_H_
#define PPDB_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace ppdb {

/// Machine-readable category of a `Status`.
///
/// The set is deliberately small; fine-grained causes belong in the message.
enum class StatusCode {
  kOk = 0,
  /// A caller-supplied argument is malformed or out of range.
  kInvalidArgument,
  /// A looked-up entity (attribute, purpose, provider, ...) does not exist.
  kNotFound,
  /// An entity being created already exists.
  kAlreadyExists,
  /// The operation is valid but the object is in the wrong state for it.
  kFailedPrecondition,
  /// Two values could not be compared (e.g. tuples for different purposes).
  kIncomparable,
  /// Text could not be parsed (policy DSL, CSV, ...).
  kParseError,
  /// An access request was evaluated and denied by the enforcement layer.
  kPermissionDenied,
  /// Arithmetic would overflow or an internal capacity was exceeded.
  kOutOfRange,
  /// An invariant the library maintains internally was broken; a bug.
  kInternal,
  /// The feature is recognised but not implemented.
  kNotImplemented,
  /// A transient failure (I/O contention, injected fault, busy resource);
  /// the operation may succeed if retried. See common/retry.h.
  kUnavailable,
  /// The request's deadline expired (or it was cancelled) before the
  /// operation finished. See common/deadline.h.
  kDeadlineExceeded,
};

/// Returns the canonical lower-case name of `code`, e.g. "invalid_argument".
std::string_view StatusCodeToString(StatusCode code);

/// Error-signalling type used throughout ppdb instead of exceptions.
///
/// A `Status` is either OK (the common case, represented without allocation)
/// or an error carrying a `StatusCode` and a human-readable message.
/// Functions that produce a value use `Result<T>` (see result.h) instead.
///
/// Usage:
///
///   Status DoThing() {
///     if (bad) return Status::InvalidArgument("threshold must be >= 0");
///     return Status::OK();
///   }
///
/// The class is `[[nodiscard]]`: a dropped return value from any
/// Status-returning function is a compile error under the repo's -Werror
/// build. Propagate with PPDB_RETURN_NOT_OK, or discard deliberately with
/// PPDB_IGNORE_ERROR plus a comment saying why (see common/macros.h).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. `code` must not be
  /// `kOk`; use `OK()` for success.
  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&& other) noexcept = default;
  Status& operator=(Status&& other) noexcept = default;

  /// Returns an OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Incomparable(std::string message) {
    return Status(StatusCode::kIncomparable, std::move(message));
  }
  static Status ParseError(std::string message) {
    return Status(StatusCode::kParseError, std::move(message));
  }
  static Status PermissionDenied(std::string message) {
    return Status(StatusCode::kPermissionDenied, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status NotImplemented(std::string message) {
    return Status(StatusCode::kNotImplemented, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }

  /// True iff this status represents success.
  bool ok() const { return state_ == nullptr; }

  /// The status code; `kOk` when `ok()`.
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }

  /// The error message; empty when `ok()`.
  const std::string& message() const;

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsIncomparable() const { return code() == StatusCode::kIncomparable; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsPermissionDenied() const {
    return code() == StatusCode::kPermissionDenied;
  }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }

  /// Returns "OK" or "<code>: <message>".
  std::string ToString() const;

  /// Returns a copy of this status with `prefix + ": "` prepended to the
  /// message. Prefixing an OK status yields an OK status.
  Status WithPrefix(std::string_view prefix) const;

  /// Two statuses are equal when their codes and messages are equal.
  friend bool operator==(const Status& a, const Status& b);

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // nullptr means OK; keeps the success path allocation-free.
  std::unique_ptr<State> state_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace ppdb

#endif  // PPDB_COMMON_STATUS_H_

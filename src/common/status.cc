#include "common/status.h"

namespace ppdb {

namespace {
const std::string& EmptyString() {
  // ppdb-lint: allow(raw-new) -- leaked singleton, immune to static
  // destruction order.
  static const std::string* const kEmpty = new std::string();
  return *kEmpty;
}
}  // namespace

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kIncomparable:
      return "incomparable";
    case StatusCode::kParseError:
      return "parse_error";
    case StatusCode::kPermissionDenied:
      return "permission_denied";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kNotImplemented:
      return "not_implemented";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
  }
  return "unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    state_ = std::make_unique<State>(State{code, std::move(message)});
  }
}

Status::Status(const Status& other) {
  if (other.state_ != nullptr) {
    state_ = std::make_unique<State>(*other.state_);
  }
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ == nullptr ? nullptr
                                     : std::make_unique<State>(*other.state_);
  }
  return *this;
}

const std::string& Status::message() const {
  return ok() ? EmptyString() : state_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

Status Status::WithPrefix(std::string_view prefix) const {
  if (ok()) return Status::OK();
  std::string prefixed(prefix);
  prefixed += ": ";
  prefixed += message();
  return Status(code(), std::move(prefixed));
}

bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace ppdb

#include "common/retry.h"

#include <algorithm>
#include <string>
#include <thread>

namespace ppdb {

bool IsTransient(const Status& status) { return status.IsUnavailable(); }

Status RetryWithBackoff(const RetryOptions& options, std::string_view what,
                        const std::function<Status()>& op) {
  const int attempts = std::max(1, options.max_attempts);
  std::chrono::milliseconds wait = options.initial_backoff;
  Status last;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    last = op();
    if (last.ok() || !IsTransient(last)) return last;
    if (attempt == attempts) break;
    if (options.sleep) {
      options.sleep(wait);
    } else {
      std::this_thread::sleep_for(wait);
    }
    auto next = std::chrono::milliseconds(static_cast<int64_t>(
        static_cast<double>(wait.count()) * options.backoff_multiplier));
    wait = std::min(std::max(next, wait), options.max_backoff);
  }
  return Status(last.code(), std::string(what) + " failed after " +
                                 std::to_string(attempts) +
                                 " attempt(s): " + last.message());
}

}  // namespace ppdb

#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>

#include "common/rng.h"

namespace ppdb {

namespace {

/// Double-to-milliseconds with saturation: values at or beyond `cap` (or
/// beyond what int64 can hold — doubles near 2^63 round up past the max)
/// return `cap` exactly, so the conversion itself can never overflow.
std::chrono::milliseconds SaturatingMs(double value,
                                       std::chrono::milliseconds cap) {
  if (!(value > 0.0)) return std::chrono::milliseconds(0);
  if (value >= 9.0e18 || value >= static_cast<double>(cap.count())) {
    return cap;
  }
  return std::chrono::milliseconds(static_cast<int64_t>(value));
}

}  // namespace

bool IsTransient(const Status& status) { return status.IsUnavailable(); }

Status RetryWithBackoff(const RetryOptions& options, std::string_view what,
                        const std::function<Status()>& op) {
  const int attempts = std::max(1, options.max_attempts);
  const double jitter = std::clamp(options.jitter, 0.0, 1.0);
  uint64_t seed = options.jitter_seed;
  if (jitter > 0.0 && seed == 0) {
    seed = static_cast<uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
  }
  Rng rng(seed);

  std::chrono::milliseconds wait = options.initial_backoff;
  Status last;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    last = op();
    if (last.ok() || !IsTransient(last)) return last;
    if (attempt == attempts) break;
    std::chrono::milliseconds to_sleep = wait;
    if (jitter > 0.0) {
      to_sleep = SaturatingMs(
          static_cast<double>(wait.count()) * (1.0 - jitter * rng.NextDouble()),
          wait);
    }
    if (options.sleep) {
      options.sleep(to_sleep);
    } else {
      std::this_thread::sleep_for(to_sleep);
    }
    const std::chrono::milliseconds next =
        SaturatingMs(static_cast<double>(wait.count()) *
                         options.backoff_multiplier,
                     options.max_backoff);
    wait = std::min(std::max(next, wait), options.max_backoff);
  }
  return Status(last.code(), std::string(what) + " failed after " +
                                 std::to_string(attempts) +
                                 " attempt(s): " + last.message());
}

}  // namespace ppdb

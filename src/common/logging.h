#ifndef PPDB_COMMON_LOGGING_H_
#define PPDB_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace ppdb {

/// Log severity, in increasing order of importance.
enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

/// Returns "DEBUG", "INFO", "WARNING" or "ERROR".
const char* LogLevelName(LogLevel level);

/// Process-wide minimum level; messages below it are dropped. Default: kInfo.
void SetMinimumLogLevel(LogLevel level);
LogLevel GetMinimumLogLevel();

namespace internal {

/// Stream-style log message writer; flushes to stderr on destruction.
/// Use via the PPDB_LOG macro rather than directly.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ppdb

/// Emits one log line at `level` (a LogLevel enumerator name, e.g. kInfo):
///
///   PPDB_LOG(kWarning) << "provider " << id << " defaulted";
#define PPDB_LOG(level)                                              \
  if (::ppdb::LogLevel::level < ::ppdb::GetMinimumLogLevel()) {      \
  } else                                                             \
    ::ppdb::internal::LogMessage(::ppdb::LogLevel::level, __FILE__,  \
                                 __LINE__)                           \
        .stream()

#endif  // PPDB_COMMON_LOGGING_H_

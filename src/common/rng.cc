#include "common/rng.h"

#include <cmath>

namespace ppdb {

double Rng::NextGaussian() {
  // Box–Muller; u1 is kept away from zero to avoid log(0).
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::NextLogNormal(double mu, double sigma) {
  return std::exp(NextGaussian(mu, sigma));
}

double Rng::NextLaplace(double scale) {
  // Inverse CDF: u in (-1/2, 1/2], x = -b * sgn(u) * ln(1 - 2|u|).
  double u = NextDouble() - 0.5;
  double sign = u < 0 ? -1.0 : 1.0;
  double magnitude = u < 0 ? -u : u;
  // Clamp away from 1 - 2|u| == 0 (u == ±0.5) to avoid log(0).
  double inner = 1.0 - 2.0 * magnitude;
  if (inner <= 0.0) inner = 1e-300;
  return -scale * sign * std::log(inner);
}

size_t Rng::NextCategorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w > 0.0 ? w : 0.0;
  if (total <= 0.0) return 0;
  double target = NextDouble() * total;
  double cum = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cum += weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < cum) return i;
  }
  return weights.size() - 1;
}

size_t Rng::NextZipf(size_t n, double s) {
  if (n == 0) return 0;
  double total = 0.0;
  for (size_t k = 1; k <= n; ++k) total += std::pow(static_cast<double>(k), -s);
  double target = NextDouble() * total;
  double cum = 0.0;
  for (size_t k = 1; k <= n; ++k) {
    cum += std::pow(static_cast<double>(k), -s);
    if (target < cum) return k - 1;
  }
  return n - 1;
}

}  // namespace ppdb

#ifndef PPDB_COMMON_THREAD_POOL_H_
#define PPDB_COMMON_THREAD_POOL_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace ppdb {

/// A fixed-size thread pool with deterministic data-parallel primitives.
///
/// The pool deliberately has no work stealing and no futures: callers hand
/// it index ranges, it splits them into fixed-grain shards, and worker
/// threads race to claim shards from a shared counter. Two properties make
/// it safe to drop into every census-style loop in ppdb:
///
///  1. **Determinism.** Shard boundaries depend only on (range, grain) —
///     never on the thread count — and `ParallelRange`/`ParallelReduce`
///     combine per-shard partials in ascending shard order after all shards
///     finish. A reduction therefore produces bitwise-identical results
///     whether it ran on 1 thread or 64.
///  2. **No deadlocks under nesting.** The calling thread always
///     participates in the work, so a parallel loop issued from inside a
///     pool worker (e.g. a what-if sweep whose inner detector is itself
///     parallel) completes even when every pool worker is busy.
///
/// Usage:
///
///   ThreadPool::Shared().ParallelRange(
///       0, n, /*grain=*/512, /*parallelism=*/threads,
///       [&](int64_t shard, int64_t begin, int64_t end) { ... });
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Joins all workers. Pending tasks are drained before shutdown.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// The process-wide pool, lazily created with one worker per hardware
  /// thread. Never destroyed (it must outlive static detector users); the
  /// OS reclaims the threads at process exit.
  static ThreadPool& Shared();

  /// std::thread::hardware_concurrency() clamped to >= 1.
  static int HardwareConcurrency();

  /// Maps an `Options::num_threads`-style knob to an effective thread
  /// count: 0 -> hardware concurrency, anything else clamped to >= 1.
  static int ResolveThreadCount(int requested);

  /// Hands `task` to the pool for asynchronous execution on some worker.
  /// Tasks run in FIFO submission order relative to each other but
  /// interleave with shards from `ParallelRange`. A long-running task
  /// (e.g. a broker worker loop) simply occupies one worker until it
  /// returns; the destructor still drains every submitted task.
  void Submit(std::function<void()> task) { Enqueue(std::move(task)); }

  /// Number of shards `ParallelRange` splits [begin, end) into at `grain`.
  static int64_t NumShards(int64_t begin, int64_t end, int64_t grain) {
    if (end <= begin) return 0;
    if (grain <= 0) grain = 1;
    return (end - begin + grain - 1) / grain;
  }

  /// Splits [begin, end) into shards of `grain` indices and invokes
  /// `fn(shard_index, shard_begin, shard_end)` for every shard, using at
  /// most `parallelism` threads (the caller plus pool workers). Blocks
  /// until every shard has completed. `fn` must be safe to call
  /// concurrently from distinct threads on distinct shards.
  ///
  /// With `parallelism <= 1` (or a single shard) every shard runs inline
  /// on the calling thread in ascending order — the exact serial loop.
  template <typename Fn>
  void ParallelRange(int64_t begin, int64_t end, int64_t grain,
                     int parallelism, Fn&& fn) {
    const int64_t num_shards = NumShards(begin, end, grain);
    if (num_shards == 0) return;
    if (grain <= 0) grain = 1;
    const auto run_shard = [&](int64_t shard) {
      const int64_t shard_begin = begin + shard * grain;
      const int64_t shard_end = std::min(end, shard_begin + grain);
      fn(shard, shard_begin, shard_end);
    };
    int workers = static_cast<int>(
        std::min<int64_t>(std::max(parallelism, 1), num_shards));
    if (workers <= 1) {
      for (int64_t shard = 0; shard < num_shards; ++shard) run_shard(shard);
      return;
    }
    RunSharded(num_shards, workers,
               [&run_shard](int64_t shard) { run_shard(shard); });
  }

  /// Map-reduce over [begin, end): `map_fn(shard_begin, shard_end) -> T`
  /// produces one partial per shard (in parallel), and `combine(acc,
  /// std::move(partial))` folds the partials into `init` in ascending
  /// shard order after every shard has finished. Because both the shard
  /// boundaries and the combine order are independent of the thread
  /// count, the result is bitwise-identical for any `parallelism`.
  /// `T` must be default-constructible and movable.
  template <typename T, typename MapFn, typename CombineFn>
  T ParallelReduce(int64_t begin, int64_t end, int64_t grain, int parallelism,
                   T init, MapFn&& map_fn, CombineFn&& combine) {
    const int64_t num_shards = NumShards(begin, end, grain);
    if (num_shards == 0) return init;
    std::vector<T> partials(static_cast<size_t>(num_shards));
    ParallelRange(begin, end, grain, parallelism,
                  [&](int64_t shard, int64_t shard_begin, int64_t shard_end) {
                    partials[static_cast<size_t>(shard)] =
                        map_fn(shard_begin, shard_end);
                  });
    T acc = std::move(init);
    for (T& partial : partials) combine(acc, std::move(partial));
    return acc;
  }

 private:
  /// Claims shard indices [0, num_shards) from a shared counter across
  /// `workers` runners (the caller plus up to workers-1 pool tasks) and
  /// blocks until all shards are done.
  void RunSharded(int64_t num_shards, int workers,
                  const std::function<void(int64_t)>& run_shard);

  void Enqueue(std::function<void()> task) PPDB_EXCLUDES(mu_);
  void WorkerLoop() PPDB_EXCLUDES(mu_);

  std::vector<std::thread> workers_;
  Mutex mu_{"pool"} PPDB_LOCK_LEVEL(pool)
      PPDB_ACQUIRED_AFTER(breaker) PPDB_ACQUIRED_BEFORE(trace_ring);
  CondVar cv_;
  std::deque<std::function<void()>> tasks_ PPDB_GUARDED_BY(mu_);
  bool stop_ PPDB_GUARDED_BY(mu_) = false;
};

}  // namespace ppdb

#endif  // PPDB_COMMON_THREAD_POOL_H_

#ifndef PPDB_COMMON_MUTEX_H_
#define PPDB_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>         // ppdb-lint: allow(std-sync) — the wrapper home
#include <shared_mutex>  // ppdb-lint: allow(std-sync) — the wrapper home

#include "common/deadlock.h"
#include "common/thread_annotations.h"

namespace ppdb {

/// Capability-annotated wrappers over `std::mutex` / `std::shared_mutex`.
///
/// Clang's Thread Safety Analysis can only check lock discipline against
/// types it can see annotations on, and libstdc++'s mutexes carry none. All
/// ppdb code therefore uses these wrappers instead of the std types
/// directly (`tools/ppdb_lint.sh` enforces it), so that `-Wthread-safety
/// -Werror` turns "this field is touched without its lock" into a compile
/// error rather than a code-review hope.
///
/// Beyond forwarding to the underlying std primitive, each wrapper carries
/// an optional construction-time name (its level in the documented global
/// lock order, see PPDB_LOCK_LEVEL) and hooks into the runtime deadlock
/// detector (common/deadlock.h). With detection off — the default — the
/// hooks cost one relaxed atomic load per lock operation; debug tests
/// enable detection and get an abort-with-cycle-report on any lock-order
/// inversion, naming the mutexes involved.
class PPDB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// `name` should match the member's PPDB_LOCK_LEVEL declaration; it must
  /// outlive the mutex (string literals do).
  explicit Mutex(const char* name) : name_(name) {}
  ~Mutex() {
    if (deadlock::Enabled()) deadlock::OnDestroy(this);
  }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PPDB_ACQUIRE() {
    // The detector runs before the acquisition so a predicted deadlock is
    // reported even when this call would actually block forever.
    if (deadlock::Enabled()) deadlock::OnAcquire(this, name_, true);
    mu_.lock();
  }
  void Unlock() PPDB_RELEASE() {
    mu_.unlock();
    if (deadlock::Enabled()) deadlock::OnRelease(this);
  }
  bool TryLock() PPDB_TRY_ACQUIRE(true) {
    const bool acquired = mu_.try_lock();
    // A try-acquisition cannot deadlock by itself, so it adds no order
    // edges — but it joins the held stack so later acquisitions see it.
    if (acquired && deadlock::Enabled()) {
      deadlock::OnAcquire(this, name_, false);
    }
    return acquired;
  }

  const char* name() const { return name_; }

  /// Statically asserts to the analysis that this thread holds the lock.
  /// `std::mutex` cannot verify ownership at runtime, so this is purely a
  /// compile-time assertion — only use it where a comment can name the
  /// caller that actually holds the lock (e.g. a callback fired under it).
  void AssertHeld() const PPDB_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;  // ppdb-lint: allow(std-sync)
  const char* name_ = "<mutex>";
};

/// Reader/writer capability wrapper over `std::shared_mutex`. Writers use
/// `Lock`/`Unlock`, readers `LockShared`/`UnlockShared`; the analysis
/// distinguishes the two, so a write to a `PPDB_GUARDED_BY` field under a
/// reader lock is a compile error.
class PPDB_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  /// See Mutex(const char*).
  explicit SharedMutex(const char* name) : name_(name) {}
  ~SharedMutex() {
    if (deadlock::Enabled()) deadlock::OnDestroy(this);
  }
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  // Shared and exclusive acquisitions feed the deadlock detector
  // identically: reader/reader inversions cannot deadlock on their own,
  // but become deadlocks the moment any writer joins, so the order
  // discipline is enforced for both modes.
  void Lock() PPDB_ACQUIRE() {
    if (deadlock::Enabled()) deadlock::OnAcquire(this, name_, true);
    mu_.lock();
  }
  void Unlock() PPDB_RELEASE() {
    mu_.unlock();
    if (deadlock::Enabled()) deadlock::OnRelease(this);
  }
  void LockShared() PPDB_ACQUIRE_SHARED() {
    if (deadlock::Enabled()) deadlock::OnAcquire(this, name_, true);
    mu_.lock_shared();
  }
  void UnlockShared() PPDB_RELEASE_SHARED() {
    mu_.unlock_shared();
    if (deadlock::Enabled()) deadlock::OnRelease(this);
  }

  const char* name() const { return name_; }

  /// See Mutex::AssertHeld — compile-time only.
  void AssertHeld() const PPDB_ASSERT_CAPABILITY(this) {}
  void AssertReaderHeld() const PPDB_ASSERT_SHARED_CAPABILITY(this) {}

 private:
  std::shared_mutex mu_;  // ppdb-lint: allow(std-sync)
  const char* name_ = "<shared_mutex>";
};

/// RAII exclusive lock on a `Mutex`; the annotated replacement for
/// `std::lock_guard` / `std::unique_lock`.
class PPDB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PPDB_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() PPDB_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive (writer) lock on a `SharedMutex`.
class PPDB_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) PPDB_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() PPDB_RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock on a `SharedMutex`.
class PPDB_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) PPDB_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() PPDB_RELEASE() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable paired with `Mutex`. Waits require the lock to be
/// held (checked statically); predicates are evaluated with the lock held,
/// so they may read `PPDB_GUARDED_BY` fields freely.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits for a notification, and re-acquires
  /// `mu` before returning. Spurious wakeups happen; use the predicate
  /// overload unless you re-check the condition yourself.
  void Wait(Mutex& mu) PPDB_REQUIRES(mu) {
    // Adopt the already-held std::mutex for the duration of the wait and
    // release it back to the caller's ownership afterwards; the capability
    // is held again when this returns, exactly as the annotation says.
    std::unique_lock<std::mutex> lock(  // ppdb-lint: allow(std-sync)
        mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  template <typename Predicate>
  void Wait(Mutex& mu, Predicate predicate) PPDB_REQUIRES(mu) {
    while (!predicate()) Wait(mu);
  }

  /// Predicate wait bounded by `timeout` overall. Returns the predicate's
  /// final value (false = timed out with the predicate still unsatisfied).
  template <typename Rep, typename Period, typename Predicate>
  bool WaitFor(Mutex& mu, std::chrono::duration<Rep, Period> timeout,
               Predicate predicate) PPDB_REQUIRES(mu) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (!predicate()) {
      if (!WaitUntil(mu, deadline)) return predicate();
    }
    return true;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  /// Single timed wait; false once `deadline` has passed.
  bool WaitUntil(Mutex& mu, std::chrono::steady_clock::time_point deadline)
      PPDB_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(  // ppdb-lint: allow(std-sync)
        mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  std::condition_variable cv_;  // ppdb-lint: allow(std-sync)
};

}  // namespace ppdb

#endif  // PPDB_COMMON_MUTEX_H_

#include "common/circuit_breaker.h"

#include <algorithm>
#include <string>

#include "common/retry.h"

namespace ppdb {

CircuitBreaker::CircuitBreaker(Options options)
    : options_(std::move(options)) {
  options_.failure_threshold = std::max(1, options_.failure_threshold);
}

std::chrono::steady_clock::time_point CircuitBreaker::Now() const {
  return options_.clock ? options_.clock()
                        : std::chrono::steady_clock::now();
}

void CircuitBreaker::SetState(State next) {
  if (state_ == next) return;
  const State prior = state_;
  state_ = next;
  if (options_.on_transition) options_.on_transition(prior, next);
}

void CircuitBreaker::MaybeHalfOpen() {
  if (state_ == State::kOpen && Now() - opened_at_ >= options_.open_duration) {
    SetState(State::kHalfOpen);
    probe_in_flight_ = false;
  }
}

Status CircuitBreaker::Allow() {
  MutexLock lock(mu_);
  MaybeHalfOpen();
  switch (state_) {
    case State::kClosed:
      return Status::OK();
    case State::kHalfOpen:
      if (!probe_in_flight_) {
        probe_in_flight_ = true;
        return Status::OK();
      }
      ++rejected_;
      return Status::Unavailable(
          "circuit half-open: probe already in flight, retry_after_ms=" +
          std::to_string(options_.open_duration.count()));
    case State::kOpen: {
      ++rejected_;
      auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          options_.open_duration - (Now() - opened_at_));
      if (remaining.count() < 0) remaining = std::chrono::milliseconds(0);
      return Status::Unavailable("circuit open: storage backend failing, "
                                 "retry_after_ms=" +
                                 std::to_string(remaining.count()));
    }
  }
  return Status::Internal("unreachable circuit breaker state");
}

void CircuitBreaker::Record(const Status& status) {
  MutexLock lock(mu_);
  probe_in_flight_ = false;
  if (status.ok()) {
    consecutive_failures_ = 0;
    SetState(State::kClosed);
    return;
  }
  if (!IsTransient(status)) return;
  ++consecutive_failures_;
  if (state_ == State::kHalfOpen ||
      (state_ == State::kClosed &&
       consecutive_failures_ >= options_.failure_threshold)) {
    SetState(State::kOpen);
    opened_at_ = Now();
    ++trips_;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  MutexLock lock(mu_);
  // Report the lapse into half-open without mutating: the transition
  // itself happens on the next Allow().
  if (state_ == State::kOpen && Now() - opened_at_ >= options_.open_duration) {
    return State::kHalfOpen;
  }
  return state_;
}

CircuitBreaker::StatsSnapshot CircuitBreaker::Snapshot() const {
  MutexLock lock(mu_);
  StatsSnapshot snapshot;
  snapshot.state = state_;
  if (state_ == State::kOpen && Now() - opened_at_ >= options_.open_duration) {
    snapshot.state = State::kHalfOpen;  // same lapse rule as state()
  }
  snapshot.trips = trips_;
  snapshot.rejected = rejected_;
  snapshot.consecutive_failures = consecutive_failures_;
  return snapshot;
}

std::string_view CircuitBreaker::StateName(State state) {
  switch (state) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

int64_t CircuitBreaker::trips() const {
  MutexLock lock(mu_);
  return trips_;
}

int64_t CircuitBreaker::rejected() const {
  MutexLock lock(mu_);
  return rejected_;
}

int64_t CircuitBreaker::consecutive_failures() const {
  MutexLock lock(mu_);
  return consecutive_failures_;
}

}  // namespace ppdb

#include "common/deadline.h"

namespace ppdb {

Deadline Deadline::Cancellable() {
  return Deadline(std::make_shared<State>());
}

Deadline Deadline::After(Clock::duration budget) {
  return At(Clock::now() + budget);
}

Deadline Deadline::At(Clock::time_point at) {
  auto state = std::make_shared<State>();
  state->has_time = true;
  state->at = at;
  return Deadline(std::move(state));
}

void Deadline::Cancel() const {
  if (state_ != nullptr) {
    state_->cancelled.store(true, std::memory_order_relaxed);
  }
}

Deadline::Clock::duration Deadline::Remaining() const {
  if (state_ == nullptr) return Clock::duration::max();
  if (state_->cancelled.load(std::memory_order_relaxed)) {
    return Clock::duration::zero();
  }
  if (!state_->has_time) return Clock::duration::max();
  Clock::duration left = state_->at - Clock::now();
  return left < Clock::duration::zero() ? Clock::duration::zero() : left;
}

}  // namespace ppdb

#ifndef PPDB_COMMON_RNG_H_
#define PPDB_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ppdb {

/// Deterministic 64-bit pseudo-random generator (splitmix64 core).
///
/// Every stochastic component in ppdb (the trial-based relative-frequency
/// estimators of Def. 2/5, the population simulator) takes an explicit
/// `Rng&` so that experiments are reproducible from a seed. The engine is
/// splitmix64: tiny state, passes BigCrush, and sequences from distinct
/// seeds are independent for our purposes.
class Rng {
 public:
  /// Seeds the generator. Identical seeds yield identical streams.
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t NextUint64() {
    state_ += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). `bound` must be positive. Uses rejection
  /// sampling to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound) {
    uint64_t threshold = (0ULL - bound) % bound;
    while (true) {
      uint64_t r = NextUint64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool NextBool(double p) { return NextDouble() < p; }

  /// Standard normal via Box–Muller (one value per call; the pair's second
  /// member is deliberately discarded to keep the state trajectory simple).
  double NextGaussian();

  /// Normal with the given mean and (non-negative) standard deviation.
  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Log-normal: exp(N(mu, sigma)). Heavy-tailed; used for sensitivity and
  /// default-threshold draws, which empirically skew right.
  double NextLogNormal(double mu, double sigma);

  /// Laplace(0, b) via inverse CDF; the noise distribution of the
  /// differential-privacy mechanism. `b` must be positive.
  double NextLaplace(double scale);

  /// Samples an index from an (unnormalized) non-negative weight vector.
  /// Returns weights.size()-1 when rounding leaves residual mass. An empty
  /// or all-zero vector yields index 0.
  size_t NextCategorical(const std::vector<double>& weights);

  /// Zipf-distributed rank in [0, n) with exponent `s` (s >= 0; s = 0 is
  /// uniform). Linear-time inverse-CDF sampling; adequate for n <= ~1e6.
  size_t NextZipf(size_t n, double s);

 private:
  uint64_t state_;
};

}  // namespace ppdb

#endif  // PPDB_COMMON_RNG_H_

#ifndef PPDB_COMMON_RESULT_H_
#define PPDB_COMMON_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <utility>

#include "common/status.h"

namespace ppdb {

/// A value-or-error type: either holds a `T` or a non-OK `Status`.
///
/// `Result<T>` is the return type for every fallible ppdb function that
/// produces a value. It converts implicitly from both `T` and `Status` so
/// call sites can `return value;` or `return Status::NotFound(...);`.
///
/// Usage:
///
///   Result<int> ParseCount(std::string_view s);
///
///   PPDB_ASSIGN_OR_RETURN(int n, ParseCount(text));  // see macros.h
///
/// Like `Status`, the class is `[[nodiscard]]`: ignoring a returned
/// `Result` drops an error silently, so the -Werror build rejects it.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a Result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a Result holding `status`, which must be non-OK.
  /// Passing an OK status is an internal error and is converted to one.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  /// True iff a value is held.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is held, the error otherwise.
  const Status& status() const { return status_; }

  /// Returns the held value. Aborts if `!ok()`; check `ok()` first or use
  /// PPDB_ASSIGN_OR_RETURN.
  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return *std::move(value_);
  }

  /// Returns the held value or `fallback` when this Result is an error.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::cerr << "FATAL: Result::value() called on error result: "
                << status_.ToString() << std::endl;
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

}  // namespace ppdb

#endif  // PPDB_COMMON_RESULT_H_

#include "common/crc32c.h"

#include <array>

namespace ppdb {

namespace {

/// The 256-entry lookup table for the reflected Castagnoli polynomial,
/// built once at first use (constant-initialized, no locks).
constexpr uint32_t kPolynomial = 0x82F63B78u;

constexpr std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) != 0 ? (crc >> 1) ^ kPolynomial : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = BuildTable();

}  // namespace

uint32_t ExtendCrc32c(uint32_t crc, std::string_view data) {
  // The stored/returned form is finalized (xor-out applied); undo it to
  // resume, redo it to publish.
  uint32_t state = crc ^ 0xFFFFFFFFu;
  for (char c : data) {
    state = kTable[(state ^ static_cast<uint8_t>(c)) & 0xFFu] ^ (state >> 8);
  }
  return state ^ 0xFFFFFFFFu;
}

}  // namespace ppdb

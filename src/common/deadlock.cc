#include "common/deadlock.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>  // ppdb-lint: allow(std-sync) — the detector cannot be built on the wrappers it instruments
#include <set>
#include <vector>

namespace ppdb::deadlock {
namespace {

/// One node per live mutex address. `name` is the construction-time name
/// (a string literal or a pointer that outlives the mutex); `out` holds
/// the learned "acquired while this was held" successors.
struct Node {
  const char* name = "<unnamed>";
  std::set<const void*> out;
};

/// Guards the order graph. A raw std::mutex by necessity: instrumenting
/// the detector's own lock with the detector would recurse.
// ppdb-lint: allow(std-sync)
std::mutex& GraphMu() {
  // ppdb-lint: allow(std-sync)
  // ppdb-lint: allow(raw-new) — leaked intentionally so the detector
  // keeps working during static destruction.
  static std::mutex* mu = new std::mutex;
  return *mu;
}

std::map<const void*, Node>& Graph() {
  static std::map<const void*, Node>* graph =
      new std::map<const void*, Node>;  // ppdb-lint: allow(raw-new) — see GraphMu
  return *graph;
}

struct Held {
  const void* mu;
  const char* name;
};

std::vector<Held>& HeldStack() {
  thread_local std::vector<Held> held;
  return held;
}

/// Re-entrancy latch: a report handler that takes a ppdb lock anyway must
/// not re-enter the detector.
bool& InDetector() {
  thread_local bool in_detector = false;
  return in_detector;
}

std::atomic<ReportHandler> g_handler{nullptr};
std::atomic<int64_t> g_violations{0};

void DefaultHandler(const std::string& report) {
  std::fputs(report.c_str(), stderr);
  std::fputc('\n', stderr);
  std::fflush(stderr);
}

/// Finds a path `from` -> ... -> `to` in the learned graph (call with
/// GraphMu held). Returns the node sequence including both endpoints, or
/// an empty vector when unreachable.
std::vector<const void*> FindPath(const void* from, const void* to) {
  std::map<const void*, Node>& graph = Graph();
  std::map<const void*, const void*> parent;
  std::vector<const void*> frontier{from};
  parent[from] = nullptr;
  while (!frontier.empty()) {
    const void* node = frontier.back();
    frontier.pop_back();
    if (node == to) {
      std::vector<const void*> path;
      for (const void* at = to; at != nullptr; at = parent[at]) {
        path.push_back(at);
      }
      std::reverse(path.begin(), path.end());
      return path;
    }
    auto it = graph.find(node);
    if (it == graph.end()) continue;
    for (const void* next : it->second.out) {
      if (parent.emplace(next, node).second) frontier.push_back(next);
    }
  }
  return {};
}

const char* NameOf(const void* mu) {
  auto it = Graph().find(mu);
  return it == Graph().end() ? "<unknown>" : it->second.name;
}

std::string DescribeMutex(const void* mu, const char* name) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\" (%p)", name, mu);
  return buf;
}

void Report(std::string report) {
  g_violations.fetch_add(1, std::memory_order_relaxed);
  ReportHandler handler = g_handler.load(std::memory_order_acquire);
  if (handler == nullptr) handler = &DefaultHandler;
  handler(report);
  if (GetMode() == Mode::kAbort) std::abort();
}

}  // namespace

std::atomic<int> g_mode{static_cast<int>(Mode::kOff)};

void SetMode(Mode mode) {
  g_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

Mode GetMode() {
  return static_cast<Mode>(g_mode.load(std::memory_order_relaxed));
}

void SetReportHandler(ReportHandler handler) {
  g_handler.store(handler, std::memory_order_release);
}

int64_t ViolationCount() {
  return g_violations.load(std::memory_order_relaxed);
}

void OnAcquire(const void* mu, const char* name, bool blocking) {
  if (InDetector()) return;
  InDetector() = true;
  std::vector<Held>& held = HeldStack();
  std::string report;
  if (blocking) {
    std::lock_guard<std::mutex> lock(GraphMu());  // ppdb-lint: allow(std-sync)
    Node& node = Graph()[mu];
    node.name = name;
    for (const Held& h : held) {
      if (h.mu == mu) {
        report = "ppdb deadlock detector: recursive acquisition of " +
                 DescribeMutex(mu, name) +
                 " — this thread already holds it and would block on "
                 "itself.";
        break;
      }
      Node& held_node = Graph()[h.mu];
      held_node.name = h.name;
      if (held_node.out.count(mu) != 0) continue;  // edge already learned
      // Adding h -> mu: a pre-existing path mu ~> h closes a cycle.
      std::vector<const void*> path = FindPath(mu, h.mu);
      if (path.empty()) {
        held_node.out.insert(mu);
        continue;
      }
      report = "ppdb deadlock detector: lock-order inversion — acquiring " +
               DescribeMutex(mu, name) + " while holding " +
               DescribeMutex(h.mu, h.name) +
               ", but the opposite order was already observed.\n  cycle:";
      for (const void* at : path) {
        report += "\n    " + DescribeMutex(at, NameOf(at)) + " ->";
      }
      report += " " + DescribeMutex(mu, name) +
                "  (the edge this acquisition would add)";
      break;
    }
  }
  held.push_back(Held{mu, name});
  InDetector() = false;
  if (!report.empty()) Report(std::move(report));
}

void OnRelease(const void* mu) {
  if (InDetector()) return;
  std::vector<Held>& held = HeldStack();
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (it->mu == mu) {
      held.erase(std::next(it).base());
      return;
    }
  }
}

void OnDestroy(const void* mu) {
  if (InDetector()) return;
  std::lock_guard<std::mutex> lock(GraphMu());  // ppdb-lint: allow(std-sync)
  Graph().erase(mu);
  for (auto& [addr, node] : Graph()) node.out.erase(mu);
}

namespace {
/// Serializes ScopedDetectionForTest instances across test threads.
// ppdb-lint: allow(std-sync)
std::mutex& ScopeMu() {
  // ppdb-lint: allow(std-sync)
  // ppdb-lint: allow(raw-new) — see GraphMu.
  static std::mutex* mu = new std::mutex;
  return *mu;
}
}  // namespace

ScopedDetectionForTest::ScopedDetectionForTest(Mode mode,
                                               ReportHandler handler)
    : previous_mode_(GetMode()),
      previous_handler_(g_handler.load(std::memory_order_acquire)) {
  ScopeMu().lock();
  {
    std::lock_guard<std::mutex> lock(GraphMu());  // ppdb-lint: allow(std-sync)
    Graph().clear();
  }
  HeldStack().clear();
  SetReportHandler(handler);
  SetMode(mode);
}

ScopedDetectionForTest::~ScopedDetectionForTest() {
  SetMode(previous_mode_);
  SetReportHandler(previous_handler_);
  {
    std::lock_guard<std::mutex> lock(GraphMu());  // ppdb-lint: allow(std-sync)
    Graph().clear();
  }
  HeldStack().clear();
  ScopeMu().unlock();
}

}  // namespace ppdb::deadlock

#ifndef PPDB_COMMON_DEADLINE_H_
#define PPDB_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace ppdb {

/// A shareable deadline / cancellation token, checked cooperatively.
///
/// Long-running engine loops (`ViolationDetector::Analyze`, what-if sweeps,
/// policy search) accept a `Deadline` and poll it at coarse checkpoints —
/// once per shard chunk, never per element — so a request that has run out
/// of budget stops hogging worker threads within one chunk instead of
/// running to completion. A `Deadline` expires either because its wall-clock
/// budget elapsed or because someone called `Cancel()` (the request broker
/// cancels outstanding tokens when a drain deadline passes).
///
/// Copies share state: cancelling one copy expires all of them, which is
/// how a broker-side timeout reaches a loop deep inside the engine. The
/// default-constructed token is infinite and allocation-free, so plumbing a
/// `Deadline` through options structs costs nothing for callers that never
/// set one.
///
/// Thread safety: lock-free. The shared expiry slot is a single atomic, so
/// `Expired()` / `Cancel()` may race freely across threads; there are no
/// mutexes here and nothing for thread-safety analysis to annotate.
///
/// Usage:
///
///   Deadline deadline = Deadline::After(std::chrono::milliseconds(50));
///   for (...) {
///     if (deadline.Expired()) return Status::DeadlineExceeded(...);
///     ...
///   }
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// An infinite deadline: never expires, `Cancel()` is a no-op.
  Deadline() = default;

  /// Never expires on its own but can be cancelled — the broker uses this
  /// for requests with no explicit budget so drain can still stop them.
  static Deadline Cancellable();

  /// Expires `budget` from now. A non-positive budget is already expired.
  static Deadline After(Clock::duration budget);

  /// Expires at `at`.
  static Deadline At(Clock::time_point at);

  /// Marks the token expired immediately. No-op on the infinite token.
  void Cancel() const;

  /// True iff cancelled or past the time budget.
  bool Expired() const {
    if (state_ == nullptr) return false;
    if (state_->cancelled.load(std::memory_order_relaxed)) return true;
    return state_->has_time && Clock::now() >= state_->at;
  }

  /// OK, or `kDeadlineExceeded` mentioning `what` when expired.
  Status Check(std::string_view what) const {
    if (!Expired()) return Status::OK();
    return Status::DeadlineExceeded(std::string(what) +
                                    ": deadline expired before completion");
  }

  /// Remaining budget; Clock::duration::max() for the infinite token and
  /// zero once expired.
  Clock::duration Remaining() const;

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    bool has_time = false;
    Clock::time_point at{};
  };
  explicit Deadline(std::shared_ptr<State> state) : state_(std::move(state)) {}

  // nullptr = infinite; keeps the no-deadline path allocation-free.
  std::shared_ptr<State> state_;
};

}  // namespace ppdb

#endif  // PPDB_COMMON_DEADLINE_H_

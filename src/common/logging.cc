#include "common/logging.h"

#include <atomic>
#include <iostream>

namespace ppdb {

namespace {
std::atomic<LogLevel> g_min_level{LogLevel::kInfo};
}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARNING";
    case LogLevel::kError:
      return "ERROR";
  }
  return "UNKNOWN";
}

void SetMinimumLogLevel(LogLevel level) { g_min_level.store(level); }

LogLevel GetMinimumLogLevel() { return g_min_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* basename = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') basename = p + 1;
  }
  stream_ << "[" << LogLevelName(level_) << " " << basename << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
}

}  // namespace internal
}  // namespace ppdb

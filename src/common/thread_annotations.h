#ifndef PPDB_COMMON_THREAD_ANNOTATIONS_H_
#define PPDB_COMMON_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis annotations.
///
/// These macros let the compiler check ppdb's lock discipline statically:
/// every mutex-protected member is declared `PPDB_GUARDED_BY(mu_)`, every
/// private helper that assumes a held lock is declared
/// `PPDB_REQUIRES(mu_)`, and a clang build with `-Wthread-safety -Werror`
/// (the `static-analysis` CI job; locally `cmake --preset thread-safety`)
/// rejects any access that does not provably hold the right lock. Under
/// compilers without the attribute (gcc) every macro expands to nothing,
/// so the annotations are free documentation there.
///
/// The capability-annotated `Mutex` / `SharedMutex` wrappers the analysis
/// needs (libstdc++'s `std::mutex` is not annotated) live in
/// common/mutex.h; this header is only the macro layer, patterned after
/// the LLVM/abseil `thread_annotations.h` convention.
///
/// How to annotate a new mutex and how to silence a false positive are
/// documented in DESIGN.md §9 "Static analysis & invariants".

#if defined(__clang__) && (!defined(SWIG))
#define PPDB_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PPDB_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Declares that a data member may only be read or written while the given
/// capability (mutex) is held.
#define PPDB_GUARDED_BY(x) PPDB_THREAD_ANNOTATION(guarded_by(x))

/// As PPDB_GUARDED_BY, but guards the data *pointed to*, not the pointer.
#define PPDB_PT_GUARDED_BY(x) PPDB_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declares that callers must hold the capability exclusively before
/// calling, and that the function does not release it.
#define PPDB_REQUIRES(...) \
  PPDB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// As PPDB_REQUIRES for shared (reader) access.
#define PPDB_REQUIRES_SHARED(...) \
  PPDB_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Declares that the function acquires the capability and holds it on
/// return (e.g. `Mutex::Lock`).
#define PPDB_ACQUIRE(...) \
  PPDB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// As PPDB_ACQUIRE for shared (reader) acquisition.
#define PPDB_ACQUIRE_SHARED(...) \
  PPDB_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Declares that the function releases the capability (e.g.
/// `Mutex::Unlock`).
#define PPDB_RELEASE(...) \
  PPDB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// As PPDB_RELEASE for shared (reader) release.
#define PPDB_RELEASE_SHARED(...) \
  PPDB_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Declares a function that acquires the capability iff it returns the
/// given value (e.g. `TryLock` returning true).
#define PPDB_TRY_ACQUIRE(...) \
  PPDB_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Declares that the function must be called *without* the capability held
/// (it acquires it internally); catches self-deadlock.
#define PPDB_EXCLUDES(...) PPDB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Tells the analysis the capability is held at this point without
/// acquiring it — the escape hatch for locks the analysis cannot follow
/// (e.g. a callback invoked under the caller's lock). Use sparingly and
/// leave a comment saying who actually holds the lock.
#define PPDB_ASSERT_CAPABILITY(x) \
  PPDB_THREAD_ANNOTATION(assert_capability(x))

/// As PPDB_ASSERT_CAPABILITY for shared (reader) access.
#define PPDB_ASSERT_SHARED_CAPABILITY(x) \
  PPDB_THREAD_ANNOTATION(assert_shared_capability(x))

/// Declares that the function returns a reference to the given capability.
#define PPDB_RETURN_CAPABILITY(x) PPDB_THREAD_ANNOTATION(lock_returned(x))

/// Marks a type as a capability (applied to the Mutex wrappers).
#define PPDB_CAPABILITY(x) PPDB_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases a
/// capability (applied to the MutexLock wrappers).
#define PPDB_SCOPED_CAPABILITY PPDB_THREAD_ANNOTATION(scoped_lockable)

/// Turns the analysis off for one function. Last resort for patterns the
/// analysis cannot express; every use needs a justifying comment.
#define PPDB_NO_THREAD_SAFETY_ANALYSIS \
  PPDB_THREAD_ANNOTATION(no_thread_safety_analysis)

// --- Lock-order declarations (read by tools/analyzer, not by clang) --------
//
// Every long-lived Mutex/SharedMutex member declares its place in the one
// documented global acquisition order (DESIGN.md "Lock order & determinism
// invariants"). `ppdb_analyze` (the in-tree static analyzer) builds the
// order graph from these declarations plus the acquisition sites it lexes
// out of src/, fails the build on a cycle or on an observed acquisition
// that contradicts the declared order, and emits the graph as a DOT
// artifact. The runtime deadlock detector (common/deadlock.h) is the
// dynamic counterpart: it learns the same edges from actual executions and
// aborts with a cycle report on an inversion, so the static graph and the
// observed behavior cross-check each other.
//
// The macros compile to nothing under every compiler — clang's own
// `acquired_before`/`acquired_after` attributes only accept same-class
// member expressions, and ppdb's order spans components — so the level
// names are free-form identifiers scoped by the documented order, e.g.
//
//   mutable Mutex mu_ PPDB_LOCK_LEVEL(broker)
//       PPDB_ACQUIRED_AFTER(tcp_completions);

/// Names this mutex member's level in the documented global lock order.
/// Exactly one level per long-lived mutex member; function-local mutexes
/// are exempt (mark them `// ppdb-lint: allow(lock-order)`).
#define PPDB_LOCK_LEVEL(level)

/// Declares that this mutex is acquired BEFORE the named levels — i.e.
/// while it is held, those levels may still be acquired.
#define PPDB_ACQUIRED_BEFORE(...)

/// Declares that this mutex is acquired AFTER the named levels — i.e. it
/// may be acquired while those levels are held.
#define PPDB_ACQUIRED_AFTER(...)

#endif  // PPDB_COMMON_THREAD_ANNOTATIONS_H_

#ifndef PPDB_COMMON_CRC32C_H_
#define PPDB_COMMON_CRC32C_H_

#include <cstdint>
#include <string_view>

namespace ppdb {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
/// checksum the write-ahead journal frames every record with. Chosen over
/// plain CRC-32 for its better burst-error detection on storage payloads
/// (it is what iSCSI, ext4 and most journaling stores use). Table-driven
/// software implementation: no SSE4.2 dependency, bitwise-identical on
/// every host.
///
/// `Crc32c(data)` is the common one-shot form. The extend form chains:
/// `ExtendCrc32c(ExtendCrc32c(kCrc32cInit, a), b) == finalize over a+b`
/// (both take and return the *finalized* value, so partial results are
/// directly comparable and storable).
uint32_t ExtendCrc32c(uint32_t crc, std::string_view data);

inline constexpr uint32_t kCrc32cInit = 0;

inline uint32_t Crc32c(std::string_view data) {
  return ExtendCrc32c(kCrc32cInit, data);
}

}  // namespace ppdb

#endif  // PPDB_COMMON_CRC32C_H_

#ifndef PPDB_PRIVACY_CONFIG_H_
#define PPDB_PRIVACY_CONFIG_H_

#include <map>
#include <string>
#include <vector>

#include "privacy/house_policy.h"
#include "privacy/ordered_scale.h"
#include "privacy/provider_prefs.h"
#include "privacy/purpose.h"
#include "privacy/sensitivity.h"

namespace ppdb::privacy {

/// Everything the violation model needs to know about one house and its
/// provider population, bundled: the interpretation context (scales,
/// purposes), the house policy HP, the provider preferences ProviderPref_i,
/// the Sensitivity = ⟨σ, Σ⟩ pair (Eq. 10), and the default thresholds v_i
/// (Def. 4).
///
/// A PrivacyConfig is a value type; what-if analysis (§9) clones it and
/// widens the copy's policy.
struct PrivacyConfig {
  ScaleSet scales;
  PurposeRegistry purposes;
  PurposeHierarchy purpose_hierarchy;
  HousePolicy policy;
  PreferenceStore preferences;
  SensitivityModel sensitivities;
  /// v_i per provider; providers absent from the map use
  /// `fallback_threshold`.
  std::map<ProviderId, double> thresholds;
  /// Threshold assumed for providers without an explicit v_i.
  double fallback_threshold = 0.0;
  /// Declarative numeric generalizers: attribute -> per-level bin widths
  /// (see audit::NumericRangeGeneralizer). Kept here so a serialized
  /// config fully describes its enforcement; `audit::BuildGeneralizers`
  /// turns the map into a registry.
  std::map<std::string, std::vector<double>> numeric_generalizers;

  /// The threshold v_i for `provider`.
  double ThresholdFor(ProviderId provider) const {
    auto it = thresholds.find(provider);
    return it == thresholds.end() ? fallback_threshold : it->second;
  }

  /// Cross-validates the bundle: policy and preference tuples lie on the
  /// scales and mention registered purposes.
  Status Validate() const;
};

}  // namespace ppdb::privacy

#endif  // PPDB_PRIVACY_CONFIG_H_

#include "privacy/dimension.h"

#include "common/string_util.h"

namespace ppdb::privacy {

std::string_view DimensionName(Dimension dim) {
  switch (dim) {
    case Dimension::kPurpose:
      return "purpose";
    case Dimension::kVisibility:
      return "visibility";
    case Dimension::kGranularity:
      return "granularity";
    case Dimension::kRetention:
      return "retention";
  }
  return "unknown";
}

Result<Dimension> DimensionFromName(std::string_view name) {
  std::string lower = ToLower(name);
  if (lower == "purpose" || lower == "pr") return Dimension::kPurpose;
  if (lower == "visibility" || lower == "v") return Dimension::kVisibility;
  if (lower == "granularity" || lower == "g") return Dimension::kGranularity;
  if (lower == "retention" || lower == "r") return Dimension::kRetention;
  return Status::ParseError("unknown privacy dimension: '" +
                            std::string(name) + "'");
}

}  // namespace ppdb::privacy

#ifndef PPDB_PRIVACY_HOUSE_POLICY_H_
#define PPDB_PRIVACY_HOUSE_POLICY_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "privacy/ordered_scale.h"
#include "privacy/privacy_tuple.h"
#include "privacy/purpose.h"

namespace ppdb::privacy {

/// A particular house policy HP ⊆ Policy (Eq. 3): the set of
/// <attribute, privacy-tuple> pairs the house declares for data collection,
/// storage and use.
///
/// The house "may have multiple privacy tuples associated with the jth
/// attribute" (§4) — e.g. one per purpose — but at most one per
/// (attribute, purpose) pair, since a second tuple for the same pair would
/// merely shadow the first in every comparison.
///
/// HousePolicy is a value type (copyable): what-if analysis works on widened
/// copies of the current policy (§9).
class HousePolicy {
 public:
  HousePolicy() = default;

  /// Adds the policy tuple <attribute, tuple> to HP. Errors when a tuple for
  /// the same (attribute, purpose) already exists.
  Status Add(std::string_view attribute, const PrivacyTuple& tuple);

  /// Removes the tuple for (attribute, purpose); kNotFound when absent.
  Status Remove(std::string_view attribute, PurposeId purpose);

  /// HP^j (Eq. 4): all policy tuples for `attribute`.
  std::vector<PolicyTuple> ForAttribute(std::string_view attribute) const;

  /// The tuple for (attribute, purpose); kNotFound when absent.
  Result<PrivacyTuple> Find(std::string_view attribute,
                            PurposeId purpose) const;

  /// All policy tuples, in insertion order.
  const std::vector<PolicyTuple>& tuples() const { return tuples_; }

  int64_t size() const { return static_cast<int64_t>(tuples_.size()); }
  bool empty() const { return tuples_.empty(); }

  /// Distinct attribute names mentioned by the policy, in first-mention
  /// order.
  std::vector<std::string> Attributes() const;

  /// Distinct purposes mentioned by the policy, in first-mention order.
  std::vector<PurposeId> Purposes() const;

  /// Validates every tuple's levels against `scales`.
  Status ValidateAgainst(const ScaleSet& scales) const;

  /// Returns a copy with `dim` increased by `delta` on every tuple, clamped
  /// to [0, scale max]. This is the §9 "expansion of the privacy policies
  /// for a house" applied uniformly; errors on kPurpose.
  Result<HousePolicy> Widened(Dimension dim, int delta,
                              const ScaleSet& scales) const;

  /// Returns a copy with `dim` increased by `delta` (clamped) on the tuples
  /// for `attribute` only.
  Result<HousePolicy> WidenedForAttribute(std::string_view attribute,
                                          Dimension dim, int delta,
                                          const ScaleSet& scales) const;

  /// Renders one line per tuple.
  std::string ToString(const PurposeRegistry& purposes,
                       const ScaleSet& scales) const;

 private:
  std::vector<PolicyTuple> tuples_;
};

}  // namespace ppdb::privacy

#endif  // PPDB_PRIVACY_HOUSE_POLICY_H_

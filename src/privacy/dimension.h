#ifndef PPDB_PRIVACY_DIMENSION_H_
#define PPDB_PRIVACY_DIMENSION_H_

#include <array>
#include <string_view>

#include "common/result.h"

namespace ppdb::privacy {

/// The four privacy dimensions of the Barker et al. taxonomy (paper §2):
/// P = Pr × V × G × R (Eq. 1).
///
/// Purpose is categorical (assumption 4: "purpose acts like a categorical
/// variable"); visibility, granularity and retention carry a total order
/// (assumption 2) with larger values meaning greater privacy exposure.
enum class Dimension {
  kPurpose,
  kVisibility,
  kGranularity,
  kRetention,
};

/// The three totally-ordered dimensions, in the order the paper sums over
/// them in Eq. 14: dim ∈ {V, G, R}.
inline constexpr std::array<Dimension, 3> kOrderedDimensions = {
    Dimension::kVisibility,
    Dimension::kGranularity,
    Dimension::kRetention,
};

/// Returns "purpose", "visibility", "granularity" or "retention".
std::string_view DimensionName(Dimension dim);

/// Parses a dimension name (also accepts the short forms "pr", "v", "g",
/// "r").
Result<Dimension> DimensionFromName(std::string_view name);

}  // namespace ppdb::privacy

#endif  // PPDB_PRIVACY_DIMENSION_H_

#ifndef PPDB_PRIVACY_PRIVACY_TUPLE_H_
#define PPDB_PRIVACY_PRIVACY_TUPLE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "privacy/dimension.h"
#include "privacy/ordered_scale.h"
#include "privacy/purpose.h"

namespace ppdb::privacy {

/// A point p ∈ P = Pr × V × G × R in the privacy space (Eq. 1): one purpose
/// plus a level on each ordered dimension.
///
/// Levels are indices on the corresponding `OrderedScale`; larger means more
/// exposure. A tuple with all ordered levels 0 exposes nothing — it is the
/// implicit preference the model assumes when a provider has stated none for
/// a purpose (Def. 1: "we add the tuple <i, a, pr, 0, 0, 0>").
struct PrivacyTuple {
  PurposeId purpose = 0;
  int visibility = 0;
  int granularity = 0;
  int retention = 0;

  /// The level on an ordered dimension; errors on kPurpose (use `purpose`).
  Result<int> Level(Dimension dim) const;

  /// Mutable setter for an ordered dimension; errors on kPurpose.
  Status SetLevel(Dimension dim, int level);

  /// The all-zero tuple for `purpose` (paper's <pr, 0, 0, 0>).
  static PrivacyTuple ZeroFor(PurposeId purpose) {
    return PrivacyTuple{purpose, 0, 0, 0};
  }

  /// True iff every ordered level of `this` is <= the corresponding level of
  /// `other` — i.e. this tuple is "bounded by" other in the geometric sense
  /// of Fig. 1. Purposes are not compared.
  bool BoundedBy(const PrivacyTuple& other) const {
    return visibility <= other.visibility &&
           granularity <= other.granularity && retention <= other.retention;
  }

  /// The ordered dimensions on which `this` strictly exceeds `other`
  /// (p[dim] > other[dim]); empty iff BoundedBy(other). This is the
  /// per-dimension violation attribution behind Fig. 1(b)/(c).
  std::vector<Dimension> DimensionsExceeding(const PrivacyTuple& other) const;

  /// Validates all three levels against `scales`.
  Status ValidateAgainst(const ScaleSet& scales) const;

  /// Renders with level names resolved, e.g.
  /// "(marketing, v=house, g=specific, r=year)".
  std::string ToString(const PurposeRegistry& purposes,
                       const ScaleSet& scales) const;

  /// Renders with raw numeric levels, e.g. "(pr=0, v=1, g=3, r=3)".
  std::string ToString() const;

  friend bool operator==(const PrivacyTuple& a, const PrivacyTuple& b) {
    return a.purpose == b.purpose && a.visibility == b.visibility &&
           a.granularity == b.granularity && a.retention == b.retention;
  }
};

/// A house policy element <a, p> ∈ HP (Eq. 2–3): the policy tuple `tuple`
/// applies to the attribute named `attribute`.
struct PolicyTuple {
  std::string attribute;
  PrivacyTuple tuple;

  friend bool operator==(const PolicyTuple& a, const PolicyTuple& b) {
    return a.attribute == b.attribute && a.tuple == b.tuple;
  }
};

/// A provider preference element <i, a, p> ∈ ProviderPref_i (Eq. 5).
struct PreferenceTuple {
  int64_t provider = 0;
  std::string attribute;
  PrivacyTuple tuple;

  friend bool operator==(const PreferenceTuple& a, const PreferenceTuple& b) {
    return a.provider == b.provider && a.attribute == b.attribute &&
           a.tuple == b.tuple;
  }
};

}  // namespace ppdb::privacy

#endif  // PPDB_PRIVACY_PRIVACY_TUPLE_H_

#ifndef PPDB_PRIVACY_POLICY_DSL_H_
#define PPDB_PRIVACY_POLICY_DSL_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "privacy/config.h"

namespace ppdb::privacy {

/// Parses the ppdb privacy-configuration DSL into a `PrivacyConfig`.
///
/// The DSL is line-oriented; `#` starts a comment. Statement forms:
///
///   scale visibility: none, house, third_party, world
///   scale granularity: none, existential, partial, specific
///   scale retention: none, week, month, year, indefinite
///   magnitudes retention: 0, 7, 30, 365, 36500
///
///   purpose marketing
///   purpose email_marketing implies marketing
///   provider 7                # a provider with no stated preferences
///
///   policy weight for marketing: visibility=house,
///       granularity=specific, retention=year        (one line, or use a
///   pref 1 weight for marketing: visibility=house,   trailing backslash
///       granularity=partial, retention=year          to continue)
///
///   generalizer weight: 0, 0, 10   # numeric bin widths per granularity
///                                  # level (audit::NumericRangeGeneralizer)
///
///   attr_sensitivity weight = 4
///   attr_sensitivity weight for marketing = 5
///   sensitivity 1 weight: value=1, visibility=1, granularity=2, retention=1
///   sensitivity 1 weight for marketing: value=3, granularity=5
///   threshold 1 = 10
///   fallback_threshold = 25
///
/// Scales default to the canonical taxonomy scales when not declared; a
/// `scale` statement must precede any statement that uses its levels. Level
/// values accept either a level name or a raw non-negative integer index.
/// Unspecified keys of a `sensitivity` statement default to 1. Purposes are
/// auto-registered on first use in `policy`/`pref` statements.
///
/// Errors carry a "line N" prefix.
Result<PrivacyConfig> ParsePrivacyConfig(std::string_view text);

/// Serializes `config` back to DSL text. Parsing the output reproduces the
/// config (round-trip property): scales with magnitudes, purposes and
/// hierarchy edges, the policy, all preferences, every explicitly-set
/// sensitivity, and thresholds.
std::string SerializePrivacyConfig(const PrivacyConfig& config);

}  // namespace ppdb::privacy

#endif  // PPDB_PRIVACY_POLICY_DSL_H_

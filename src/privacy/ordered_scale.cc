#include "privacy/ordered_scale.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace ppdb::privacy {

Result<OrderedScale> OrderedScale::Create(
    Dimension dimension, std::vector<std::string> level_names) {
  if (dimension == Dimension::kPurpose) {
    return Status::InvalidArgument(
        "purpose is categorical and has no ordered scale (assumption 4)");
  }
  if (level_names.empty()) {
    return Status::InvalidArgument("a scale needs at least one level");
  }
  for (const std::string& name : level_names) {
    if (!IsValidIdentifier(name)) {
      return Status::InvalidArgument("invalid level name: '" + name + "'");
    }
  }
  OrderedScale scale(dimension, std::move(level_names));
  if (scale.index_.size() != scale.names_.size()) {
    return Status::InvalidArgument("duplicate level name in scale");
  }
  return scale;
}

OrderedScale::OrderedScale(Dimension dimension, std::vector<std::string> names)
    : dimension_(dimension),
      names_(std::move(names)),
      magnitudes_(names_.size()) {
  for (size_t i = 0; i < names_.size(); ++i) {
    index_.emplace(names_[i], static_cast<int>(i));
  }
}

OrderedScale OrderedScale::DefaultVisibility() {
  return Create(Dimension::kVisibility, {"none", "house", "third_party",
                                         "world"})
      .value();
}

OrderedScale OrderedScale::DefaultGranularity() {
  return Create(Dimension::kGranularity,
                {"none", "existential", "partial", "specific"})
      .value();
}

OrderedScale OrderedScale::DefaultRetention() {
  OrderedScale scale =
      Create(Dimension::kRetention, {"none", "week", "month", "year",
                                     "indefinite"})
          .value();
  PPDB_CHECK_OK(scale.SetMagnitude(0, 0.0));
  PPDB_CHECK_OK(scale.SetMagnitude(1, 7.0));
  PPDB_CHECK_OK(scale.SetMagnitude(2, 30.0));
  PPDB_CHECK_OK(scale.SetMagnitude(3, 365.0));
  PPDB_CHECK_OK(scale.SetMagnitude(4, 36500.0));
  return scale;
}

Result<std::string> OrderedScale::NameOf(int level) const {
  if (!IsValidLevel(level)) {
    return Status::OutOfRange("level " + std::to_string(level) +
                              " outside scale of " +
                              std::to_string(num_levels()) + " levels");
  }
  return names_[static_cast<size_t>(level)];
}

Result<int> OrderedScale::LevelOf(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) {
    return Status::NotFound("no level named '" + std::string(name) +
                            "' on scale " + ToString());
  }
  return it->second;
}

Status OrderedScale::SetMagnitude(int level, double magnitude) {
  if (!IsValidLevel(level)) {
    return Status::OutOfRange("level " + std::to_string(level) +
                              " outside scale");
  }
  magnitudes_[static_cast<size_t>(level)] = magnitude;
  return Status::OK();
}

Result<double> OrderedScale::MagnitudeOf(int level) const {
  if (!IsValidLevel(level)) {
    return Status::OutOfRange("level " + std::to_string(level) +
                              " outside scale");
  }
  const std::optional<double>& m = magnitudes_[static_cast<size_t>(level)];
  return m.has_value() ? *m : static_cast<double>(level);
}

std::string OrderedScale::ToString() const {
  std::string out(DimensionName(dimension_));
  out += "{";
  for (size_t i = 0; i < names_.size(); ++i) {
    if (i > 0) out += " < ";
    out += names_[i];
  }
  out += "}";
  return out;
}

Result<OrderedScale*> ScaleSet::MutableForDimension(Dimension dim) {
  switch (dim) {
    case Dimension::kVisibility:
      return &visibility;
    case Dimension::kGranularity:
      return &granularity;
    case Dimension::kRetention:
      return &retention;
    case Dimension::kPurpose:
      return Status::InvalidArgument("purpose has no ordered scale");
  }
  return Status::Internal("unhandled dimension");
}

Result<const OrderedScale*> ScaleSet::ForDimension(Dimension dim) const {
  switch (dim) {
    case Dimension::kVisibility:
      return &visibility;
    case Dimension::kGranularity:
      return &granularity;
    case Dimension::kRetention:
      return &retention;
    case Dimension::kPurpose:
      return Status::InvalidArgument("purpose has no ordered scale");
  }
  return Status::Internal("unhandled dimension");
}

}  // namespace ppdb::privacy

#include "privacy/policy_diff.h"

namespace ppdb::privacy {

bool PolicyDiff::PurelyNarrowing() const {
  if (!added.empty()) {
    // An added tuple with all-zero levels exposes nothing; any positive
    // level is new exposure.
    for (const PolicyTuple& pt : added) {
      if (pt.tuple.visibility > 0 || pt.tuple.granularity > 0 ||
          pt.tuple.retention > 0) {
        return false;
      }
    }
  }
  for (const PolicyLevelChange& change : level_changes) {
    if (change.Delta() > 0) return false;
  }
  return true;
}

bool PolicyDiff::Widens() const {
  for (const PolicyTuple& pt : added) {
    if (pt.tuple.visibility > 0 || pt.tuple.granularity > 0 ||
        pt.tuple.retention > 0) {
      return true;
    }
  }
  for (const PolicyLevelChange& change : level_changes) {
    if (change.Delta() > 0) return true;
  }
  return false;
}

std::string PolicyDiff::ToString(const PurposeRegistry& purposes,
                                 const ScaleSet& scales) const {
  if (Empty()) return "(no policy changes)\n";
  std::string out;
  auto purpose_name = [&](PurposeId id) {
    Result<std::string> name = purposes.NameOf(id);
    return name.ok() ? name.value() : "purpose#" + std::to_string(id);
  };
  for (const PolicyTuple& pt : added) {
    out += "+ " + pt.attribute + " for " + purpose_name(pt.tuple.purpose) +
           ": " + pt.tuple.ToString(purposes, scales) + "\n";
  }
  for (const PolicyTuple& pt : removed) {
    out += "- " + pt.attribute + " for " + purpose_name(pt.tuple.purpose) +
           "\n";
  }
  for (const PolicyLevelChange& change : level_changes) {
    Result<const OrderedScale*> scale =
        scales.ForDimension(change.dimension);
    auto level_name = [&](int level) {
      if (scale.ok()) {
        Result<std::string> name = scale.value()->NameOf(level);
        if (name.ok()) return name.value();
      }
      return std::to_string(level);
    };
    out += std::string(change.Delta() > 0 ? "~ widened  " : "~ narrowed ") +
           change.attribute + " for " + purpose_name(change.purpose) + ": " +
           std::string(DimensionName(change.dimension)) + " " +
           level_name(change.old_level) + " -> " +
           level_name(change.new_level) + "\n";
  }
  return out;
}

PolicyDiff DiffPolicies(const HousePolicy& before, const HousePolicy& after) {
  PolicyDiff diff;
  for (const PolicyTuple& old_tuple : before.tuples()) {
    Result<PrivacyTuple> counterpart =
        after.Find(old_tuple.attribute, old_tuple.tuple.purpose);
    if (!counterpart.ok()) {
      diff.removed.push_back(old_tuple);
      continue;
    }
    for (Dimension dim : kOrderedDimensions) {
      int old_level = old_tuple.tuple.Level(dim).value();
      int new_level = counterpart->Level(dim).value();
      if (old_level != new_level) {
        diff.level_changes.push_back(
            PolicyLevelChange{old_tuple.attribute, old_tuple.tuple.purpose,
                              dim, old_level, new_level});
      }
    }
  }
  for (const PolicyTuple& new_tuple : after.tuples()) {
    if (!before.Find(new_tuple.attribute, new_tuple.tuple.purpose).ok()) {
      diff.added.push_back(new_tuple);
    }
  }
  return diff;
}

}  // namespace ppdb::privacy

#ifndef PPDB_PRIVACY_POLICY_DIFF_H_
#define PPDB_PRIVACY_POLICY_DIFF_H_

#include <string>
#include <vector>

#include "privacy/house_policy.h"

namespace ppdb::privacy {

/// One level movement between two versions of a policy.
struct PolicyLevelChange {
  std::string attribute;
  PurposeId purpose = 0;
  Dimension dimension = Dimension::kVisibility;
  int old_level = 0;
  int new_level = 0;

  /// Positive when the policy widened (more exposure) on this dimension.
  int Delta() const { return new_level - old_level; }
};

/// Structural difference between two house policies, the unit of the §10
/// scenario of "frequently changing privacy policies on social networking
/// sites": which (attribute, purpose) coverage was added or dropped, and
/// which levels moved.
struct PolicyDiff {
  /// Tuples present only in the new policy (new data uses).
  std::vector<PolicyTuple> added;
  /// Tuples present only in the old policy (retired data uses).
  std::vector<PolicyTuple> removed;
  /// Level movements on tuples present in both.
  std::vector<PolicyLevelChange> level_changes;

  bool Empty() const {
    return added.empty() && removed.empty() && level_changes.empty();
  }

  /// True iff the change cannot increase any provider's exposure: nothing
  /// added, and every level change narrows. (Removals only retire uses.)
  bool PurelyNarrowing() const;

  /// True iff some component widens exposure (an added tuple with any
  /// positive level, or a positive level change).
  bool Widens() const;

  /// Human-readable rendering with purposes and level names resolved.
  std::string ToString(const PurposeRegistry& purposes,
                       const ScaleSet& scales) const;
};

/// Computes the difference from `before` to `after`.
PolicyDiff DiffPolicies(const HousePolicy& before, const HousePolicy& after);

}  // namespace ppdb::privacy

#endif  // PPDB_PRIVACY_POLICY_DIFF_H_

#include "privacy/policy_dsl.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/string_util.h"

namespace ppdb::privacy {

namespace {

/// Splits "k1=v1, k2=v2" into trimmed pairs.
Result<std::vector<std::pair<std::string, std::string>>> ParseKvList(
    std::string_view text) {
  std::vector<std::pair<std::string, std::string>> out;
  for (std::string_view item : SplitAndTrim(text, ',')) {
    if (item.empty()) {
      return Status::ParseError("empty item in key=value list");
    }
    size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      return Status::ParseError("expected key=value, got '" +
                                std::string(item) + "'");
    }
    std::string key(TrimWhitespace(item.substr(0, eq)));
    std::string value(TrimWhitespace(item.substr(eq + 1)));
    if (key.empty() || value.empty()) {
      return Status::ParseError("expected key=value, got '" +
                                std::string(item) + "'");
    }
    out.emplace_back(std::move(key), std::move(value));
  }
  return out;
}

/// A level token is a level name on the scale or a raw integer index.
Result<int> ParseLevelToken(const OrderedScale& scale,
                            std::string_view token) {
  Result<int> by_name = scale.LevelOf(token);
  if (by_name.ok()) return by_name;
  Result<int64_t> by_index = ParseInt64(token);
  if (!by_index.ok()) {
    return Status::ParseError("'" + std::string(token) +
                              "' is neither a level of " + scale.ToString() +
                              " nor an integer");
  }
  int level = static_cast<int>(by_index.value());
  if (!scale.IsValidLevel(level)) {
    return Status::ParseError("level index " + std::to_string(level) +
                              " outside " + scale.ToString());
  }
  return level;
}

/// Whitespace-tokenizes `text`.
std::vector<std::string_view> Tokenize(std::string_view text) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    size_t start = i;
    while (i < text.size() && text[i] != ' ' && text[i] != '\t') ++i;
    if (i > start) out.push_back(text.substr(start, i - start));
  }
  return out;
}

class Parser {
 public:
  Result<PrivacyConfig> Parse(std::string_view text) {
    // Join continuation lines (trailing backslash).
    std::string joined;
    joined.reserve(text.size());
    for (size_t i = 0; i < text.size(); ++i) {
      if (text[i] == '\\' && i + 1 < text.size() && text[i + 1] == '\n') {
        ++i;
        continue;
      }
      joined += text[i];
    }

    int line_no = 0;
    for (std::string_view raw_line : Split(joined, '\n')) {
      ++line_no;
      size_t hash = raw_line.find('#');
      if (hash != std::string_view::npos) raw_line = raw_line.substr(0, hash);
      std::string_view line = TrimWhitespace(raw_line);
      if (line.empty()) continue;
      Status s = ParseStatement(line);
      if (!s.ok()) return s.WithPrefix("line " + std::to_string(line_no));
    }
    PPDB_RETURN_NOT_OK(config_.Validate());
    return std::move(config_);
  }

 private:
  Status ParseStatement(std::string_view line) {
    // Split "head: tail" if a colon is present.
    size_t colon = line.find(':');
    std::string_view head =
        colon == std::string_view::npos ? line : line.substr(0, colon);
    std::string_view tail = colon == std::string_view::npos
                                ? std::string_view()
                                : TrimWhitespace(line.substr(colon + 1));
    std::vector<std::string_view> tokens = Tokenize(head);
    if (tokens.empty()) return Status::ParseError("empty statement");
    std::string_view keyword = tokens[0];

    if (keyword == "scale") return ParseScale(tokens, tail);
    if (keyword == "magnitudes") return ParseMagnitudes(tokens, tail);
    if (keyword == "purpose") return ParsePurpose(tokens, colon);
    if (keyword == "provider") return ParseProvider(tokens, colon);
    if (keyword == "generalizer") return ParseGeneralizer(tokens, tail);
    if (keyword == "policy") return ParsePolicy(tokens, tail);
    if (keyword == "pref") return ParsePref(tokens, tail);
    if (keyword == "attr_sensitivity") return ParseAttrSensitivity(line);
    if (keyword == "sensitivity") return ParseSensitivity(tokens, tail);
    if (keyword == "threshold" || keyword == "fallback_threshold") {
      return ParseThreshold(line);
    }
    return Status::ParseError("unknown statement '" + std::string(keyword) +
                              "'");
  }

  Status ParseScale(const std::vector<std::string_view>& tokens,
                    std::string_view tail) {
    if (tokens.size() != 2) {
      return Status::ParseError("expected 'scale <dimension>: levels...'");
    }
    if (scales_used_) {
      return Status::ParseError(
          "scale declarations must precede policy/pref statements");
    }
    PPDB_ASSIGN_OR_RETURN(Dimension dim, DimensionFromName(tokens[1]));
    std::vector<std::string> levels;
    for (std::string_view level : SplitAndTrim(tail, ',')) {
      levels.emplace_back(level);
    }
    PPDB_ASSIGN_OR_RETURN(OrderedScale scale,
                          OrderedScale::Create(dim, std::move(levels)));
    switch (dim) {
      case Dimension::kVisibility:
        config_.scales.visibility = std::move(scale);
        break;
      case Dimension::kGranularity:
        config_.scales.granularity = std::move(scale);
        break;
      case Dimension::kRetention:
        config_.scales.retention = std::move(scale);
        break;
      case Dimension::kPurpose:
        return Status::ParseError("purpose has no scale");
    }
    return Status::OK();
  }

  Status ParseMagnitudes(const std::vector<std::string_view>& tokens,
                         std::string_view tail) {
    if (tokens.size() != 2) {
      return Status::ParseError("expected 'magnitudes <dimension>: nums...'");
    }
    PPDB_ASSIGN_OR_RETURN(Dimension dim, DimensionFromName(tokens[1]));
    PPDB_ASSIGN_OR_RETURN(OrderedScale * scale,
                          config_.scales.MutableForDimension(dim));
    std::vector<std::string_view> fields = SplitAndTrim(tail, ',');
    if (static_cast<int>(fields.size()) != scale->num_levels()) {
      return Status::ParseError(
          "magnitude count " + std::to_string(fields.size()) +
          " does not match level count " +
          std::to_string(scale->num_levels()));
    }
    for (size_t i = 0; i < fields.size(); ++i) {
      PPDB_ASSIGN_OR_RETURN(double magnitude, ParseDouble(fields[i]));
      PPDB_RETURN_NOT_OK(
          scale->SetMagnitude(static_cast<int>(i), magnitude));
    }
    return Status::OK();
  }

  Status ParsePurpose(const std::vector<std::string_view>& tokens,
                      size_t colon) {
    if (colon != std::string_view::npos) {
      return Status::ParseError("purpose statement takes no ':'");
    }
    if (tokens.size() == 2) {
      return config_.purposes.Register(tokens[1]).status();
    }
    if (tokens.size() == 4 && tokens[2] == "implies") {
      PPDB_ASSIGN_OR_RETURN(PurposeId child,
                            config_.purposes.Register(tokens[1]));
      PPDB_ASSIGN_OR_RETURN(PurposeId parent,
                            config_.purposes.Register(tokens[3]));
      return config_.purpose_hierarchy.AddEdge(child, parent,
                                               config_.purposes);
    }
    return Status::ParseError(
        "expected 'purpose <name>' or 'purpose <name> implies <parent>'");
  }

  // `provider <id>` declares a provider with (so far) no stated
  // preferences — they still count toward N in every census (Def. 2) and
  // fall under the implicit-zero rule for all policy purposes.
  Status ParseProvider(const std::vector<std::string_view>& tokens,
                       size_t colon) {
    if (colon != std::string_view::npos || tokens.size() != 2) {
      return Status::ParseError("expected 'provider <id>'");
    }
    PPDB_ASSIGN_OR_RETURN(int64_t provider, ParseInt64(tokens[1]));
    config_.preferences.ForProvider(provider);
    return Status::OK();
  }

  // `generalizer <attribute>: w0, w1, ...` — per-level bin widths for the
  // attribute's numeric generalizer (audit::NumericRangeGeneralizer).
  Status ParseGeneralizer(const std::vector<std::string_view>& tokens,
                          std::string_view tail) {
    if (tokens.size() != 2) {
      return Status::ParseError(
          "expected 'generalizer <attribute>: widths...'");
    }
    if (!IsValidIdentifier(tokens[1])) {
      return Status::ParseError("invalid attribute name '" +
                                std::string(tokens[1]) + "'");
    }
    std::vector<double> widths;
    for (std::string_view field : SplitAndTrim(tail, ',')) {
      PPDB_ASSIGN_OR_RETURN(double width, ParseDouble(field));
      widths.push_back(width);
    }
    if (widths.empty()) {
      return Status::ParseError("generalizer needs at least one width");
    }
    config_.numeric_generalizers[std::string(tokens[1])] = std::move(widths);
    return Status::OK();
  }

  Result<PrivacyTuple> ParseTupleBody(std::string_view purpose_name,
                                      std::string_view tail) {
    scales_used_ = true;
    PPDB_ASSIGN_OR_RETURN(PurposeId purpose,
                          config_.purposes.Register(purpose_name));
    PrivacyTuple tuple = PrivacyTuple::ZeroFor(purpose);
    PPDB_ASSIGN_OR_RETURN(auto kvs, ParseKvList(tail));
    for (const auto& [key, value] : kvs) {
      PPDB_ASSIGN_OR_RETURN(Dimension dim, DimensionFromName(key));
      if (dim == Dimension::kPurpose) {
        return Status::ParseError(
            "purpose is given in the statement head, not the tuple body");
      }
      PPDB_ASSIGN_OR_RETURN(const OrderedScale* scale,
                            config_.scales.ForDimension(dim));
      PPDB_ASSIGN_OR_RETURN(int level, ParseLevelToken(*scale, value));
      PPDB_RETURN_NOT_OK(tuple.SetLevel(dim, level));
    }
    return tuple;
  }

  Status ParsePolicy(const std::vector<std::string_view>& tokens,
                     std::string_view tail) {
    // policy <attr> for <purpose>: <kvlist>
    if (tokens.size() != 4 || tokens[2] != "for") {
      return Status::ParseError(
          "expected 'policy <attribute> for <purpose>: ...'");
    }
    PPDB_ASSIGN_OR_RETURN(PrivacyTuple tuple,
                          ParseTupleBody(tokens[3], tail));
    return config_.policy.Add(tokens[1], tuple);
  }

  Status ParsePref(const std::vector<std::string_view>& tokens,
                   std::string_view tail) {
    // pref <provider> <attr> for <purpose>: <kvlist>
    if (tokens.size() != 5 || tokens[3] != "for") {
      return Status::ParseError(
          "expected 'pref <provider> <attribute> for <purpose>: ...'");
    }
    PPDB_ASSIGN_OR_RETURN(int64_t provider, ParseInt64(tokens[1]));
    PPDB_ASSIGN_OR_RETURN(PrivacyTuple tuple,
                          ParseTupleBody(tokens[4], tail));
    return config_.preferences.ForProvider(provider).Add(tokens[2], tuple);
  }

  Status ParseAttrSensitivity(std::string_view line) {
    // attr_sensitivity <attr> [for <purpose>] = <num>
    size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::ParseError(
          "expected 'attr_sensitivity <attribute> [for <purpose>] = <num>'");
    }
    std::vector<std::string_view> tokens = Tokenize(line.substr(0, eq));
    PPDB_ASSIGN_OR_RETURN(double value,
                          ParseDouble(TrimWhitespace(line.substr(eq + 1))));
    if (tokens.size() == 2) {
      return config_.sensitivities.SetAttributeSensitivity(tokens[1], value);
    }
    if (tokens.size() == 4 && tokens[2] == "for") {
      PPDB_ASSIGN_OR_RETURN(PurposeId purpose,
                            config_.purposes.Register(tokens[3]));
      return config_.sensitivities.SetAttributeSensitivityForPurpose(
          tokens[1], purpose, value);
    }
    return Status::ParseError(
        "expected 'attr_sensitivity <attribute> [for <purpose>] = <num>'");
  }

  Status ParseSensitivity(const std::vector<std::string_view>& tokens,
                          std::string_view tail) {
    // sensitivity <provider> <attr> [for <purpose>]: <kvlist>
    bool with_purpose = tokens.size() == 5 && tokens[3] == "for";
    if (!with_purpose && tokens.size() != 3) {
      return Status::ParseError(
          "expected 'sensitivity <provider> <attribute> [for <purpose>]: "
          "...'");
    }
    PPDB_ASSIGN_OR_RETURN(int64_t provider, ParseInt64(tokens[1]));
    DimensionSensitivity sens;
    PPDB_ASSIGN_OR_RETURN(auto kvs, ParseKvList(tail));
    for (const auto& [key, value] : kvs) {
      PPDB_ASSIGN_OR_RETURN(double v, ParseDouble(value));
      if (key == "value") {
        sens.value = v;
      } else {
        PPDB_ASSIGN_OR_RETURN(Dimension dim, DimensionFromName(key));
        switch (dim) {
          case Dimension::kVisibility:
            sens.visibility = v;
            break;
          case Dimension::kGranularity:
            sens.granularity = v;
            break;
          case Dimension::kRetention:
            sens.retention = v;
            break;
          case Dimension::kPurpose:
            return Status::ParseError(
                "purpose carries no dimension sensitivity");
        }
      }
    }
    if (with_purpose) {
      PPDB_ASSIGN_OR_RETURN(PurposeId purpose,
                            config_.purposes.Register(tokens[4]));
      return config_.sensitivities.SetProviderSensitivityForPurpose(
          provider, tokens[2], purpose, sens);
    }
    return config_.sensitivities.SetProviderSensitivity(provider, tokens[2],
                                                        sens);
  }

  Status ParseThreshold(std::string_view line) {
    size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::ParseError("expected '= <num>' in threshold statement");
    }
    std::vector<std::string_view> tokens = Tokenize(line.substr(0, eq));
    PPDB_ASSIGN_OR_RETURN(double value,
                          ParseDouble(TrimWhitespace(line.substr(eq + 1))));
    if (value < 0.0) {
      return Status::ParseError("thresholds must be non-negative");
    }
    if (tokens[0] == "fallback_threshold") {
      if (tokens.size() != 1) {
        return Status::ParseError("expected 'fallback_threshold = <num>'");
      }
      config_.fallback_threshold = value;
      return Status::OK();
    }
    if (tokens.size() != 2) {
      return Status::ParseError("expected 'threshold <provider> = <num>'");
    }
    PPDB_ASSIGN_OR_RETURN(int64_t provider, ParseInt64(tokens[1]));
    config_.thresholds[provider] = value;
    return Status::OK();
  }

  PrivacyConfig config_;
  bool scales_used_ = false;
};

void AppendScale(std::string& out, const OrderedScale& scale) {
  out += "scale ";
  out += DimensionName(scale.dimension());
  out += ": ";
  for (int i = 0; i < scale.num_levels(); ++i) {
    if (i > 0) out += ", ";
    out += scale.NameOf(i).value();
  }
  out += "\n";
  out += "magnitudes ";
  out += DimensionName(scale.dimension());
  out += ": ";
  for (int i = 0; i < scale.num_levels(); ++i) {
    if (i > 0) out += ", ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", scale.MagnitudeOf(i).value());
    out += buf;
  }
  out += "\n";
}

std::string FormatNumber(double v) {
  // %.17g round-trips every double exactly; fall back to the shortest
  // representation when it already re-parses to the same value.
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%g", v);
  double reparsed = std::strtod(buf, nullptr);
  if (reparsed == v) return buf;
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void AppendTupleBody(std::string& out, const PrivacyTuple& tuple,
                     const ScaleSet& scales) {
  out += "visibility=" + scales.visibility.NameOf(tuple.visibility)
             .value_or(std::to_string(tuple.visibility));
  out += ", granularity=" + scales.granularity.NameOf(tuple.granularity)
             .value_or(std::to_string(tuple.granularity));
  out += ", retention=" + scales.retention.NameOf(tuple.retention)
             .value_or(std::to_string(tuple.retention));
}

}  // namespace

Result<PrivacyConfig> ParsePrivacyConfig(std::string_view text) {
  Parser parser;
  return parser.Parse(text);
}

std::string SerializePrivacyConfig(const PrivacyConfig& config) {
  std::string out = "# ppdb privacy configuration\n";
  AppendScale(out, config.scales.visibility);
  AppendScale(out, config.scales.granularity);
  AppendScale(out, config.scales.retention);

  for (const std::string& name : config.purposes.names()) {
    out += "purpose " + name + "\n";
  }
  for (PurposeId child = 0; child < config.purposes.num_purposes(); ++child) {
    for (PurposeId parent : config.purpose_hierarchy.ParentsOf(child)) {
      out += "purpose " + config.purposes.NameOf(child).value() +
             " implies " + config.purposes.NameOf(parent).value() + "\n";
    }
  }

  for (const PolicyTuple& pt : config.policy.tuples()) {
    out += "policy " + pt.attribute + " for " +
           config.purposes.NameOf(pt.tuple.purpose).value() + ": ";
    AppendTupleBody(out, pt.tuple, config.scales);
    out += "\n";
  }

  for (ProviderId id : config.preferences.ProviderIds()) {
    const ProviderPreferences& prefs =
        *config.preferences.Find(id).value();
    if (prefs.empty()) {
      // Keep preference-less providers in the population (Def. 2 counts
      // them; the implicit-zero rule applies to them in full).
      out += "provider " + std::to_string(id) + "\n";
      continue;
    }
    for (const PreferenceTuple& pt : prefs.tuples()) {
      out += "pref " + std::to_string(id) + " " + pt.attribute + " for " +
             config.purposes.NameOf(pt.tuple.purpose).value() + ": ";
      AppendTupleBody(out, pt.tuple, config.scales);
      out += "\n";
    }
  }

  const SensitivityModel& s = config.sensitivities;
  for (const auto& [attribute, value] : s.attribute_defaults()) {
    out += "attr_sensitivity " + attribute + " = " + FormatNumber(value) +
           "\n";
  }
  for (const auto& [key, value] : s.attribute_overrides()) {
    out += "attr_sensitivity " + key.first + " for " +
           config.purposes.NameOf(key.second).value() + " = " +
           FormatNumber(value) + "\n";
  }
  auto append_dimension_sens = [&](const DimensionSensitivity& sens) {
    out += "value=" + FormatNumber(sens.value);
    out += ", visibility=" + FormatNumber(sens.visibility);
    out += ", granularity=" + FormatNumber(sens.granularity);
    out += ", retention=" + FormatNumber(sens.retention);
    out += "\n";
  };
  for (const auto& [key, sens] : s.provider_defaults()) {
    out += "sensitivity " + std::to_string(key.first) + " " + key.second +
           ": ";
    append_dimension_sens(sens);
  }
  for (const auto& [key, sens] : s.provider_overrides()) {
    out += "sensitivity " + std::to_string(std::get<0>(key)) + " " +
           std::get<1>(key) + " for " +
           config.purposes.NameOf(std::get<2>(key)).value() + ": ";
    append_dimension_sens(sens);
  }

  for (const auto& [attribute, widths] : config.numeric_generalizers) {
    out += "generalizer " + attribute + ": ";
    for (size_t i = 0; i < widths.size(); ++i) {
      if (i > 0) out += ", ";
      out += FormatNumber(widths[i]);
    }
    out += "\n";
  }

  for (const auto& [provider, threshold] : config.thresholds) {
    out += "threshold " + std::to_string(provider) + " = " +
           FormatNumber(threshold) + "\n";
  }
  if (config.fallback_threshold != 0.0) {
    out += "fallback_threshold = " + FormatNumber(config.fallback_threshold) +
           "\n";
  }
  return out;
}

}  // namespace ppdb::privacy

#include "privacy/privacy_tuple.h"

#include "common/macros.h"

namespace ppdb::privacy {

Result<int> PrivacyTuple::Level(Dimension dim) const {
  switch (dim) {
    case Dimension::kVisibility:
      return visibility;
    case Dimension::kGranularity:
      return granularity;
    case Dimension::kRetention:
      return retention;
    case Dimension::kPurpose:
      return Status::InvalidArgument(
          "purpose is not an ordered level; read the purpose field");
  }
  return Status::Internal("unhandled dimension");
}

Status PrivacyTuple::SetLevel(Dimension dim, int level) {
  switch (dim) {
    case Dimension::kVisibility:
      visibility = level;
      return Status::OK();
    case Dimension::kGranularity:
      granularity = level;
      return Status::OK();
    case Dimension::kRetention:
      retention = level;
      return Status::OK();
    case Dimension::kPurpose:
      return Status::InvalidArgument(
          "purpose is not an ordered level; write the purpose field");
  }
  return Status::Internal("unhandled dimension");
}

std::vector<Dimension> PrivacyTuple::DimensionsExceeding(
    const PrivacyTuple& other) const {
  std::vector<Dimension> out;
  if (visibility > other.visibility) out.push_back(Dimension::kVisibility);
  if (granularity > other.granularity) out.push_back(Dimension::kGranularity);
  if (retention > other.retention) out.push_back(Dimension::kRetention);
  return out;
}

Status PrivacyTuple::ValidateAgainst(const ScaleSet& scales) const {
  for (Dimension dim : kOrderedDimensions) {
    PPDB_ASSIGN_OR_RETURN(const OrderedScale* scale,
                          scales.ForDimension(dim));
    PPDB_ASSIGN_OR_RETURN(int level, Level(dim));
    if (!scale->IsValidLevel(level)) {
      return Status::OutOfRange(std::string(DimensionName(dim)) + " level " +
                                std::to_string(level) +
                                " outside scale with " +
                                std::to_string(scale->num_levels()) +
                                " levels");
    }
  }
  return Status::OK();
}

std::string PrivacyTuple::ToString(const PurposeRegistry& purposes,
                                   const ScaleSet& scales) const {
  auto level_name = [&](const OrderedScale& scale, int level) {
    Result<std::string> name = scale.NameOf(level);
    return name.ok() ? name.value() : std::to_string(level);
  };
  Result<std::string> purpose_name = purposes.NameOf(purpose);
  std::string out = "(";
  out += purpose_name.ok() ? purpose_name.value()
                           : "purpose#" + std::to_string(purpose);
  out += ", v=" + level_name(scales.visibility, visibility);
  out += ", g=" + level_name(scales.granularity, granularity);
  out += ", r=" + level_name(scales.retention, retention);
  out += ")";
  return out;
}

std::string PrivacyTuple::ToString() const {
  return "(pr=" + std::to_string(purpose) +
         ", v=" + std::to_string(visibility) +
         ", g=" + std::to_string(granularity) +
         ", r=" + std::to_string(retention) + ")";
}

}  // namespace ppdb::privacy

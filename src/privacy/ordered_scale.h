#ifndef PPDB_PRIVACY_ORDERED_SCALE_H_
#define PPDB_PRIVACY_ORDERED_SCALE_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "privacy/dimension.h"

namespace ppdb::privacy {

/// A named total order for one of the ordered privacy dimensions
/// (assumption 2: "values for the granularity, visibility and retention can
/// be put into a total order").
///
/// Level 0 is the least privacy exposure ("none"); higher levels expose
/// more. §6.2: "numerical values can simply be chosen to reflect the
/// orderings" — a scale is exactly that choice, made auditable by naming
/// each level.
///
/// Each level may carry an optional numeric magnitude (e.g. retention levels
/// mapped to days), used by operational components such as the retention
/// sweeper; the violation arithmetic itself uses only the level indices.
class OrderedScale {
 public:
  /// Creates a scale for `dimension` with the given level names ordered from
  /// least to most exposure. Names must be unique valid identifiers and at
  /// least one level is required. Errors on kPurpose, which is not ordered.
  static Result<OrderedScale> Create(Dimension dimension,
                                     std::vector<std::string> level_names);

  /// The canonical scales from the taxonomy paper: visibility
  /// {none, house, third_party, world} and granularity
  /// {none, existential, partial, specific}, plus a retention scale
  /// {none, week, month, year, indefinite} with day magnitudes
  /// {0, 7, 30, 365, +inf as 36500}.
  static OrderedScale DefaultVisibility();
  static OrderedScale DefaultGranularity();
  static OrderedScale DefaultRetention();

  Dimension dimension() const { return dimension_; }

  /// Number of levels.
  int num_levels() const { return static_cast<int>(names_.size()); }

  /// Largest valid level index.
  int max_level() const { return num_levels() - 1; }

  /// Name of level `level`; errors when out of range.
  Result<std::string> NameOf(int level) const;

  /// Level index of the named level; errors with kNotFound.
  Result<int> LevelOf(std::string_view name) const;

  /// True iff `level` is a valid index on this scale.
  bool IsValidLevel(int level) const {
    return level >= 0 && level < num_levels();
  }

  /// Assigns a numeric magnitude (e.g. days for retention) to a level.
  Status SetMagnitude(int level, double magnitude);

  /// Magnitude of `level`; defaults to the level index when unset.
  Result<double> MagnitudeOf(int level) const;

  /// Renders e.g. "visibility{none < house < third_party < world}".
  std::string ToString() const;

 private:
  OrderedScale(Dimension dimension, std::vector<std::string> names);

  Dimension dimension_;
  std::vector<std::string> names_;
  std::vector<std::optional<double>> magnitudes_;
  std::unordered_map<std::string, int> index_;
};

/// The bundle of scales for the three ordered dimensions; passed around as
/// the interpretation context for privacy tuples.
struct ScaleSet {
  OrderedScale visibility = OrderedScale::DefaultVisibility();
  OrderedScale granularity = OrderedScale::DefaultGranularity();
  OrderedScale retention = OrderedScale::DefaultRetention();

  /// The scale for `dim`; errors on kPurpose.
  Result<const OrderedScale*> ForDimension(Dimension dim) const;

  /// Mutable access to the scale for `dim`; errors on kPurpose.
  Result<OrderedScale*> MutableForDimension(Dimension dim);
};

}  // namespace ppdb::privacy

#endif  // PPDB_PRIVACY_ORDERED_SCALE_H_

#include "privacy/sensitivity.h"

#include <tuple>

#include "common/macros.h"

namespace ppdb::privacy {

Result<double> DimensionSensitivity::ForDimension(Dimension dim) const {
  switch (dim) {
    case Dimension::kVisibility:
      return visibility;
    case Dimension::kGranularity:
      return granularity;
    case Dimension::kRetention:
      return retention;
    case Dimension::kPurpose:
      return Status::InvalidArgument(
          "purpose carries no dimension sensitivity");
  }
  return Status::Internal("unhandled dimension");
}

Status DimensionSensitivity::Validate() const {
  if (value < 0.0 || visibility < 0.0 || granularity < 0.0 ||
      retention < 0.0) {
    return Status::InvalidArgument("sensitivities must be non-negative");
  }
  return Status::OK();
}

Status SensitivityModel::SetAttributeSensitivity(std::string_view attribute,
                                                 double value) {
  if (value < 0.0) {
    return Status::InvalidArgument("attribute sensitivity must be >= 0");
  }
  attribute_default_[std::string(attribute)] = value;
  return Status::OK();
}

Status SensitivityModel::SetAttributeSensitivityForPurpose(
    std::string_view attribute, PurposeId purpose, double value) {
  if (value < 0.0) {
    return Status::InvalidArgument("attribute sensitivity must be >= 0");
  }
  attribute_by_purpose_[{std::string(attribute), purpose}] = value;
  return Status::OK();
}

Status SensitivityModel::SetProviderSensitivity(
    ProviderId provider, std::string_view attribute,
    const DimensionSensitivity& sensitivity) {
  PPDB_RETURN_NOT_OK(sensitivity.Validate());
  provider_default_[{provider, std::string(attribute)}] = sensitivity;
  return Status::OK();
}

Status SensitivityModel::SetProviderSensitivityForPurpose(
    ProviderId provider, std::string_view attribute, PurposeId purpose,
    const DimensionSensitivity& sensitivity) {
  PPDB_RETURN_NOT_OK(sensitivity.Validate());
  provider_by_purpose_[{provider, std::string(attribute), purpose}] =
      sensitivity;
  return Status::OK();
}

double SensitivityModel::AttributeSensitivity(std::string_view attribute,
                                              PurposeId purpose) const {
  auto by_purpose =
      attribute_by_purpose_.find({std::string(attribute), purpose});
  if (by_purpose != attribute_by_purpose_.end()) return by_purpose->second;
  auto it = attribute_default_.find(attribute);
  if (it != attribute_default_.end()) return it->second;
  return 1.0;
}

bool SensitivityModel::HasEntriesFor(ProviderId provider) const {
  auto by_default = provider_default_.lower_bound({provider, std::string()});
  if (by_default != provider_default_.end() &&
      by_default->first.first == provider) {
    return true;
  }
  auto by_purpose = provider_by_purpose_.lower_bound(
      {provider, std::string(), PurposeId{}});
  return by_purpose != provider_by_purpose_.end() &&
         std::get<0>(by_purpose->first) == provider;
}

DimensionSensitivity SensitivityModel::ProviderSensitivity(
    ProviderId provider, std::string_view attribute,
    PurposeId purpose) const {
  auto by_purpose = provider_by_purpose_.find(
      {provider, std::string(attribute), purpose});
  if (by_purpose != provider_by_purpose_.end()) return by_purpose->second;
  auto it = provider_default_.find({provider, std::string(attribute)});
  if (it != provider_default_.end()) return it->second;
  return DimensionSensitivity{};
}

}  // namespace ppdb::privacy

#ifndef PPDB_PRIVACY_SENSITIVITY_H_
#define PPDB_PRIVACY_SENSITIVITY_H_

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <tuple>
#include <utility>

#include "common/result.h"
#include "privacy/dimension.h"
#include "privacy/provider_prefs.h"
#include "privacy/purpose.h"

namespace ppdb::privacy {

/// σ_i^j (Eq. 11): the sensitivity element data provider i associates with
/// the datum supplied for attribute A^j —
/// ⟨s_i^j, s_i^j[V], s_i^j[G], s_i^j[R]⟩.
///
/// `value` weights the datum itself; the per-dimension members weight a
/// violation along that axis. All default to 1 (a violation counts exactly
/// its geometric size).
struct DimensionSensitivity {
  double value = 1.0;
  double visibility = 1.0;
  double granularity = 1.0;
  double retention = 1.0;

  /// The weight for an ordered dimension; errors on kPurpose.
  Result<double> ForDimension(Dimension dim) const;

  /// Validates that all members are non-negative (a negative sensitivity
  /// would turn a violation into a benefit, which the model excludes).
  Status Validate() const;

  friend bool operator==(const DimensionSensitivity& a,
                         const DimensionSensitivity& b) {
    return a.value == b.value && a.visibility == b.visibility &&
           a.granularity == b.granularity && a.retention == b.retention;
  }
};

/// The Sensitivity = ⟨σ, Σ⟩ pair of Eq. 10 for one database: the vector Σ of
/// per-attribute sensitivities and the matrix σ of per-provider,
/// per-attribute sensitivity elements.
///
/// Eq. 10 scopes sensitivity factors to a purpose ("Sensitivity factors for
/// each purpose in a private database"); the model supports that via
/// purpose-specific overrides layered over purpose-independent defaults —
/// lookups try (purpose-specific) then (default) then the constant 1.
class SensitivityModel {
 public:
  SensitivityModel() = default;

  /// Sets Σ^a, the purpose-independent sensitivity of attribute `a`.
  /// The paper defines Σ^a as an integer; the model accepts any
  /// non-negative double. Errors on negative values.
  Status SetAttributeSensitivity(std::string_view attribute, double value);

  /// Purpose-specific override of Σ^a.
  Status SetAttributeSensitivityForPurpose(std::string_view attribute,
                                           PurposeId purpose, double value);

  /// Sets σ_i^a, provider i's purpose-independent sensitivity for `a`.
  Status SetProviderSensitivity(ProviderId provider,
                                std::string_view attribute,
                                const DimensionSensitivity& sensitivity);

  /// Purpose-specific override of σ_i^a.
  Status SetProviderSensitivityForPurpose(
      ProviderId provider, std::string_view attribute, PurposeId purpose,
      const DimensionSensitivity& sensitivity);

  /// Σ^a for `purpose`: the purpose-specific override if present, else the
  /// default, else 1.
  double AttributeSensitivity(std::string_view attribute,
                              PurposeId purpose) const;

  /// σ_i^a for `purpose`: override, else default, else all-ones.
  DimensionSensitivity ProviderSensitivity(ProviderId provider,
                                           std::string_view attribute,
                                           PurposeId purpose) const;

  /// True iff the provider has at least one explicit σ entry (default or
  /// purpose override, any attribute). When false, every
  /// `ProviderSensitivity` lookup for the provider returns all-ones, so
  /// batched analyses can share one preset ones column instead of doing
  /// per-(provider, tuple) map lookups. Two O(log n) probes.
  bool HasEntriesFor(ProviderId provider) const;

  // Read-only views of the explicitly-set entries, for serialization and
  // inspection. Keys are (attribute), (attribute, purpose),
  // (provider, attribute) and (provider, attribute, purpose) respectively.
  const std::map<std::string, double, std::less<>>& attribute_defaults()
      const {
    return attribute_default_;
  }
  const std::map<std::pair<std::string, PurposeId>, double>&
  attribute_overrides() const {
    return attribute_by_purpose_;
  }
  const std::map<std::pair<ProviderId, std::string>, DimensionSensitivity>&
  provider_defaults() const {
    return provider_default_;
  }
  const std::map<std::tuple<ProviderId, std::string, PurposeId>,
                 DimensionSensitivity>&
  provider_overrides() const {
    return provider_by_purpose_;
  }

 private:
  // Keys: (attribute) and (attribute, purpose). std::map keeps behaviour
  // deterministic under iteration in debugging helpers.
  std::map<std::string, double, std::less<>> attribute_default_;
  std::map<std::pair<std::string, PurposeId>, double> attribute_by_purpose_;
  std::map<std::pair<ProviderId, std::string>, DimensionSensitivity>
      provider_default_;
  std::map<std::tuple<ProviderId, std::string, PurposeId>,
           DimensionSensitivity>
      provider_by_purpose_;
};

}  // namespace ppdb::privacy

#endif  // PPDB_PRIVACY_SENSITIVITY_H_

#include "privacy/config.h"

#include "common/macros.h"

namespace ppdb::privacy {

Status PrivacyConfig::Validate() const {
  PPDB_RETURN_NOT_OK(policy.ValidateAgainst(scales).WithPrefix("policy"));
  PPDB_RETURN_NOT_OK(
      preferences.ValidateAgainst(scales).WithPrefix("preferences"));
  for (const PolicyTuple& pt : policy.tuples()) {
    if (!purposes.NameOf(pt.tuple.purpose).ok()) {
      return Status::InvalidArgument(
          "policy tuple for attribute '" + pt.attribute +
          "' mentions unregistered purpose id " +
          std::to_string(pt.tuple.purpose));
    }
  }
  for (ProviderId id : preferences.ProviderIds()) {
    PPDB_ASSIGN_OR_RETURN(const ProviderPreferences* prefs,
                          preferences.Find(id));
    for (const PreferenceTuple& pt : prefs->tuples()) {
      if (!purposes.NameOf(pt.tuple.purpose).ok()) {
        return Status::InvalidArgument(
            "preference of provider " + std::to_string(id) +
            " mentions unregistered purpose id " +
            std::to_string(pt.tuple.purpose));
      }
    }
  }
  for (const auto& [provider, threshold] : thresholds) {
    if (threshold < 0.0) {
      return Status::InvalidArgument("negative default threshold for provider " +
                                     std::to_string(provider));
    }
  }
  return Status::OK();
}

}  // namespace ppdb::privacy

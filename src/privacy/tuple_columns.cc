#include "privacy/tuple_columns.h"

namespace ppdb::privacy {

void SensitivityColumns::FillFor(const SensitivityModel& model,
                                 ProviderId provider,
                                 const std::vector<PolicyTuple>& tuples) {
  const size_t n = tuples.size();
  value.resize(n);
  visibility.resize(n);
  granularity.resize(n);
  retention.resize(n);
  for (size_t j = 0; j < n; ++j) {
    const DimensionSensitivity s = model.ProviderSensitivity(
        provider, tuples[j].attribute, tuples[j].tuple.purpose);
    value[j] = s.value;
    visibility[j] = s.visibility;
    granularity[j] = s.granularity;
    retention[j] = s.retention;
  }
}

PolicyColumns PolicyColumns::Build(const std::vector<PolicyTuple>& tuples,
                                   const SensitivityModel& model) {
  PolicyColumns out;
  out.attr_sens.reserve(tuples.size());
  for (const PolicyTuple& pt : tuples) {
    out.levels.Append(pt.tuple);
    out.attr_sens.push_back(
        model.AttributeSensitivity(pt.attribute, pt.tuple.purpose));
  }
  return out;
}

}  // namespace ppdb::privacy

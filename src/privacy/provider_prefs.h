#ifndef PPDB_PRIVACY_PROVIDER_PREFS_H_
#define PPDB_PRIVACY_PROVIDER_PREFS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "privacy/ordered_scale.h"
#include "privacy/privacy_tuple.h"
#include "privacy/purpose.h"

namespace ppdb::privacy {

/// Identifier of a data provider (matches `rel::ProviderId`).
using ProviderId = int64_t;

/// ProviderPref_i (Eq. 5): the privacy preferences of one data provider —
/// one privacy tuple per (attribute, purpose) the provider has an opinion
/// about.
///
/// Def. 1's implicit rule is exposed as `EffectivePreference`: when the
/// provider has stated no preference for a purpose a policy mentions, the
/// model substitutes the zero tuple <a, pr, 0, 0, 0> ("the individual does
/// not prefer to reveal her information for purpose pr").
class ProviderPreferences {
 public:
  explicit ProviderPreferences(ProviderId provider) : provider_(provider) {}

  ProviderId provider() const { return provider_; }

  /// Adds the preference tuple <i, attribute, tuple>. Errors when one
  /// already exists for this (attribute, purpose).
  Status Add(std::string_view attribute, const PrivacyTuple& tuple);

  /// Replaces (or inserts) the preference for (attribute, tuple.purpose).
  void Set(std::string_view attribute, const PrivacyTuple& tuple);

  /// Removes the preference for (attribute, purpose); kNotFound when absent.
  Status Remove(std::string_view attribute, PurposeId purpose);

  /// ProviderPref_i^j (Eq. 6): all stated preferences for `attribute`.
  std::vector<PreferenceTuple> ForAttribute(std::string_view attribute) const;

  /// The stated preference for (attribute, purpose); kNotFound when absent.
  Result<PrivacyTuple> Find(std::string_view attribute,
                            PurposeId purpose) const;

  /// The preference used in violation assessment for (attribute, purpose):
  /// the stated one, or the zero tuple when none was stated (Def. 1).
  PrivacyTuple EffectivePreference(std::string_view attribute,
                                   PurposeId purpose) const;

  /// All stated preferences, in insertion order.
  const std::vector<PreferenceTuple>& tuples() const { return tuples_; }

  int64_t size() const { return static_cast<int64_t>(tuples_.size()); }
  bool empty() const { return tuples_.empty(); }

  /// Validates all tuples against `scales`.
  Status ValidateAgainst(const ScaleSet& scales) const;

 private:
  ProviderId provider_;
  std::vector<PreferenceTuple> tuples_;
};

/// The preferences of every provider known to the system, keyed by provider
/// id. Ordered map: iteration order (and thus every census-style estimator)
/// is deterministic.
class PreferenceStore {
 public:
  PreferenceStore() = default;

  /// Returns the preferences object for `provider`, creating an empty one on
  /// first access.
  ProviderPreferences& ForProvider(ProviderId provider);

  /// Read-only lookup; kNotFound when the provider has never been added.
  Result<const ProviderPreferences*> Find(ProviderId provider) const;

  /// True iff the provider has an entry (possibly with zero tuples).
  bool Contains(ProviderId provider) const;

  /// Removes a provider's preferences (e.g. after default + erasure).
  Status Erase(ProviderId provider);

  /// Number of providers with entries.
  int64_t num_providers() const { return static_cast<int64_t>(prefs_.size()); }

  /// Provider ids in ascending order.
  std::vector<ProviderId> ProviderIds() const;

  /// Validates every provider's tuples against `scales`.
  Status ValidateAgainst(const ScaleSet& scales) const;

 private:
  std::map<ProviderId, ProviderPreferences> prefs_;
};

}  // namespace ppdb::privacy

#endif  // PPDB_PRIVACY_PROVIDER_PREFS_H_

#ifndef PPDB_PRIVACY_TUPLE_COLUMNS_H_
#define PPDB_PRIVACY_TUPLE_COLUMNS_H_

#include <cstdint>
#include <vector>

#include "privacy/privacy_tuple.h"
#include "privacy/provider_prefs.h"
#include "privacy/sensitivity.h"

namespace ppdb::privacy {

/// Structure-of-arrays views over privacy tuples, built once per analysis
/// so the violation engine's hot loop streams contiguous level and
/// sensitivity columns instead of chasing tuple objects and sensitivity
/// maps per (provider, policy tuple) pair. Consumed by
/// `violation/kernel/severity_kernel.h`.

/// The ordered-dimension levels of a tuple sequence as three contiguous
/// int32 columns (index j ↔ tuple j), plus the purpose column.
struct TupleLevelColumns {
  std::vector<int32_t> visibility;
  std::vector<int32_t> granularity;
  std::vector<int32_t> retention;
  std::vector<PurposeId> purpose;

  size_t size() const { return visibility.size(); }

  void Clear() {
    visibility.clear();
    granularity.clear();
    retention.clear();
    purpose.clear();
  }

  void Append(const PrivacyTuple& tuple) {
    visibility.push_back(tuple.visibility);
    granularity.push_back(tuple.granularity);
    retention.push_back(tuple.retention);
    purpose.push_back(tuple.purpose);
  }
};

/// Per-tuple σ_i^a columns (Eq. 11 unpacked): the datum weight and the
/// three per-dimension weights, aligned with a policy tuple sequence.
struct SensitivityColumns {
  std::vector<double> value;
  std::vector<double> visibility;
  std::vector<double> granularity;
  std::vector<double> retention;

  size_t size() const { return value.size(); }

  /// All-ones columns: the σ defaults when a provider set nothing. Shared
  /// across every such provider instead of refilled per provider.
  void FillOnes(size_t n) {
    value.assign(n, 1.0);
    visibility.assign(n, 1.0);
    granularity.assign(n, 1.0);
    retention.assign(n, 1.0);
  }

  /// Resolves σ_i^a for `provider` against each policy tuple (override,
  /// then default, then ones — the SensitivityModel lookup rule).
  void FillFor(const SensitivityModel& model, ProviderId provider,
               const std::vector<PolicyTuple>& tuples);
};

/// The policy side of the severity kernel, built once per `Analyze`: level
/// columns plus the purpose-resolved attribute sensitivities Σ^a (Eq. 10),
/// which depend only on the policy tuple, never the provider.
struct PolicyColumns {
  TupleLevelColumns levels;
  std::vector<double> attr_sens;

  size_t size() const { return levels.size(); }

  static PolicyColumns Build(const std::vector<PolicyTuple>& tuples,
                             const SensitivityModel& model);
};

}  // namespace ppdb::privacy

#endif  // PPDB_PRIVACY_TUPLE_COLUMNS_H_

#include "privacy/purpose.h"

#include <deque>
#include <unordered_set>

#include "common/string_util.h"

namespace ppdb::privacy {

Result<PurposeId> PurposeRegistry::Register(std::string_view name) {
  if (!IsValidIdentifier(name)) {
    return Status::InvalidArgument("invalid purpose name: '" +
                                   std::string(name) + "'");
  }
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  PurposeId id = static_cast<PurposeId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(std::string(name), id);
  return id;
}

Result<PurposeId> PurposeRegistry::Lookup(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) {
    return Status::NotFound("unregistered purpose: '" + std::string(name) +
                            "'");
  }
  return it->second;
}

Result<std::string> PurposeRegistry::NameOf(PurposeId id) const {
  if (id < 0 || static_cast<size_t>(id) >= names_.size()) {
    return Status::OutOfRange("purpose id " + std::to_string(id) +
                              " out of range");
  }
  return names_[static_cast<size_t>(id)];
}

bool PurposeRegistry::Contains(std::string_view name) const {
  return index_.contains(std::string(name));
}

Status PurposeHierarchy::AddEdge(PurposeId child, PurposeId parent,
                                 const PurposeRegistry& registry) {
  if (child == parent) {
    return Status::InvalidArgument("a purpose cannot specialize itself");
  }
  auto validate = [&registry](PurposeId id) -> Status {
    if (id < 0 || id >= registry.num_purposes()) {
      return Status::NotFound("purpose id " + std::to_string(id) +
                              " is not registered");
    }
    return Status::OK();
  };
  Status s = validate(child);
  if (!s.ok()) return s;
  s = validate(parent);
  if (!s.ok()) return s;
  // Adding child -> parent creates a cycle iff parent already implies child.
  if (Implies(parent, child)) {
    return Status::InvalidArgument(
        "edge would create a cycle in the purpose hierarchy");
  }
  parents_[child].push_back(parent);
  return Status::OK();
}

bool PurposeHierarchy::Implies(PurposeId a, PurposeId b) const {
  if (a == b) return true;
  std::unordered_set<PurposeId> seen{a};
  std::deque<PurposeId> frontier{a};
  while (!frontier.empty()) {
    PurposeId current = frontier.front();
    frontier.pop_front();
    auto it = parents_.find(current);
    if (it == parents_.end()) continue;
    for (PurposeId parent : it->second) {
      if (parent == b) return true;
      if (seen.insert(parent).second) frontier.push_back(parent);
    }
  }
  return false;
}

std::vector<PurposeId> PurposeHierarchy::AncestorsOf(PurposeId id) const {
  std::vector<PurposeId> out;
  std::unordered_set<PurposeId> seen{id};
  std::deque<PurposeId> frontier{id};
  while (!frontier.empty()) {
    PurposeId current = frontier.front();
    frontier.pop_front();
    auto it = parents_.find(current);
    if (it == parents_.end()) continue;
    for (PurposeId parent : it->second) {
      if (seen.insert(parent).second) {
        out.push_back(parent);
        frontier.push_back(parent);
      }
    }
  }
  return out;
}

std::vector<PurposeId> PurposeHierarchy::ParentsOf(PurposeId id) const {
  auto it = parents_.find(id);
  if (it == parents_.end()) return {};
  return it->second;
}

int64_t PurposeHierarchy::num_edges() const {
  int64_t n = 0;
  for (const auto& [child, parents] : parents_) {
    n += static_cast<int64_t>(parents.size());
  }
  return n;
}

}  // namespace ppdb::privacy

#include "privacy/provider_prefs.h"

#include <algorithm>

#include "common/macros.h"

namespace ppdb::privacy {

Status ProviderPreferences::Add(std::string_view attribute,
                                const PrivacyTuple& tuple) {
  for (const PreferenceTuple& existing : tuples_) {
    if (existing.attribute == attribute &&
        existing.tuple.purpose == tuple.purpose) {
      return Status::AlreadyExists(
          "provider " + std::to_string(provider_) +
          " already has a preference for attribute '" +
          std::string(attribute) + "' and purpose id " +
          std::to_string(tuple.purpose));
    }
  }
  tuples_.push_back(PreferenceTuple{provider_, std::string(attribute), tuple});
  return Status::OK();
}

void ProviderPreferences::Set(std::string_view attribute,
                              const PrivacyTuple& tuple) {
  for (PreferenceTuple& existing : tuples_) {
    if (existing.attribute == attribute &&
        existing.tuple.purpose == tuple.purpose) {
      existing.tuple = tuple;
      return;
    }
  }
  tuples_.push_back(PreferenceTuple{provider_, std::string(attribute), tuple});
}

Status ProviderPreferences::Remove(std::string_view attribute,
                                   PurposeId purpose) {
  auto it = std::find_if(tuples_.begin(), tuples_.end(),
                         [&](const PreferenceTuple& pt) {
                           return pt.attribute == attribute &&
                                  pt.tuple.purpose == purpose;
                         });
  if (it == tuples_.end()) {
    return Status::NotFound("provider " + std::to_string(provider_) +
                            " has no preference for attribute '" +
                            std::string(attribute) + "' and purpose id " +
                            std::to_string(purpose));
  }
  tuples_.erase(it);
  return Status::OK();
}

std::vector<PreferenceTuple> ProviderPreferences::ForAttribute(
    std::string_view attribute) const {
  std::vector<PreferenceTuple> out;
  for (const PreferenceTuple& pt : tuples_) {
    if (pt.attribute == attribute) out.push_back(pt);
  }
  return out;
}

Result<PrivacyTuple> ProviderPreferences::Find(std::string_view attribute,
                                               PurposeId purpose) const {
  for (const PreferenceTuple& pt : tuples_) {
    if (pt.attribute == attribute && pt.tuple.purpose == purpose) {
      return pt.tuple;
    }
  }
  return Status::NotFound("provider " + std::to_string(provider_) +
                          " has no preference for attribute '" +
                          std::string(attribute) + "' and purpose id " +
                          std::to_string(purpose));
}

PrivacyTuple ProviderPreferences::EffectivePreference(
    std::string_view attribute, PurposeId purpose) const {
  Result<PrivacyTuple> stated = Find(attribute, purpose);
  if (stated.ok()) return stated.value();
  return PrivacyTuple::ZeroFor(purpose);
}

Status ProviderPreferences::ValidateAgainst(const ScaleSet& scales) const {
  for (const PreferenceTuple& pt : tuples_) {
    Status s = pt.tuple.ValidateAgainst(scales);
    if (!s.ok()) {
      return s.WithPrefix("provider " + std::to_string(provider_) +
                          ", attribute '" + pt.attribute + "'");
    }
  }
  return Status::OK();
}

ProviderPreferences& PreferenceStore::ForProvider(ProviderId provider) {
  auto it = prefs_.find(provider);
  if (it == prefs_.end()) {
    it = prefs_.emplace(provider, ProviderPreferences(provider)).first;
  }
  return it->second;
}

Result<const ProviderPreferences*> PreferenceStore::Find(
    ProviderId provider) const {
  auto it = prefs_.find(provider);
  if (it == prefs_.end()) {
    return Status::NotFound("no preferences recorded for provider " +
                            std::to_string(provider));
  }
  return &it->second;
}

bool PreferenceStore::Contains(ProviderId provider) const {
  return prefs_.contains(provider);
}

Status PreferenceStore::Erase(ProviderId provider) {
  if (prefs_.erase(provider) == 0) {
    return Status::NotFound("no preferences recorded for provider " +
                            std::to_string(provider));
  }
  return Status::OK();
}

std::vector<ProviderId> PreferenceStore::ProviderIds() const {
  std::vector<ProviderId> out;
  out.reserve(prefs_.size());
  for (const auto& [id, p] : prefs_) out.push_back(id);
  return out;
}

Status PreferenceStore::ValidateAgainst(const ScaleSet& scales) const {
  for (const auto& [id, p] : prefs_) {
    PPDB_RETURN_NOT_OK(p.ValidateAgainst(scales));
  }
  return Status::OK();
}

}  // namespace ppdb::privacy

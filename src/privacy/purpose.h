#ifndef PPDB_PRIVACY_PURPOSE_H_
#define PPDB_PRIVACY_PURPOSE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace ppdb::privacy {

/// Interned identifier of a purpose. Ids are dense, starting at 0, in
/// registration order.
using PurposeId = int32_t;

/// Interning registry for purpose names (assumption 4: "different purposes
/// are distinguishable" — the registry is the source of that
/// distinguishability).
class PurposeRegistry {
 public:
  PurposeRegistry() = default;

  /// Registers a purpose; returns its id. Re-registering an existing name
  /// returns the existing id (idempotent). Errors on invalid identifiers.
  Result<PurposeId> Register(std::string_view name);

  /// Looks up an existing purpose by name; kNotFound when unregistered.
  Result<PurposeId> Lookup(std::string_view name) const;

  /// Name of `id`; errors when out of range.
  Result<std::string> NameOf(PurposeId id) const;

  /// True iff the name is registered.
  bool Contains(std::string_view name) const;

  int32_t num_purposes() const { return static_cast<int32_t>(names_.size()); }

  /// All registered names in id order.
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, PurposeId> index_;
};

/// Optional specialization hierarchy over purposes (the lattice extension
/// the paper cites as ongoing research [5], §3 assumption 4).
///
/// `AddEdge(child, parent)` states that `child` is a more specific purpose
/// than `parent` (e.g. email_marketing ⊑ marketing). `Implies(a, b)` is the
/// reflexive-transitive closure: data permitted for purpose `b` may be used
/// for any `a` with a ⊑ b. The structure must stay acyclic; edges creating a
/// cycle are rejected, which keeps ⊑ a partial order.
///
/// The base model of Def. 1 compares purposes by equality only; components
/// accept an optional hierarchy to widen that comparison (see
/// `ViolationDetector::Options::purpose_hierarchy`).
class PurposeHierarchy {
 public:
  PurposeHierarchy() = default;

  /// Declares `child` ⊑ `parent`, validated against `registry`. Errors when
  /// either purpose is unregistered, on self-edges, and when the edge would
  /// create a cycle.
  Status AddEdge(PurposeId child, PurposeId parent,
                 const PurposeRegistry& registry);

  /// True iff a ⊑ b under the reflexive-transitive closure.
  bool Implies(PurposeId a, PurposeId b) const;

  /// All ancestors of `id` (excluding itself), in BFS order.
  std::vector<PurposeId> AncestorsOf(PurposeId id) const;

  /// Direct parents of `id`.
  std::vector<PurposeId> ParentsOf(PurposeId id) const;

  /// Total number of declared edges.
  int64_t num_edges() const;

 private:
  std::unordered_map<PurposeId, std::vector<PurposeId>> parents_;
};

}  // namespace ppdb::privacy

#endif  // PPDB_PRIVACY_PURPOSE_H_

#include "privacy/house_policy.h"

#include <algorithm>
#include <unordered_set>

#include "common/macros.h"

namespace ppdb::privacy {

Status HousePolicy::Add(std::string_view attribute,
                        const PrivacyTuple& tuple) {
  for (const PolicyTuple& existing : tuples_) {
    if (existing.attribute == attribute &&
        existing.tuple.purpose == tuple.purpose) {
      return Status::AlreadyExists(
          "policy already has a tuple for attribute '" +
          std::string(attribute) + "' and purpose id " +
          std::to_string(tuple.purpose));
    }
  }
  tuples_.push_back(PolicyTuple{std::string(attribute), tuple});
  return Status::OK();
}

Status HousePolicy::Remove(std::string_view attribute, PurposeId purpose) {
  auto it = std::find_if(tuples_.begin(), tuples_.end(),
                         [&](const PolicyTuple& pt) {
                           return pt.attribute == attribute &&
                                  pt.tuple.purpose == purpose;
                         });
  if (it == tuples_.end()) {
    return Status::NotFound("no policy tuple for attribute '" +
                            std::string(attribute) + "' and purpose id " +
                            std::to_string(purpose));
  }
  tuples_.erase(it);
  return Status::OK();
}

std::vector<PolicyTuple> HousePolicy::ForAttribute(
    std::string_view attribute) const {
  std::vector<PolicyTuple> out;
  for (const PolicyTuple& pt : tuples_) {
    if (pt.attribute == attribute) out.push_back(pt);
  }
  return out;
}

Result<PrivacyTuple> HousePolicy::Find(std::string_view attribute,
                                       PurposeId purpose) const {
  for (const PolicyTuple& pt : tuples_) {
    if (pt.attribute == attribute && pt.tuple.purpose == purpose) {
      return pt.tuple;
    }
  }
  return Status::NotFound("no policy tuple for attribute '" +
                          std::string(attribute) + "' and purpose id " +
                          std::to_string(purpose));
}

std::vector<std::string> HousePolicy::Attributes() const {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  for (const PolicyTuple& pt : tuples_) {
    if (seen.insert(pt.attribute).second) out.push_back(pt.attribute);
  }
  return out;
}

std::vector<PurposeId> HousePolicy::Purposes() const {
  std::vector<PurposeId> out;
  std::unordered_set<PurposeId> seen;
  for (const PolicyTuple& pt : tuples_) {
    if (seen.insert(pt.tuple.purpose).second) out.push_back(pt.tuple.purpose);
  }
  return out;
}

Status HousePolicy::ValidateAgainst(const ScaleSet& scales) const {
  for (const PolicyTuple& pt : tuples_) {
    Status s = pt.tuple.ValidateAgainst(scales);
    if (!s.ok()) return s.WithPrefix("attribute '" + pt.attribute + "'");
  }
  return Status::OK();
}

namespace {

Result<int> ClampedWiden(int level, int delta, const OrderedScale& scale) {
  int widened = level + delta;
  if (widened < 0) widened = 0;
  if (widened > scale.max_level()) widened = scale.max_level();
  return widened;
}

}  // namespace

Result<HousePolicy> HousePolicy::Widened(Dimension dim, int delta,
                                         const ScaleSet& scales) const {
  PPDB_ASSIGN_OR_RETURN(const OrderedScale* scale, scales.ForDimension(dim));
  HousePolicy out = *this;
  for (PolicyTuple& pt : out.tuples_) {
    PPDB_ASSIGN_OR_RETURN(int level, pt.tuple.Level(dim));
    PPDB_ASSIGN_OR_RETURN(int widened, ClampedWiden(level, delta, *scale));
    PPDB_RETURN_NOT_OK(pt.tuple.SetLevel(dim, widened));
  }
  return out;
}

Result<HousePolicy> HousePolicy::WidenedForAttribute(
    std::string_view attribute, Dimension dim, int delta,
    const ScaleSet& scales) const {
  PPDB_ASSIGN_OR_RETURN(const OrderedScale* scale, scales.ForDimension(dim));
  HousePolicy out = *this;
  bool touched = false;
  for (PolicyTuple& pt : out.tuples_) {
    if (pt.attribute != attribute) continue;
    PPDB_ASSIGN_OR_RETURN(int level, pt.tuple.Level(dim));
    PPDB_ASSIGN_OR_RETURN(int widened, ClampedWiden(level, delta, *scale));
    PPDB_RETURN_NOT_OK(pt.tuple.SetLevel(dim, widened));
    touched = true;
  }
  if (!touched) {
    return Status::NotFound("policy has no tuples for attribute '" +
                            std::string(attribute) + "'");
  }
  return out;
}

std::string HousePolicy::ToString(const PurposeRegistry& purposes,
                                  const ScaleSet& scales) const {
  std::string out;
  for (const PolicyTuple& pt : tuples_) {
    out += pt.attribute;
    out += ": ";
    out += pt.tuple.ToString(purposes, scales);
    out += "\n";
  }
  return out;
}

}  // namespace ppdb::privacy

// Healthcare scenario: purpose-based access control, query-time
// generalization, retention sweeping, and the audit trail that makes
// provider privacy monitorable (the paper's §2 transparency goal).
//
// A clinic stores patient vitals. Clinicians read them for care; an
// analytics partner wants them for research at third-party visibility.
// The monitor enforces each patient's preferences cell by cell.
#include <cstdio>
#include <iostream>
#include <memory>

#include "audit/monitor.h"
#include "audit/retention_sweeper.h"
#include "common/macros.h"
#include "privacy/policy_dsl.h"
#include "relational/csv.h"

namespace {

constexpr char kPolicyDsl[] = R"(
purpose care
purpose research

# The clinic's stated policy.
policy heart_rate for care: visibility=house, granularity=specific, retention=year
policy weight for care: visibility=house, granularity=specific, retention=year
policy heart_rate for research: visibility=third_party, granularity=partial, retention=month
policy weight for research: visibility=third_party, granularity=partial, retention=month

# Patient 1 trusts the clinic fully, including research.
pref 1 heart_rate for care: visibility=house, granularity=specific, retention=year
pref 1 weight for care: visibility=house, granularity=specific, retention=year
pref 1 heart_rate for research: visibility=third_party, granularity=partial, retention=month
pref 1 weight for research: visibility=third_party, granularity=partial, retention=month

# Patient 2 allows care but keeps research to coarse, house-only data.
pref 2 heart_rate for care: visibility=house, granularity=specific, retention=year
pref 2 weight for care: visibility=house, granularity=specific, retention=year
pref 2 heart_rate for research: visibility=house, granularity=existential, retention=week
pref 2 weight for research: visibility=house, granularity=existential, retention=week

# Patient 3 consented to care only; research falls to the implicit zero
# preference of Def. 1.
pref 3 heart_rate for care: visibility=house, granularity=specific, retention=month
pref 3 weight for care: visibility=house, granularity=partial, retention=month
)";

constexpr char kPatientsCsv[] =
    "provider_id,heart_rate,weight\n"
    "1,72,81.5\n"
    "2,88,64.2\n"
    "3,65,92.1\n";

void PrintResult(const char* title, const ppdb::rel::ResultSet& rs) {
  std::cout << "\n=== " << title << " ===\n" << rs.ToString();
}

int Run() {
  using namespace ppdb;  // NOLINT(build/namespaces)

  auto config_result = privacy::ParsePrivacyConfig(kPolicyDsl);
  PPDB_CHECK_OK(config_result.status());
  privacy::PrivacyConfig config = std::move(config_result).value();

  rel::Catalog catalog;
  auto schema =
      rel::Schema::Create({{"heart_rate", rel::DataType::kInt64, "bpm"},
                           {"weight", rel::DataType::kDouble, "kg"}});
  PPDB_CHECK_OK(schema.status());
  auto table = rel::TableFromCsv("patients", schema.value(), kPatientsCsv);
  PPDB_CHECK_OK(table.status());
  auto handle = catalog.AddTable(std::move(table).value());
  PPDB_CHECK_OK(handle.status());

  // Ingest bookkeeping: all vitals collected on day 0.
  audit::IngestLedger ledger;
  for (rel::ProviderId patient : {1, 2, 3}) {
    ledger.RecordRowIngest("patients", patient, {"heart_rate", "weight"}, 0);
  }

  // Numeric generalizers: partial granularity = bins (10 bpm / 10 kg).
  audit::GeneralizerRegistry generalizers;
  generalizers.Register("heart_rate",
                        std::make_unique<audit::NumericRangeGeneralizer>(
                            std::vector<double>{0.0, 0.0, 10.0}));
  generalizers.Register("weight",
                        std::make_unique<audit::NumericRangeGeneralizer>(
                            std::vector<double>{0.0, 0.0, 10.0}));

  audit::AuditLog log;
  audit::AccessMonitor monitor(&catalog, &config, &generalizers, &log,
                               audit::EnforcementMode::kEnforce, &ledger);

  auto purpose = [&](const char* name) {
    return config.purposes.Lookup(name).value();
  };

  // --- A clinician reads vitals for care on day 3. ---------------------
  audit::AccessRequest care;
  care.requester = "dr_grey";
  care.visibility_level = config.scales.visibility.LevelOf("house").value();
  care.purpose = purpose("care");
  care.table = "patients";
  care.attributes = {"heart_rate", "weight"};
  care.day = 3;
  auto care_result = monitor.Execute(care);
  PPDB_CHECK_OK(care_result.status());
  PrintResult("care query (day 3, house visibility)", care_result.value());

  // --- The analytics partner reads for research on day 3. --------------
  audit::AccessRequest research = care;
  research.requester = "research_partner";
  research.visibility_level =
      config.scales.visibility.LevelOf("third_party").value();
  research.purpose = purpose("research");
  auto research_result = monitor.Execute(research);
  PPDB_CHECK_OK(research_result.status());
  PrintResult("research query (day 3, third-party visibility)",
              research_result.value());
  std::cout << "(patient 1: decade bins per policy; patients 2-3: "
               "suppressed -- their preferences do not reach third-party "
               "visibility)\n";

  // --- An undeclared purpose is refused at the policy gate. ------------
  audit::AccessRequest marketing = care;
  marketing.requester = "growth_team";
  auto unknown = config.purposes.Register("marketing");
  PPDB_CHECK_OK(unknown.status());
  marketing.purpose = unknown.value();
  Status denied = monitor.Execute(marketing).status();
  std::cout << "\nmarketing query -> " << denied.ToString() << "\n";

  // --- Day 40: the retention sweeper purges what outlived consent. -----
  audit::RetentionSweeper sweeper(&config, &ledger, &log);
  auto patients = catalog.GetTable("patients");
  PPDB_CHECK_OK(patients.status());
  auto stats = sweeper.Sweep(patients.value(), 40);
  PPDB_CHECK_OK(stats.status());
  std::printf(
      "\nretention sweep at day 40: examined %lld cells, purged %lld, "
      "erased %lld rows\n",
      static_cast<long long>(stats->cells_examined),
      static_cast<long long>(stats->cells_purged),
      static_cast<long long>(stats->rows_erased));
  std::cout << patients.value()->ToString();

  // --- The audit trail: what each patient can see about their data. ----
  std::cout << "\n=== audit log (tail) ===\n" << log.ToString(12);
  for (rel::ProviderId patient : {1, 2, 3}) {
    std::printf("patient %lld: %zu audit events on record\n",
                static_cast<long long>(patient),
                log.EventsForProvider(patient).size());
  }
  return 0;
}

}  // namespace

int main() { return Run(); }

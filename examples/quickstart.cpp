// Quickstart: the paper's Section 8 example driven through the public API.
//
// Builds the Age/Weight table, Alice/Ted/Bob's preferences and
// sensitivities, the house policy, and then quantifies violations,
// defaults, and P(Default) — reproducing Table 1 and Eqs. 19-24.
#include <cstdio>
#include <iostream>

#include "common/macros.h"
#include "privacy/policy_dsl.h"
#include "relational/csv.h"
#include "stats/table_printer.h"
#include "violation/default_model.h"
#include "violation/detector.h"

namespace {

// The paper's symbolic house tuple <Weight, pr, v, g, r> instantiated at
// v = 1, g = 2, r = 2 on 8-level scales (l0 < l1 < ... < l7), so that the
// preference offsets v+2, g-1, r+3 etc. all stay on-scale.
constexpr char kConfigDsl[] = R"(
scale visibility: l0, l1, l2, l3, l4, l5, l6, l7
scale granularity: l0, l1, l2, l3, l4, l5, l6, l7
scale retention: l0, l1, l2, l3, l4, l5, l6, l7
purpose pr

policy Age for pr: visibility=0, granularity=0, retention=0
policy Weight for pr: visibility=1, granularity=2, retention=2

# Table 1: Alice <v+2, g+1, r+3>, Ted <v+2, g-1, r+2>, Bob <v, g-1, r-1>.
pref 1 Weight for pr: visibility=3, granularity=3, retention=5
pref 2 Weight for pr: visibility=3, granularity=1, retention=4
pref 3 Weight for pr: visibility=1, granularity=1, retention=1

attr_sensitivity Weight = 4
sensitivity 1 Weight: value=1, visibility=1, granularity=2, retention=1
sensitivity 2 Weight: value=3, visibility=1, granularity=5, retention=2
sensitivity 3 Weight: value=4, visibility=1, granularity=3, retention=2
threshold 1 = 10
threshold 2 = 50
threshold 3 = 100
)";

constexpr char kDataCsv[] =
    "provider_id,Age,Weight\n"
    "1,34,58.0\n"
    "2,41,92.5\n"
    "3,29,77.3\n";

const char* Name(ppdb::privacy::ProviderId id) {
  switch (id) {
    case 1:
      return "Alice";
    case 2:
      return "Ted";
    case 3:
      return "Bob";
  }
  return "?";
}

int Run() {
  using namespace ppdb;  // NOLINT(build/namespaces)

  // 1. Parse the privacy configuration (policy + preferences +
  //    sensitivities + thresholds).
  auto config_result = privacy::ParsePrivacyConfig(kConfigDsl);
  PPDB_CHECK_OK(config_result.status());
  privacy::PrivacyConfig config = std::move(config_result).value();

  // 2. Load the data table.
  auto schema = rel::Schema::Create({{"Age", rel::DataType::kInt64, "years"},
                                     {"Weight", rel::DataType::kDouble,
                                      "kg"}});
  PPDB_CHECK_OK(schema.status());
  auto table = rel::TableFromCsv("providers", schema.value(), kDataCsv);
  PPDB_CHECK_OK(table.status());
  std::cout << "Loaded data:\n" << table->ToString() << "\n";

  // 3. Detect violations (Def. 1, Eqs. 12-16).
  violation::ViolationDetector::Options options;
  options.data_table = &table.value();
  violation::ViolationDetector detector(&config, options);
  auto report = detector.Analyze();
  PPDB_CHECK_OK(report.status());

  // 4. Apply the default model (Defs. 4-5).
  violation::DefaultReport defaults =
      violation::ComputeDefaults(report.value(), config);

  // 5. Print the Table 1 view.
  stats::TablePrinter printer({"provider", "w_i", "Violation_i", "v_i",
                               "default_i"});
  for (const violation::ProviderDefault& pd : defaults.providers) {
    const violation::ProviderViolation* pv = report->Find(pd.provider);
    printer.AddRow({Name(pd.provider), pv->violated ? "1" : "0",
                    stats::TablePrinter::FormatDouble(pd.violation, 0),
                    stats::TablePrinter::FormatDouble(pd.threshold, 0),
                    pd.defaulted ? "1" : "0"});
  }
  printer.Print(std::cout);

  std::printf("\nP(W)       = %.4f   (violated %lld of %lld providers)\n",
              report->ProbabilityOfViolation(),
              static_cast<long long>(report->num_violated),
              static_cast<long long>(report->num_providers()));
  std::printf("Violations = %.0f     (Eq. 16 total severity)\n",
              report->total_severity);
  std::printf("P(Default) = %.4f   (the paper's Eq. 24: 1/3)\n",
              defaults.ProbabilityOfDefault());

  // 6. Per-incident drill-down, the auditable explanation of each w_i.
  std::cout << "\nIncidents:\n";
  for (const violation::ProviderViolation& pv : report->providers) {
    for (const violation::ViolationIncident& incident : pv.incidents) {
      std::printf(
          "  %s: %s exceeds preference on %s by %d (weighted severity "
          "%.0f)\n",
          Name(incident.provider), incident.attribute.c_str(),
          std::string(privacy::DimensionName(incident.dimension)).c_str(),
          incident.diff, incident.weighted_severity);
    }
  }
  return 0;
}

}  // namespace

int main() { return Run(); }

// Social-network policy comparison (after Wu et al. [23], who applied the
// taxonomy to real social-network policies): two sites with different
// stated policies are evaluated against the same provider population, and
// a what-if analysis shows what one site's planned policy widening would
// cost it in defaults (§9).
#include <cstdio>
#include <iostream>

#include "common/macros.h"
#include "sim/population.h"
#include "sim/scenario.h"
#include "stats/table_printer.h"
#include "violation/default_model.h"
#include "violation/detector.h"
#include "violation/probability.h"

namespace {

int Run() {
  using namespace ppdb;  // NOLINT(build/namespaces)

  // One shared population of 2,000 users with Westin-mixed preferences
  // over typical profile attributes.
  sim::PopulationConfig population_config;
  population_config.num_providers = 2000;
  population_config.attributes = {
      {"birthday", 2.0, 1990.0, 12.0},
      {"location", 3.0, 0.0, 1.0},
      {"interests", 1.0, 0.0, 1.0},
      {"messages", 5.0, 0.0, 1.0},
  };
  population_config.purposes = {"service", "advertising"};
  population_config.seed = 7;
  auto population_result =
      sim::PopulationGenerator(population_config).Generate();
  PPDB_CHECK_OK(population_result.status());
  sim::Population population = std::move(population_result).value();

  // Site A: conservative — house visibility, partial granularity,
  // month-scale retention.
  auto site_a = sim::MakeUniformPolicy(
      population_config.attributes, population_config.purposes,
      /*visibility=*/0.33, /*granularity=*/0.5, /*retention=*/0.4,
      &population.config);
  PPDB_CHECK_OK(site_a.status());

  // Site B: aggressive — third-party visibility, specific granularity,
  // indefinite retention.
  auto site_b = sim::MakeUniformPolicy(
      population_config.attributes, population_config.purposes,
      /*visibility=*/0.67, /*granularity=*/1.0, /*retention=*/1.0,
      &population.config);
  PPDB_CHECK_OK(site_b.status());

  stats::TablePrinter table(
      {"site", "P(W)", "Violations", "P(Default)", "users lost"});
  for (const auto& [name, policy] :
       {std::pair{"A (conservative)", site_a.value()},
        std::pair{"B (aggressive)", site_b.value()}}) {
    privacy::PrivacyConfig scenario = population.config;
    scenario.policy = policy;
    violation::ViolationDetector detector(&scenario);
    auto report = detector.Analyze();
    PPDB_CHECK_OK(report.status());
    violation::DefaultReport defaults =
        violation::ComputeDefaults(report.value(), scenario);
    table.AddRow(
        {name,
         stats::TablePrinter::FormatDouble(report->ProbabilityOfViolation(),
                                           3),
         stats::TablePrinter::FormatDouble(report->total_severity, 0),
         stats::TablePrinter::FormatDouble(defaults.ProbabilityOfDefault(),
                                           3),
         stats::TablePrinter::FormatInt(defaults.num_defaulted)});
  }
  std::cout << "Two sites, one population:\n";
  table.Print(std::cout);

  // What-if: site A considers widening advertising granularity to
  // "specific" and retention to "indefinite", one step at a time; each
  // step is worth an estimated +$0.08 per user per step in ad revenue
  // against a $1 per-user baseline.
  population.config.policy = site_a.value();
  // §9 assumes no one has defaulted under the current policy: calibrate
  // every user's threshold to baseline violation + lognormal headroom.
  PPDB_CHECK_OK(sim::CalibrateThresholdsToPolicy(&population,
                                                 /*headroom_mu=*/4.0,
                                                 /*headroom_sigma=*/1.5,
                                                 /*seed=*/11));
  sim::ScenarioRunner runner(&population);
  std::vector<violation::ExpansionStep> schedule = {
      {privacy::Dimension::kGranularity, 1, {}},
      {privacy::Dimension::kRetention, 1, {}},
      {privacy::Dimension::kGranularity, 1, {}},
      {privacy::Dimension::kRetention, 1, {}},
      {privacy::Dimension::kVisibility, 1, {}},
  };
  auto points = runner.RunExpansion(schedule, /*utility_per_provider=*/1.0,
                                    /*extra_utility_per_step=*/0.08);
  PPDB_CHECK_OK(points.status());

  std::cout << "\nSite A widening plan (U = $1/user, T = $0.08/user/step):\n";
  stats::TablePrinter curve({"step", "P(W)", "users left", "U_current",
                             "U_future", "break-even T", "justified"});
  for (const violation::ExpansionPoint& p : points.value()) {
    curve.AddRow(
        {stats::TablePrinter::FormatInt(p.step_index),
         stats::TablePrinter::FormatDouble(p.p_violation, 3),
         stats::TablePrinter::FormatInt(p.n_remaining),
         stats::TablePrinter::FormatDouble(p.utility_current, 0),
         stats::TablePrinter::FormatDouble(p.utility_future, 0),
         stats::TablePrinter::FormatDouble(p.break_even_extra_utility, 3),
         p.justified ? "yes" : "no"});
  }
  curve.Print(std::cout);
  std::cout << "\nEach step buys more salable data but pushes more users "
               "past their default thresholds; once the cumulative T gain "
               "falls below the Eq. 31 break-even, the expansion destroys "
               "value (the paper's 'detrimental effect').\n";
  return 0;
}

}  // namespace

int main() { return Run(); }

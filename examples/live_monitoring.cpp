// Live monitoring: the §2 goal that providers "can continuously monitor
// the state of their privacy", driven through the incremental
// LivePopulationMonitor. A small service processes a day of events —
// signups, preference edits, a policy change — and the privacy aggregates
// stay current in O(changed provider) per event.
#include <cstdio>
#include <iostream>

#include "common/macros.h"
#include "privacy/policy_dsl.h"
#include "violation/live_monitor.h"
#include "violation/report_io.h"

namespace {

using namespace ppdb;  // NOLINT(build/namespaces)

constexpr char kInitialConfig[] = R"(
purpose service
purpose ads

policy email for service: visibility=house, granularity=specific, retention=year
policy email for ads: visibility=third_party, granularity=partial, retention=month
attr_sensitivity email = 3

pref 1 email for service: visibility=house, granularity=specific, retention=year
pref 1 email for ads: visibility=third_party, granularity=partial, retention=month
pref 2 email for service: visibility=house, granularity=specific, retention=year
pref 2 email for ads: visibility=house, granularity=existential, retention=week
threshold 1 = 50
threshold 2 = 10
)";

void Snapshot(const violation::LivePopulationMonitor& monitor,
              const char* when) {
  std::printf(
      "%-42s N=%lld  P(W)=%.3f  Violations=%.1f  P(Default)=%.3f\n", when,
      static_cast<long long>(monitor.num_providers()),
      monitor.ProbabilityOfViolation(), monitor.TotalViolations(),
      monitor.ProbabilityOfDefault());
}

int Run() {
  auto config = privacy::ParsePrivacyConfig(kInitialConfig);
  PPDB_CHECK_OK(config.status());
  auto monitor_result =
      violation::LivePopulationMonitor::Create(std::move(config).value());
  PPDB_CHECK_OK(monitor_result.status());
  violation::LivePopulationMonitor monitor =
      std::move(monitor_result).value();

  std::printf("event log:\n");
  Snapshot(monitor, "t0: initial state");

  // 09:00 — a new user signs up without filling the privacy survey:
  // everything implicit-zero, instantly violated by both declared uses.
  PPDB_CHECK_OK(monitor.AddProvider(3, /*threshold=*/25.0));
  Snapshot(monitor, "09:00 user 3 signs up (no survey)");

  // 09:05 — user 3 fills in the survey; the ads violation disappears.
  privacy::PurposeId service =
      monitor.config().purposes.Lookup("service").value();
  privacy::PurposeId ads = monitor.config().purposes.Lookup("ads").value();
  PPDB_CHECK_OK(monitor.SetPreference(
      3, "email", privacy::PrivacyTuple{service, 1, 3, 3}));
  PPDB_CHECK_OK(monitor.SetPreference(
      3, "email", privacy::PrivacyTuple{ads, 2, 2, 2}));
  Snapshot(monitor, "09:05 user 3 states preferences");

  // 14:00 — the house widens the ads policy (specific granularity,
  // year retention). Everyone is re-checked.
  auto widened = monitor.config().policy;
  PPDB_CHECK_OK(widened.Remove("email", ads));
  PPDB_CHECK_OK(widened.Add("email", privacy::PrivacyTuple{ads, 2, 3, 3}));
  PPDB_CHECK_OK(monitor.SetPolicy(std::move(widened)));
  Snapshot(monitor, "14:00 house widens ads policy");

  // 14:01 — user 2 (tight ads preferences) is now past their threshold.
  auto defaulted = monitor.IsDefaulted(2);
  PPDB_CHECK_OK(defaulted.status());
  std::printf("14:01 user 2 defaulted? %s\n",
              defaulted.value() ? "yes -> leaves the service" : "no");
  if (defaulted.value()) {
    // Their transparency statement explains exactly why.
    violation::ViolationReport snapshot = monitor.Snapshot();
    auto statement =
        violation::TransparencyStatement(snapshot, 2, monitor.config());
    PPDB_CHECK_OK(statement.status());
    std::printf("\n%s\n", statement->c_str());
    PPDB_CHECK_OK(monitor.RemoveProvider(2));
  }
  Snapshot(monitor, "14:02 after user 2 leaves");

  // 18:00 — the house walks the change back for the remaining users.
  auto narrowed = monitor.config().policy;
  PPDB_CHECK_OK(narrowed.Remove("email", ads));
  PPDB_CHECK_OK(narrowed.Add("email", privacy::PrivacyTuple{ads, 2, 2, 2}));
  PPDB_CHECK_OK(monitor.SetPolicy(std::move(narrowed)));
  Snapshot(monitor, "18:00 house narrows ads policy back");
  return 0;
}

}  // namespace

int main() { return Run(); }

// Policy negotiation: the house searches for its utility-maximizing policy
// against a fixed provider population (the best-response move of the
// game-theoretic setting the paper's §9/§10 point to), then issues
// transparency statements to the providers the chosen policy still
// violates, and inspects the enforced database with SQL.
#include <cstdio>
#include <iostream>

#include "common/macros.h"
#include "relational/sql.h"
#include "sim/population.h"
#include "stats/table_printer.h"
#include "violation/default_model.h"
#include "violation/detector.h"
#include "violation/policy_search.h"
#include "violation/report_io.h"

namespace {

int Run() {
  using namespace ppdb;  // NOLINT(build/namespaces)

  // A small shop: 800 users, two monetizable attributes.
  sim::PopulationConfig population_config;
  population_config.num_providers = 800;
  population_config.attributes = {{"purchases", 3.0, 120.0, 40.0},
                                  {"location", 4.0, 0.0, 1.0}};
  population_config.purposes = {"service", "advertising"};
  population_config.seed = 97;
  auto population_result =
      sim::PopulationGenerator(population_config).Generate();
  PPDB_CHECK_OK(population_result.status());
  sim::Population population = std::move(population_result).value();

  // Start from the most protective policy (collect nothing beyond
  // existence) and let the search widen toward the interior optimum.
  auto policy = sim::MakeUniformPolicy(population_config.attributes,
                                       population_config.purposes, 0.0, 0.0,
                                       0.0, &population.config);
  PPDB_CHECK_OK(policy.status());
  population.config.policy = std::move(policy).value();

  violation::SearchOptions options;
  options.utility_per_provider = 1.0;  // $1/user base service value.
  // Exposure is worth up to ~$0.6/user per fully exposed attribute unit.
  options.value_model = violation::MakeLinearExposureValue(0.6);
  auto search = violation::GreedyPolicySearch(population.config, options);
  PPDB_CHECK_OK(search.status());

  std::printf("Greedy best-response policy search (start: most protective "
              "policy):\n");
  std::printf("  baseline utility: %.1f\n", search->baseline_utility);
  std::printf("  optimal utility:  %.1f after %zu moves\n",
              search->best_utility, search->trajectory.size());
  stats::TablePrinter moves({"#", "move", "attribute", "utility",
                             "users retained"});
  int i = 0;
  for (const violation::SearchStep& step : search->trajectory) {
    moves.AddRow({stats::TablePrinter::FormatInt(++i),
                  std::string(step.delta > 0 ? "widen " : "narrow ") +
                      std::string(privacy::DimensionName(step.dimension)),
                  step.attribute,
                  stats::TablePrinter::FormatDouble(step.utility, 1),
                  stats::TablePrinter::FormatInt(step.n_remaining)});
  }
  moves.Print(std::cout);

  // Adopt the found policy; report on who is still violated.
  population.config.policy = search->best_policy;
  violation::ViolationDetector detector(&population.config);
  auto report = detector.Analyze();
  PPDB_CHECK_OK(report.status());
  violation::DefaultReport defaults =
      violation::ComputeDefaults(report.value(), population.config);
  std::printf(
      "\nAt the negotiated policy: P(W) = %.3f, P(Default) = %.3f "
      "(%lld users would still leave).\n",
      report->ProbabilityOfViolation(), defaults.ProbabilityOfDefault(),
      static_cast<long long>(defaults.num_defaulted));

  // Transparency: the first still-violated provider gets a statement.
  for (const violation::ProviderViolation& pv : report->providers) {
    if (!pv.violated) continue;
    auto statement = violation::TransparencyStatement(
        report.value(), pv.provider, population.config);
    PPDB_CHECK_OK(statement.status());
    std::printf("\n%s", statement->c_str());
    break;
  }

  // SQL over the data the house actually holds.
  rel::Catalog catalog;
  PPDB_CHECK_OK(catalog.AddTable(std::move(population.data)).status());
  auto rs = rel::ExecuteSql(
      catalog,
      "SELECT COUNT(*) AS users, AVG(purchases) AS avg_purchases "
      "FROM providers WHERE purchases > 100");
  PPDB_CHECK_OK(rs.status());
  std::printf("\nSQL check over the stored data:\n%s",
              rs->ToString().c_str());
  return 0;
}

}  // namespace

int main() { return Run(); }

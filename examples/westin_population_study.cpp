// Westin population study: generate a survey-calibrated population,
// certify the database as an alpha-PPDB at several thresholds (Def. 3),
// and construct the empirical default CDF the paper's §10 proposes for
// estimating how a population reacts to policy expansion.
#include <cstdio>
#include <iostream>

#include "common/macros.h"
#include "sim/population.h"
#include "sim/scenario.h"
#include "stats/table_printer.h"
#include "violation/default_model.h"
#include "violation/detector.h"
#include "violation/probability.h"
#include "violation/what_if.h"

namespace {

int Run() {
  using namespace ppdb;  // NOLINT(build/namespaces)

  sim::PopulationConfig config;
  config.num_providers = 5000;
  config.attributes = {{"income", 5.0, 65000.0, 20000.0},
                       {"health_score", 4.0, 70.0, 15.0},
                       {"postal_code", 2.0, 50000.0, 25000.0}};
  config.purposes = {"service", "analytics"};
  config.seed = 12345;
  // Assume a complete preference survey: every provider states a tuple for
  // every (attribute, purpose), so P(W) reflects level mismatches rather
  // than Def. 1's implicit-zero rule for unstated purposes.
  for (sim::SegmentProfile& profile : config.profiles) {
    profile.statement_probability = 1.0;
  }
  auto population_result = sim::PopulationGenerator(config).Generate();
  PPDB_CHECK_OK(population_result.status());
  sim::Population population = std::move(population_result).value();

  std::array<int64_t, 3> segment_counts = {0, 0, 0};
  for (sim::WestinSegment s : population.segments) {
    ++segment_counts[static_cast<size_t>(s)];
  }
  std::printf(
      "Population: %lld providers (%lld fundamentalist, %lld pragmatist, "
      "%lld unconcerned)\n\n",
      static_cast<long long>(population.num_providers()),
      static_cast<long long>(segment_counts[0]),
      static_cast<long long>(segment_counts[1]),
      static_cast<long long>(segment_counts[2]));

  // A modest policy: house visibility, partial granularity, month-scale
  // retention.
  auto policy = sim::MakeUniformPolicy(config.attributes, config.purposes,
                                       0.33, 0.4, 0.4, &population.config);
  PPDB_CHECK_OK(policy.status());
  population.config.policy = std::move(policy).value();

  violation::ViolationDetector detector(&population.config);
  auto report = detector.Analyze();
  PPDB_CHECK_OK(report.status());

  // --- alpha-PPDB certification at several thresholds (Def. 3). --------
  std::cout << "alpha-PPDB certification:\n";
  stats::TablePrinter cert_table(
      {"alpha", "P(W)", "certified", "Wilson 95% hi", "with margin"});
  for (double alpha : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    auto cert = violation::CertifyAlphaPpdb(report.value(), alpha);
    PPDB_CHECK_OK(cert.status());
    cert_table.AddRow(
        {stats::TablePrinter::FormatDouble(alpha, 2),
         stats::TablePrinter::FormatDouble(cert->p_violation, 4),
         cert->certified ? "yes" : "no",
         stats::TablePrinter::FormatDouble(cert->interval.hi, 4),
         cert->certified_with_margin ? "yes" : "no"});
  }
  cert_table.Print(std::cout);

  // --- Default CDF under stepwise expansion (§10). ----------------------
  sim::ScenarioRunner runner(&population);
  std::vector<violation::ExpansionStep> schedule;
  for (int round = 0; round < 3; ++round) {
    for (privacy::Dimension dim : privacy::kOrderedDimensions) {
      schedule.push_back(violation::ExpansionStep{dim, 1, {}});
    }
  }
  auto onsets = runner.DefaultOnsets(schedule);
  PPDB_CHECK_OK(onsets.status());

  std::cout << "\nEmpirical default CDF (fraction of providers defaulted "
               "by widening step):\n";
  stats::TablePrinter cdf_table({"step", "F(step)", "fundamentalist",
                                 "pragmatist", "unconcerned"});
  for (int step = 0; step <= static_cast<int>(schedule.size()); step += 3) {
    auto segment_fraction = [&](sim::WestinSegment s) {
      const auto& cdf =
          onsets->onset_by_segment[static_cast<size_t>(s)];
      int64_t segment_total = segment_counts[static_cast<size_t>(s)];
      if (segment_total == 0) return 0.0;
      return static_cast<double>(cdf.count()) *
             cdf.Evaluate(static_cast<double>(step)) /
             static_cast<double>(segment_total);
    };
    cdf_table.AddRow(
        {stats::TablePrinter::FormatInt(step),
         stats::TablePrinter::FormatDouble(onsets->FractionDefaultedBy(step),
                                           3),
         stats::TablePrinter::FormatDouble(
             segment_fraction(sim::WestinSegment::kFundamentalist), 3),
         stats::TablePrinter::FormatDouble(
             segment_fraction(sim::WestinSegment::kPragmatist), 3),
         stats::TablePrinter::FormatDouble(
             segment_fraction(sim::WestinSegment::kUnconcerned), 3)});
  }
  cdf_table.Print(std::cout);
  std::printf("\n%lld of %lld providers never defaulted across the full "
              "schedule.\n",
              static_cast<long long>(onsets->never_defaulted),
              static_cast<long long>(population.num_providers()));
  std::cout << "Fundamentalists default first and almost completely; the "
               "unconcerned largely stay — the segment ordering Westin's "
               "surveys predict.\n";
  return 0;
}

}  // namespace

int main() { return Run(); }

#!/usr/bin/env bash
# ppdb_lint.sh — project-specific invariants that generic linters can't
# express. Each check prints PASS/FAIL with the offending lines; the script
# exits non-zero if any check fails. Run from anywhere; it locates the repo
# root from its own path.
#
# Checks:
#   1. std-sync      std::mutex & friends are forbidden outside
#                    common/mutex.h — use the annotated ppdb wrappers so
#                    clang thread-safety analysis can see the locks.
#   2. guarded-by    every Mutex/SharedMutex member must be referenced by
#                    a PPDB_GUARDED_BY / PPDB_REQUIRES(_SHARED) /
#                    PPDB_EXCLUDES annotation in the same file — a mutex
#                    nothing is annotated against is protecting something
#                    silently.
#   3. metric-reg    metric families are registered only in the known
#                    eager-registration translation units, so the metrics
#                    drift check (check_metrics_docs.sh) sees all of them.
#   4. raw-new       no system(3) and no raw `new` without an
#                    `// ppdb-lint: allow(raw-new)` marker on the same line
#                    or in the comment block directly above.
#   5. serve-docs    every serve command named in request.cc must be
#                    documented in README.md or OBSERVABILITY.md.
#   6. intrinsics    platform SIMD intrinsics headers (<immintrin.h>,
#                    <arm_neon.h>, ...) are allowed only under
#                    src/violation/kernel/ — everything else goes through
#                    the dispatched kernel API, which always has a scalar
#                    fallback.
#
# Silencing a finding: append `// ppdb-lint: allow(<check>)` to the line
# (or the comment block directly above it) with a short justification.
set -u

# PPDB_LINT_ROOT lets the self-test (tests/ppdb_lint_test.sh) point the
# checks at a fixture tree; normal runs locate the repo from the script.
ROOT="${PPDB_LINT_ROOT:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$ROOT"

FAILED=0

report() { # report <check-name> <findings>
  local name="$1" findings="$2"
  if [ -n "$findings" ]; then
    echo "FAIL  $name"
    echo "$findings" | sed '/^$/d; s/^/      /'
    FAILED=1
  else
    echo "PASS  $name"
  fi
}

# Drops grep -n findings that are inside a line comment (the match text
# starts with // or ///), so doc prose never trips a code check.
strip_comments() { # stdin: file:line:text
  grep -vE '^[^:]+:[0-9]+:[[:space:]]*(//|\*)' || true
}

# Drops findings whose line — or the contiguous `//` comment block directly
# above it — carries the given allow marker. Input: grep -n output.
strip_allowed() { # strip_allowed <marker> ; stdin: file:line:text
  local marker="$1"
  while IFS= read -r finding; do
    [ -z "$finding" ] && continue
    local file="${finding%%:*}" rest="${finding#*:}"
    local line="${rest%%:*}" text="${rest#*:}"
    case "$text" in *"ppdb-lint: allow($marker)"*) continue ;; esac
    local allowed=no prev_line=$((line - 1)) prev
    while [ "$prev_line" -ge 1 ]; do
      prev="$(sed -n "${prev_line}p" "$file")"
      case "$prev" in
        *"ppdb-lint: allow($marker)"*) allowed=yes; break ;;
        [[:space:]]*"//"*|"//"*) prev_line=$((prev_line - 1)) ;;
        *) break ;;
      esac
    done
    [ "$allowed" = yes ] && continue
    echo "$finding"
  done
}

# --- 1. std-sync -------------------------------------------------------------
# The annotated wrappers in common/mutex.h are the only place the raw std
# primitives may appear; everywhere else they are invisible to
# -Wthread-safety and therefore forbidden.
STD_SYNC_PATTERN='std::(mutex|shared_mutex|recursive_mutex|timed_mutex|condition_variable|lock_guard|unique_lock|shared_lock|scoped_lock)\b'
findings="$(grep -rnE "$STD_SYNC_PATTERN" src/ \
  --include='*.cc' --include='*.h' \
  | grep -v '^src/common/mutex\.h:' \
  | strip_comments \
  | strip_allowed 'std-sync')"
report "std-sync: raw std synchronization outside common/mutex.h" "$findings"

# --- 2. guarded-by -----------------------------------------------------------
# Per-member: each declared Mutex/SharedMutex must be named by at least one
# PPDB_GUARDED_BY / PPDB_REQUIRES(_SHARED) / PPDB_EXCLUDES in its file —
# an unreferenced mutex is protecting something silently. The declaration
# pattern accepts an optional brace initializer (the deadlock detector's
# debug name) and trailing PPDB_LOCK_LEVEL/ACQUIRED_* order macros.
MUTEX_DECL_PATTERN='^[[:space:]]*(mutable[[:space:]]+)?(ppdb::common::)?(Mutex|SharedMutex)[[:space:]]+[[:alnum:]_]+[[:space:]]*(\{[^}]*\})?[[:space:]]*(;|PPDB_)'
findings="$(grep -rnE "$MUTEX_DECL_PATTERN" \
    src/ --include='*.h' --include='*.cc' \
  | grep -v '^src/common/mutex\.h:' \
  | strip_allowed 'guarded-by' \
  | { while IFS= read -r finding; do
        file="${finding%%:*}"
        member="$(echo "${finding#*:*:}" \
          | sed -E 's/^[[:space:]]*(mutable[[:space:]]+)?(ppdb::common::)?(Mutex|SharedMutex)[[:space:]]+([[:alnum:]_]+).*/\4/')"
        if ! grep -qE "PPDB_(GUARDED_BY|REQUIRES|REQUIRES_SHARED|EXCLUDES)\(${member}\)" "$file"; then
          echo "$finding — no PPDB_GUARDED_BY/PPDB_REQUIRES/PPDB_EXCLUDES names '${member}' in $file"
        fi
      done; })"
report "guarded-by: every Mutex member is named by an annotation" "$findings"

# --- 3. metric-reg -----------------------------------------------------------
# check_metrics_docs.sh greps these files to build the drift list; a
# registration elsewhere would silently escape the docs gate.
METRIC_ALLOWLIST=(
  src/server/broker.cc
  src/server/net/conn_metrics.cc
  src/server/service.cc
  src/obs/metrics.cc
  src/obs/metrics.h
  src/storage/database_io.cc
  src/storage/fs.cc
  src/storage/journal.cc
  src/violation/incremental.cc
  src/violation/metrics.cc
)
findings="$(grep -rnE '\bGet(Counter|Gauge|Histogram)[[:space:]]*\(' src/ \
  --include='*.cc' --include='*.h' \
  | strip_comments \
  | { while IFS= read -r finding; do
        file="${finding%%:*}"
        allowed=no
        for a in "${METRIC_ALLOWLIST[@]}"; do
          [ "$file" = "$a" ] && allowed=yes && break
        done
        [ "$allowed" = no ] && echo "$finding"
      done; })"
report "metric-reg: metric registration stays in the eager-registration TUs" \
  "$findings"

# --- 4. raw-new / system -----------------------------------------------------
findings="$(grep -rnE '(^|[^_[:alnum:]])system[[:space:]]*\(' src/ \
  --include='*.cc' --include='*.h' \
  | strip_comments \
  | strip_allowed 'system')"
report "no-system: no system(3) calls" "$findings"

findings="$(grep -rnE '(^|[^_[:alnum:]])new[[:space:]]+[[:alnum:]_:]+' src/ \
  --include='*.cc' --include='*.h' \
  | strip_comments \
  | strip_allowed 'raw-new')"
report "raw-new: no unmarked raw new (prefer make_unique)" "$findings"

# --- 5. serve-docs -----------------------------------------------------------
# Every wire command must be documented; a new RequestKind that skips the
# docs breaks operators relying on README/OBSERVABILITY as the reference.
findings=""
commands="$(sed -n '/RequestKindName/,/^}/p' src/server/request.cc \
  | grep -oE 'return "[a-z_]+"' | sed 's/return "//; s/"//' \
  | grep -v '^unknown$' || true)"
if [ -z "$commands" ]; then
  findings="could not extract command names from src/server/request.cc"
else
  for cmd in $commands; do
    if ! grep -qE "\b${cmd}\b" README.md OBSERVABILITY.md 2>/dev/null; then
      findings="${findings}serve command \"${cmd}\" is not mentioned in README.md or OBSERVABILITY.md
"
    fi
  done
fi
report "serve-docs: every serve command is documented" "$findings"

# --- 6. intrinsics -----------------------------------------------------------
# SIMD is an implementation detail of the severity kernel; leaking
# intrinsics elsewhere would bypass the runtime dispatch (and its scalar
# fallback) that keeps non-AVX2 hosts working.
findings="$(grep -rnE '#[[:space:]]*include[[:space:]]*<(immintrin|arm_neon|x86intrin|xmmintrin|emmintrin|smmintrin|avxintrin|avx2intrin|tmmintrin|nmmintrin|wmmintrin)\.h>' \
    src/ tests/ bench/ examples/ tools/ \
    --include='*.cc' --include='*.h' --include='*.cpp' 2>/dev/null \
  | { while IFS= read -r finding; do
        file="${finding%%:*}"
        case "$file" in src/violation/kernel/*) ;; *) echo "$finding" ;; esac
      done; })"
report "intrinsics: SIMD headers only under src/violation/kernel/" "$findings"

if [ "$FAILED" -ne 0 ]; then
  echo
  echo "ppdb-lint: FAILED — see findings above." \
       "Silence a false positive with '// ppdb-lint: allow(<check>)'."
  exit 1
fi
echo
echo "ppdb-lint: all checks passed."

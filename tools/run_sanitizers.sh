#!/usr/bin/env bash
# Builds ppdb with AddressSanitizer + UndefinedBehaviorSanitizer and runs
# the robustness-relevant tests — the storage crash matrix (every injected
# fault point of an atomic save), database IO / recovery, the
# fault-injecting filesystem, the retry helper, and the parser fuzzers —
# so the durability layer stays memory- and UB-clean. Usage:
#
#   tools/run_sanitizers.sh
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "${repo_root}"
cmake --preset asan
cmake --build --preset asan -j "$(nproc)"
ctest --preset asan

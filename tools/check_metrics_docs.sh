#!/usr/bin/env bash
# OBSERVABILITY.md <-> code drift check.
#
# Scrapes a freshly started server (every metric family is registered
# eagerly at startup, so one scrape sees the complete set) and compares
# the scraped family names against the metric tables in OBSERVABILITY.md
# (rows whose first column is a backticked `ppdb_...` name). Fails when
# the two sets disagree in either direction, so a metric cannot be added,
# renamed, or removed without updating the reference in the same PR.
#
# Usage: tools/check_metrics_docs.sh [build_dir]
#
# PPDB_OBSERVABILITY_DOC overrides the documentation path (tests use this
# to exercise the missing-file diagnostic without touching the real doc).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"${repo_root}/build"}"
cli="${build_dir}/tools/ppdb_cli"
doc="${PPDB_OBSERVABILITY_DOC:-"${repo_root}/OBSERVABILITY.md"}"

if [[ ! -f "${doc}" ]]; then
  echo "FAIL: metrics reference '${doc}' does not exist." >&2
  echo "Every exported metric must be documented there; restore the file" >&2
  echo "(or fix PPDB_OBSERVABILITY_DOC) before adding or renaming metrics." >&2
  exit 1
fi

if [[ ! -x "${cli}" ]]; then
  echo "error: ${cli} not built; run:" >&2
  echo "  cmake -B '${build_dir}' -S '${repo_root}' && cmake --build '${build_dir}' -j" >&2
  exit 1
fi

workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT

"${cli}" demo "${workdir}/db" > /dev/null
printf 'stats prometheus\n' | "${cli}" serve "${workdir}/db" \
  > "${workdir}/scrape.txt" 2> /dev/null

# Family names the server actually exports (one # TYPE line per family).
grep '^# TYPE ' "${workdir}/scrape.txt" | awk '{print $3}' | sort -u \
  > "${workdir}/exported.txt"

# Family names OBSERVABILITY.md documents.
grep -oE '^\| `ppdb_[a-z0-9_]+`' "${doc}" | tr -d '|` ' | sort -u \
  > "${workdir}/documented.txt"

if [[ ! -s "${workdir}/exported.txt" ]]; then
  echo "FAIL: scrape produced no metric families" >&2
  exit 1
fi

status=0
undocumented="$(comm -23 "${workdir}/exported.txt" "${workdir}/documented.txt")"
if [[ -n "${undocumented}" ]]; then
  echo "FAIL: exported but not documented in OBSERVABILITY.md:" >&2
  echo "${undocumented}" | sed 's/^/  /' >&2
  status=1
fi
stale="$(comm -13 "${workdir}/exported.txt" "${workdir}/documented.txt")"
if [[ -n "${stale}" ]]; then
  echo "FAIL: documented in OBSERVABILITY.md but not exported:" >&2
  echo "${stale}" | sed 's/^/  /' >&2
  status=1
fi

if [[ "${status}" -eq 0 ]]; then
  echo "metrics/docs in sync: $(wc -l < "${workdir}/exported.txt") families"
fi
exit "${status}"

#!/usr/bin/env bash
# Builds ppdb with ThreadSanitizer and runs the concurrency-relevant tests
# (thread pool, violation engine, parallel/serial equivalence) so the
# parallel Analyze/estimator paths stay TSan-clean. Usage:
#
#   tools/run_tsan.sh
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "${repo_root}"
cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)"
ctest --preset tsan

// ppdb_cli — command-line front-end for a ppdb database directory
// (as written by storage::SaveDatabase).
//
// Usage:
//   ppdb_cli demo <dir>                   write a small demo database
//   ppdb_cli sql <dir> "<query>"          run SQL against the tables
//   ppdb_cli report <dir>                 violation + default reports
//   ppdb_cli certify <dir> <alpha>        alpha-PPDB certification (Def. 3)
//   ppdb_cli statement <dir> <provider>   provider transparency statement
//   ppdb_cli diff <dir> <policy.ppdb>     impact of adopting a new policy
//   ppdb_cli expansion-check <dir> <U> <T>
//                                         Section 9 expansion inequality
//                                         (Eqs. 25-31) from one view
//                                         materialization
//   ppdb_cli audit <dir> [n]              tail of the audit log
//   ppdb_cli enforce <dir> <purpose> <visibility> <table> <attrs>
//                                         preference-enforced read
//   ppdb_cli recover <dir> [--dry-run]    load, report crash leftovers and
//                                         replayed journal events, and
//                                         re-commit a clean generation
//                                         (--dry-run: report only, never
//                                         mutate the directory)
//   ppdb_cli serve <dir> [flags]          line-oriented serving loop on
//                                         stdin/stdout, or over TCP with
//                                         --listen (see src/server/)
//   ppdb_cli trace <dir>                  run one traced violation scan and
//                                         dump the span ring as JSON
//
// Exit codes: 0 success; 1 error; 2 usage; 3 alpha certification failed
// (or expansion not justified);
// 4 recovery succeeded but crash leftovers were discarded (or journal
// events replayed); 5 serving completed but the final checkpoint failed.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "audit/monitor.h"
#include "common/string_util.h"
#include "obs/trace.h"
#include "privacy/policy_dsl.h"
#include "relational/csv.h"
#include "relational/sql.h"
#include "server/broker.h"
#include "server/net/tcp_server.h"
#include "server/serve.h"
#include "server/service.h"
#include "storage/database_io.h"
#include "violation/change_impact.h"
#include "violation/default_model.h"
#include "violation/incremental.h"
#include "violation/detector.h"
#include "violation/probability.h"
#include "violation/report_io.h"

namespace {

using namespace ppdb;  // NOLINT(build/namespaces)

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  ppdb_cli demo <dir>\n"
               "  ppdb_cli sql <dir> \"<query>\"\n"
               "  ppdb_cli report <dir>\n"
               "  ppdb_cli certify <dir> <alpha>\n"
               "  ppdb_cli statement <dir> <provider>\n"
               "  ppdb_cli diff <dir> <policy.ppdb>\n"
               "  ppdb_cli expansion-check <dir> <utility_per_provider> "
               "<extra_utility>\n"
               "  ppdb_cli audit <dir> [n]\n"
               "  ppdb_cli enforce <dir> <purpose> <visibility> <table> "
               "<attr[,attr...]>\n"
               "  ppdb_cli recover <dir> [--dry-run]\n"
               "  ppdb_cli serve <dir> [--workers N] [--queue K] "
               "[--deadline-ms D] [--checkpoint-every E]\n"
               "                       [--listen <addr:port>] "
               "[--max-conns N] [--idle-timeout-ms D]\n"
               "                       [--journal-window-us U] "
               "[--no-journal] [--drift-check-every E]\n"
               "  ppdb_cli trace <dir>\n");
  return 2;
}

// Loads `dir`, warning on stderr when crash leftovers had to be skipped so
// no command silently works off a recovered state.
Result<storage::Database> LoadWithWarnings(const std::string& dir) {
  storage::RecoveryReport report;
  Result<storage::Database> database =
      storage::LoadDatabase(dir, storage::GetRealFileSystem(), &report);
  if (database.ok() && !report.clean()) {
    std::fprintf(stderr, "warning: '%s' needed recovery\n%s", dir.c_str(),
                 report.ToString().c_str());
  }
  return database;
}

// recover <dir> [--dry-run]: loads whatever committed state survives
// (journal tail replayed on top), prints the recovery report, and
// re-saves so the directory is a single clean committed generation again.
// --dry-run prints the same report with the same exit semantics but never
// mutates the directory, so operators can inspect before repairing. Exit
// 0 when already clean, 4 when recovery found anything (discards,
// fallback, or replayed journal events), 1 when nothing loadable remains.
int RunRecover(const std::string& dir, bool dry_run) {
  // Recovery is often driven from scripts with stdout piped to a pager or
  // log shipper; a consumer hanging up must not kill the re-commit
  // mid-flight. Writes past the hangup fail with EPIPE instead.
  std::signal(SIGPIPE, SIG_IGN);
  storage::RecoveryReport report;
  Result<storage::Database> database =
      storage::LoadDatabase(dir, storage::GetRealFileSystem(), &report);
  if (!database.ok()) return Fail(database.status());
  std::fputs(report.ToString().c_str(), stdout);
  if (report.clean()) return 0;
  if (dry_run) {
    std::printf("dry run: '%s' left untouched (re-run without --dry-run "
                "to re-commit)\n",
                dir.c_str());
    return 4;
  }
  // Re-commit: the atomic save establishes a fresh generation, prunes the
  // stragglers the report named, and seals any replayed journal events
  // into the new generation.
  Status saved = storage::SaveDatabase(dir, database.value());
  if (!saved.ok()) return Fail(saved);
  std::printf("re-committed '%s' from %s\n", dir.c_str(),
              report.loaded_generation.c_str());
  return 4;
}

Result<std::string> ReadTextFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::string contents;
  char buffer[4096];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents.append(buffer, got);
  }
  std::fclose(f);
  return contents;
}

int RunSql(const storage::Database& database, const std::string& query) {
  Result<rel::ResultSet> rs = rel::ExecuteSql(database.catalog, query);
  if (!rs.ok()) return Fail(rs.status());
  std::cout << rs->ToString(/*max_rows=*/50);
  std::printf("(%lld rows)\n", static_cast<long long>(rs->num_rows()));
  return 0;
}

int RunReport(const storage::Database& database) {
  violation::ViolationDetector detector(&database.config);
  Result<violation::ViolationReport> report = detector.Analyze();
  if (!report.ok()) return Fail(report.status());
  violation::DefaultReport defaults =
      violation::ComputeDefaults(report.value(), database.config);
  std::cout << report->ToString() << "\n" << defaults.ToString();
  return 0;
}

int RunCertify(const storage::Database& database, const std::string& text) {
  Result<double> alpha = ParseDouble(text);
  if (!alpha.ok()) return Fail(alpha.status());
  violation::ViolationDetector detector(&database.config);
  Result<violation::ViolationReport> report = detector.Analyze();
  if (!report.ok()) return Fail(report.status());
  Result<violation::AlphaCertification> cert =
      violation::CertifyAlphaPpdb(report.value(), alpha.value());
  if (!cert.ok()) return Fail(cert.status());
  std::printf(
      "P(W) = %.4f over %lld providers (%lld violated)\n"
      "alpha = %.4f: %s (Wilson 95%% interval [%.4f, %.4f]%s)\n",
      cert->p_violation, static_cast<long long>(cert->num_providers),
      static_cast<long long>(cert->num_violated), cert->alpha,
      cert->certified ? "alpha-PPDB CERTIFIED" : "NOT certified",
      cert->interval.lo, cert->interval.hi,
      cert->certified_with_margin ? ", certified with margin" : "");
  return cert->certified ? 0 : 3;
}

int RunStatement(const storage::Database& database,
                 const std::string& text) {
  Result<int64_t> provider = ParseInt64(text);
  if (!provider.ok()) return Fail(provider.status());
  violation::ViolationDetector detector(&database.config);
  Result<violation::ViolationReport> report = detector.Analyze();
  if (!report.ok()) return Fail(report.status());
  Result<std::string> statement = violation::TransparencyStatement(
      report.value(), provider.value(), database.config);
  if (!statement.ok()) return Fail(statement.status());
  std::cout << statement.value();
  return 0;
}

int RunDiff(const storage::Database& database, const std::string& path) {
  Result<std::string> dsl = ReadTextFile(path);
  if (!dsl.ok()) return Fail(dsl.status());
  Result<privacy::PrivacyConfig> proposed =
      privacy::ParsePrivacyConfig(dsl.value());
  if (!proposed.ok()) return Fail(proposed.status());
  Result<violation::ChangeImpact> impact =
      violation::AssessPolicyChange(database.config,
                                    proposed.value().policy);
  if (!impact.ok()) return Fail(impact.status());
  std::cout << impact->diff.ToString(database.config.purposes,
                                     database.config.scales)
            << "\n"
            << impact->Summary();
  return 0;
}

// expansion-check <dir> <U> <T>: answers Section 9's "should the house
// expand?" inequality (Eqs. 25-31) for per-provider utility U and extra
// utility T, from one view materialization of the stored config.
int RunExpansionCheck(const storage::Database& database,
                      const std::string& utility_text,
                      const std::string& extra_text) {
  Result<double> utility = ParseDouble(utility_text);
  if (!utility.ok()) return Fail(utility.status());
  Result<double> extra = ParseDouble(extra_text);
  if (!extra.ok()) return Fail(extra.status());
  Result<violation::ViolationView> view =
      violation::ViolationView::Create(&database.config);
  if (!view.ok()) return Fail(view.status());
  Result<violation::ViolationView::ExpansionCheck> check =
      view->CheckExpansion(utility.value(), extra.value());
  if (!check.ok()) return Fail(check.status());
  const violation::ViolationView::ExpansionCheck& c = check.value();
  std::printf(
      "N = %lld providers, %lld defaulted -> N_future = %lld (Eq. 26)\n"
      "utility(current) = %.6g (Eq. 25), utility(future) = %.6g (Eq. 27)\n"
      "expansion %s (Eqs. 28-29)\n",
      static_cast<long long>(c.n_current),
      static_cast<long long>(c.n_defaulted),
      static_cast<long long>(c.n_future), c.utility_current,
      c.utility_future, c.justified ? "JUSTIFIED" : "NOT justified");
  if (c.has_break_even) {
    std::printf("break-even extra utility T* = %.6g (Eq. 31)\n",
                c.break_even_extra_utility);
  } else {
    std::printf("no finite break-even T (every provider defaulted)\n");
  }
  return c.justified ? 0 : 3;
}

// enforce <dir> <purpose> <visibility-level> <table> <attr[,attr...]>
// Runs a preference-enforced read through the access monitor.
int RunEnforce(const storage::Database& database, const std::string& purpose,
               const std::string& visibility, const std::string& table,
               const std::string& attributes) {
  Result<privacy::PurposeId> purpose_id =
      database.config.purposes.Lookup(purpose);
  if (!purpose_id.ok()) return Fail(purpose_id.status());
  int level;
  Result<int> by_name =
      database.config.scales.visibility.LevelOf(visibility);
  if (by_name.ok()) {
    level = by_name.value();
  } else {
    Result<int64_t> numeric = ParseInt64(visibility);
    if (!numeric.ok()) return Fail(by_name.status());
    level = static_cast<int>(numeric.value());
  }

  audit::GeneralizerRegistry generalizers =
      audit::BuildGeneralizers(database.config.numeric_generalizers);
  audit::AuditLog log;
  audit::AccessMonitor monitor(&database.catalog, &database.config,
                               &generalizers, &log,
                               audit::EnforcementMode::kEnforce,
                               &database.ledger);
  audit::AccessRequest request;
  request.requester = "cli";
  request.visibility_level = level;
  request.purpose = purpose_id.value();
  request.table = table;
  for (std::string_view attr : SplitAndTrim(attributes, ',')) {
    request.attributes.emplace_back(attr);
  }
  Result<rel::ResultSet> rs = monitor.Execute(request);
  if (!rs.ok()) return Fail(rs.status());
  std::cout << rs->ToString(50);
  std::printf("(%lld rows; %lld cell(s) generalized, %lld suppressed)\n",
              static_cast<long long>(rs->num_rows()),
              static_cast<long long>(
                  log.CountByKind(audit::AuditEventKind::kCellGeneralized)),
              static_cast<long long>(
                  log.CountByKind(audit::AuditEventKind::kCellSuppressed)));
  return 0;
}

// trace <dir>: runs one fully traced violation scan over the database and
// dumps the tracer's span ring as a JSON array (index build, shard fan-out,
// reduce — the same spans a `serve` request would record). In-process
// equivalent of the serve-mode `trace` command.
int RunTrace(const storage::Database& database) {
  violation::ViolationDetector detector(&database.config);
  Result<violation::ViolationReport> report = [&] {
    obs::TraceScope trace(obs::Tracer::Default(), "ppdb-cli-trace",
                          "analyze");
    return detector.Analyze();
  }();
  if (!report.ok()) return Fail(report.status());
  std::cout << obs::Tracer::Default().SnapshotJson() << "\n";
  return 0;
}

int RunAudit(const storage::Database& database, const std::string& count) {
  int64_t n = 20;
  if (!count.empty()) {
    Result<int64_t> parsed = ParseInt64(count);
    if (!parsed.ok()) return Fail(parsed.status());
    n = parsed.value();
  }
  std::cout << database.log.ToString(n);
  std::printf("(%lld events total)\n",
              static_cast<long long>(database.log.size()));
  return 0;
}

// serve <dir> [flags]: the overload-safe serving loop (src/server/) on
// stdin/stdout, or — with --listen <addr:port> — the TCP front-end on a
// real socket. Exit 0 when serving and the final checkpoint both
// succeeded; exit 5 when serving succeeded but the final checkpoint
// failed — events acknowledged during the session are still safe in the
// journal, but the directory needs `recover` (or a successful next serve)
// to seal them into a generation.
int RunServe(const std::string& dir, int argc, char** argv) {
  // A client hanging up mid-response must surface as EPIPE on that one
  // connection, never as a process-killing signal.
  std::signal(SIGPIPE, SIG_IGN);
  server::RequestBroker::Options broker_options;
  server::DatabaseService::Options service_options;
  server::net::TcpServer::Options net_options;
  bool listen = false;
  for (int i = 3; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--no-journal") {
      // Checkpoint-granular durability, as before the journal existed.
      service_options.journal_enabled = false;
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "serve flag '%s' expects a value\n", flag.c_str());
      return Usage();
    }
    ++i;
    if (flag == "--listen") {
      // <addr:port>; the port may be 0 for an ephemeral one (the bound
      // port is printed once listening).
      const std::string endpoint = argv[i];
      size_t colon = endpoint.rfind(':');
      if (colon == std::string::npos || colon == 0) {
        std::fprintf(stderr, "--listen expects <addr:port>, got '%s'\n",
                     endpoint.c_str());
        return Usage();
      }
      Result<int64_t> port = ParseInt64(endpoint.substr(colon + 1));
      if (!port.ok()) return Fail(port.status());
      if (port.value() < 0 || port.value() > 65535) {
        return Fail(Status::InvalidArgument("port out of range"));
      }
      net_options.host = endpoint.substr(0, colon);
      net_options.port = static_cast<uint16_t>(port.value());
      listen = true;
      continue;
    }
    Result<int64_t> value = ParseInt64(argv[i]);
    if (!value.ok()) return Fail(value.status());
    if (flag == "--workers") {
      broker_options.num_workers = static_cast<int>(value.value());
    } else if (flag == "--queue") {
      broker_options.queue_capacity = static_cast<size_t>(value.value());
    } else if (flag == "--deadline-ms") {
      broker_options.default_deadline =
          std::chrono::milliseconds(value.value());
    } else if (flag == "--checkpoint-every") {
      service_options.checkpoint_every_events = value.value();
    } else if (flag == "--drift-check-every") {
      service_options.drift_check_every_events = value.value();
    } else if (flag == "--journal-window-us") {
      service_options.journal_batch_window =
          std::chrono::microseconds(value.value());
    } else if (flag == "--max-conns") {
      net_options.max_connections = static_cast<size_t>(value.value());
    } else if (flag == "--idle-timeout-ms") {
      net_options.idle_timeout = std::chrono::milliseconds(value.value());
    } else {
      std::fprintf(stderr, "unknown serve flag '%s'\n", flag.c_str());
      return Usage();
    }
  }
  Result<std::unique_ptr<server::DatabaseService>> service =
      server::DatabaseService::Create(dir, &storage::GetRealFileSystem(),
                                      service_options);
  if (!service.ok()) return Fail(service.status());
  if (!service.value()->recovery().clean()) {
    std::fprintf(stderr, "warning: '%s' needed recovery\n%s", dir.c_str(),
                 service.value()->recovery().ToString().c_str());
  }
  server::RequestBroker broker(broker_options);
  Status final_checkpoint;
  if (listen) {
    server::net::TcpServer server(net_options, *service.value(), broker);
    Status started = server.Start();
    if (!started.ok()) return Fail(started);
    // One line on stdout so scripts (and tests) can scrape the bound
    // port; everything else stays on the socket or stderr.
    std::printf("listening on %s:%u (%s)\n", net_options.host.c_str(),
                static_cast<unsigned>(server.port()),
                std::string(server.poller_name()).c_str());
    std::fflush(stdout);
    final_checkpoint = server.Serve();
  } else {
    final_checkpoint =
        server::Serve(std::cin, std::cout, *service.value(), broker);
  }
  if (!final_checkpoint.ok()) {
    // Serving succeeded but the data is not sealed into a generation; a
    // distinct exit code lets supervisors trigger `recover` instead of
    // treating the run as fully clean.
    std::fprintf(stderr, "error: final checkpoint failed: %s\n",
                 final_checkpoint.ToString().c_str());
    return 5;
  }
  return 0;
}

// The paper's Section 8 scenario as a ready-made database directory.
int RunDemo(const std::string& dir) {
  storage::Database database;
  auto config = privacy::ParsePrivacyConfig(R"(
scale visibility: l0, l1, l2, l3, l4, l5, l6, l7
scale granularity: l0, l1, l2, l3, l4, l5, l6, l7
scale retention: l0, l1, l2, l3, l4, l5, l6, l7
purpose pr
policy Age for pr: visibility=0, granularity=0, retention=0
policy Weight for pr: visibility=1, granularity=2, retention=2
pref 1 Weight for pr: visibility=3, granularity=3, retention=5
pref 2 Weight for pr: visibility=3, granularity=1, retention=4
pref 3 Weight for pr: visibility=1, granularity=1, retention=1
generalizer Weight: 0, 0, 10
attr_sensitivity Weight = 4
sensitivity 1 Weight: value=1, visibility=1, granularity=2, retention=1
sensitivity 2 Weight: value=3, visibility=1, granularity=5, retention=2
sensitivity 3 Weight: value=4, visibility=1, granularity=3, retention=2
threshold 1 = 10
threshold 2 = 50
threshold 3 = 100
)");
  if (!config.ok()) return Fail(config.status());
  database.config = std::move(config).value();

  auto schema =
      rel::Schema::Create({{"Age", rel::DataType::kInt64, "years"},
                           {"Weight", rel::DataType::kDouble, "kg"}});
  if (!schema.ok()) return Fail(schema.status());
  auto table = rel::TableFromCsv("providers", schema.value(),
                                 "provider_id,Age,Weight\n"
                                 "1,34,58.0\n"
                                 "2,41,92.5\n"
                                 "3,29,77.3\n");
  if (!table.ok()) return Fail(table.status());
  Status added = database.catalog.AddTable(std::move(table).value()).status();
  if (!added.ok()) return Fail(added);
  for (rel::ProviderId provider : {1, 2, 3}) {
    database.ledger.RecordRowIngest("providers", provider, {"Age", "Weight"},
                                    0);
  }
  Status saved = storage::SaveDatabase(dir, database);
  if (!saved.ok()) return Fail(saved);
  std::printf("demo database (the paper's Section 8 example) written to "
              "%s\n",
              dir.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string command = argv[1];
  const std::string dir = argv[2];

  if (command == "demo" && argc == 3) return RunDemo(dir);
  if (command == "recover" && argc == 3) return RunRecover(dir, false);
  if (command == "recover" && argc == 4 &&
      std::string(argv[3]) == "--dry-run") {
    return RunRecover(dir, true);
  }
  if (command == "serve") return RunServe(dir, argc, argv);

  Result<storage::Database> database = LoadWithWarnings(dir);
  if (!database.ok()) return Fail(database.status());

  if (command == "sql" && argc == 4) {
    return RunSql(database.value(), argv[3]);
  }
  if (command == "report" && argc == 3) {
    return RunReport(database.value());
  }
  if (command == "certify" && argc == 4) {
    return RunCertify(database.value(), argv[3]);
  }
  if (command == "statement" && argc == 4) {
    return RunStatement(database.value(), argv[3]);
  }
  if (command == "diff" && argc == 4) {
    return RunDiff(database.value(), argv[3]);
  }
  if (command == "expansion-check" && argc == 5) {
    return RunExpansionCheck(database.value(), argv[3], argv[4]);
  }
  if (command == "trace" && argc == 3) {
    return RunTrace(database.value());
  }
  if (command == "audit" && (argc == 3 || argc == 4)) {
    return RunAudit(database.value(), argc == 4 ? argv[3] : "");
  }
  if (command == "enforce" && argc == 7) {
    return RunEnforce(database.value(), argv[3], argv[4], argv[5], argv[6]);
  }
  return Usage();
}

#!/usr/bin/env bash
# run_clang_tidy.sh — run clang-tidy (config in .clang-tidy) over every
# first-party translation unit, in parallel, against a compile database.
#
# Usage: tools/run_clang_tidy.sh [build-dir]
#
# The build dir must contain compile_commands.json; configure one with
#   cmake --preset clang-tidy          # or any preset, plus
#   cmake -B build -DCMAKE_EXPORT_COMPILE_COMMANDS=ON ...
#
# Exits non-zero on any finding (clang-tidy already promotes the checks we
# care most about via WarningsAsErrors). Skips gracefully (exit 0 with a
# notice) when clang-tidy is not installed, so local gcc-only machines can
# run the rest of the static-analysis suite; CI always has clang-tidy.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"

TIDY="$(command -v clang-tidy || true)"
if [ -z "$TIDY" ]; then
  for v in 20 19 18 17 16 15 14; do
    TIDY="$(command -v "clang-tidy-$v" || true)"
    [ -n "$TIDY" ] && break
  done
fi
if [ -z "$TIDY" ]; then
  echo "run_clang_tidy: clang-tidy not found on PATH; skipping (CI runs it)."
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: $BUILD_DIR/compile_commands.json not found." >&2
  echo "Configure with: cmake -B $BUILD_DIR -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

JOBS="$(nproc 2>/dev/null || echo 4)"
echo "run_clang_tidy: $TIDY over src/ with $JOBS jobs (db: $BUILD_DIR)"

# Only first-party sources; third-party and generated code is not ours to
# lint. xargs fans out one clang-tidy process per TU and propagates any
# non-zero exit (xargs exits 123 when an invocation fails).
find "$ROOT/src" -name '*.cc' -print0 \
  | xargs -0 -P "$JOBS" -n 1 "$TIDY" -p "$BUILD_DIR" --quiet
status=$?

if [ "$status" -ne 0 ]; then
  echo "run_clang_tidy: findings above (exit $status)." >&2
  exit 1
fi
echo "run_clang_tidy: clean."

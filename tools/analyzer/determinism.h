#ifndef PPDB_TOOLS_ANALYZER_DETERMINISM_H_
#define PPDB_TOOLS_ANALYZER_DETERMINISM_H_

#include <vector>

#include "lock_order.h"  // for Finding
#include "source_lexer.h"

/// Pass 2: determinism analysis.
///
/// The paper's violation counts (Eqs. 12-14) must be bit-reproducible
/// across runs and thread counts — the replay tests and the incremental
/// view's full-recompute parity check both depend on it. Three checks:
///
///   * fp-accumulate — floating-point accumulation (`x += ...` or
///     `x = x + ...` on a float/double) inside a loop, in src/violation/
///     outside the blessed reduction helpers (analysis_core.h and
///     kernel/, whose pairwise/compensated sums define the canonical
///     answer). Order-sensitive FP reduction anywhere else is how two
///     runs diverge. Escape hatch: `// ppdb-lint: allow(fp-accumulate)`
///     with a justification that the iteration order is canonical.
///
///   * unordered-iter — range-for over a std::unordered_map/set feeding
///     an accumulation, in src/violation/ and src/server/. Hash-order
///     iteration is nondeterministic across libstdc++ versions and seed
///     values; reductions over it must first impose an order. Escape:
///     `// ppdb-lint: allow(unordered-iter)`.
///
///   * nondet-source — calls to time()/rand()/srand() or any use of
///     std::random_device outside common/rng.cc, anywhere in src/. All
///     randomness flows through the seeded SplitMix64 in common/rng.h so
///     runs are replayable. Escape: `// ppdb-lint: allow(nondet-source)`.
namespace ppdb::analyzer {

/// Runs all three checks over the loaded tree; returns findings (empty ==
/// pass). Scoping by path is built in, matching the contract above.
std::vector<Finding> AnalyzeDeterminism(const std::vector<SourceFile>& files);

}  // namespace ppdb::analyzer

#endif  // PPDB_TOOLS_ANALYZER_DETERMINISM_H_

// ppdb_analyze — in-tree static analyzer for the ppdb codebase.
//
// Two passes over a lexed (not compiled) view of src/:
//   lock-order    — checks every Mutex/SharedMutex member carries a
//                   PPDB_LOCK_LEVEL place in the documented global order,
//                   that the declared order is acyclic, and that every
//                   observed acquisition-while-holding edge is permitted
//                   by it. Optionally emits the graph as DOT (--dot).
//   determinism   — flags order-sensitive FP accumulation outside the
//                   blessed reduction helpers, reductions over
//                   hash-ordered iteration, and nondeterministic sources
//                   (time/rand/random_device) outside common/rng.cc.
//
// Usage: ppdb_analyze [--root DIR] [--pass lock-order|determinism|all]
//                     [--dot FILE]
// Exit 0 when clean, 1 on findings, 2 on usage/IO errors.
// Findings print as `file:line: message` (relative to --root).

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "determinism.h"
#include "lock_order.h"
#include "source_lexer.h"

namespace fs = std::filesystem;

namespace {

bool HasSuffix(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

int Usage() {
  std::cerr << "usage: ppdb_analyze [--root DIR] "
               "[--pass lock-order|determinism|all] [--dot FILE]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string pass = "all";
  std::string dot_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--pass" && i + 1 < argc) {
      pass = argv[++i];
    } else if (arg == "--dot" && i + 1 < argc) {
      dot_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      return Usage();
    }
  }
  if (pass != "all" && pass != "lock-order" && pass != "determinism") {
    return Usage();
  }

  const fs::path src = fs::path(root) / "src";
  std::error_code ec;
  if (!fs::is_directory(src, ec)) {
    std::cerr << "ppdb_analyze: no src/ under --root " << root << "\n";
    return 2;
  }

  // Deterministic file order (the analyzer had better practice what it
  // preaches): collect, then sort by relative path.
  std::vector<std::string> rels;
  for (const fs::directory_entry& entry :
       fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const std::string path = entry.path().generic_string();
    if (!HasSuffix(path, ".h") && !HasSuffix(path, ".cc")) continue;
    rels.push_back(
        fs::relative(entry.path(), fs::path(root)).generic_string());
  }
  std::sort(rels.begin(), rels.end());

  std::vector<ppdb::analyzer::SourceFile> files;
  files.reserve(rels.size());
  for (const std::string& rel : rels) {
    ppdb::analyzer::SourceFile file;
    const std::string full = (fs::path(root) / rel).generic_string();
    if (!ppdb::analyzer::LoadSourceFile(full, rel, &file)) {
      std::cerr << "ppdb_analyze: cannot read " << full << "\n";
      return 2;
    }
    files.push_back(std::move(file));
  }

  int findings = 0;
  if (pass == "all" || pass == "lock-order") {
    const ppdb::analyzer::LockOrderResult result =
        ppdb::analyzer::AnalyzeLockOrder(files);
    for (const ppdb::analyzer::Finding& finding : result.errors) {
      if (finding.file.empty()) {
        std::cout << "lock-order: " << finding.message << "\n";
      } else {
        std::cout << finding.file << ":" << finding.line << ": "
                  << finding.message << "\n";
      }
      ++findings;
    }
    if (!dot_path.empty()) {
      std::ofstream out(dot_path);
      if (!out) {
        std::cerr << "ppdb_analyze: cannot write " << dot_path << "\n";
        return 2;
      }
      out << ppdb::analyzer::RenderDot(result);
      std::cerr << "ppdb_analyze: lock graph written to " << dot_path
                << " (" << result.levels.size() << " levels, "
                << result.observed_edges.size() << " observed edges)\n";
    }
  }
  if (pass == "all" || pass == "determinism") {
    for (const ppdb::analyzer::Finding& finding :
         ppdb::analyzer::AnalyzeDeterminism(files)) {
      std::cout << finding.file << ":" << finding.line << ": "
                << finding.message << "\n";
      ++findings;
    }
  }
  if (findings != 0) {
    std::cout << "ppdb_analyze: " << findings << " finding(s)\n";
    return 1;
  }
  std::cerr << "ppdb_analyze: clean (" << files.size() << " files, pass="
            << pass << ")\n";
  return 0;
}

#ifndef PPDB_TOOLS_ANALYZER_LOCK_ORDER_H_
#define PPDB_TOOLS_ANALYZER_LOCK_ORDER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "source_lexer.h"

/// Pass 1: lock-order analysis.
///
/// Inputs are the PPDB_LOCK_LEVEL / PPDB_ACQUIRED_BEFORE /
/// PPDB_ACQUIRED_AFTER declarations on Mutex/SharedMutex members (the
/// documented global order) and the acquisition structure lexed out of
/// src/: RAII guard sites (`MutexLock l(mu_)` and friends), hand-locked
/// `mu_.Lock()` spans, `PPDB_REQUIRES`-annotated function bodies (the
/// level is held throughout), and calls to methods whose header annotates
/// them `PPDB_EXCLUDES(mu)` (the method acquires that level internally —
/// the convention every locked component follows).
///
/// The pass fails on:
///   * a Mutex/SharedMutex member with no PPDB_LOCK_LEVEL declaration
///     (exempt a function-local with `// ppdb-lint: allow(lock-order)`),
///   * a cycle in the declared order itself,
///   * an observed acquisition edge that the declared order does not
///     permit — either inverted (the reverse direction is declared: a
///     potential deadlock) or simply undeclared (a cross-component
///     acquisition nobody wrote down).
///
/// The whole graph — declared chain plus observed edges — is emitted as a
/// DOT artifact so the order stays reviewable as the tree grows.
namespace ppdb::analyzer {

struct LevelDecl {
  std::string level;
  std::string member;   // e.g. "mu_"
  std::string file;     // declaring file (rel path)
  int line = 0;
  bool shared = false;  // SharedMutex vs Mutex
};

struct OrderEdge {
  std::string from;  // level held
  std::string to;    // level acquired
  std::string file;  // where observed/declared
  int line = 0;
  bool declared = false;  // from PPDB_ACQUIRED_* rather than a code site
  std::string via;        // for observed edges: the call or guard site text
};

struct Finding {
  std::string file;
  int line = 0;
  std::string message;
};

struct LockOrderResult {
  std::vector<LevelDecl> levels;
  std::vector<OrderEdge> declared_edges;
  std::vector<OrderEdge> observed_edges;  // deduped by (from, to)
  std::vector<Finding> errors;
  bool ok() const { return errors.empty(); }
};

/// Runs the pass over the loaded tree.
LockOrderResult AnalyzeLockOrder(const std::vector<SourceFile>& files);

/// Renders the order graph (declared chain solid, observed edges dashed,
/// violations red) in Graphviz DOT format.
std::string RenderDot(const LockOrderResult& result);

}  // namespace ppdb::analyzer

#endif  // PPDB_TOOLS_ANALYZER_LOCK_ORDER_H_

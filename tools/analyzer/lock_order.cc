#include "lock_order.h"

#include <algorithm>
#include <functional>
#include <sstream>

namespace ppdb::analyzer {
namespace {

bool IsMutexType(const std::string& text) {
  return text == "Mutex" || text == "SharedMutex";
}

bool IsGuardType(const std::string& text) {
  return text == "MutexLock" || text == "WriterMutexLock" ||
         text == "ReaderMutexLock";
}

/// Paired header for "src/server/broker.cc" -> "src/server/broker.h".
std::string PairedHeader(const std::string& rel) {
  if (rel.size() > 3 && rel.compare(rel.size() - 3, 3, ".cc") == 0) {
    return rel.substr(0, rel.size() - 3) + ".h";
  }
  return rel;
}

/// Finds the index of the token matching the '(' at `open` (which must be
/// an open paren); returns the index past the matching ')', or `end` when
/// unbalanced.
size_t MatchParen(const std::vector<Token>& tokens, size_t open) {
  int balance = 0;
  for (size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].text == "(") ++balance;
    if (tokens[i].text == ")") {
      if (--balance == 0) return i;
    }
  }
  return tokens.size();
}

/// Collects identifier arguments of a PPDB_* macro starting at its '('.
std::vector<std::string> MacroArgs(const std::vector<Token>& tokens,
                                   size_t open) {
  std::vector<std::string> args;
  const size_t close = MatchParen(tokens, open);
  for (size_t i = open + 1; i < close && i < tokens.size(); ++i) {
    if (tokens[i].kind == Token::Kind::kIdent) args.push_back(tokens[i].text);
  }
  return args;
}

struct TreeIndex {
  // rel path -> member name -> level
  std::map<std::string, std::map<std::string, std::string>> file_members;
  // member name -> declaring levels (for global-unique fallback)
  std::map<std::string, std::set<std::string>> member_levels;
  // level name -> declaration
  std::map<std::string, LevelDecl> levels;
  // method name -> levels it acquires internally (PPDB_EXCLUDES)
  std::map<std::string, std::set<std::string>> acquires;
  // (rel path, method name) -> levels held throughout (PPDB_REQUIRES*)
  std::map<std::string, std::map<std::string, std::set<std::string>>>
      requires_held;
};

/// Walks back from the PPDB_EXCLUDES/REQUIRES annotation at `anno` to the
/// method name it annotates: skips `const`/`noexcept`/`override`, expects
/// the parameter list's ')' and matches it back to '(', then takes the
/// identifier before it. Returns "" when the shape does not match.
std::string MethodNameBeforeAnnotation(const std::vector<Token>& tokens,
                                       size_t anno) {
  size_t i = anno;
  while (i > 0) {
    --i;
    const std::string& text = tokens[i].text;
    if (text == "const" || text == "noexcept" || text == "override" ||
        text == "final") {
      continue;
    }
    if (text == ")") {
      int balance = 1;
      while (i > 0 && balance > 0) {
        --i;
        if (tokens[i].text == ")") ++balance;
        if (tokens[i].text == "(") --balance;
      }
      if (balance != 0 || i == 0) return "";
      const Token& name = tokens[i - 1];
      if (name.kind == Token::Kind::kIdent) return name.text;
      return "";
    }
    return "";
  }
  return "";
}

/// Scans every file for mutex member declarations (building the level
/// registry and per-file member maps) and for method annotations (building
/// the acquires / requires maps). Declaration problems append to `errors`.
TreeIndex BuildIndex(const std::vector<SourceFile>& files,
                     std::vector<OrderEdge>* declared_edges,
                     std::vector<Finding>* errors) {
  TreeIndex index;
  for (const SourceFile& file : files) {
    const std::vector<Token>& tokens = file.tokens;
    for (size_t i = 0; i + 1 < tokens.size(); ++i) {
      const Token& type = tokens[i];
      if (type.kind != Token::Kind::kIdent || !IsMutexType(type.text)) {
        continue;
      }
      // A member/variable declaration: `Mutex name ...;` where the
      // preceding token closes a previous declaration or is a qualifier,
      // and the name is not followed by '(' (that would be a function).
      if (i > 0) {
        const std::string& prev = tokens[i - 1].text;
        const bool decl_context = prev == ";" || prev == "{" || prev == "}" ||
                                  prev == ":" || prev == "mutable" ||
                                  prev == "::" || prev == "public" ||
                                  prev == "private" || prev == "protected";
        if (!decl_context) continue;
      }
      const Token& name = tokens[i + 1];
      if (name.kind != Token::Kind::kIdent) continue;
      const std::string& after = tokens[i + 2].text;
      if (after == "(" || after == "&" || after == "*" || after == ",") {
        continue;
      }
      // Parse the declaration through ';' for the order macros.
      std::string level;
      std::vector<std::string> before, after_levels;
      int level_line = 0;
      for (size_t j = i + 2; j < tokens.size() && tokens[j].text != ";";
           ++j) {
        const std::string& text = tokens[j].text;
        if (text == "PPDB_LOCK_LEVEL" && tokens[j + 1].text == "(") {
          std::vector<std::string> args = MacroArgs(tokens, j + 1);
          if (!args.empty()) {
            level = args[0];
            level_line = tokens[j].line;
          }
        } else if (text == "PPDB_ACQUIRED_BEFORE" &&
                   tokens[j + 1].text == "(") {
          std::vector<std::string> args = MacroArgs(tokens, j + 1);
          before.insert(before.end(), args.begin(), args.end());
        } else if (text == "PPDB_ACQUIRED_AFTER" &&
                   tokens[j + 1].text == "(") {
          std::vector<std::string> args = MacroArgs(tokens, j + 1);
          after_levels.insert(after_levels.end(), args.begin(), args.end());
        }
      }
      if (level.empty()) {
        if (!HasAllowMarker(file.lines, name.line, "lock-order")) {
          errors->push_back(
              {file.rel, name.line,
               "Mutex member '" + name.text +
                   "' has no PPDB_LOCK_LEVEL declaration; give it a place "
                   "in the documented global lock order (DESIGN.md) or "
                   "mark a function-local with "
                   "'// ppdb-lint: allow(lock-order)'"});
        }
        continue;
      }
      if (index.levels.count(level) != 0) {
        errors->push_back(
            {file.rel, level_line,
             "lock level '" + level + "' already declared at " +
                 index.levels[level].file + ":" +
                 std::to_string(index.levels[level].line)});
        continue;
      }
      LevelDecl decl;
      decl.level = level;
      decl.member = name.text;
      decl.file = file.rel;
      decl.line = name.line;
      decl.shared = type.text == "SharedMutex";
      index.levels[level] = decl;
      index.file_members[file.rel][name.text] = level;
      index.member_levels[name.text].insert(level);
      for (const std::string& other : before) {
        declared_edges->push_back(
            {level, other, file.rel, level_line, true, ""});
      }
      for (const std::string& other : after_levels) {
        declared_edges->push_back(
            {other, level, file.rel, level_line, true, ""});
      }
    }
  }

  // Second sweep: method annotations can only be resolved once every
  // member has a level.
  for (const SourceFile& file : files) {
    const std::vector<Token>& tokens = file.tokens;
    const auto members = index.file_members.find(file.rel);
    for (size_t i = 0; i + 1 < tokens.size(); ++i) {
      const std::string& text = tokens[i].text;
      const bool is_excludes = text == "PPDB_EXCLUDES";
      const bool is_requires =
          text == "PPDB_REQUIRES" || text == "PPDB_REQUIRES_SHARED";
      if ((!is_excludes && !is_requires) || tokens[i + 1].text != "(") {
        continue;
      }
      const std::string method = MethodNameBeforeAnnotation(tokens, i);
      if (method.empty()) continue;
      for (const std::string& arg : MacroArgs(tokens, i + 1)) {
        std::string level;
        if (members != index.file_members.end()) {
          auto it = members->second.find(arg);
          if (it != members->second.end()) level = it->second;
        }
        if (level.empty()) continue;
        if (is_excludes) {
          index.acquires[method].insert(level);
        } else {
          index.requires_held[file.rel][method].insert(level);
        }
      }
    }
  }
  return index;
}

/// Resolves a lock-guard argument (the trailing identifier of e.g.
/// `state->mu` or `mu_`) to a level: same file first, then the paired
/// header, then a globally unique member name.
std::string ResolveMember(const TreeIndex& index, const std::string& rel,
                          const std::string& member) {
  auto lookup = [&](const std::string& file) -> std::string {
    auto fit = index.file_members.find(file);
    if (fit == index.file_members.end()) return "";
    auto mit = fit->second.find(member);
    return mit == fit->second.end() ? "" : mit->second;
  };
  std::string level = lookup(rel);
  if (!level.empty()) return level;
  level = lookup(PairedHeader(rel));
  if (!level.empty()) return level;
  auto git = index.member_levels.find(member);
  if (git != index.member_levels.end() && git->second.size() == 1) {
    return *git->second.begin();
  }
  return "";
}

struct HeldLock {
  std::string level;
  int depth = 0;    // brace depth the hold belongs to (scope of the guard)
  bool manual = false;  // hand-locked via .Lock(); released by .Unlock()
  bool whole_function = false;  // from PPDB_REQUIRES on the function
};

/// Extracts observed acquisition edges from one file's token stream.
void ScanAcquisitions(const SourceFile& file, const TreeIndex& index,
                      std::map<std::pair<std::string, std::string>,
                               OrderEdge>* observed) {
  const std::vector<Token>& tokens = file.tokens;
  int depth = 0;
  std::vector<HeldLock> held;

  auto record_edges_to = [&](const std::string& to, int line,
                             const std::string& via) {
    for (const HeldLock& h : held) {
      if (h.level == to) continue;
      const auto key = std::make_pair(h.level, to);
      if (observed->count(key) != 0) continue;
      (*observed)[key] = {h.level, to, file.rel, line, false, via};
    }
  };

  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.text == "{") {
      ++depth;
      continue;
    }
    if (token.text == "}") {
      --depth;
      held.erase(std::remove_if(held.begin(), held.end(),
                                [&](const HeldLock& h) {
                                  return !h.manual && h.depth > depth;
                                }),
                 held.end());
      // Hand-locked spans do not outlive the function either.
      if (depth == 0) held.clear();
      continue;
    }
    if (token.kind != Token::Kind::kIdent) continue;

    // RAII guard: `MutexLock lock(arg);`
    if (IsGuardType(token.text) && i + 2 < tokens.size() &&
        tokens[i + 1].kind == Token::Kind::kIdent &&
        tokens[i + 2].text == "(") {
      const size_t close = MatchParen(tokens, i + 2);
      std::string arg;
      for (size_t j = i + 3; j < close; ++j) {
        if (tokens[j].kind == Token::Kind::kIdent) arg = tokens[j].text;
      }
      const std::string level = ResolveMember(index, file.rel, arg);
      if (!level.empty()) {
        record_edges_to(level, token.line, token.text + "(" + arg + ")");
        held.push_back({level, depth, false, false});
      }
      i = close;
      continue;
    }

    // Hand-locked span: `arg.Lock()` / `arg->LockShared()` ... `Unlock()`.
    if ((token.text == "Lock" || token.text == "LockShared" ||
         token.text == "Unlock" || token.text == "UnlockShared") &&
        i >= 2 && i + 1 < tokens.size() && tokens[i + 1].text == "(" &&
        (tokens[i - 1].text == "." || tokens[i - 1].text == "->") &&
        tokens[i - 2].kind == Token::Kind::kIdent) {
      const std::string level =
          ResolveMember(index, file.rel, tokens[i - 2].text);
      if (!level.empty()) {
        if (token.text == "Lock" || token.text == "LockShared") {
          record_edges_to(level, token.line,
                          tokens[i - 2].text + "." + token.text + "()");
          held.push_back({level, depth, true, false});
        } else {
          for (auto it = held.rbegin(); it != held.rend(); ++it) {
            if (it->manual && it->level == level) {
              held.erase(std::next(it).base());
              break;
            }
          }
        }
      }
      continue;
    }

    // Function definition `Class::Method(...) ... {` — the body holds the
    // levels its header declaration marks PPDB_REQUIRES.
    if (held.empty() && i + 3 < tokens.size() && tokens[i + 1].text == "::" &&
        tokens[i + 2].kind == Token::Kind::kIdent &&
        tokens[i + 3].text == "(") {
      const std::string& method = tokens[i + 2].text;
      const size_t close = MatchParen(tokens, i + 3);
      size_t j = close + 1;
      while (j < tokens.size() &&
             (tokens[j].text == "const" || tokens[j].text == "noexcept" ||
              tokens[j].text == "override" || tokens[j].text == "final")) {
        ++j;
      }
      if (j < tokens.size() && tokens[j].text == "{") {
        std::set<std::string> levels;
        auto collect = [&](const std::string& rel) {
          auto fit = index.requires_held.find(rel);
          if (fit == index.requires_held.end()) return;
          auto mit = fit->second.find(method);
          if (mit == fit->second.end()) return;
          levels.insert(mit->second.begin(), mit->second.end());
        };
        collect(PairedHeader(file.rel));
        collect(file.rel);
        for (const std::string& level : levels) {
          held.push_back({level, depth + 1, false, true});
        }
        // Fall through: the '{' is consumed by the main loop next round.
      }
      i = close;
      continue;
    }

    // Call into a method that acquires a level internally
    // (PPDB_EXCLUDES annotation in its header). Only unambiguous method
    // names contribute edges.
    if (!held.empty() && i + 1 < tokens.size() && tokens[i + 1].text == "(" &&
        i >= 1 &&
        (tokens[i - 1].text == "." || tokens[i - 1].text == "->")) {
      auto ait = index.acquires.find(token.text);
      if (ait != index.acquires.end() && ait->second.size() == 1) {
        record_edges_to(*ait->second.begin(), token.line,
                        token.text + "()");
      }
      continue;
    }
  }
}

/// DFS cycle search over the declared graph; returns one cycle as a level
/// sequence, empty when acyclic.
std::vector<std::string> FindDeclaredCycle(
    const std::map<std::string, std::set<std::string>>& graph) {
  std::map<std::string, int> state;  // 0 unvisited, 1 on stack, 2 done
  std::vector<std::string> stack;
  std::vector<std::string> cycle;
  std::function<bool(const std::string&)> visit =
      [&](const std::string& node) {
        state[node] = 1;
        stack.push_back(node);
        auto it = graph.find(node);
        if (it != graph.end()) {
          for (const std::string& next : it->second) {
            if (state[next] == 1) {
              auto begin =
                  std::find(stack.begin(), stack.end(), next);
              cycle.assign(begin, stack.end());
              cycle.push_back(next);
              return true;
            }
            if (state[next] == 0 && visit(next)) return true;
          }
        }
        stack.pop_back();
        state[node] = 2;
        return false;
      };
  for (const auto& [node, _] : graph) {
    if (state[node] == 0 && visit(node)) return cycle;
  }
  return {};
}

}  // namespace

LockOrderResult AnalyzeLockOrder(const std::vector<SourceFile>& files) {
  LockOrderResult result;
  TreeIndex index = BuildIndex(files, &result.declared_edges, &result.errors);
  for (const auto& [level, decl] : index.levels) {
    result.levels.push_back(decl);
  }

  // Declared levels referenced by PPDB_ACQUIRED_* must exist (typo guard).
  for (const OrderEdge& edge : result.declared_edges) {
    for (const std::string* level : {&edge.from, &edge.to}) {
      if (index.levels.count(*level) == 0) {
        result.errors.push_back(
            {edge.file, edge.line,
             "PPDB_ACQUIRED_BEFORE/AFTER names unknown lock level '" +
                 *level + "'"});
      }
    }
  }

  // The declared order itself must be acyclic.
  std::map<std::string, std::set<std::string>> declared;
  for (const OrderEdge& edge : result.declared_edges) {
    declared[edge.from].insert(edge.to);
  }
  const std::vector<std::string> cycle = FindDeclaredCycle(declared);
  if (!cycle.empty()) {
    std::string path;
    for (const std::string& level : cycle) {
      if (!path.empty()) path += " -> ";
      path += level;
    }
    result.errors.push_back(
        {"", 0,
         "declared lock order contains a cycle (potential deadlock): " +
             path});
    return result;  // closure below would be meaningless
  }

  // Transitive closure of the declared DAG.
  std::map<std::string, std::set<std::string>> closure;
  std::function<const std::set<std::string>&(const std::string&)> reach =
      [&](const std::string& node) -> const std::set<std::string>& {
    auto it = closure.find(node);
    if (it != closure.end()) return it->second;
    std::set<std::string>& mine = closure[node];
    auto git = declared.find(node);
    if (git != declared.end()) {
      for (const std::string& next : git->second) {
        mine.insert(next);
        const std::set<std::string>& sub = reach(next);
        mine.insert(sub.begin(), sub.end());
      }
    }
    return mine;
  };

  // Observed acquisitions.
  std::map<std::pair<std::string, std::string>, OrderEdge> observed;
  for (const SourceFile& file : files) {
    ScanAcquisitions(file, index, &observed);
  }
  for (auto& [key, edge] : observed) {
    const bool allowed = reach(edge.from).count(edge.to) != 0;
    if (!allowed) {
      const SourceFile* file = nullptr;
      for (const SourceFile& f : files) {
        if (f.rel == edge.file) {
          file = &f;
          break;
        }
      }
      if (file != nullptr &&
          HasAllowMarker(file->lines, edge.line, "lock-order")) {
        edge.via += " [allowed]";
      } else if (reach(edge.to).count(edge.from) != 0) {
        result.errors.push_back(
            {edge.file, edge.line,
             "acquisition of '" + edge.to + "' (via " + edge.via +
                 ") while holding '" + edge.from +
                 "' INVERTS the declared lock order — potential deadlock"});
      } else {
        result.errors.push_back(
            {edge.file, edge.line,
             "acquisition of '" + edge.to + "' (via " + edge.via +
                 ") while holding '" + edge.from +
                 "' is not covered by any PPDB_ACQUIRED_BEFORE/AFTER "
                 "declaration; declare the order or mark the site with "
                 "'// ppdb-lint: allow(lock-order)'"});
      }
    }
    result.observed_edges.push_back(edge);
  }
  return result;
}

std::string RenderDot(const LockOrderResult& result) {
  std::ostringstream out;
  out << "digraph ppdb_lock_order {\n"
      << "  rankdir=TB;\n"
      << "  node [shape=box, fontname=\"Helvetica\"];\n"
      << "  label=\"ppdb global lock order — solid: declared "
         "(PPDB_ACQUIRED_BEFORE/AFTER), dashed: observed acquisitions\";\n";
  for (const LevelDecl& decl : result.levels) {
    out << "  \"" << decl.level << "\" [label=\"" << decl.level << "\\n"
        << decl.file << ":" << decl.member
        << (decl.shared ? " (shared)" : "") << "\"];\n";
  }
  std::set<std::pair<std::string, std::string>> declared;
  for (const OrderEdge& edge : result.declared_edges) {
    if (!declared.insert({edge.from, edge.to}).second) continue;
    out << "  \"" << edge.from << "\" -> \"" << edge.to << "\";\n";
  }
  std::set<std::pair<std::string, std::string>> violating;
  for (const Finding& finding : result.errors) {
    (void)finding;  // violations are matched below by absence from closure
  }
  for (const OrderEdge& edge : result.observed_edges) {
    const bool is_declared = declared.count({edge.from, edge.to}) != 0;
    out << "  \"" << edge.from << "\" -> \"" << edge.to
        << "\" [style=dashed, color=" << (is_declared ? "gray40" : "gray70")
        << ", label=\"" << edge.file << ":" << edge.line << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace ppdb::analyzer

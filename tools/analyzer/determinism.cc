#include "determinism.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

namespace ppdb::analyzer {
namespace {

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.compare(0, prefix.size(), prefix) == 0;
}

/// fp-accumulate scope: src/violation/ minus the blessed reduction
/// helpers, whose pairwise/blocked sums *define* the canonical answer.
bool InFpScope(const std::string& rel) {
  if (!StartsWith(rel, "src/violation/")) return false;
  if (rel == "src/violation/analysis_core.h") return false;
  if (StartsWith(rel, "src/violation/kernel/")) return false;
  return true;
}

/// unordered-iter scope: the violation pipeline and the serving layer that
/// feeds it.
bool InUnorderedScope(const std::string& rel) {
  return StartsWith(rel, "src/violation/") || StartsWith(rel, "src/server/");
}

/// nondet-source scope: everywhere under src/ except the one blessed
/// randomness source.
bool InNondetScope(const std::string& rel) {
  return StartsWith(rel, "src/") && rel != "src/common/rng.cc" &&
         rel != "src/common/rng.h";
}

size_t MatchForward(const std::vector<Token>& tokens, size_t open,
                    const std::string& open_text,
                    const std::string& close_text) {
  int balance = 0;
  for (size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].text == open_text) ++balance;
    if (tokens[i].text == close_text) {
      if (--balance == 0) return i;
    }
  }
  return tokens.size();
}

/// Token-index ranges of loop bodies (for/while/do), including braceless
/// single-statement bodies.
struct LoopBody {
  size_t begin = 0;  // first body token
  size_t end = 0;    // one past the last body token
  size_t header_begin = 0;  // 'for'/'while' token (for range-for parsing)
  size_t header_end = 0;    // ')' closing the loop header, or header_begin
};

std::vector<LoopBody> FindLoopBodies(const std::vector<Token>& tokens) {
  std::vector<LoopBody> bodies;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.kind != Token::Kind::kIdent) continue;
    if (token.text == "for" || token.text == "while") {
      if (i + 1 >= tokens.size() || tokens[i + 1].text != "(") continue;
      const size_t close = MatchForward(tokens, i + 1, "(", ")");
      if (close >= tokens.size()) continue;
      LoopBody body;
      body.header_begin = i;
      body.header_end = close;
      if (close + 1 < tokens.size() && tokens[close + 1].text == "{") {
        body.begin = close + 2;
        body.end = MatchForward(tokens, close + 1, "{", "}");
      } else {
        body.begin = close + 1;
        size_t j = close + 1;
        int paren = 0, brace = 0;
        while (j < tokens.size()) {
          const std::string& text = tokens[j].text;
          if (text == "(") ++paren;
          if (text == ")") --paren;
          if (text == "{") ++brace;
          if (text == "}") --brace;
          if (text == ";" && paren == 0 && brace == 0) break;
          ++j;
        }
        body.end = j;
      }
      bodies.push_back(body);
    } else if (token.text == "do" && i + 1 < tokens.size() &&
               tokens[i + 1].text == "{") {
      LoopBody body;
      body.header_begin = i;
      body.header_end = i;
      body.begin = i + 2;
      body.end = MatchForward(tokens, i + 1, "{", "}");
      bodies.push_back(body);
    }
  }
  return bodies;
}

bool InsideAnyLoop(const std::vector<LoopBody>& bodies, size_t index) {
  for (const LoopBody& body : bodies) {
    if (index >= body.begin && index < body.end) return true;
  }
  return false;
}

/// Names declared float/double in this file (locals, members, params).
std::set<std::string> FpNames(const std::vector<Token>& tokens) {
  std::set<std::string> names;
  for (size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (tokens[i].kind != Token::Kind::kIdent ||
        (tokens[i].text != "double" && tokens[i].text != "float")) {
      continue;
    }
    const Token& name = tokens[i + 1];
    if (name.kind != Token::Kind::kIdent) continue;
    const std::string& after = tokens[i + 2].text;
    // `double Foo(` is a function returning double, not a variable.
    if (after == "(") continue;
    names.insert(name.text);
  }
  return names;
}

/// Names declared as std::unordered_{map,set,multimap,multiset}<...> in
/// this file.
std::set<std::string> UnorderedNames(const std::vector<Token>& tokens) {
  std::set<std::string> names;
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    const std::string& text = tokens[i].text;
    if (text != "unordered_map" && text != "unordered_set" &&
        text != "unordered_multimap" && text != "unordered_multiset") {
      continue;
    }
    if (tokens[i + 1].text != "<") continue;
    // Walk the template argument list by angle balance ('>>' lexes as two
    // '>' tokens), then take the declared name.
    int angle = 0;
    size_t j = i + 1;
    for (; j < tokens.size(); ++j) {
      if (tokens[j].text == "<") ++angle;
      if (tokens[j].text == ">") {
        if (--angle == 0) break;
      }
    }
    if (j + 1 >= tokens.size()) continue;
    const Token& name = tokens[j + 1];
    if (name.kind != Token::Kind::kIdent) continue;
    if (j + 2 < tokens.size() && tokens[j + 2].text == "(") continue;
    names.insert(name.text);
  }
  return names;
}

std::string PairedHeader(const std::string& rel) {
  if (rel.size() > 3 && rel.compare(rel.size() - 3, 3, ".cc") == 0) {
    return rel.substr(0, rel.size() - 3) + ".h";
  }
  return rel;
}

void CheckFpAccumulate(const SourceFile& file,
                       const std::set<std::string>& fp_names,
                       const std::vector<LoopBody>& loops,
                       std::vector<Finding>* findings) {
  const std::vector<Token>& tokens = file.tokens;
  for (size_t i = 1; i < tokens.size(); ++i) {
    bool accumulates = false;
    std::string target;
    int line = 0;
    if (tokens[i].text == "+=" || tokens[i].text == "-=") {
      // `x += expr` / `obj.x += expr`
      if (tokens[i - 1].kind == Token::Kind::kIdent &&
          fp_names.count(tokens[i - 1].text) != 0) {
        accumulates = true;
        target = tokens[i - 1].text;
        line = tokens[i].line;
      }
    } else if (tokens[i].text == "=" && i + 2 < tokens.size() &&
               tokens[i - 1].kind == Token::Kind::kIdent &&
               tokens[i + 1].kind == Token::Kind::kIdent &&
               tokens[i + 1].text == tokens[i - 1].text &&
               (tokens[i + 2].text == "+" || tokens[i + 2].text == "-")) {
      // `x = x + expr`
      if (fp_names.count(tokens[i - 1].text) != 0) {
        accumulates = true;
        target = tokens[i - 1].text;
        line = tokens[i].line;
      }
    }
    if (!accumulates || !InsideAnyLoop(loops, i)) continue;
    if (HasAllowMarker(file.lines, line, "fp-accumulate")) continue;
    findings->push_back(
        {file.rel, line,
         "floating-point accumulation into '" + target +
             "' inside a loop; order-sensitive FP reduction outside "
             "analysis_core.h/kernel/ breaks bit-reproducibility — use a "
             "blessed reduction helper or justify with "
             "'// ppdb-lint: allow(fp-accumulate)'"});
  }
}

void CheckUnorderedIter(const SourceFile& file,
                        const std::set<std::string>& unordered_names,
                        const std::vector<LoopBody>& loops,
                        std::vector<Finding>* findings) {
  const std::vector<Token>& tokens = file.tokens;
  for (const LoopBody& loop : loops) {
    if (tokens[loop.header_begin].text != "for") continue;
    // Range-for: a ':' at paren depth 1 inside the header.
    size_t colon = 0;
    int paren = 0;
    for (size_t i = loop.header_begin + 1; i < loop.header_end; ++i) {
      if (tokens[i].text == "(") ++paren;
      if (tokens[i].text == ")") --paren;
      if (tokens[i].text == ":" && paren == 1) {
        colon = i;
        break;
      }
    }
    if (colon == 0) continue;
    // The iterated expression's final identifier (`map_`, `state->set_`).
    std::string iterated;
    for (size_t i = colon + 1; i < loop.header_end; ++i) {
      if (tokens[i].kind == Token::Kind::kIdent) iterated = tokens[i].text;
    }
    if (iterated.empty() || unordered_names.count(iterated) == 0) continue;
    // Only iteration *feeding a reduction* is a determinism hazard.
    bool reduces = false;
    for (size_t i = loop.begin; i < loop.end; ++i) {
      if (tokens[i].text == "+=" || tokens[i].text == "-=") {
        reduces = true;
        break;
      }
    }
    if (!reduces) continue;
    const int line = tokens[loop.header_begin].line;
    if (HasAllowMarker(file.lines, line, "unordered-iter")) continue;
    findings->push_back(
        {file.rel, line,
         "reduction over hash-ordered iteration of '" + iterated +
             "'; unordered-container order varies across runs and "
             "libstdc++ versions — impose an order first or justify with "
             "'// ppdb-lint: allow(unordered-iter)'"});
  }
}

void CheckNondetSources(const SourceFile& file,
                        std::vector<Finding>* findings) {
  const std::vector<Token>& tokens = file.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.kind != Token::Kind::kIdent) continue;
    bool hit = false;
    if (token.text == "random_device") {
      hit = true;
    } else if (token.text == "time" || token.text == "rand" ||
               token.text == "srand") {
      // Only call sites; skip member access (`foo.time(...)` is not
      // ::time) and declarations of unrelated identifiers.
      const bool called = i + 1 < tokens.size() && tokens[i + 1].text == "(";
      const bool member =
          i > 0 && (tokens[i - 1].text == "." || tokens[i - 1].text == "->");
      hit = called && !member;
    }
    if (!hit) continue;
    if (HasAllowMarker(file.lines, token.line, "nondet-source")) continue;
    findings->push_back(
        {file.rel, token.line,
         "nondeterministic source '" + token.text +
             "' outside common/rng.cc; all randomness must flow through "
             "the seeded SplitMix64 (common/rng.h) so runs replay — or "
             "justify with '// ppdb-lint: allow(nondet-source)'"});
  }
}

}  // namespace

std::vector<Finding> AnalyzeDeterminism(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  // Per-file declared-name sets, so .cc files can resolve members declared
  // in their paired header.
  std::map<std::string, std::set<std::string>> fp_by_file;
  std::map<std::string, std::set<std::string>> unordered_by_file;
  for (const SourceFile& file : files) {
    fp_by_file[file.rel] = FpNames(file.tokens);
    unordered_by_file[file.rel] = UnorderedNames(file.tokens);
  }
  auto merged = [](std::map<std::string, std::set<std::string>>& by_file,
                   const std::string& rel) {
    std::set<std::string> names = by_file[rel];
    const std::set<std::string>& header = by_file[PairedHeader(rel)];
    names.insert(header.begin(), header.end());
    return names;
  };
  for (const SourceFile& file : files) {
    const std::vector<LoopBody> loops = FindLoopBodies(file.tokens);
    if (InFpScope(file.rel)) {
      CheckFpAccumulate(file, merged(fp_by_file, file.rel), loops,
                        &findings);
    }
    if (InUnorderedScope(file.rel)) {
      CheckUnorderedIter(file, merged(unordered_by_file, file.rel), loops,
                         &findings);
    }
    if (InNondetScope(file.rel)) {
      CheckNondetSources(file, &findings);
    }
  }
  return findings;
}

}  // namespace ppdb::analyzer

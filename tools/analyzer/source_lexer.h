#ifndef PPDB_TOOLS_ANALYZER_SOURCE_LEXER_H_
#define PPDB_TOOLS_ANALYZER_SOURCE_LEXER_H_

#include <string>
#include <vector>

/// Minimal C++ lexing for `ppdb_analyze`. Deliberately not a compiler
/// front-end: the analyzer needs token streams with line numbers, blanked
/// comments/strings, and the ppdb-lint allow-marker convention — nothing
/// that requires a real parse (no templates, no overload resolution). The
/// trade-off is documented in DESIGN.md: the passes work on conventions
/// the codebase already enforces (annotated wrappers, RAII lock guards,
/// PPDB_* macro declarations), so lexing is sufficient and the tool stays
/// dependency-free (no libclang).
namespace ppdb::analyzer {

struct Token {
  enum class Kind { kIdent, kNumber, kPunct, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;
  int line = 0;  // 1-based
};

/// One loaded source file, pre-processed for scanning.
struct SourceFile {
  std::string path;      // as given (absolute or root-relative)
  std::string rel;       // path relative to the scan root, '/'-separated
  std::vector<std::string> lines;  // raw lines, for allow-marker lookups
  std::vector<Token> tokens;       // lexed from the blanked content
};

/// Replaces comments, string literals and char literals with spaces,
/// preserving length and newlines so token line numbers match the
/// original. Handles //, /* */, "...", '...' and raw string literals.
std::string BlankCommentsAndStrings(const std::string& source);

/// Splits on '\n' (keeps no terminators).
std::vector<std::string> SplitLines(const std::string& content);

/// Lexes blanked content. Identifiers, numbers, and punctuation; the
/// multi-character operators the analyzer cares about (`::`, `->`, `+=`,
/// `-=`) are single tokens.
std::vector<Token> Tokenize(const std::string& blanked);

/// Reads and pre-processes one file. Returns false when unreadable.
bool LoadSourceFile(const std::string& path, const std::string& rel,
                    SourceFile* out);

/// True when `line_no` (1-based) carries `// ppdb-lint: allow(<check>)` on
/// the line itself or in the contiguous `//` comment block directly above
/// it — the same convention `tools/ppdb_lint.sh` implements.
bool HasAllowMarker(const std::vector<std::string>& lines, int line_no,
                    const std::string& check);

}  // namespace ppdb::analyzer

#endif  // PPDB_TOOLS_ANALYZER_SOURCE_LEXER_H_

#include "source_lexer.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace ppdb::analyzer {

std::string BlankCommentsAndStrings(const std::string& source) {
  std::string out = source;
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  for (size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   out[i - 1])) &&
                               out[i - 1] != '_'))) {
          // R"delim( — capture the delimiter up to the '('.
          size_t j = i + 2;
          raw_delim.clear();
          while (j < out.size() && out[j] != '(' && out[j] != '\n' &&
                 raw_delim.size() < 16) {
            raw_delim.push_back(out[j]);
            ++j;
          }
          if (j < out.size() && out[j] == '(') {
            state = State::kRawString;
            for (size_t k = i; k <= j; ++k) {
              if (out[k] != '\n') out[k] = ' ';
            }
            i = j;
          }
        } else if (c == '"') {
          state = State::kString;
          out[i] = ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out[i] = ' ';
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n' && i + 1 < out.size()) {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n' && i + 1 < out.size()) {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRawString: {
        // Ends at )delim"
        if (c == ')' &&
            out.compare(i + 1, raw_delim.size(), raw_delim) == 0 &&
            i + 1 + raw_delim.size() < out.size() &&
            out[i + 1 + raw_delim.size()] == '"') {
          const size_t end = i + 1 + raw_delim.size();
          for (size_t k = i; k <= end; ++k) {
            if (out[k] != '\n') out[k] = ' ';
          }
          i = end;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& content) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : content) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  lines.push_back(current);
  return lines;
}

std::vector<Token> Tokenize(const std::string& blanked) {
  std::vector<Token> tokens;
  int line = 1;
  const size_t n = blanked.size();
  for (size_t i = 0; i < n;) {
    const char c = blanked[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i + 1;
      while (j < n && (std::isalnum(static_cast<unsigned char>(blanked[j])) ||
                       blanked[j] == '_')) {
        ++j;
      }
      tokens.push_back({Token::Kind::kIdent, blanked.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i + 1;
      while (j < n && (std::isalnum(static_cast<unsigned char>(blanked[j])) ||
                       blanked[j] == '.' || blanked[j] == '\'')) {
        ++j;
      }
      tokens.push_back({Token::Kind::kNumber, blanked.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Multi-character operators the passes match on.
    const char next = i + 1 < n ? blanked[i + 1] : '\0';
    if ((c == ':' && next == ':') || (c == '-' && next == '>') ||
        (c == '+' && next == '=') || (c == '-' && next == '=')) {
      tokens.push_back(
          {Token::Kind::kPunct, std::string{c, next}, line});
      i += 2;
      continue;
    }
    tokens.push_back({Token::Kind::kPunct, std::string(1, c), line});
    ++i;
  }
  tokens.push_back({Token::Kind::kEnd, "", line});
  return tokens;
}

bool LoadSourceFile(const std::string& path, const std::string& rel,
                    SourceFile* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  out->path = path;
  out->rel = rel;
  out->lines = SplitLines(content);
  out->tokens = Tokenize(BlankCommentsAndStrings(content));
  return true;
}

bool HasAllowMarker(const std::vector<std::string>& lines, int line_no,
                    const std::string& check) {
  const std::string marker = "ppdb-lint: allow(" + check + ")";
  auto line_has = [&](int no) {
    if (no < 1 || no > static_cast<int>(lines.size())) return false;
    return lines[static_cast<size_t>(no - 1)].find(marker) !=
           std::string::npos;
  };
  auto is_comment_line = [&](int no) {
    if (no < 1 || no > static_cast<int>(lines.size())) return false;
    const std::string& text = lines[static_cast<size_t>(no - 1)];
    const size_t first = text.find_first_not_of(" \t");
    return first != std::string::npos && text.compare(first, 2, "//") == 0;
  };
  if (line_has(line_no)) return true;
  for (int no = line_no - 1; no >= 1 && is_comment_line(no); --no) {
    if (line_has(no)) return true;
  }
  return false;
}

}  // namespace ppdb::analyzer

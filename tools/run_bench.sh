#!/usr/bin/env bash
# Runs the violation perf benchmark and records its JSON output at the repo
# root (BENCH_perf_violation.json), so the perf trajectory is tracked across
# PRs. Usage:
#
#   tools/run_bench.sh [build_dir] [output_json]
#
# Defaults: build_dir = build, output_json = BENCH_perf_violation.json.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"${repo_root}/build"}"
output="${2:-"${repo_root}/BENCH_perf_violation.json"}"
bench="${build_dir}/bench/bench_perf_violation"

if [[ ! -x "${bench}" ]]; then
  echo "error: ${bench} not built; run:" >&2
  echo "  cmake -B '${build_dir}' -S '${repo_root}' && cmake --build '${build_dir}' -j" >&2
  exit 1
fi

"${bench}" \
  --benchmark_format=json \
  --benchmark_out="${output}" \
  --benchmark_out_format=json
echo "wrote ${output}"

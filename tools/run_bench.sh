#!/usr/bin/env bash
# Runs the violation perf benchmark, the broker saturation benchmark, the
# journal group-commit benchmark, and the incremental-view delta benchmark
# in a dedicated Release build (the `bench` CMake preset) and records
# their JSON outputs at the repo root (BENCH_perf_violation.json,
# BENCH_server_broker.json, BENCH_journal.json, and
# BENCH_incremental.json), so the perf, overload, durability-cost, and
# delta-path trajectories are tracked across PRs.
#
# Recording is gated: each JSON must carry
# `"library_build_type": "release"` (the build type of the ppdb code under
# test — see bench/bench_main.h) or the run refuses to overwrite the
# baselines. Debug/RelWithDebInfo numbers are meaningless as baselines.
#
# Usage:
#   tools/run_bench.sh [--smoke] [build_dir]
#
#   --smoke    CI mode: one short repetition per benchmark, results written
#              to a temp dir and discarded (validates the harness
#              end-to-end without touching the recorded baselines).
#   build_dir  Override the bench build tree (default: build-bench via the
#              `bench` preset; configured+built automatically if missing).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
smoke=0
if [[ "${1:-}" == "--smoke" ]]; then
  smoke=1
  shift
fi
build_dir="${1:-"${repo_root}/build-bench"}"

# Configure + build the Release harness. The preset pins
# CMAKE_BUILD_TYPE=Release; an explicitly passed build_dir is trusted to
# be already configured the same way (its JSON is still gated below).
if [[ ! -x "${build_dir}/bench/bench_perf_violation" ]]; then
  if [[ "${build_dir}" != "${repo_root}/build-bench" ]]; then
    echo "error: benchmarks not built under ${build_dir}" >&2
    exit 1
  fi
  cmake --preset bench -S "${repo_root}"
fi
cmake --build "${build_dir}" -j \
  --target bench_perf_violation bench_server_broker bench_journal \
  bench_incremental

bench="${build_dir}/bench/bench_perf_violation"
broker_bench="${build_dir}/bench/bench_server_broker"
journal_bench="${build_dir}/bench/bench_journal"
incremental_bench="${build_dir}/bench/bench_incremental"

if [[ "${smoke}" == 1 ]]; then
  out_dir="$(mktemp -d)"
  trap 'rm -rf "${out_dir}"' EXIT
  perf_output="${out_dir}/BENCH_perf_violation.json"
  broker_output="${out_dir}/BENCH_server_broker.json"
  journal_output="${out_dir}/BENCH_journal.json"
  incremental_output="${out_dir}/BENCH_incremental.json"
  # Keep CI fast: tiny time budget and only one benchmark per family, but
  # always include the kernel benches the release gate exists for.
  perf_flags=(--benchmark_min_time=0.01
              --benchmark_filter='BM_KernelConf|BM_KernelDiff|BM_ViolationAnalyze/1000/2$')
  journal_flags=(--smoke)
  incremental_flags=(--smoke)
else
  perf_output="${repo_root}/BENCH_perf_violation.json"
  broker_output="${repo_root}/BENCH_server_broker.json"
  journal_output="${repo_root}/BENCH_journal.json"
  incremental_output="${repo_root}/BENCH_incremental.json"
  perf_flags=()
  journal_flags=()
  incremental_flags=()
fi

# Refuses to record unless the JSON says the code under test was built
# Release. $1 = file, $2 = description.
require_release() {
  if ! grep -q '"library_build_type": "release"' "$1"; then
    echo "error: $2 was not produced by a Release build" >&2
    echo "       (missing '\"library_build_type\": \"release\"' in $1)" >&2
    echo "       use the bench preset: cmake --preset bench && tools/run_bench.sh" >&2
    exit 1
  fi
}

tmp_perf="$(mktemp)"
"${bench}" \
  "${perf_flags[@]}" \
  --benchmark_format=console \
  --benchmark_out="${tmp_perf}" \
  --benchmark_out_format=json
require_release "${tmp_perf}" "bench_perf_violation output"
mv "${tmp_perf}" "${perf_output}"
echo "wrote ${perf_output}"

"${broker_bench}" "${broker_output}"
require_release "${broker_output}" "bench_server_broker output"
echo "wrote ${broker_output}"

"${journal_bench}" "${journal_output}" "${journal_flags[@]}"
require_release "${journal_output}" "bench_journal output"
echo "wrote ${journal_output}"

"${incremental_bench}" "${incremental_output}" "${incremental_flags[@]}"
require_release "${incremental_output}" "bench_incremental output"
echo "wrote ${incremental_output}"

# Best-effort summary: vectorized-vs-scalar conf kernel throughput from
# the run just recorded (items_per_second of BM_KernelConf/<target>).
python3 - "${perf_output}" <<'EOF' || true
import json, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
rates = {}
for b in data.get("benchmarks", []):
    name = b.get("name", "")
    if name.startswith("BM_KernelConf/") and "items_per_second" in b:
        rates[name.split("/", 1)[1]] = b["items_per_second"]
if "scalar" in rates:
    for target, rate in sorted(rates.items()):
        ratio = rate / rates["scalar"]
        print(f"conf kernel {target}: {rate:,.0f} pairs/s ({ratio:.2f}x scalar)")
EOF

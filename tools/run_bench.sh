#!/usr/bin/env bash
# Runs the violation perf benchmark and the broker saturation benchmark,
# recording their JSON outputs at the repo root (BENCH_perf_violation.json
# and BENCH_server_broker.json), so the perf and overload trajectories are
# tracked across PRs. Usage:
#
#   tools/run_bench.sh [build_dir] [output_json]
#
# Defaults: build_dir = build, output_json = BENCH_perf_violation.json.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"${repo_root}/build"}"
output="${2:-"${repo_root}/BENCH_perf_violation.json"}"
bench="${build_dir}/bench/bench_perf_violation"
broker_bench="${build_dir}/bench/bench_server_broker"
broker_output="${repo_root}/BENCH_server_broker.json"

if [[ ! -x "${bench}" || ! -x "${broker_bench}" ]]; then
  echo "error: benchmarks not built under ${build_dir}; run:" >&2
  echo "  cmake -B '${build_dir}' -S '${repo_root}' && cmake --build '${build_dir}' -j" >&2
  exit 1
fi

"${bench}" \
  --benchmark_format=json \
  --benchmark_out="${output}" \
  --benchmark_out_format=json
echo "wrote ${output}"

"${broker_bench}" "${broker_output}"
echo "wrote ${broker_output}"

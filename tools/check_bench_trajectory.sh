#!/usr/bin/env bash
# check_bench_trajectory.sh — gate on the committed benchmark trajectory.
#
# The BENCH_*.json records at the repo root are the performance history the
# README/DESIGN numbers cite. A record that was accidentally captured from
# a Debug build, or whose JSON drifted from the expected schema, poisons
# every future comparison against it. This check validates that every
# record:
#
#   * parses as JSON,
#   * was measured against a Release library build
#     (`library_build_type` == "release", case-insensitive — top-level in
#     hand-rolled records, under `context` in google-benchmark dumps),
#   * carries its summary payload: a non-empty `sweep` array with a
#     consistent per-row schema (hand-rolled), or a non-empty `benchmarks`
#     array with name/iterations/real_time/cpu_time (google-benchmark).
#
# Usage: check_bench_trajectory.sh [repo-root]   (defaults to the repo
# containing this script). Exits non-zero on any malformed record.
set -u

ROOT="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$ROOT" || { echo "check_bench_trajectory: bad root $ROOT" >&2; exit 2; }

python3 - <<'EOF'
import glob
import json
import sys

failures = []
records = sorted(glob.glob("BENCH_*.json"))
if not records:
    print("check_bench_trajectory: no BENCH_*.json records found "
          "(wrong root, or the trajectory was deleted?)")
    sys.exit(1)

def check(path):
    with open(path) as f:
        try:
            data = json.load(f)
        except json.JSONDecodeError as e:
            return f"not valid JSON: {e}"
    if not isinstance(data, dict):
        return "top level is not an object"

    if "context" in data:
        # google-benchmark dump: --benchmark_out=json
        context = data.get("context")
        if not isinstance(context, dict):
            return "'context' is not an object"
        build = context.get("library_build_type")
        if not isinstance(build, str) or build.lower() != "release":
            return (f"context.library_build_type is {build!r}, expected "
                    "'release' — re-capture from a Release build")
        benches = data.get("benchmarks")
        if not isinstance(benches, list) or not benches:
            return "'benchmarks' is missing or empty"
        for i, bench in enumerate(benches):
            for key in ("name", "iterations", "real_time", "cpu_time"):
                if key not in bench:
                    return f"benchmarks[{i}] lacks '{key}'"
        return None

    # hand-rolled record: {benchmark, library_build_type, sweep, ...}
    name = data.get("benchmark")
    if not isinstance(name, str) or not name:
        return "lacks a 'benchmark' name (and has no 'context', so it is "\
               "not a google-benchmark dump either)"
    build = data.get("library_build_type")
    if not isinstance(build, str) or build.lower() != "release":
        return (f"library_build_type is {build!r}, expected 'release' — "
                "re-capture from a Release build")
    sweep = data.get("sweep")
    if not isinstance(sweep, list) or not sweep:
        return "'sweep' is missing or empty"
    schemas = set()
    for i, row in enumerate(sweep):
        if not isinstance(row, dict) or not row:
            return f"sweep[{i}] is not a non-empty object"
        schemas.add(tuple(sorted(row.keys())))
    if len(schemas) != 1:
        return ("sweep rows disagree on their schema: " +
                " vs ".join(str(list(s)) for s in sorted(schemas)))
    return None

for path in records:
    problem = check(path)
    if problem is None:
        print(f"PASS  {path}")
    else:
        print(f"FAIL  {path}: {problem}")
        failures.append(path)

if failures:
    print(f"check_bench_trajectory: {len(failures)} malformed record(s)")
    sys.exit(1)
print(f"check_bench_trajectory: {len(records)} record(s) OK")
EOF

#include "common/circuit_breaker.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "tests/test_util.h"

namespace ppdb {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

/// A breaker on a hand-cranked clock: tests step time, never sleep.
class CircuitBreakerTest : public ::testing::Test {
 protected:
  CircuitBreaker MakeBreaker(int threshold = 3,
                             milliseconds open_duration = milliseconds(100)) {
    CircuitBreaker::Options options;
    options.failure_threshold = threshold;
    options.open_duration = open_duration;
    options.clock = [this] { return now_; };
    return CircuitBreaker(options);
  }

  void Advance(milliseconds by) { now_ += by; }

  steady_clock::time_point now_{};
};

TEST_F(CircuitBreakerTest, ClosedBreakerAdmitsEverything) {
  CircuitBreaker breaker = MakeBreaker();
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(breaker.Allow());
    breaker.Record(Status::OK());
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.trips(), 0);
  EXPECT_EQ(breaker.rejected(), 0);
}

TEST_F(CircuitBreakerTest, TripsAfterConsecutiveTransientFailures) {
  CircuitBreaker breaker = MakeBreaker(/*threshold=*/3);
  for (int i = 0; i < 2; ++i) {
    ASSERT_OK(breaker.Allow());
    breaker.Record(Status::Unavailable("disk flake"));
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed) << i;
  }
  ASSERT_OK(breaker.Allow());
  breaker.Record(Status::Unavailable("disk flake"));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1);
  EXPECT_EQ(breaker.consecutive_failures(), 3);
}

TEST_F(CircuitBreakerTest, SuccessResetsTheStreak) {
  CircuitBreaker breaker = MakeBreaker(/*threshold=*/3);
  for (int round = 0; round < 5; ++round) {
    // Two failures, then a success: never reaches the threshold.
    for (int i = 0; i < 2; ++i) {
      ASSERT_OK(breaker.Allow());
      breaker.Record(Status::Unavailable("flake"));
    }
    ASSERT_OK(breaker.Allow());
    breaker.Record(Status::OK());
    EXPECT_EQ(breaker.consecutive_failures(), 0);
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.trips(), 0);
}

TEST_F(CircuitBreakerTest, PermanentErrorsDoNotTrip) {
  CircuitBreaker breaker = MakeBreaker(/*threshold=*/2);
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(breaker.Allow());
    breaker.Record(Status::OutOfRange("ENOSPC: disk full"));
  }
  // Backing off will not un-fill a disk; the breaker stays closed and the
  // error surfaces to the operator instead.
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.trips(), 0);
}

TEST_F(CircuitBreakerTest, OpenBreakerFailsFastWithRetryHint) {
  CircuitBreaker breaker = MakeBreaker(/*threshold=*/1, milliseconds(250));
  ASSERT_OK(breaker.Allow());
  breaker.Record(Status::Unavailable("down"));
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  Status rejected = breaker.Allow();
  EXPECT_TRUE(rejected.IsUnavailable());
  EXPECT_NE(rejected.message().find("retry_after_ms="), std::string::npos)
      << rejected.message();
  EXPECT_EQ(breaker.rejected(), 1);

  Advance(milliseconds(100));  // still inside the open window
  EXPECT_TRUE(breaker.Allow().IsUnavailable());
  EXPECT_EQ(breaker.rejected(), 2);
}

TEST_F(CircuitBreakerTest, HalfOpenAdmitsExactlyOneProbe) {
  CircuitBreaker breaker = MakeBreaker(/*threshold=*/1, milliseconds(100));
  ASSERT_OK(breaker.Allow());
  breaker.Record(Status::Unavailable("down"));

  Advance(milliseconds(150));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  ASSERT_OK(breaker.Allow());  // the probe
  Status second = breaker.Allow();
  EXPECT_TRUE(second.IsUnavailable());
  EXPECT_NE(second.message().find("probe"), std::string::npos)
      << second.message();

  breaker.Record(Status::OK());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  ASSERT_OK(breaker.Allow());  // writes restored
  breaker.Record(Status::OK());
}

TEST_F(CircuitBreakerTest, FailedProbeReopensAndRestartsTheTimer) {
  CircuitBreaker breaker = MakeBreaker(/*threshold=*/1, milliseconds(100));
  ASSERT_OK(breaker.Allow());
  breaker.Record(Status::Unavailable("down"));

  Advance(milliseconds(150));
  ASSERT_OK(breaker.Allow());
  breaker.Record(Status::Unavailable("still down"));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 2);

  // The open window restarts from the failed probe.
  Advance(milliseconds(50));
  EXPECT_TRUE(breaker.Allow().IsUnavailable());
  Advance(milliseconds(100));
  ASSERT_OK(breaker.Allow());
  breaker.Record(Status::OK());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST_F(CircuitBreakerTest, NonTransientProbeOutcomeReleasesTheSlot) {
  CircuitBreaker breaker = MakeBreaker(/*threshold=*/1, milliseconds(100));
  ASSERT_OK(breaker.Allow());
  breaker.Record(Status::Unavailable("down"));
  Advance(milliseconds(150));
  ASSERT_OK(breaker.Allow());
  // A permanent error neither closes nor re-opens; the next caller may
  // probe again.
  breaker.Record(Status::OutOfRange("ENOSPC"));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  ASSERT_OK(breaker.Allow());
  breaker.Record(Status::OK());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST_F(CircuitBreakerTest, StateNames) {
  EXPECT_EQ(CircuitBreaker::StateName(CircuitBreaker::State::kClosed),
            "closed");
  EXPECT_EQ(CircuitBreaker::StateName(CircuitBreaker::State::kOpen), "open");
  EXPECT_EQ(CircuitBreaker::StateName(CircuitBreaker::State::kHalfOpen),
            "half_open");
}

TEST_F(CircuitBreakerTest, DefaultConstructedBreakerWorks) {
  CircuitBreaker breaker;  // real clock, default thresholds
  ASSERT_OK(breaker.Allow());
  breaker.Record(Status::OK());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

}  // namespace
}  // namespace ppdb

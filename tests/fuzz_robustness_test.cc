// Robustness fuzzing: the text-facing parsers (privacy DSL, SQL, CSV) must
// never crash or hang on arbitrary input — only return OK or a clean error
// status. Seeds are fixed; failures are reproducible.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "privacy/policy_dsl.h"
#include "relational/csv.h"
#include "relational/sql.h"
#include "tests/test_util.h"

namespace ppdb {
namespace {

// Characters weighted toward the parsers' special syntax so the fuzz
// reaches deep branches, plus raw bytes.
std::string RandomText(Rng& rng, size_t max_len) {
  static constexpr char kAlphabet[] =
      "abcdefghij0123456789 \t\n,:=<>()'\"#\\*.-_";
  std::string out;
  size_t len = rng.NextBounded(max_len + 1);
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    if (rng.NextBool(0.9)) {
      out += kAlphabet[rng.NextBounded(sizeof(kAlphabet) - 1)];
    } else {
      out += static_cast<char>(rng.NextBounded(256));
    }
  }
  return out;
}

// Splices random mutations into a valid document, which exercises the
// later stages of each parser.
std::string Mutate(const std::string& seed_text, Rng& rng) {
  std::string out = seed_text;
  int edits = static_cast<int>(rng.NextBounded(8)) + 1;
  for (int e = 0; e < edits && !out.empty(); ++e) {
    size_t pos = rng.NextBounded(out.size());
    switch (rng.NextBounded(3)) {
      case 0:
        out[pos] = static_cast<char>(rng.NextBounded(256));
        break;
      case 1:
        out.insert(pos, RandomText(rng, 6));
        break;
      default:
        out.erase(pos, rng.NextBounded(4) + 1);
        break;
    }
  }
  return out;
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, PolicyDslNeverCrashes) {
  Rng rng(GetParam());
  const std::string valid = R"(
purpose care
policy weight for care: visibility=house, granularity=specific, retention=year
pref 1 weight for care: visibility=house, granularity=partial, retention=year
attr_sensitivity weight = 4
threshold 1 = 10
)";
  for (int i = 0; i < 200; ++i) {
    std::string input =
        rng.NextBool(0.5) ? RandomText(rng, 300) : Mutate(valid, rng);
    Result<privacy::PrivacyConfig> result =
        privacy::ParsePrivacyConfig(input);
    if (result.ok()) {
      // Whatever parsed must also re-serialize and re-parse.
      std::string round = privacy::SerializePrivacyConfig(result.value());
      EXPECT_OK(privacy::ParsePrivacyConfig(round).status()) << input;
    }
  }
}

TEST_P(FuzzTest, SqlParserNeverCrashes) {
  Rng rng(GetParam() + 500);
  const std::string valid =
      "SELECT city, COUNT(*) AS n FROM people WHERE age > 20 AND city != "
      "'x' GROUP BY city HAVING n >= 1 ORDER BY n DESC LIMIT 5";
  for (int i = 0; i < 300; ++i) {
    std::string input =
        rng.NextBool(0.5) ? RandomText(rng, 200) : Mutate(valid, rng);
    // Must return, not crash; status content is unconstrained.
    (void)rel::ParseSql(input);
  }
}

TEST_P(FuzzTest, CsvParserNeverCrashes) {
  Rng rng(GetParam() + 900);
  const std::string valid =
      "provider_id,age,weight\n1,34,81.5\n2,\"2,8\",64.2\n";
  rel::Schema schema =
      rel::Schema::Create({{"age", rel::DataType::kInt64, ""},
                           {"weight", rel::DataType::kDouble, ""}})
          .value();
  for (int i = 0; i < 300; ++i) {
    std::string input =
        rng.NextBool(0.5) ? RandomText(rng, 200) : Mutate(valid, rng);
    (void)rel::ParseCsv(input);
    (void)rel::TableFromCsv("t", schema, input);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range<uint64_t>(0, 6));

}  // namespace
}  // namespace ppdb
